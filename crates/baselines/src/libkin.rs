//! Libkin-style certain-answer under-approximation over Codd/V-tables.
//!
//! Guagliardo & Libkin \[25, 38\] give a PTIME evaluation that returns a
//! *subset* of the certain answers of a positive query over a database with
//! nulls (generalizing Reiter \[42\]):
//!
//! 1. evaluate the query with predicates under three-valued logic, keeping
//!    only rows whose predicates are **certainly true** — a comparison that
//!    touches an (anonymous or labeled) null is unknown and rejects, except
//!    that a labeled null compares equal to *itself* (V-table semantics);
//! 2. discard result tuples still containing nulls — an incomplete tuple is
//!    never a certain answer.
//!
//! Step 1 is exactly the engine's `WHERE` semantics, so the baseline rides
//! the same executor as deterministic queries — mirroring the paper's
//! observation that Libkin's rewriting runs at essentially deterministic
//! speed (Figure 11), with its overhead coming from null handling.
//!
//! Under bag semantics the same evaluation under-approximates the certain
//! *multiplicities* (the paper's \[26\] extension).

use ua_data::algebra::RaExpr;
use ua_data::relation::{Database, Relation};
use ua_data::Tuple;
use ua_engine::exec::{execute, EngineError};
use ua_engine::plan::Plan;
use ua_engine::storage::{Catalog, Table};

/// Certain-answer under-approximation of `plan` over `catalog` (whose
/// tables may contain `NULL`s and labeled nulls).
pub fn certain_subset(plan: &Plan, catalog: &Catalog) -> Result<Table, EngineError> {
    let result = execute(plan, catalog)?;
    let rows: Vec<Tuple> = result
        .rows()
        .iter()
        .filter(|r| !r.has_unknown())
        .cloned()
        .collect();
    Ok(Table::from_rows(result.schema().clone(), rows))
}

/// Convenience: the same under-approximation for an `RA⁺` query.
pub fn certain_subset_ra(query: &RaExpr, catalog: &Catalog) -> Result<Table, EngineError> {
    certain_subset(&Plan::from_ra(query), catalog)
}

/// Set-semantics variant over a `𝔹`-database (used by correctness tests
/// against enumerated possible worlds).
pub fn certain_subset_set(
    query: &RaExpr,
    db: &Database<bool>,
) -> Result<Relation<bool>, EngineError> {
    let result = ua_data::eval(query, db).map_err(EngineError::from)?;
    let mut out = Relation::new(result.schema().clone());
    for (t, &present) in result.iter() {
        if present && !t.has_unknown() {
            out.set(t.clone(), true);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::schema::Schema;
    use ua_data::value::{Value, VarId};
    use ua_data::{tuple, Expr};
    use ua_engine::storage::Table;

    /// A Codd table: ages with some nulls.
    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.register(
            "person",
            Table::from_rows(
                Schema::qualified("person", ["name", "age"]),
                vec![
                    tuple!["ann", 30i64],
                    Tuple::new(vec![Value::str("bob"), Value::Null]),
                    tuple!["cat", 20i64],
                ],
            ),
        );
        c
    }

    #[test]
    fn null_predicates_reject() {
        let q = RaExpr::table("person").select(Expr::named("age").ge(Expr::lit(18i64)));
        let t = certain_subset_ra(&q, &catalog()).unwrap();
        // bob's age is unknown: not a certain answer even though every
        // instantiation ≥ 18 is possible — an under-approximation.
        assert_eq!(
            t.sorted_rows(),
            vec![tuple!["ann", 30i64], tuple!["cat", 20i64]]
        );
    }

    #[test]
    fn null_carrying_outputs_dropped() {
        let q = RaExpr::table("person").project(["age"]);
        let t = certain_subset_ra(&q, &catalog()).unwrap();
        assert_eq!(t.len(), 2, "the NULL age projects out and is dropped");
    }

    #[test]
    fn labeled_null_self_join_is_certain() {
        // V-table: the same variable joins with itself certainly.
        let c = Catalog::new();
        let x = Value::Var(VarId(0));
        c.register(
            "r",
            Table::from_rows(
                Schema::qualified("r", ["k", "v"]),
                vec![Tuple::new(vec![Value::Int(1), x.clone()])],
            ),
        );
        c.register(
            "s",
            Table::from_rows(
                Schema::qualified("s", ["k", "v"]),
                vec![Tuple::new(vec![Value::Int(1), x])],
            ),
        );
        let q = RaExpr::table("r")
            .join(
                RaExpr::table("s"),
                Expr::named("r.v").eq(Expr::named("s.v")),
            )
            .project(["r.k", "s.k"]);
        let t = certain_subset_ra(&q, &c).unwrap();
        assert_eq!(t.rows(), &[tuple![1i64, 1i64]]);
    }

    #[test]
    fn under_approximation_is_c_sound_against_world_enumeration() {
        // Two-column V-table with one labeled null over a small domain:
        // every Libkin answer must be certain under enumeration.
        let x = VarId(0);
        let mut worlds = Vec::new();
        for v in [1i64, 2, 3] {
            let mut db: Database<bool> = Database::new();
            db.insert(
                "r",
                Relation::from_tuples(
                    Schema::qualified("r", ["a", "b"]),
                    vec![tuple![1i64, v], tuple![2i64, 9i64]],
                ),
            );
            worlds.push(db);
        }
        let incomplete = ua_incomplete::IncompleteDb::new(worlds);

        let mut vdb: Database<bool> = Database::new();
        vdb.insert(
            "r",
            Relation::from_tuples(
                Schema::qualified("r", ["a", "b"]),
                vec![
                    Tuple::new(vec![Value::Int(1), Value::Var(x)]),
                    tuple![2i64, 9i64],
                ],
            ),
        );

        for q in [
            RaExpr::table("r").project(["a"]),
            RaExpr::table("r").select(Expr::named("b").ge(Expr::lit(2i64))),
            RaExpr::table("r").project(["a", "b"]),
        ] {
            let under = certain_subset_set(&q, &vdb).unwrap();
            let q_worlds = incomplete.query(&q).unwrap();
            for (t, _) in under.iter() {
                assert!(
                    q_worlds.certain_annotation("result", t),
                    "{t} claimed certain but is not, for {q}"
                );
            }
        }
    }
}
