//! A MayBMS-style probabilistic engine over U-relations.
//!
//! MayBMS (Antova, Koch, Olteanu) represents a block-independent database
//! as *U-relations*: each row carries a **world-set descriptor** — a partial
//! assignment `{x₁ ↦ a₁, …}` of block variables to alternatives — and exists
//! exactly in the worlds extending its descriptor. Positive relational
//! algebra is evaluated directly on this representation:
//!
//! * selection filters rows;
//! * join merges descriptors, dropping *inconsistent* combinations (two
//!   assignments of the same variable to different alternatives);
//! * projection/union keep descriptors.
//!
//! The distinct tuples of a result U-relation are exactly the **possible
//! answers** — which is why MayBMS result sizes explode with uncertainty
//! (paper Figure 12) while a UA-DB returns best-guess-world-sized results.
//!
//! `conf()` computes tuple confidence `P(∨ descriptors)`. Exact computation
//! uses Shannon expansion over the shared condition machinery (worst-case
//! exponential — confidence computation is #P-hard); the approximate
//! variant uses Monte-Carlo sampling with an `(ε, δ)` bound, substituting
//! for the anytime approximation \[41\] the paper runs at ε = 0.3.

use rand::Rng;
use ua_conditions::{
    probability, probability_monte_carlo, samples_for_error, Condition, VarDistributions,
};
use ua_data::algebra::{extract_equi_keys, RaError, RaExpr};
use ua_data::expr::Expr;
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::{Value, VarId};
use ua_data::FxHashMap;
use ua_models::XDb;

/// A world-set descriptor: a consistent partial assignment of block
/// variables to alternative indices, kept sorted by variable.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Descriptor(Vec<(VarId, u32)>);

impl Descriptor {
    /// The empty descriptor (row exists in every world).
    pub fn top() -> Descriptor {
        Descriptor::default()
    }

    /// A singleton descriptor `var ↦ alt`.
    pub fn assign(var: VarId, alt: u32) -> Descriptor {
        Descriptor(vec![(var, alt)])
    }

    /// Merge two descriptors; `None` when inconsistent.
    pub fn merge(&self, other: &Descriptor) -> Option<Descriptor> {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            let (va, aa) = self.0[i];
            let (vb, ab) = other.0[j];
            match va.cmp(&vb) {
                std::cmp::Ordering::Less => {
                    out.push((va, aa));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((vb, ab));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if aa != ab {
                        return None;
                    }
                    out.push((va, aa));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        Some(Descriptor(out))
    }

    /// The assignments.
    pub fn assignments(&self) -> &[(VarId, u32)] {
        &self.0
    }

    /// As a boolean condition `∧ (var = alt)`.
    pub fn to_condition(&self) -> Condition {
        Condition::and_all(
            self.0
                .iter()
                .map(|&(v, a)| Condition::var_eq(v, i64::from(a))),
        )
    }
}

/// One row of a U-relation.
#[derive(Clone, Debug)]
pub struct URow {
    /// The tuple.
    pub tuple: Tuple,
    /// Its world-set descriptor.
    pub descriptor: Descriptor,
}

/// A U-relation.
#[derive(Clone, Debug)]
pub struct URelation {
    schema: Schema,
    rows: Vec<URow>,
}

impl URelation {
    /// Empty U-relation.
    pub fn new(schema: Schema) -> URelation {
        URelation {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[URow] {
        &self.rows
    }

    /// Number of rows (the representation size driving Figure 12).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The distinct possible tuples.
    pub fn possible_tuples(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self.rows.iter().map(|r| r.tuple.clone()).collect();
        out.sort();
        out.dedup();
        out
    }
}

/// A U-relational database: relations plus per-variable alternative
/// distributions (index `i` holds `P(var = i)`; leftover mass = absence).
#[derive(Clone, Debug, Default)]
pub struct UDb {
    relations: std::collections::BTreeMap<String, URelation>,
    distributions: VarDistributions,
    n_vars: u32,
}

impl UDb {
    /// Empty U-database.
    pub fn new() -> UDb {
        UDb::default()
    }

    /// Translate an x-DB / BI-DB: x-tuple `j` becomes variable `j`,
    /// alternative `k` the assignment `j ↦ k`. The variable's distribution
    /// enumerates the alternatives (plus an explicit "absent" alternative
    /// for optional x-tuples, so that distributions always sum to 1).
    pub fn from_xdb(xdb: &XDb) -> UDb {
        let mut out = UDb::new();
        let mut next_var = 0u32;
        for (name, rel) in xdb.iter() {
            let mut urel = URelation::new(rel.schema().clone());
            for xt in rel.xtuples() {
                let var = VarId(next_var);
                next_var += 1;
                let mut support: Vec<(Value, f64)> = xt
                    .alternatives
                    .iter()
                    .enumerate()
                    .map(|(k, alt)| (Value::Int(k as i64), alt.probability))
                    .collect();
                let absent = 1.0 - xt.total_probability();
                if absent > 1e-12 {
                    // Absence encodes as the out-of-range alternative index.
                    support.push((Value::Int(xt.alternatives.len() as i64), absent));
                }
                out.distributions.set(var, support);
                for (k, alt) in xt.alternatives.iter().enumerate() {
                    urel.rows.push(URow {
                        tuple: alt.tuple.clone(),
                        descriptor: Descriptor::assign(var, k as u32),
                    });
                }
            }
            out.relations.insert(name.clone(), urel);
        }
        out.n_vars = next_var;
        out
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> Option<&URelation> {
        self.relations.get(name)
    }

    /// The block-variable distributions.
    pub fn distributions(&self) -> &VarDistributions {
        &self.distributions
    }

    /// Evaluate an `RA⁺` query, producing the result U-relation.
    pub fn query(&self, query: &RaExpr) -> Result<URelation, RaError> {
        match query {
            RaExpr::Table(name) => self
                .relations
                .get(name)
                .cloned()
                .ok_or_else(|| RaError::UnknownTable(name.clone())),
            RaExpr::Alias { input, name } => {
                let rel = self.query(input)?;
                Ok(URelation {
                    schema: rel.schema.with_qualifier(name),
                    rows: rel.rows,
                })
            }
            RaExpr::Select { input, predicate } => {
                let rel = self.query(input)?;
                let bound = predicate.bind(&rel.schema)?;
                let mut out = URelation::new(rel.schema.clone());
                for row in &rel.rows {
                    if bound.holds(&row.tuple)? {
                        out.rows.push(row.clone());
                    }
                }
                Ok(out)
            }
            RaExpr::Project { input, columns } => {
                let rel = self.query(input)?;
                let bound: Vec<Expr> = columns
                    .iter()
                    .map(|c| c.expr.bind(&rel.schema))
                    .collect::<Result<_, _>>()?;
                let schema = Schema::new(columns.iter().map(|c| c.column.clone()).collect());
                let mut out = URelation::new(schema);
                for row in &rel.rows {
                    let tuple: Tuple = bound
                        .iter()
                        .map(|e| e.eval(&row.tuple))
                        .collect::<Result<_, _>>()?;
                    out.rows.push(URow {
                        tuple,
                        descriptor: row.descriptor.clone(),
                    });
                }
                Ok(out)
            }
            RaExpr::Join {
                left,
                right,
                predicate,
            } => {
                let l = self.query(left)?;
                let r = self.query(right)?;
                join_urelations(&l, &r, predicate.as_ref())
            }
            RaExpr::Union { left, right } => {
                let l = self.query(left)?;
                let r = self.query(right)?;
                l.schema.check_union_compatible(&r.schema)?;
                let mut out = l.clone();
                out.rows.extend(r.rows);
                Ok(out)
            }
        }
    }

    /// Exact confidence of every possible tuple of `rel`.
    pub fn confidences(&self, rel: &URelation) -> Vec<(Tuple, f64)> {
        self.confidence_impl(rel, |cond| probability(cond, &self.distributions))
    }

    /// Monte-Carlo confidences with additive error ≤ `epsilon` at confidence
    /// `1 − delta` (per tuple).
    pub fn confidences_approx(
        &self,
        rel: &URelation,
        epsilon: f64,
        delta: f64,
        rng: &mut impl Rng,
    ) -> Vec<(Tuple, f64)> {
        let samples = samples_for_error(epsilon, delta);
        let mut rows: Vec<(Tuple, f64)> = Vec::new();
        for (tuple, cond) in self.tuple_conditions(rel) {
            let p = probability_monte_carlo(&cond, &self.distributions, samples, rng);
            rows.push((tuple, p));
        }
        rows
    }

    fn confidence_impl(
        &self,
        rel: &URelation,
        prob: impl Fn(&Condition) -> f64,
    ) -> Vec<(Tuple, f64)> {
        self.tuple_conditions(rel)
            .into_iter()
            .map(|(tuple, cond)| {
                let p = prob(&cond);
                (tuple, p)
            })
            .collect()
    }

    /// The lineage condition of every distinct tuple.
    fn tuple_conditions(&self, rel: &URelation) -> Vec<(Tuple, Condition)> {
        let mut grouped: FxHashMap<Tuple, Vec<Condition>> = FxHashMap::default();
        let mut order = Vec::new();
        for row in &rel.rows {
            let entry = grouped.entry(row.tuple.clone());
            if let std::collections::hash_map::Entry::Vacant(_) = entry {
                order.push(row.tuple.clone());
            }
            grouped
                .entry(row.tuple.clone())
                .or_default()
                .push(row.descriptor.to_condition());
        }
        order
            .into_iter()
            .map(|t| {
                let conds = grouped.remove(&t).expect("grouped");
                (t, Condition::or_all(conds))
            })
            .collect()
    }
}

fn join_urelations(
    l: &URelation,
    r: &URelation,
    predicate: Option<&Expr>,
) -> Result<URelation, RaError> {
    let schema = l.schema.concat(&r.schema);
    let mut out = URelation::new(schema.clone());
    let bound = match predicate {
        Some(p) => Some(p.bind(&schema)?),
        None => None,
    };
    // Hash join on extractable equi-keys; descriptor merge filters the rest.
    if let Some(pred) = &bound {
        let (keys, residual) = extract_equi_keys(pred, l.schema.arity());
        if !keys.is_empty() {
            let residual = Expr::conjunction(residual);
            let mut table: FxHashMap<Tuple, Vec<&URow>> = FxHashMap::default();
            for row in &r.rows {
                let key: Tuple = keys
                    .iter()
                    .map(|k| k.right.eval(&row.tuple))
                    .collect::<Result<_, _>>()?;
                if key.has_null() {
                    continue;
                }
                table.entry(key).or_default().push(row);
            }
            for lrow in &l.rows {
                let key: Tuple = keys
                    .iter()
                    .map(|k| k.left.eval(&lrow.tuple))
                    .collect::<Result<_, _>>()?;
                if key.has_null() {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    for rrow in matches {
                        if let Some(descriptor) = lrow.descriptor.merge(&rrow.descriptor) {
                            let joined = lrow.tuple.concat(&rrow.tuple);
                            if residual.holds(&joined)? {
                                out.rows.push(URow {
                                    tuple: joined,
                                    descriptor,
                                });
                            }
                        }
                    }
                }
            }
            return Ok(out);
        }
    }
    for lrow in &l.rows {
        for rrow in &r.rows {
            let Some(descriptor) = lrow.descriptor.merge(&rrow.descriptor) else {
                continue;
            };
            let joined = lrow.tuple.concat(&rrow.tuple);
            let keep = match &bound {
                Some(p) => p.holds(&joined)?,
                None => true,
            };
            if keep {
                out.rows.push(URow {
                    tuple: joined,
                    descriptor,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ua_data::tuple;
    use ua_models::{XRelation, XTuple};

    fn sample_xdb() -> XDb {
        let mut rel = XRelation::new(Schema::qualified("r", ["id", "v"]));
        rel.push(XTuple::probabilistic(vec![
            (tuple![1i64, "a"], 0.6),
            (tuple![1i64, "b"], 0.4),
        ]));
        rel.push(XTuple::probabilistic(vec![(tuple![2i64, "a"], 1.0)]));
        rel.push(XTuple::probabilistic(vec![
            (tuple![3i64, "c"], 0.3), // optional: absence mass 0.7
        ]));
        let mut db = XDb::new();
        db.insert("r", rel);
        db
    }

    #[test]
    fn possible_answers_enumerate_alternatives() {
        let udb = UDb::from_xdb(&sample_xdb());
        let q = RaExpr::table("r").project(["v"]);
        let result = udb.query(&q).unwrap();
        assert_eq!(
            result.possible_tuples(),
            vec![tuple!["a"], tuple!["b"], tuple!["c"]]
        );
        // 4 rows: both alternatives of block 1, plus blocks 2 and 3.
        assert_eq!(result.len(), 4);
    }

    #[test]
    fn descriptor_consistency_blocks_self_join_contradictions() {
        let udb = UDb::from_xdb(&sample_xdb());
        // Self-join r.id = r.id but v <> v: only *different* blocks can pair;
        // within block 1 the two alternatives are mutually exclusive.
        let q = RaExpr::table("r").alias("x").join(
            RaExpr::table("r").alias("y"),
            Expr::named("x.id")
                .eq(Expr::named("y.id"))
                .and(Expr::named("x.v").ne(Expr::named("y.v"))),
        );
        let result = udb.query(&q).unwrap();
        assert!(
            result.is_empty(),
            "alternatives of one x-tuple are disjoint events"
        );
    }

    #[test]
    fn exact_confidences() {
        let udb = UDb::from_xdb(&sample_xdb());
        let q = RaExpr::table("r").project(["v"]);
        let result = udb.query(&q).unwrap();
        let conf: FxHashMap<Tuple, f64> = udb.confidences(&result).into_iter().collect();
        // 'a' appears via block1-alt0 (0.6) or block2 (1.0): P = 1.0.
        assert!((conf[&tuple!["a"]] - 1.0).abs() < 1e-9);
        assert!((conf[&tuple!["b"]] - 0.4).abs() < 1e-9);
        assert!((conf[&tuple!["c"]] - 0.3).abs() < 1e-9);
    }

    #[test]
    fn confidence_of_join_multiplies_independent_blocks() {
        let udb = UDb::from_xdb(&sample_xdb());
        let q = RaExpr::table("r").alias("x").join(
            RaExpr::table("r").alias("y"),
            Expr::named("x.v").eq(Expr::named("y.v")),
        );
        let result = udb.query(&q).unwrap();
        let conf: FxHashMap<Tuple, f64> = udb.confidences(&result).into_iter().collect();
        // (1,'a') ⋈ (2,'a'): P = 0.6 (block 2 is certain).
        let key = tuple![1i64, "a", 2i64, "a"];
        assert!((conf[&key] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn approximate_confidence_is_close() {
        let udb = UDb::from_xdb(&sample_xdb());
        let q = RaExpr::table("r").project(["v"]);
        let result = udb.query(&q).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let approx: FxHashMap<Tuple, f64> = udb
            .confidences_approx(&result, 0.05, 0.01, &mut rng)
            .into_iter()
            .collect();
        let exact: FxHashMap<Tuple, f64> = udb.confidences(&result).into_iter().collect();
        for (t, p) in exact {
            assert!(
                (approx[&t] - p).abs() < 0.08,
                "approx conf for {t} off: {} vs {p}",
                approx[&t]
            );
        }
    }

    #[test]
    fn confidences_match_world_enumeration() {
        let xdb = sample_xdb();
        let udb = UDb::from_xdb(&xdb);
        let inc = xdb.enumerate_worlds(1000);
        let q = RaExpr::table("r").project(["v"]);
        let u_result = udb.query(&q).unwrap();
        let conf: FxHashMap<Tuple, f64> = udb.confidences(&u_result).into_iter().collect();
        let worlds_result = inc.query(&q).unwrap();
        for (t, p) in &conf {
            let ground: f64 = (0..worlds_result.n_worlds())
                .filter(|&i| {
                    worlds_result
                        .world(i)
                        .get("result")
                        .is_some_and(|r| r.annotation(t) > 0)
                })
                .map(|i| worlds_result.probability(i))
                .sum();
            assert!(
                (p - ground).abs() < 1e-9,
                "confidence mismatch for {t}: {p} vs {ground}"
            );
        }
    }

    #[test]
    fn descriptor_merge() {
        let a = Descriptor::assign(VarId(1), 0);
        let b = Descriptor::assign(VarId(2), 1);
        let c = Descriptor::assign(VarId(1), 1);
        assert!(a.merge(&b).is_some());
        assert!(a.merge(&c).is_none());
        assert_eq!(a.merge(&a), Some(a.clone()));
        let ab = a.merge(&b).unwrap();
        assert_eq!(ab.assignments().len(), 2);
        assert_eq!(Descriptor::top().merge(&ab), Some(ab));
    }
}
