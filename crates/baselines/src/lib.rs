//! Comparison systems for the UA-DB evaluation (paper Section 11).
//!
//! Three families of baselines, all implemented from scratch on the shared
//! data layer:
//!
//! * [`libkin`] — the PTIME certain-answer *under*-approximation for
//!   databases with (labeled) nulls of Guagliardo & Libkin, generalizing
//!   Reiter's algorithm;
//! * [`maybms`] — a MayBMS-style U-relational engine computing **possible**
//!   answers via world-set descriptors, with exact (`#P`-hard, Shannon
//!   expansion) and Monte-Carlo approximate `conf()`;
//! * [`mcdb`] — an MCDB-style Monte-Carlo engine over tuple bundles whose
//!   cost scales with the sample count.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod libkin;
pub mod maybms;
pub mod mcdb;

pub use libkin::{certain_subset, certain_subset_ra, certain_subset_set};
pub use maybms::{Descriptor, UDb, URelation, URow};
pub use mcdb::{Bundle, BundleDb, BundleTable};
