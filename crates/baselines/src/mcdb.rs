//! An MCDB-style Monte-Carlo engine over tuple bundles.
//!
//! MCDB (Jampani et al.) evaluates queries over *tuple bundles*: each
//! logical tuple carries one value instantiation **per sampled world**, plus
//! a presence bitmap. Operators process all samples in one pass, so query
//! cost scales with the sample count — the paper's experiments use 10
//! samples and observe ≈10× deterministic runtime (Figure 11), which this
//! implementation reproduces by construction.
//!
//! The certain answers are *over*-approximated by the tuples present (with
//! identical values) in **every** sample; possible answers by tuples present
//! in at least one.

use rand::Rng;
use ua_data::algebra::{RaError, RaExpr};
use ua_data::expr::Expr;
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::FxHashMap;
use ua_models::{TiDb, XDb};

/// Maximum supported sample count (presence is a `u64` bitmap).
pub const MAX_SAMPLES: usize = 64;

/// One tuple bundle: per-sample values + presence bitmap.
#[derive(Clone, Debug)]
pub struct Bundle {
    /// Value instantiation per sample (length = sample count).
    pub values: Vec<Tuple>,
    /// Bit `i` set ⇔ the tuple exists in sample `i`.
    pub mask: u64,
}

/// A relation of tuple bundles.
#[derive(Clone, Debug)]
pub struct BundleTable {
    schema: Schema,
    bundles: Vec<Bundle>,
    samples: usize,
}

impl BundleTable {
    /// Empty bundle table.
    pub fn new(schema: Schema, samples: usize) -> BundleTable {
        assert!(
            (1..=MAX_SAMPLES).contains(&samples),
            "sample count must be in 1..={MAX_SAMPLES}"
        );
        BundleTable {
            schema,
            bundles: Vec::new(),
            samples,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The bundles.
    pub fn bundles(&self) -> &[Bundle] {
        &self.bundles
    }

    /// Sample count.
    pub fn samples(&self) -> usize {
        self.samples
    }

    fn full_mask(&self) -> u64 {
        if self.samples == 64 {
            u64::MAX
        } else {
            (1u64 << self.samples) - 1
        }
    }

    /// The deterministic relation of sample `i`.
    pub fn world(&self, i: usize) -> Vec<Tuple> {
        assert!(i < self.samples);
        self.bundles
            .iter()
            .filter(|b| b.mask & (1 << i) != 0)
            .map(|b| b.values[i].clone())
            .collect()
    }

    /// Tuples present with identical values in *every* sample — the MCDB
    /// estimate of the certain answers (an over-approximation in
    /// expectation: agreement across 10 samples does not prove certainty).
    pub fn estimated_certain(&self) -> Vec<Tuple> {
        let full = self.full_mask();
        let mut out: Vec<Tuple> = self
            .bundles
            .iter()
            .filter(|b| b.mask == full && b.values.iter().all(|v| v == &b.values[0]))
            .map(|b| b.values[0].clone())
            .collect();
        // Identical tuples may also arise from different bundles covering
        // complementary samples: count by value.
        let mut coverage: FxHashMap<Tuple, u64> = FxHashMap::default();
        for b in &self.bundles {
            for i in 0..self.samples {
                if b.mask & (1 << i) != 0 {
                    *coverage.entry(b.values[i].clone()).or_default() |= 1 << i;
                }
            }
        }
        for (t, mask) in coverage {
            if mask == full && !out.contains(&t) {
                out.push(t);
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Tuples present in at least one sample.
    pub fn possible(&self) -> Vec<Tuple> {
        let mut out = Vec::new();
        for b in &self.bundles {
            for i in 0..self.samples {
                if b.mask & (1 << i) != 0 {
                    out.push(b.values[i].clone());
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Monte-Carlo estimate of each possible tuple's marginal probability.
    pub fn tuple_frequencies(&self) -> Vec<(Tuple, f64)> {
        let mut coverage: FxHashMap<Tuple, u64> = FxHashMap::default();
        for b in &self.bundles {
            for i in 0..self.samples {
                if b.mask & (1 << i) != 0 {
                    *coverage.entry(b.values[i].clone()).or_default() |= 1 << i;
                }
            }
        }
        let mut out: Vec<(Tuple, f64)> = coverage
            .into_iter()
            .map(|(t, m)| (t, m.count_ones() as f64 / self.samples as f64))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// A database of bundle tables.
#[derive(Clone, Debug, Default)]
pub struct BundleDb {
    relations: std::collections::BTreeMap<String, BundleTable>,
}

impl BundleDb {
    /// Instantiate bundles from an x-DB by sampling `samples` worlds.
    pub fn from_xdb(xdb: &XDb, samples: usize, rng: &mut impl Rng) -> BundleDb {
        assert!((1..=MAX_SAMPLES).contains(&samples));
        let mut out = BundleDb::default();
        for (name, rel) in xdb.iter() {
            let mut table = BundleTable::new(rel.schema().clone(), samples);
            for xt in rel.xtuples() {
                let mut values = Vec::with_capacity(samples);
                let mut mask = 0u64;
                for i in 0..samples {
                    // Sample this block independently per world.
                    let mut roll: f64 = rng.gen();
                    let mut chosen: Option<&Tuple> = None;
                    for alt in &xt.alternatives {
                        if roll < alt.probability {
                            chosen = Some(&alt.tuple);
                            break;
                        }
                        roll -= alt.probability;
                    }
                    if chosen.is_none() && !xt.optional {
                        chosen = xt.alternatives.last().map(|a| &a.tuple);
                    }
                    match chosen {
                        Some(t) => {
                            values.push(t.clone());
                            mask |= 1 << i;
                        }
                        None => values.push(xt.alternatives[0].tuple.clone()),
                    }
                }
                if mask != 0 {
                    table.bundles.push(Bundle { values, mask });
                }
            }
            out.relations.insert(name.clone(), table);
        }
        out
    }

    /// Instantiate bundles from a TI-DB.
    pub fn from_tidb(tidb: &TiDb, samples: usize, rng: &mut impl Rng) -> BundleDb {
        assert!((1..=MAX_SAMPLES).contains(&samples));
        let mut out = BundleDb::default();
        for (name, rel) in tidb.iter() {
            let mut table = BundleTable::new(rel.schema().clone(), samples);
            for t in rel.tuples() {
                let mut mask = 0u64;
                for i in 0..samples {
                    if !t.is_optional() || rng.gen::<f64>() < t.probability {
                        mask |= 1 << i;
                    }
                }
                if mask != 0 {
                    table.bundles.push(Bundle {
                        values: vec![t.tuple.clone(); samples],
                        mask,
                    });
                }
            }
            out.relations.insert(name.clone(), table);
        }
        out
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> Option<&BundleTable> {
        self.relations.get(name)
    }

    /// Evaluate an `RA⁺` query over bundles. Every operator touches all
    /// samples, reproducing MCDB's `samples ×` cost profile.
    pub fn query(&self, query: &RaExpr) -> Result<BundleTable, RaError> {
        match query {
            RaExpr::Table(name) => self
                .relations
                .get(name)
                .cloned()
                .ok_or_else(|| RaError::UnknownTable(name.clone())),
            RaExpr::Alias { input, name } => {
                let rel = self.query(input)?;
                Ok(BundleTable {
                    schema: rel.schema.with_qualifier(name),
                    ..rel
                })
            }
            RaExpr::Select { input, predicate } => {
                let rel = self.query(input)?;
                let bound = predicate.bind(&rel.schema)?;
                let mut out = BundleTable::new(rel.schema.clone(), rel.samples);
                for b in &rel.bundles {
                    let mut mask = 0u64;
                    for i in 0..rel.samples {
                        if b.mask & (1 << i) != 0 && bound.holds(&b.values[i])? {
                            mask |= 1 << i;
                        }
                    }
                    if mask != 0 {
                        out.bundles.push(Bundle {
                            values: b.values.clone(),
                            mask,
                        });
                    }
                }
                Ok(out)
            }
            RaExpr::Project { input, columns } => {
                let rel = self.query(input)?;
                let bound: Vec<Expr> = columns
                    .iter()
                    .map(|c| c.expr.bind(&rel.schema))
                    .collect::<Result<_, _>>()?;
                let schema = Schema::new(columns.iter().map(|c| c.column.clone()).collect());
                let mut out = BundleTable::new(schema, rel.samples);
                for b in &rel.bundles {
                    let values: Vec<Tuple> = b
                        .values
                        .iter()
                        .map(|t| {
                            bound
                                .iter()
                                .map(|e| e.eval(t))
                                .collect::<Result<Tuple, _>>()
                        })
                        .collect::<Result<_, _>>()?;
                    out.bundles.push(Bundle {
                        values,
                        mask: b.mask,
                    });
                }
                Ok(out)
            }
            RaExpr::Join {
                left,
                right,
                predicate,
            } => {
                let l = self.query(left)?;
                let r = self.query(right)?;
                join_bundles(&l, &r, predicate.as_ref())
            }
            RaExpr::Union { left, right } => {
                let l = self.query(left)?;
                let r = self.query(right)?;
                l.schema.check_union_compatible(&r.schema)?;
                let mut out = l.clone();
                out.bundles.extend(r.bundles);
                Ok(out)
            }
        }
    }
}

/// Join two bundle tables.
///
/// MCDB partitions tuple bundles on join keys when those keys are constant
/// across samples (the common case: keys are rarely the uncertain
/// attributes); value-varying keys fall back to pairwise evaluation. We do
/// the same: a hash join on sample-0 keys when every bundle's key agrees
/// across its samples, else nested loops.
fn join_bundles(
    l: &BundleTable,
    r: &BundleTable,
    predicate: Option<&Expr>,
) -> Result<BundleTable, RaError> {
    use ua_data::algebra::extract_equi_keys;
    let schema = l.schema.concat(&r.schema);
    let bound = match predicate {
        Some(p) => Some(p.bind(&schema)?),
        None => None,
    };
    let mut out = BundleTable::new(schema, l.samples);

    // The per-pair worker: evaluates the full predicate sample-by-sample.
    fn emit_pair(
        lb: &Bundle,
        rb: &Bundle,
        samples: usize,
        bound: Option<&Expr>,
        out: &mut BundleTable,
    ) -> Result<(), RaError> {
        let both = lb.mask & rb.mask;
        if both == 0 {
            return Ok(());
        }
        let mut mask = 0u64;
        let mut values = Vec::with_capacity(samples);
        for i in 0..samples {
            let joined = lb.values[i].concat(&rb.values[i]);
            if both & (1 << i) != 0 {
                let keep = match bound {
                    Some(p) => p.holds(&joined)?,
                    None => true,
                };
                if keep {
                    mask |= 1 << i;
                }
            }
            values.push(joined);
        }
        if mask != 0 {
            out.bundles.push(Bundle { values, mask });
        }
        Ok(())
    }

    if let Some(pred) = &bound {
        let (keys, _residual) = extract_equi_keys(pred, l.schema.arity());
        if !keys.is_empty() {
            // Keys must be sample-invariant for partitioning to be sound.
            let key_of = |b: &Bundle, exprs: &[&Expr]| -> Result<Option<Tuple>, RaError> {
                let first: Tuple = exprs
                    .iter()
                    .map(|e| e.eval(&b.values[0]))
                    .collect::<Result<_, _>>()?;
                for v in &b.values[1..] {
                    let k: Tuple = exprs.iter().map(|e| e.eval(v)).collect::<Result<_, _>>()?;
                    if k != first {
                        return Ok(None);
                    }
                }
                Ok(Some(first))
            };
            let left_exprs: Vec<&Expr> = keys.iter().map(|k| &k.left).collect();
            let right_exprs: Vec<&Expr> = keys.iter().map(|k| &k.right).collect();
            let mut all_constant = true;
            let mut table: FxHashMap<Tuple, Vec<&Bundle>> = FxHashMap::default();
            for rb in &r.bundles {
                match key_of(rb, &right_exprs)? {
                    Some(k) if !k.has_null() => table.entry(k).or_default().push(rb),
                    Some(_) => {}
                    None => {
                        all_constant = false;
                        break;
                    }
                }
            }
            if all_constant {
                for lb in &l.bundles {
                    match key_of(lb, &left_exprs)? {
                        Some(k) => {
                            if let Some(matches) = table.get(&k) {
                                for rb in matches {
                                    emit_pair(lb, rb, l.samples, bound.as_ref(), &mut out)?;
                                }
                            }
                        }
                        None => {
                            all_constant = false;
                            break;
                        }
                    }
                }
                if all_constant {
                    return Ok(out);
                }
                // A value-varying left key appeared midway: restart pairwise
                // (out may hold partial results; rebuild).
                out = BundleTable::new(l.schema.concat(&r.schema), l.samples);
            }
        }
    }

    for lb in &l.bundles {
        for rb in &r.bundles {
            emit_pair(lb, rb, l.samples, bound.as_ref(), &mut out)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ua_data::tuple;
    use ua_models::{XRelation, XTuple};

    fn sample_xdb() -> XDb {
        let mut rel = XRelation::new(Schema::qualified("r", ["id", "v"]));
        rel.push(XTuple::total(vec![tuple![1i64, "a"]]));
        rel.push(XTuple::probabilistic(vec![
            (tuple![2i64, "b"], 0.5),
            (tuple![2i64, "c"], 0.5),
        ]));
        let mut db = XDb::new();
        db.insert("r", rel);
        db
    }

    #[test]
    fn certain_tuples_survive_all_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        let bdb = BundleDb::from_xdb(&sample_xdb(), 10, &mut rng);
        let q = RaExpr::table("r").project(["id"]);
        let result = bdb.query(&q).unwrap();
        let certain = result.estimated_certain();
        assert!(certain.contains(&tuple![1i64]));
        assert!(
            certain.contains(&tuple![2i64]),
            "projection agrees across alternatives"
        );
    }

    #[test]
    fn uncertain_values_split_across_samples() {
        let mut rng = StdRng::seed_from_u64(2);
        let bdb = BundleDb::from_xdb(&sample_xdb(), 16, &mut rng);
        let q = RaExpr::table("r").project(["v"]);
        let result = bdb.query(&q).unwrap();
        let certain = result.estimated_certain();
        assert!(certain.contains(&tuple!["a"]));
        // 'b' / 'c' alone survive all 16 samples with prob 2·(1/2)^16 ≈ 0.003.
        assert!(!certain.contains(&tuple!["b"]) || !certain.contains(&tuple!["c"]));
        let possible = result.possible();
        assert!(possible.len() >= 2);
    }

    #[test]
    fn selection_masks_per_sample() {
        let mut rng = StdRng::seed_from_u64(3);
        let bdb = BundleDb::from_xdb(&sample_xdb(), 32, &mut rng);
        let q = RaExpr::table("r").select(Expr::named("v").eq(Expr::lit("b")));
        let result = bdb.query(&q).unwrap();
        let freqs = result.tuple_frequencies();
        if let Some((_, f)) = freqs.first() {
            assert!((0.2..=0.8).contains(f), "P('b') ≈ 0.5, estimated {f}");
        }
    }

    #[test]
    fn join_costs_scale_with_samples() {
        let mut rng = StdRng::seed_from_u64(4);
        let bdb = BundleDb::from_xdb(&sample_xdb(), 8, &mut rng);
        let q = RaExpr::table("r").alias("x").join(
            RaExpr::table("r").alias("y"),
            Expr::named("x.id").eq(Expr::named("y.id")),
        );
        let result = bdb.query(&q).unwrap();
        // Every surviving bundle still carries 8 value instantiations.
        for b in result.bundles() {
            assert_eq!(b.values.len(), 8);
        }
        assert!(result
            .estimated_certain()
            .iter()
            .any(|t| t.get(0) == Some(&ua_data::Value::Int(1))));
    }

    #[test]
    fn tidb_bundles() {
        use ua_models::{TiRelation, TiTuple};
        let mut rel = TiRelation::new(Schema::qualified("t", ["a"]));
        rel.push(TiTuple::certain(tuple![1i64]));
        rel.push(TiTuple::with_probability(tuple![2i64], 0.5));
        let mut tidb = TiDb::new();
        tidb.insert("t", rel);
        let mut rng = StdRng::seed_from_u64(5);
        let bdb = BundleDb::from_tidb(&tidb, 20, &mut rng);
        let q = RaExpr::table("t").project(["a"]);
        let result = bdb.query(&q).unwrap();
        let certain = result.estimated_certain();
        assert!(certain.contains(&tuple![1i64]));
        let freqs: FxHashMap<Tuple, f64> = result.tuple_frequencies().into_iter().collect();
        assert!((freqs[&tuple![2i64]] - 0.5).abs() < 0.3);
    }
}
