//! The bag encoding `Enc` / `Enc⁻¹` of UA-relations (paper Definition 8).
//!
//! Relational DBMSes represent a bag tuple with multiplicity `n` as `n` row
//! copies. The paper encodes an `ℕ_UA`-relation `R` as an ordinary bag
//! relation `R'` with one extra boolean attribute `C`:
//!
//! * `(t, 1)` with multiplicity `h_cert(R(t)) = c`  — the certain copies;
//! * `(t, 0)` with multiplicity `h_det(R(t)) ⊖ c = d − c` — the remaining,
//!   uncertain copies.
//!
//! `Enc⁻¹` recovers `R(t) = [R'(t,1), R'(t,0) + R'(t,1)]`. The encoding
//! generalizes to any semiring with a monus, which is how it is implemented
//! here. Theorem 7 (tested in `ua-engine` and the workspace integration
//! tests) states that rewritten queries over the encoding compute exactly
//! the UA-semantics of the original query.

use ua_data::relation::{Database, Relation};
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_semiring::pair::Ua;
use ua_semiring::{Monus, NaturalOrder};

/// Name of the encoding's certainty attribute (the paper's `C`).
pub const UA_LABEL_COLUMN: &str = "ua_c";

/// `Enc`: encode a `K²`-relation as a K-relation with an extra `C` column.
pub fn encode_relation<K: Monus>(rel: &Relation<Ua<K>>) -> Relation<K> {
    let schema = rel.schema().with_column(UA_LABEL_COLUMN);
    let mut out = Relation::new(schema);
    for (t, ua) in rel.iter() {
        let certain = ua.cert.clone();
        let uncertain = ua.det.monus(&ua.cert);
        if !certain.is_zero() {
            out.insert(t.push(Value::Int(1)), certain);
        }
        if !uncertain.is_zero() {
            out.insert(t.push(Value::Int(0)), uncertain);
        }
    }
    out
}

/// `Enc⁻¹`: decode an encoded relation back into a `K²`-relation.
///
/// # Panics
/// Panics when the last column holds anything other than `0`/`1`, or when a
/// decoded annotation would be ill-formed (`c ⋠ d`) — both indicate data
/// corruption rather than recoverable conditions.
pub fn decode_relation<K: Monus + NaturalOrder>(rel: &Relation<K>) -> Relation<Ua<K>> {
    let arity = rel.schema().arity();
    assert!(arity > 0, "encoded relation must have the C column");
    let base_cols: Vec<usize> = (0..arity - 1).collect();
    let base_schema = ua_data::schema::Schema::new(rel.schema().columns()[..arity - 1].to_vec());
    let mut out: Relation<Ua<K>> = Relation::new(base_schema);
    for (t, k) in rel.iter() {
        let marker = t.get(arity - 1).expect("non-empty tuple");
        let base: Tuple = t.project(&base_cols);
        let existing = out.annotation(&base);
        let updated = match marker {
            Value::Int(1) => Ua::new(existing.cert.plus(k), existing.det.plus(k)),
            Value::Int(0) => Ua::new(existing.cert, existing.det.plus(k)),
            other => panic!("invalid certainty marker {other}"),
        };
        out.set(base, updated);
    }
    for (t, ua) in out.iter() {
        assert!(
            ua.cert.natural_leq(&ua.det),
            "decoded ill-formed annotation for {t}"
        );
    }
    out
}

/// `Enc` applied to every relation of a database.
pub fn encode_database<K: Monus>(db: &Database<Ua<K>>) -> Database<K> {
    let mut out = Database::new();
    for (name, rel) in db.iter() {
        out.insert(name.clone(), encode_relation(rel));
    }
    out
}

/// `Enc⁻¹` applied to every relation of a database.
pub fn decode_database<K: Monus + NaturalOrder>(db: &Database<K>) -> Database<Ua<K>> {
    let mut out = Database::new();
    for (name, rel) in db.iter() {
        out.insert(name.clone(), decode_relation(rel));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::schema::Schema;
    use ua_data::tuple;

    fn sample() -> Relation<Ua<u64>> {
        Relation::from_annotated(
            Schema::qualified("r", ["a"]),
            vec![
                (tuple![1i64], Ua::new(2u64, 5)), // 2 certain, 3 uncertain copies
                (tuple![2i64], Ua::new(0u64, 3)), // fully uncertain
                (tuple![3i64], Ua::new(4u64, 4)), // fully certain
            ],
        )
    }

    #[test]
    fn definition8_encoding() {
        let enc = encode_relation(&sample());
        assert_eq!(enc.annotation(&tuple![1i64, 1i64]), 2);
        assert_eq!(enc.annotation(&tuple![1i64, 0i64]), 3);
        assert_eq!(enc.annotation(&tuple![2i64, 0i64]), 3);
        assert_eq!(enc.annotation(&tuple![2i64, 1i64]), 0);
        assert_eq!(enc.annotation(&tuple![3i64, 1i64]), 4);
        assert_eq!(enc.annotation(&tuple![3i64, 0i64]), 0);
        assert_eq!(enc.schema().arity(), 2);
    }

    #[test]
    fn round_trip() {
        let original = sample();
        let decoded = decode_relation(&encode_relation(&original));
        assert_eq!(original, decoded);
    }

    #[test]
    fn set_semantics_encoding() {
        // The encoding works for 𝔹 too (monus: a ⊖ b = a ∧ ¬b).
        let rel: Relation<Ua<bool>> = Relation::from_annotated(
            Schema::qualified("r", ["a"]),
            vec![
                (tuple![1i64], Ua::new(true, true)),
                (tuple![2i64], Ua::new(false, true)),
            ],
        );
        let enc = encode_relation(&rel);
        assert!(enc.annotation(&tuple![1i64, 1i64]));
        assert!(!enc.annotation(&tuple![1i64, 0i64]));
        assert!(enc.annotation(&tuple![2i64, 0i64]));
        assert_eq!(decode_relation(&enc), rel);
    }

    #[test]
    fn database_round_trip() {
        let mut db: Database<Ua<u64>> = Database::new();
        db.insert("r", sample());
        let back = decode_database(&encode_database(&db));
        assert_eq!(db, back);
    }

    #[test]
    #[should_panic(expected = "invalid certainty marker")]
    fn bad_marker_panics() {
        let rel: Relation<u64> = Relation::from_annotated(
            Schema::qualified("r", ["a", UA_LABEL_COLUMN]),
            vec![(tuple![1i64, 7i64], 1u64)],
        );
        let _ = decode_relation(&rel);
    }
}
