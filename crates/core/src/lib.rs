//! **Uncertainty Annotated Databases** — the paper's primary contribution.
//!
//! A UA-DB wraps one distinguished possible world (typically the best-guess
//! world that practitioners already query) and labels its tuples with a
//! c-sound under-approximation of their certain annotations, sandwiching the
//! certain answers:
//!
//! ```text
//! labeled certain  ⊆  certain answers  ⊆  best-guess world
//! ```
//!
//! * [`uadb::UaDb`] — `K²`-annotated databases, construction from TI-DBs,
//!   x-DBs and (P)C-tables, querying (closed under `RA⁺`, Theorem 4), and
//!   test oracles for the bound-preservation theorems;
//! * [`encoding`] — the bag encoding `Enc`/`Enc⁻¹` of Definition 8 used by
//!   the relational implementation;
//! * [`rewrite`] — the query rewriting `⟦·⟧_UA` of Figures 8/9, correct by
//!   Theorem 7 (tested).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod encoding;
pub mod rewrite;
pub mod uadb;

pub use encoding::{
    decode_database, decode_relation, encode_database, encode_relation, UA_LABEL_COLUMN,
};
pub use rewrite::{expr_mentions_marker, rewrite_ua};
pub use uadb::{exact_certain_answers_ctable, UaDb};
