//! Uncertainty Annotated Databases.
//!
//! A [`UaDb`] annotates every tuple of one distinguished possible world with
//! a pair `[c, d]` from the UA-semiring `K² ` (paper Section 5):
//!
//! * `d = D(t)` — the tuple's annotation in the best-guess world `D`
//!   (an over-approximation of the certain annotation, because every world
//!   is a superset of the certain tuples);
//! * `c = L(t)` — a c-sound labeling (an under-approximation).
//!
//! Because `h_cert` and `h_det` are semiring homomorphisms and every `RA⁺`
//! operator is built from `⊕`/`⊗` alone, queries act on the two components
//! independently; combined with the superadditivity of `cert_K` this yields
//! the paper's central result (Theorem 4): **queries preserve the sandwich**
//! `Q(L)(t) ⪯ cert_K(Q(𝒟), t) ⪯ Q(D)(t)`.

use ua_conditions::Solver;
use ua_data::algebra::{eval, RaError, RaExpr};
use ua_data::relation::{Database, Relation};
use ua_data::tuple::Tuple;
use ua_incomplete::IncompleteDb;
use ua_models::{CDb, TiDb, XDb};
use ua_semiring::hom::{h_cert, h_det};
use ua_semiring::pair::Ua;
use ua_semiring::{LSemiring, NaturalOrder, Semiring};

/// A database annotated with `[certain, best-guess]` pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct UaDb<K: Semiring> {
    db: Database<Ua<K>>,
}

impl<K: Semiring> UaDb<K> {
    /// Wrap an existing `K²`-annotated database.
    pub fn from_database(db: Database<Ua<K>>) -> UaDb<K> {
        UaDb { db }
    }

    /// Construct from a best-guess world `D` and a labeling `L`
    /// (paper Section 5.2: `D_UA(t) = [L(t), D(t)]`).
    ///
    /// # Panics
    /// Panics when the labeling claims certainty `L(t) ⋠ D(t)` for some
    /// tuple — such a labeling cannot be c-sound for any incomplete database
    /// with best-guess world `D`, so it indicates a bug at the call site.
    pub fn from_parts(world: &Database<K>, labeling: &Database<K>) -> UaDb<K>
    where
        K: NaturalOrder,
    {
        let mut out = Database::new();
        for (name, world_rel) in world.iter() {
            let mut rel: Relation<Ua<K>> = Relation::new(world_rel.schema().clone());
            for (t, d) in world_rel.iter() {
                let c = labeling
                    .get(name)
                    .map(|l| l.annotation(t))
                    .unwrap_or_else(K::zero);
                assert!(
                    c.natural_leq(d),
                    "labeling exceeds the best-guess annotation for {t} in {name}"
                );
                rel.set(t.clone(), Ua::new(c, d.clone()));
            }
            out.insert(name.clone(), rel);
        }
        UaDb { db: out }
    }

    /// The underlying `K²` database.
    pub fn database(&self) -> &Database<Ua<K>> {
        &self.db
    }

    /// A relation of the UA-DB.
    pub fn relation(&self, name: &str) -> Option<&Relation<Ua<K>>> {
        self.db.get(name)
    }

    /// `h_det`: recover the best-guess world. Backwards compatibility with
    /// best-guess query processing is exactly `h_det(Q(D_UA)) = Q(h_det(D_UA))`.
    pub fn world(&self) -> Database<K> {
        self.db.map_annotations(&h_det::<K>)
    }

    /// `h_cert`: recover the labeling (the under-approximation).
    pub fn labeling(&self) -> Database<K> {
        self.db.map_annotations(&h_cert::<K>)
    }

    /// Evaluate an `RA⁺` query with standard K-relational semantics over
    /// `K²` (paper Section 5.3). The result is again a UA-DB — UA-DBs are
    /// closed under queries, unlike certain answers.
    pub fn query(&self, query: &RaExpr) -> Result<Relation<Ua<K>>, RaError> {
        eval(query, &self.db)
    }

    /// Verify the defining bounds against a reference incomplete database
    /// (test oracle for Theorem 4): for every tuple,
    /// `h_cert(t) ⪯ cert_K(𝒟, t)` and the `det` component matches world
    /// `world_index` of `𝒟`.
    pub fn bounds_hold_for(&self, incomplete: &IncompleteDb<K>, world_index: usize) -> bool
    where
        K: LSemiring,
    {
        self.db.iter().all(|(name, rel)| {
            let world = incomplete.world(world_index);
            // Support of both the UA-DB and the chosen world must agree on d.
            let world_rel = world.get(name);
            let det_matches = rel.iter().all(|(t, ua)| {
                world_rel.map(|r| r.annotation(t)).unwrap_or_else(K::zero) == ua.det
            }) && world_rel
                .is_none_or(|r| r.iter().all(|(t, d)| rel.annotation(t).det == *d));
            let cert_bounded = rel
                .iter()
                .all(|(t, ua)| ua.cert.natural_leq(&incomplete.certain_annotation(name, t)));
            det_matches && cert_bounded
        })
    }

    /// The tuples of relation `name` labeled fully certain (`c = d`).
    pub fn certain_tuples(&self, name: &str) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self
            .db
            .get(name)
            .map(|rel| {
                rel.iter()
                    .filter(|(_, ua)| ua.is_fully_certain())
                    .map(|(t, _)| t.clone())
                    .collect()
            })
            .unwrap_or_default();
        out.sort();
        out
    }
}

impl UaDb<bool> {
    /// Build a set-semantics UA-DB from a TI-DB using `label_TIDB` and the
    /// `P ≥ 0.5` best-guess world (paper Sections 4.1–4.2).
    pub fn from_tidb(tidb: &TiDb) -> UaDb<bool> {
        UaDb::from_parts(&tidb.best_guess_world(), &tidb.labeling())
    }

    /// Build a set-semantics UA-DB from a C-database using `label_C-table`
    /// and the (PC-table argmax) best-guess world.
    pub fn from_cdb(cdb: &CDb) -> UaDb<bool> {
        // The labeling may mark tuples certain that the BGW instantiation
        // produced through *different* rows; intersect with the BGW to keep
        // the encoding well-formed (certain tuples are in every world, so
        // they are always in the BGW — Theorem 2 guarantees the labeling
        // only contains certain tuples).
        UaDb::from_parts(&cdb.best_guess_world(), &cdb.labeling())
    }
}

impl UaDb<u64> {
    /// Build a bag-semantics UA-DB from an x-DB / BI-DB using `label_xDB`
    /// and the per-block argmax best-guess world.
    pub fn from_xdb(xdb: &XDb) -> UaDb<u64> {
        UaDb::from_parts(&xdb.best_guess_world(), &xdb.labeling())
    }
}

/// Exact certain answers of a query over a C-database, for comparison
/// against the UA-DB approximation (paper Figure 10). Re-exported here so
/// benchmark code can treat `ua-core` as the façade for both systems.
pub fn exact_certain_answers_ctable(
    query: &RaExpr,
    cdb: &CDb,
    solver: &Solver,
) -> Result<Vec<Tuple>, ua_models::CtError> {
    ua_models::certain_answers(query, cdb, solver).map(|(_, certain)| certain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::schema::Schema;
    use ua_data::tuple;

    use ua_data::Expr;
    use ua_models::{TiRelation, TiTuple, XRelation, XTuple};

    /// The paper's running example as an x-DB (Figures 2/3), reduced to the
    /// post-join LOC table: each address's locale/state options.
    fn example_xdb() -> XDb {
        let mut rel = XRelation::new(Schema::qualified("loc", ["id", "locale", "state"]));
        rel.push(XTuple::total(vec![tuple![1i64, "Lasalle", "NY"]]));
        rel.push(XTuple::probabilistic(vec![
            (tuple![2i64, "Tucson", "AZ"], 0.6),
            (tuple![2i64, "Grant Ferry", "NY"], 0.4),
        ]));
        rel.push(XTuple::probabilistic(vec![
            (tuple![3i64, "Kingsley", "NY"], 0.5),
            (tuple![3i64, "Kingsley", "NY"], 0.5),
        ]));
        rel.push(XTuple::total(vec![tuple![4i64, "Kensington", "NY"]]));
        XDb::new().tap(|db| db.insert("loc", rel))
    }

    trait Tap: Sized {
        fn tap(mut self, f: impl FnOnce(&mut Self)) -> Self {
            f(&mut self);
            self
        }
    }
    impl<T> Tap for T {}

    #[test]
    fn figure3d_annotations() {
        // Figure 3d: addresses 1 and 4 certain; 2 uncertain; 3 misclassified
        // as uncertain (its two alternatives merge after dedup here, so our
        // x-tuple actually becomes certain — use distinct coordinates to
        // keep the paper's misclassification).
        let ua = UaDb::from_xdb(&example_xdb());
        let certain = ua.certain_tuples("loc");
        assert!(certain.contains(&tuple![1i64, "Lasalle", "NY"]));
        assert!(certain.contains(&tuple![4i64, "Kensington", "NY"]));
        assert!(!certain.contains(&tuple![2i64, "Tucson", "AZ"]));
    }

    #[test]
    fn misclassified_certain_answer_still_present() {
        // Address 3 with two *distinct-coordinate* alternatives projecting
        // to the same locale: certain in reality, labeled uncertain —
        // but present in the UA-DB (the sandwich property).
        let mut rel = XRelation::new(Schema::qualified("loc", ["id", "locale", "lat"]));
        rel.push(XTuple::total(vec![
            tuple![3i64, "Kingsley", 42.91],
            tuple![3i64, "Kingsley", 42.90],
        ]));
        let mut xdb = XDb::new();
        xdb.insert("loc", rel);
        let ua = UaDb::from_xdb(&xdb);
        let q = RaExpr::table("loc").project(["id", "locale"]);
        let result = ua.query(&q).unwrap();
        let t = tuple![3i64, "Kingsley"];
        let ann = result.annotation(&t);
        assert_eq!(ann.det, 1, "the tuple is present (BGQP compatibility)");
        assert_eq!(ann.cert, 0, "…but conservatively labeled uncertain");
        // Ground truth: it *is* certain.
        let inc = xdb.enumerate_worlds(100);
        let q_result = inc.query(&q).unwrap();
        assert_eq!(q_result.certain_annotation("result", &t), 1);
    }

    #[test]
    fn theorem4_bounds_preserved_by_queries() {
        let xdb = example_xdb();
        let inc = xdb.enumerate_worlds(1000);
        let ua = UaDb::from_xdb(&xdb);

        let queries = vec![
            RaExpr::table("loc").select(Expr::named("state").eq(Expr::lit("NY"))),
            RaExpr::table("loc").project(["locale", "state"]),
            RaExpr::table("loc")
                .select(Expr::named("state").eq(Expr::lit("NY")))
                .project(["locale"]),
            RaExpr::table("loc")
                .project(["state"])
                .union(RaExpr::table("loc").project(["state"])),
            RaExpr::table("loc").alias("l").join(
                RaExpr::table("loc").alias("r"),
                Expr::named("l.state").eq(Expr::named("r.state")),
            ),
        ];

        for q in queries {
            let ua_result = ua.query(&q).unwrap();
            let inc_result = inc.query(&q).unwrap();
            for (t, ann) in ua_result.iter() {
                let cert = inc_result.certain_annotation("result", t);
                assert!(
                    ann.cert <= cert,
                    "c-soundness violated for {t} under {q}: {} > {cert}",
                    ann.cert
                );
                // Every world dominates the certain annotation, and ann.det
                // is the result's annotation in the BGW result world.
                assert!(cert <= ann.det, "over-approximation violated for {t}");
            }
        }
    }

    #[test]
    fn hdet_recovers_bgqp() {
        // Backwards compatibility: h_det(Q(D_UA)) = Q(BGW).
        let xdb = example_xdb();
        let ua = UaDb::from_xdb(&xdb);
        let q = RaExpr::table("loc")
            .select(Expr::named("state").eq(Expr::lit("NY")))
            .project(["locale"]);
        let via_ua = ua.query(&q).unwrap().map_annotations(&h_det::<u64>);
        let direct = eval(&q, &xdb.best_guess_world()).unwrap();
        assert_eq!(via_ua, direct);
    }

    #[test]
    fn tidb_roundtrip() {
        let mut rel = TiRelation::new(Schema::qualified("r", ["a"]));
        rel.push(TiTuple::certain(tuple![1i64]));
        rel.push(TiTuple::with_probability(tuple![2i64], 0.8));
        rel.push(TiTuple::with_probability(tuple![3i64], 0.1));
        let mut tidb = TiDb::new();
        tidb.insert("r", rel);
        let ua = UaDb::from_tidb(&tidb);
        let r = ua.relation("r").unwrap();
        assert_eq!(r.annotation(&tuple![1i64]), Ua::new(true, true));
        assert_eq!(r.annotation(&tuple![2i64]), Ua::new(false, true));
        assert!(!r.contains(&tuple![3i64]));
        let inc = tidb.enumerate_worlds(16);
        // TI-DB labels are c-correct, so fully-certain tuples are exactly
        // the certain ones.
        assert_eq!(ua.certain_tuples("r"), vec![tuple![1i64]]);
        assert!(inc.certain_annotation("r", &tuple![1i64]));
    }

    #[test]
    fn bounds_hold_oracle() {
        let xdb = example_xdb();
        let inc = xdb.enumerate_worlds(1000);
        let ua = UaDb::from_xdb(&xdb);
        let bgw = xdb.best_guess_world();
        let bgw_index = (0..inc.n_worlds())
            .find(|&i| inc.world(i).get("loc").unwrap() == bgw.get("loc").unwrap())
            .expect("BGW is one of the worlds");
        assert!(ua.bounds_hold_for(&inc, bgw_index));
    }

    #[test]
    #[should_panic(expected = "labeling exceeds")]
    fn ill_formed_labeling_rejected() {
        let mut world: Database<u64> = Database::new();
        world.insert(
            "r",
            Relation::from_annotated(Schema::qualified("r", ["a"]), vec![(tuple![1i64], 1u64)]),
        );
        let mut labeling: Database<u64> = Database::new();
        labeling.insert(
            "r",
            Relation::from_annotated(Schema::qualified("r", ["a"]), vec![(tuple![1i64], 5u64)]),
        );
        let _ = UaDb::from_parts(&world, &labeling);
    }
}
