//! The UA query rewriting `⟦·⟧_UA` (paper Figures 8/9, Theorem 7).
//!
//! Given an `RA⁺` query over `ℕ_UA`-relations, [`rewrite_ua`] produces an
//! equivalent query over the *encoded* relations (extra certainty column
//! `C`; see [`crate::encoding`]):
//!
//! ```text
//! ⟦R⟧            = R                         (already encoded)
//! ⟦σ_θ(Q)⟧       = σ_θ(⟦Q⟧)
//! ⟦π_A(Q)⟧       = π_{A,C}(⟦Q⟧)
//! ⟦Q₁ ⋈_θ Q₂⟧    = π_{Sch(Q₁⋈Q₂), min(Q₁.C, Q₂.C) → C}(⟦Q₁⟧ ⋈_θ ⟦Q₂⟧)
//! ⟦Q₁ ∪ Q₂⟧      = ⟦Q₁⟧ ∪ ⟦Q₂⟧
//! ```
//!
//! Theorem 7 — `Q(D_UA) = Enc⁻¹(⟦Q⟧_UA(Enc(D_UA)))` — is verified by the
//! tests of this module and property tests at the workspace level.
//!
//! Invariant maintained by the rewriting: every rewritten (sub)query has
//! exactly one certainty column, named [`UA_LABEL_COLUMN`], in its **last**
//! position, while all other columns keep their original names and
//! qualifiers (so user predicates bind unchanged).

use crate::encoding::UA_LABEL_COLUMN;
use ua_data::algebra::{ProjColumn, RaError, RaExpr};
use ua_data::expr::Expr;
use ua_data::schema::{Column, Schema, SchemaError};

/// Rewrite a UA query into a query over the encoded database.
///
/// `lookup` must return the schema of the *encoded* base tables (i.e.
/// including their `C` column in last position).
pub fn rewrite_ua(
    query: &RaExpr,
    lookup: &dyn Fn(&str) -> Option<Schema>,
) -> Result<RaExpr, RaError> {
    match query {
        RaExpr::Table(name) => {
            let schema = lookup(name).ok_or_else(|| RaError::UnknownTable(name.clone()))?;
            check_encoded(&schema, name)?;
            Ok(RaExpr::Table(name.clone()))
        }
        RaExpr::Alias { input, name } => Ok(RaExpr::Alias {
            input: Box::new(rewrite_ua(input, lookup)?),
            name: name.clone(),
        }),
        RaExpr::Select { input, predicate } => {
            reject_marker_reference(predicate)?;
            Ok(RaExpr::Select {
                input: Box::new(rewrite_ua(input, lookup)?),
                predicate: predicate.clone(),
            })
        }
        RaExpr::Project { input, columns } => {
            for c in columns {
                if c.name().eq_ignore_ascii_case(UA_LABEL_COLUMN) {
                    return Err(RaError::Schema(SchemaError::AmbiguousColumn(
                        UA_LABEL_COLUMN.to_string(),
                    )));
                }
                reject_marker_reference(&c.expr)?;
            }
            let mut out_columns = columns.clone();
            out_columns.push(ProjColumn::with_column(
                Expr::named(UA_LABEL_COLUMN),
                Column::unqualified(UA_LABEL_COLUMN),
            ));
            Ok(RaExpr::Project {
                input: Box::new(rewrite_ua(input, lookup)?),
                columns: out_columns,
            })
        }
        RaExpr::Join {
            left,
            right,
            predicate,
        } => {
            if let Some(p) = predicate {
                reject_marker_reference(p)?;
            }
            let l = rewrite_ua(left, lookup)?;
            let r = rewrite_ua(right, lookup)?;
            let ls = l.schema_with(lookup)?;
            let rs = r.schema_with(lookup)?;
            let la = ls.arity();
            let ra = rs.arity();
            let joined = RaExpr::Join {
                left: Box::new(l),
                right: Box::new(r),
                predicate: predicate.clone(),
            };
            // Keep all non-C columns (with their qualifiers), then combine
            // the two C markers with min — a certain join result needs both
            // inputs certain.
            let mut columns: Vec<ProjColumn> = Vec::with_capacity(la + ra - 1);
            for (i, col) in ls.columns().iter().enumerate().take(la - 1) {
                columns.push(ProjColumn::with_column(Expr::Col(i), col.clone()));
            }
            for (j, col) in rs.columns().iter().enumerate().take(ra - 1) {
                columns.push(ProjColumn::with_column(Expr::Col(la + j), col.clone()));
            }
            columns.push(ProjColumn::with_column(
                Expr::Col(la - 1).least(Expr::Col(la + ra - 1)),
                Column::unqualified(UA_LABEL_COLUMN),
            ));
            Ok(RaExpr::Project {
                input: Box::new(joined),
                columns,
            })
        }
        RaExpr::Union { left, right } => Ok(RaExpr::Union {
            left: Box::new(rewrite_ua(left, lookup)?),
            right: Box::new(rewrite_ua(right, lookup)?),
        }),
    }
}

/// Whether a (named, pre-binding) expression references the engine-managed
/// certainty marker [`UA_LABEL_COLUMN`], under any qualifier.
///
/// The marker is bookkeeping of the encoded representation, not part of the
/// user-visible schema: both executors reject queries that mention it, so
/// the row path (where the marker is a real column of the encoded tables)
/// and the vectorized path (where it lives in the label bitmaps) stay
/// observably identical.
pub fn expr_mentions_marker(expr: &Expr) -> bool {
    match expr {
        Expr::Named(name) => {
            let base = name.rsplit_once('.').map_or(name.as_str(), |(_, b)| b);
            base.eq_ignore_ascii_case(UA_LABEL_COLUMN)
        }
        Expr::Col(_) | Expr::Lit(_) => false,
        Expr::Cmp(_, a, b)
        | Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::Arith(_, a, b)
        | Expr::Least(a, b) => expr_mentions_marker(a) || expr_mentions_marker(b),
        Expr::Not(a) | Expr::IsNull(a) => expr_mentions_marker(a),
        Expr::Case {
            branches,
            otherwise,
        } => {
            branches
                .iter()
                .any(|(c, v)| expr_mentions_marker(c) || expr_mentions_marker(v))
                || otherwise.as_deref().is_some_and(expr_mentions_marker)
        }
        Expr::Between(e, lo, hi) => {
            expr_mentions_marker(e) || expr_mentions_marker(lo) || expr_mentions_marker(hi)
        }
        Expr::InList(e, list) => expr_mentions_marker(e) || list.iter().any(expr_mentions_marker),
    }
}

fn reject_marker_reference(expr: &Expr) -> Result<(), RaError> {
    if expr_mentions_marker(expr) {
        Err(RaError::Schema(SchemaError::AmbiguousColumn(
            UA_LABEL_COLUMN.to_string(),
        )))
    } else {
        Ok(())
    }
}

fn check_encoded(schema: &Schema, name: &str) -> Result<(), RaError> {
    let last_is_marker = schema
        .columns()
        .last()
        .is_some_and(|c| c.name.eq_ignore_ascii_case(UA_LABEL_COLUMN));
    if last_is_marker {
        Ok(())
    } else {
        Err(RaError::Schema(SchemaError::UnknownColumn(format!(
            "{name}.{UA_LABEL_COLUMN} (table is not UA-encoded)"
        ))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{decode_relation, encode_database};
    use crate::uadb::UaDb;
    use ua_data::algebra::eval;
    use ua_data::relation::{Database, Relation};
    use ua_data::tuple;

    use ua_semiring::pair::Ua;

    fn sample_uadb() -> UaDb<u64> {
        let mut db: Database<Ua<u64>> = Database::new();
        db.insert(
            "r",
            Relation::from_annotated(
                Schema::qualified("r", ["a", "b"]),
                vec![
                    (tuple![1i64, 10i64], Ua::new(1u64, 1)),
                    (tuple![2i64, 20i64], Ua::new(0u64, 2)),
                    (tuple![3i64, 10i64], Ua::new(2u64, 3)),
                ],
            ),
        );
        db.insert(
            "s",
            Relation::from_annotated(
                Schema::qualified("s", ["b", "c"]),
                vec![
                    (tuple![10i64, "x"], Ua::new(1u64, 1)),
                    (tuple![20i64, "y"], Ua::new(0u64, 1)),
                ],
            ),
        );
        UaDb::from_database(db)
    }

    fn check_theorem7(query: &RaExpr) {
        let ua = sample_uadb();
        let direct = ua.query(query).expect("direct UA evaluation");

        let encoded = encode_database(ua.database());
        let lookup = |name: &str| encoded.get(name).map(|r| r.schema().clone());
        let rewritten = rewrite_ua(query, &lookup).expect("rewriting");
        let via_encoding = decode_relation(&eval(&rewritten, &encoded).expect("encoded eval"));

        assert_eq!(
            direct, via_encoding,
            "Theorem 7 violated for {query}: rewritten plan {rewritten}"
        );
    }

    #[test]
    fn theorem7_selection() {
        check_theorem7(&RaExpr::table("r").select(Expr::named("a").ge(Expr::lit(2i64))));
    }

    #[test]
    fn theorem7_projection() {
        check_theorem7(&RaExpr::table("r").project(["b"]));
    }

    #[test]
    fn theorem7_join() {
        check_theorem7(&RaExpr::table("r").join(
            RaExpr::table("s"),
            Expr::named("r.b").eq(Expr::named("s.b")),
        ));
    }

    #[test]
    fn theorem7_union() {
        check_theorem7(
            &RaExpr::table("r")
                .project(["b"])
                .union(RaExpr::table("s").project(["b"])),
        );
    }

    #[test]
    fn theorem7_composite() {
        check_theorem7(
            &RaExpr::table("r")
                .join(
                    RaExpr::table("s"),
                    Expr::named("r.b").eq(Expr::named("s.b")),
                )
                .select(Expr::named("a").le(Expr::lit(2i64)))
                .project(["a", "c"]),
        );
    }

    #[test]
    fn theorem7_self_join() {
        check_theorem7(&RaExpr::table("r").alias("r1").join(
            RaExpr::table("r").alias("r2"),
            Expr::named("r1.b").eq(Expr::named("r2.b")),
        ));
    }

    #[test]
    fn unencoded_table_rejected() {
        let q = RaExpr::table("r");
        let lookup = |_: &str| Some(Schema::qualified("r", ["a", "b"]));
        assert!(rewrite_ua(&q, &lookup).is_err());
    }

    #[test]
    fn projecting_the_marker_is_rejected() {
        let q = RaExpr::table("r").project([UA_LABEL_COLUMN]);
        let ua = sample_uadb();
        let encoded = encode_database(ua.database());
        let lookup = |name: &str| encoded.get(name).map(|r| r.schema().clone());
        assert!(rewrite_ua(&q, &lookup).is_err());
    }
}
