//! BI-DB generation and the QP1–QP3 probabilistic queries (paper
//! Figure 19 / Section 11.4).
//!
//! The paper compares UA-DBs against MayBMS on a block-independent database
//! derived from the Buffalo shootings data, varying the number of
//! alternatives per block (2/5/10/20). We generate a shootings-shaped table
//! `bp(index, district_shooting, type_shooting)` where every row is a block
//! whose alternatives perturb the district/type attributes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ua_data::algebra::RaExpr;
use ua_data::expr::Expr;
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_models::{XDb, XRelation, XTuple};

const DISTRICTS: [&str; 5] = ["BD", "CD", "DD", "ED", "FD"];
const TYPES: [&str; 4] = ["fatal", "injury", "property", "none"];

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct BidbConfig {
    /// Number of blocks (shooting incidents).
    pub blocks: usize,
    /// Alternatives per block (the paper sweeps 2/5/10/20).
    pub alternatives: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Generate the BI-DB.
pub fn generate(config: &BidbConfig) -> XDb {
    assert!(config.alternatives >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rel = XRelation::new(Schema::qualified(
        "bp",
        ["index", "district_shooting", "type_shooting"],
    ));
    for i in 0..config.blocks {
        let mut alternatives = Vec::with_capacity(config.alternatives);
        let p = 1.0 / config.alternatives as f64;
        for a in 0..config.alternatives {
            // Alternative 0 keeps a stable base value so queries over the
            // BGW are meaningful; later alternatives perturb attributes.
            let district = if a == 0 {
                DISTRICTS[i % DISTRICTS.len()]
            } else {
                DISTRICTS[rng.gen_range(0..DISTRICTS.len())]
            };
            let shooting_type = if a == 0 {
                TYPES[i % TYPES.len()]
            } else {
                TYPES[rng.gen_range(0..TYPES.len())]
            };
            alternatives.push((
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::str(district),
                    Value::str(shooting_type),
                ]),
                p,
            ));
        }
        // Duplicate alternatives merge inside XTuple::probabilistic, which
        // matches BI-DB semantics (alternatives are distinct tuples).
        rel.push(XTuple::probabilistic(alternatives));
    }
    let mut db = XDb::new();
    db.insert("bp", rel);
    db
}

/// QP1 — confidence of a single incident:
/// `SELECT conf() FROM bp WHERE index = 1`.
pub fn qp1() -> RaExpr {
    RaExpr::table("bp")
        .select(Expr::named("index").eq(Expr::lit(1i64)))
        .project(["index", "district_shooting", "type_shooting"])
}

/// QP2 — per-district confidence over an index range:
/// `SELECT district, index, conf() FROM bp WHERE index BETWEEN 650 AND 2000
///  AND district = 'BD' GROUP BY district, index`.
pub fn qp2() -> RaExpr {
    RaExpr::table("bp")
        .select(
            Expr::named("index")
                .gt(Expr::lit(650i64))
                .and(Expr::named("index").lt(Expr::lit(2000i64)))
                .and(Expr::named("district_shooting").eq(Expr::lit("BD"))),
        )
        .project(["district_shooting", "index"])
}

/// QP3 — incidents in the same district with the same type as incident 692
/// (the self-join that makes MayBMS's lineage explode):
/// `SELECT x.index, y.index, conf() FROM bp x, bp y
///  WHERE x.district = y.district AND x.type = y.type AND x.index = 692`.
pub fn qp3() -> RaExpr {
    RaExpr::table("bp")
        .alias("x")
        .join(
            RaExpr::table("bp").alias("y"),
            Expr::named("x.district_shooting")
                .eq(Expr::named("y.district_shooting"))
                .and(Expr::named("x.type_shooting").eq(Expr::named("y.type_shooting")))
                .and(Expr::named("x.index").eq(Expr::lit(692i64))),
        )
        .project([
            "x.index",
            "y.index",
            "x.district_shooting",
            "x.type_shooting",
        ])
}

/// The three probabilistic queries with their names.
pub fn qp_queries() -> Vec<(&'static str, RaExpr)> {
    vec![("QP1", qp1()), ("QP2", qp2()), ("QP3", qp3())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_baselines::UDb;

    #[test]
    fn block_structure() {
        let db = generate(&BidbConfig {
            blocks: 100,
            alternatives: 5,
            seed: 1,
        });
        let rel = db.get("bp").unwrap();
        assert_eq!(rel.len(), 100);
        for xt in rel.xtuples() {
            assert!(xt.arity() <= 5);
            assert!(!xt.optional);
            assert!((xt.total_probability() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn queries_run_through_maybms() {
        let db = generate(&BidbConfig {
            blocks: 800,
            alternatives: 2,
            seed: 2,
        });
        let udb = UDb::from_xdb(&db);
        for (name, q) in qp_queries() {
            let result = udb.query(&q).unwrap_or_else(|e| panic!("{name}: {e}"));
            let conf = udb.confidences(&result);
            for (t, p) in conf {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&p),
                    "{name}: conf({t}) = {p} out of range"
                );
            }
        }
    }

    #[test]
    fn qp1_confidence_sums_to_one_across_alternatives() {
        let db = generate(&BidbConfig {
            blocks: 10,
            alternatives: 4,
            seed: 3,
        });
        let udb = UDb::from_xdb(&db);
        let result = udb.query(&qp1()).unwrap();
        let conf = udb.confidences(&result);
        // Block 1 certainly has *some* alternative; the alternatives split
        // its mass, so total confidence sums to 1.
        let total: f64 = conf.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }
}
