//! Random C-tables and query chains for the paper's Figure 10.
//!
//! "We create a synthetic table with 8 attributes. For each tuple we
//! randomly chose half of its attributes to be variables and the other half
//! to be floating point constants. We construct random queries by
//! assembling a scaling number of randomly chosen self-joins, projections,
//! or selections."

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ua_data::algebra::RaExpr;
use ua_data::expr::Expr;
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::{Value, VarId};
use ua_models::{CDb, CTable, CTuple};

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct CtableConfig {
    /// Number of rows.
    pub rows: usize,
    /// Number of attributes (paper: 8).
    pub attrs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CtableConfig {
    fn default() -> Self {
        CtableConfig {
            rows: 50,
            attrs: 8,
            seed: 17,
        }
    }
}

/// Generate the synthetic C-table (+ a fresh-variable counter for reuse).
pub fn random_cdb(config: &CtableConfig) -> CDb {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let columns: Vec<String> = (0..config.attrs).map(|i| format!("a{i}")).collect();
    let mut table = CTable::new(Schema::qualified("ct", columns.iter().map(String::as_str)));
    let mut next_var = 0u32;
    for _ in 0..config.rows {
        // Half the attributes are variables, half float constants.
        let mut var_positions: Vec<usize> = (0..config.attrs).collect();
        var_positions.shuffle(&mut rng);
        var_positions.truncate(config.attrs / 2);
        let values: Vec<Value> = (0..config.attrs)
            .map(|c| {
                if var_positions.contains(&c) {
                    let v = Value::Var(VarId(next_var));
                    next_var += 1;
                    v
                } else {
                    // Small constant domain so selections/joins hit.
                    Value::float(rng.gen_range(0..20) as f64)
                }
            })
            .collect();
        table.push(CTuple::unconditional(Tuple::new(values)));
    }
    let mut db = CDb::new();
    db.insert("ct", table);
    db
}

/// A random query over `ct` with exactly `complexity` operators
/// (σ / π / self-⋈, the paper's Figure 10 x-axis).
pub fn random_query(complexity: usize, attrs: usize, rng: &mut StdRng) -> RaExpr {
    let mut query = RaExpr::table("ct").alias("q0");
    // Track the current output column names (unqualified).
    let mut cols: Vec<String> = (0..attrs).map(|i| format!("a{i}")).collect();
    let mut alias_counter = 1;
    let mut joins_left = 2; // joins over variable columns don't filter, so
                            // result sizes multiply; bound them per query.

    for _ in 0..complexity {
        let op = match rng.gen_range(0..4) {
            3 if joins_left > 0 => 2,
            n => n.min(1),
        };
        match op {
            // Selection on a random current column.
            0 => {
                let col = cols[rng.gen_range(0..cols.len())].clone();
                let threshold = rng.gen_range(0..20) as f64;
                let pred = if rng.gen_bool(0.5) {
                    Expr::named(col).le(Expr::lit(threshold))
                } else {
                    Expr::named(col).ge(Expr::lit(threshold))
                };
                query = query.select(pred);
            }
            // Projection onto a random non-empty prefix-shuffle of columns.
            1 => {
                let mut keep = cols.clone();
                keep.shuffle(rng);
                keep.truncate(rng.gen_range(1..=cols.len()));
                keep.sort();
                query = query.project(keep.clone());
                cols = keep;
            }
            // Self-join with the base table on a random column equality.
            _ => {
                joins_left -= 1;
                let left_alias = format!("l{alias_counter}");
                let right_alias = format!("r{alias_counter}");
                alias_counter += 1;
                let left_col = cols[rng.gen_range(0..cols.len())].clone();
                let right_col = format!("{right_alias}.a{}", rng.gen_range(0..attrs));
                query = query.alias(left_alias.clone()).join(
                    RaExpr::table("ct").alias(right_alias),
                    Expr::named(format!("{left_alias}.{left_col}")).eq(Expr::named(right_col)),
                );
                // Project back to a bounded subset of the *current* left
                // columns (qualified to dodge ambiguity; output names stay
                // unqualified so later operators keep working).
                let mut keep = cols.clone();
                keep.shuffle(rng);
                keep.truncate(rng.gen_range(1..=cols.len().min(4)));
                keep.sort();
                let proj: Vec<ua_data::algebra::ProjColumn> = keep
                    .iter()
                    .map(|c| {
                        ua_data::algebra::ProjColumn::expr(
                            Expr::named(format!("{left_alias}.{c}")),
                            c.clone(),
                        )
                    })
                    .collect();
                query = query.project_cols(proj);
                cols = keep;
            }
        }
    }
    query
}

/// A batch of random queries, `per_complexity` for each complexity in
/// `1..=max_complexity`.
pub fn query_batch(
    max_complexity: usize,
    per_complexity: usize,
    attrs: usize,
    seed: u64,
) -> Vec<(usize, RaExpr)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for complexity in 1..=max_complexity {
        for _ in 0..per_complexity {
            out.push((complexity, random_query(complexity, attrs, &mut rng)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_conditions::Solver;
    use ua_models::eval_symbolic;

    #[test]
    fn generated_ctable_shape() {
        let db = random_cdb(&CtableConfig {
            rows: 20,
            attrs: 8,
            seed: 1,
        });
        let t = db.get("ct").unwrap();
        assert_eq!(t.len(), 20);
        for row in t.tuples() {
            let vars = row.values.iter().filter(|v| v.is_var()).count();
            assert_eq!(vars, 4, "half the attributes are variables");
        }
    }

    #[test]
    fn random_queries_evaluate_symbolically() {
        let db = random_cdb(&CtableConfig {
            rows: 10,
            attrs: 8,
            seed: 2,
        });
        for (complexity, q) in query_batch(4, 2, 8, 3) {
            let result = eval_symbolic(&q, &db)
                .unwrap_or_else(|e| panic!("complexity {complexity}: {e} ({q})"));
            // Conditions must not blow up structurally.
            for row in result.tuples() {
                assert!(row.condition.atom_count() <= 64);
            }
        }
    }

    #[test]
    fn random_queries_have_requested_complexity() {
        let mut rng = StdRng::seed_from_u64(4);
        for complexity in 1..=6 {
            let q = random_query(complexity, 8, &mut rng);
            // Joins inject an extra bounded projection, so the operator
            // count is at least the requested complexity.
            assert!(q.operator_count() >= complexity);
        }
    }

    #[test]
    fn exact_and_labeled_certainty_relate() {
        // The UA labeling must be a subset of the exact certain answers on
        // the base table itself.
        let db = random_cdb(&CtableConfig {
            rows: 15,
            attrs: 4,
            seed: 5,
        });
        let table = db.get("ct").unwrap();
        let labeling = table.labeling();
        let solver = Solver::new();
        for (t, _) in labeling.iter() {
            assert!(table.is_certain(t, &solver));
        }
    }
}
