//! Synthetic "open data" datasets mirroring the paper's real-world corpus.
//!
//! The paper evaluates on nine public datasets (Figure 16: Chicago
//! violations/crime/contracts/…, Buffalo shootings, IMLS library survey),
//! cleaned with SparkML imputation whose alternative imputations become the
//! uncertainty. Those portals cannot be scraped here, so [`generate`]
//! produces, for each dataset, a synthetic table matching its **published
//! shape statistics** — row count (scaled down 100×), column count, the
//! percentage of uncertain attribute values `U_attr` and of uncertain rows
//! `U_row` — with missingness *correlated within rows* exactly as the
//! paper's errors are (DESIGN.md documents why this preserves the
//! FNR-of-projection behaviour being measured).
//!
//! Uncertain cells carry 2–4 imputation-candidate alternatives; candidate 0
//! (the "imputed best guess") dominates, so the best-guess world is the
//! imputed table.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_engine::storage::Table;
use ua_models::{XDb, XRelation, XTuple};

/// Shape statistics of one dataset (paper Figure 16).
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Dataset name (paper's label).
    pub name: &'static str,
    /// Row count in the paper.
    pub paper_rows: usize,
    /// Row count we generate (paper ÷ 100, clamped).
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Fraction of uncertain attribute values.
    pub attr_uncertainty: f64,
    /// Fraction of uncertain rows.
    pub row_uncertainty: f64,
}

/// The nine datasets of the paper's Figure 16 (rows scaled 100×down).
pub const DATASETS: [DatasetSpec; 9] = [
    DatasetSpec {
        name: "building_violations",
        paper_rows: 1_300_000,
        rows: 13_000,
        cols: 35,
        attr_uncertainty: 0.0082,
        row_uncertainty: 0.128,
    },
    DatasetSpec {
        name: "shootings_buffalo",
        paper_rows: 2_900,
        rows: 2_900,
        cols: 21,
        attr_uncertainty: 0.0024,
        row_uncertainty: 0.021,
    },
    DatasetSpec {
        name: "business_licenses",
        paper_rows: 63_000,
        rows: 6_300,
        cols: 25,
        attr_uncertainty: 0.0139,
        row_uncertainty: 0.140,
    },
    DatasetSpec {
        name: "chicago_crime",
        paper_rows: 6_600_000,
        rows: 16_000,
        cols: 17,
        attr_uncertainty: 0.0021,
        row_uncertainty: 0.009,
    },
    DatasetSpec {
        name: "contracts",
        paper_rows: 94_000,
        rows: 9_400,
        cols: 13,
        attr_uncertainty: 0.0150,
        row_uncertainty: 0.192,
    },
    DatasetSpec {
        name: "food_inspections",
        paper_rows: 169_000,
        rows: 8_450,
        cols: 16,
        attr_uncertainty: 0.0034,
        row_uncertainty: 0.046,
    },
    DatasetSpec {
        name: "graffiti_removal",
        paper_rows: 985_000,
        rows: 9_850,
        cols: 15,
        attr_uncertainty: 0.0009,
        row_uncertainty: 0.008,
    },
    DatasetSpec {
        name: "building_permits",
        paper_rows: 198_000,
        rows: 9_900,
        cols: 19,
        attr_uncertainty: 0.0042,
        row_uncertainty: 0.053,
    },
    DatasetSpec {
        name: "public_library_survey",
        paper_rows: 9_200,
        rows: 9_200,
        cols: 40,
        attr_uncertainty: 0.0119,
        row_uncertainty: 0.142,
    },
];

/// A generated dataset with all derived views.
#[derive(Clone, Debug)]
pub struct OpenDataset {
    /// The spec it was generated from.
    pub spec: DatasetSpec,
    /// The imputed (best-guess) table.
    pub bgw: Table,
    /// The x-DB with imputation alternatives.
    pub xdb: XDb,
    /// Measured fraction of uncertain cells.
    pub measured_attr_uncertainty: f64,
    /// Measured fraction of uncertain rows.
    pub measured_row_uncertainty: f64,
}

fn synth_value(col: usize, row: usize, rng: &mut StdRng) -> Value {
    // Column type by index: id, then a rotating mix of categorical strings
    // (small domains, so projections collide — essential for duplicate
    // structure), integers and floats.
    match col % 4 {
        0 => Value::Int(row as i64),
        1 => Value::str(format!("cat{}_{}", col, rng.gen_range(0..24))),
        2 => Value::Int(rng.gen_range(0..1000)),
        _ => Value::float((rng.gen_range(0..100_000) as f64) / 100.0),
    }
}

fn imputation_alternatives(v: &Value, rng: &mut StdRng) -> Vec<Value> {
    let k = rng.gen_range(2..=4usize);
    let mut out = vec![v.clone()];
    for j in 1..k {
        out.push(match v {
            Value::Int(i) => Value::Int(i + j as i64),
            Value::Float(f) => Value::float(f.get() + j as f64),
            Value::Str(s) => Value::str(format!("{s}~imp{j}")),
            other => other.clone(),
        });
    }
    out
}

/// Generate one dataset.
pub fn generate(spec: &DatasetSpec, seed: u64) -> OpenDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let columns: Vec<String> = (0..spec.cols)
        .map(|c| {
            if c == 0 {
                "id".to_string()
            } else {
                format!("a{c}")
            }
        })
        .collect();
    let schema = Schema::qualified(spec.name, columns.iter().map(String::as_str));

    // Per-row probability of being uncertain, and per-cell probability
    // within an uncertain row chosen so the expected cell rate matches.
    let row_p = spec.row_uncertainty;
    let cell_p = (spec.attr_uncertainty / row_p.max(1e-9)).clamp(0.0, 1.0);

    let mut xrel = XRelation::new(schema.clone());
    let mut bgw_rows = Vec::with_capacity(spec.rows);
    let mut uncertain_cells = 0usize;
    let mut uncertain_rows = 0usize;

    for r in 0..spec.rows {
        let values: Vec<Value> = (0..spec.cols)
            .map(|c| synth_value(c, r, &mut rng))
            .collect();
        let row = Tuple::new(values);
        bgw_rows.push(row.clone());

        let row_uncertain = rng.gen::<f64>() < row_p;
        if !row_uncertain {
            xrel.push(XTuple::probabilistic(vec![(row, 1.0)]));
            continue;
        }
        // Mark cells (never the id column), ensuring at least one.
        let mut cells: Vec<(usize, Vec<Value>)> = Vec::new();
        for c in 1..spec.cols {
            if rng.gen::<f64>() < cell_p {
                let alts = imputation_alternatives(row.get(c).expect("in range"), &mut rng);
                cells.push((c, alts));
            }
        }
        if cells.is_empty() {
            let c = rng.gen_range(1..spec.cols);
            let alts = imputation_alternatives(row.get(c).expect("in range"), &mut rng);
            cells.push((c, alts));
        }
        uncertain_rows += 1;
        uncertain_cells += cells.len();

        // Alternatives: combo 0 = imputed values; up to 4 total.
        let mut combos = vec![row.clone()];
        let n_alts = cells
            .iter()
            .map(|(_, a)| a.len())
            .try_fold(1usize, |acc, n| acc.checked_mul(n))
            .unwrap_or(usize::MAX)
            .min(4);
        let mut attempts = 0;
        while combos.len() < n_alts && attempts < 40 {
            attempts += 1;
            let mut values: Vec<Value> = row.values().to_vec();
            for (c, alts) in &cells {
                values[*c] = alts[rng.gen_range(0..alts.len())].clone();
            }
            let combo = Tuple::new(values);
            if !combos.contains(&combo) {
                combos.push(combo);
            }
        }
        let k = combos.len();
        let with_probs: Vec<(Tuple, f64)> = if k == 1 {
            vec![(combos.remove(0), 1.0)]
        } else {
            let rest = 0.5 / (k - 1) as f64;
            combos
                .into_iter()
                .enumerate()
                .map(|(j, t)| (t, if j == 0 { 0.5 } else { rest }))
                .collect()
        };
        xrel.push(XTuple::probabilistic(with_probs));
    }

    let mut xdb = XDb::new();
    xdb.insert(spec.name, xrel);

    OpenDataset {
        spec: *spec,
        bgw: Table::from_rows(schema, bgw_rows),
        xdb,
        measured_attr_uncertainty: uncertain_cells as f64 / (spec.rows * (spec.cols - 1)) as f64,
        measured_row_uncertainty: uncertain_rows as f64 / spec.rows as f64,
    }
}

/// Find a dataset spec by name.
pub fn spec(name: &str) -> Option<&'static DatasetSpec> {
    DATASETS.iter().find(|d| d.name == name)
}

// ---------------------------------------------------------------------------
// Chicago-like tables for the paper's "real queries" Q1–Q5 (Section 11.4).
// ---------------------------------------------------------------------------

/// `crime(id, case_number, iucr, district, longitude, latitude, x_coordinate,
/// y_coordinate)`.
pub fn crime_table(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let iucr_codes = [820i64, 486, 1320, 110, 610, 2820];
    Table::from_rows(
        Schema::qualified(
            "crime",
            [
                "id",
                "case_number",
                "iucr",
                "district",
                "longitude",
                "latitude",
                "x_coordinate",
                "y_coordinate",
            ],
        ),
        (0..rows)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::str(format!("HZ{i:06}")),
                    Value::Int(iucr_codes[rng.gen_range(0..iucr_codes.len())]),
                    Value::str(format!("{:03}", rng.gen_range(1..=25))),
                    Value::float(-87.9 + rng.gen::<f64>() * 0.4),
                    Value::float(41.6 + rng.gen::<f64>() * 0.4),
                    // Coordinates on a dense city grid so Q5's ±100-unit
                    // window finds matches (the paper's district 8 / '008'
                    // areas overlap spatially).
                    Value::Int(rng.gen_range(1_100_000..1_103_000)),
                    Value::Int(rng.gen_range(1_810_000..1_813_000)),
                ])
            })
            .collect(),
    )
}

/// `graffiti(street_address, zip_code, status, police_district,
/// x_coordinate, y_coordinate, service_request_number, community_area)`.
pub fn graffiti_table(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let statuses = ["Open", "Completed", "Open - Dup"];
    Table::from_rows(
        Schema::qualified(
            "graffiti",
            [
                "street_address",
                "zip_code",
                "status",
                "police_district",
                "x_coordinate",
                "y_coordinate",
                "service_request_number",
                "community_area",
            ],
        ),
        (0..rows)
            .map(|i| {
                Tuple::new(vec![
                    Value::str(format!("{} W Main St", 100 + i)),
                    Value::Int(60601 + rng.gen_range(0i64..60)),
                    Value::str(statuses[rng.gen_range(0..statuses.len())]),
                    Value::Int(rng.gen_range(1..=25)),
                    Value::Int(rng.gen_range(1_100_000..1_103_000)),
                    Value::Int(rng.gen_range(1_810_000..1_813_000)),
                    Value::str(format!("SR{i:07}")),
                    Value::Int(rng.gen_range(1..=77)),
                ])
            })
            .collect(),
    )
}

/// `foodinspections(inspection_date, address, zip, results, risk)`.
pub fn food_table(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let results = ["Pass", "Pass w/ Conditions", "Fail"];
    let risks = ["Risk 1 (High)", "Risk 2 (Medium)", "Risk 3 (Low)"];
    Table::from_rows(
        Schema::qualified(
            "foodinspections",
            ["inspection_date", "address", "zip", "results", "risk"],
        ),
        (0..rows)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(17_000 + rng.gen_range(0i64..3000)),
                    Value::str(format!("{} N State St", 1 + i)),
                    Value::Int(60601 + rng.gen_range(0i64..60)),
                    Value::str(results[rng.gen_range(0..results.len())]),
                    Value::str(risks[rng.gen_range(0..risks.len())]),
                ])
            })
            .collect(),
    )
}

/// The paper's five real queries (Section 11.4) in our SQL dialect.
pub fn real_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "Q1",
            "SELECT id, case_number, \
             CASE iucr WHEN 820 THEN 'Theft' WHEN 486 THEN 'Domestic Battery' \
                       WHEN 1320 THEN 'Criminal Damage' END AS crime_type \
             FROM crime WHERE iucr = 820 OR iucr = 486 OR iucr = 1320",
        ),
        (
            "Q2",
            "SELECT id, case_number, longitude, latitude FROM crime \
             WHERE longitude BETWEEN -87.674 AND -87.619 \
               AND latitude BETWEEN 41.892 AND 41.903",
        ),
        (
            "Q3",
            "SELECT street_address, zip_code, status FROM graffiti \
             WHERE status = 'Open'",
        ),
        (
            "Q4",
            "SELECT inspection_date, address, zip FROM foodinspections \
             WHERE results = 'Pass w/ Conditions' AND risk = 'Risk 1 (High)'",
        ),
        (
            "Q5",
            "SELECT c.id, c.case_number, c.iucr, g.status, \
                    g.service_request_number, g.community_area \
             FROM (SELECT * FROM graffiti WHERE police_district = 8) g, \
                  (SELECT * FROM crime WHERE district = '008') c \
             WHERE c.x_coordinate < g.x_coordinate + 100 \
               AND c.x_coordinate > g.x_coordinate - 100 \
               AND c.y_coordinate < g.y_coordinate + 100 \
               AND c.y_coordinate > g.y_coordinate - 100",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_specs() {
        for spec in &DATASETS[..3] {
            let small = DatasetSpec {
                rows: 1500,
                ..*spec
            };
            let d = generate(&small, 9);
            assert_eq!(d.bgw.len(), 1500);
            assert_eq!(d.bgw.schema().arity(), spec.cols);
            assert!(
                (d.measured_row_uncertainty - spec.row_uncertainty).abs()
                    < 0.6 * spec.row_uncertainty + 0.01,
                "{}: row uncertainty {} vs target {}",
                spec.name,
                d.measured_row_uncertainty,
                spec.row_uncertainty
            );
        }
    }

    #[test]
    fn uncertainty_is_row_correlated() {
        let spec = DatasetSpec {
            rows: 3000,
            ..DATASETS[2]
        };
        let d = generate(&spec, 5);
        // All uncertain cells live in uncertain rows, so the conditional
        // cell-rate within uncertain rows exceeds the global rate.
        let global = d.measured_attr_uncertainty;
        let conditional = global / d.measured_row_uncertainty.max(1e-9);
        assert!(conditional > 2.0 * global);
    }

    #[test]
    fn bgw_equals_imputed_alternative_zero() {
        let spec = DatasetSpec {
            rows: 500,
            ..DATASETS[1]
        };
        let d = generate(&spec, 3);
        let bgw = d.xdb.best_guess_world();
        let rel = bgw.get(spec.name).unwrap();
        assert_eq!(rel.total_annotation() as usize, 500);
        for row in d.bgw.rows().iter().take(50) {
            assert!(
                rel.annotation(row) > 0,
                "imputed row {row} missing from BGW"
            );
        }
    }

    #[test]
    fn chicago_tables_support_real_queries() {
        let c = crime_table(200, 1);
        assert_eq!(c.schema().arity(), 8);
        let g = graffiti_table(100, 2);
        assert!(g
            .rows()
            .iter()
            .any(|r| r.get(2) == Some(&Value::str("Open"))));
        let f = food_table(100, 3);
        assert_eq!(f.schema().arity(), 5);
        assert_eq!(real_queries().len(), 5);
    }
}
