//! PDBench-style uncertainty injection (paper Section 11.1).
//!
//! PDBench takes deterministic TPC-H data and makes a configurable
//! percentage of *cells* uncertain, giving each up to 8 possible values.
//! [`inject`] reproduces that protocol and derives every representation the
//! compared systems consume from one ground injection:
//!
//! * an **x-DB** (tuple-level alternatives; alternative 0 — the original
//!   values — carries the highest probability, so the best-guess world is
//!   exactly the original data),
//! * the **best-guess world** tables (for deterministic BGQP),
//! * the **UA-encoded** tables (BGW + `ua_c`; a row is labeled certain iff
//!   it has no uncertain cell, matching `label_xDB`),
//! * the **Codd-table** view for the Libkin baseline (uncertain cells
//!   replaced by `NULL`),
//!
//! plus injection statistics. MayBMS (`UDb::from_xdb`) and MCDB
//! (`BundleDb::from_xdb`) views derive from the x-DB.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_data::FxHashMap;
use ua_engine::storage::Table;
use ua_models::{XDb, XRelation, XTuple};

/// Injection parameters.
#[derive(Clone, Copy, Debug)]
pub struct PdbenchConfig {
    /// Fraction of eligible cells made uncertain (the paper sweeps
    /// 2–30 %).
    pub uncertainty: f64,
    /// Maximum possible values per uncertain cell (paper: 8).
    pub max_values: usize,
    /// Maximum alternatives kept per x-tuple (paper: up to 8).
    pub max_alternatives: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PdbenchConfig {
    fn default() -> Self {
        PdbenchConfig {
            uncertainty: 0.02,
            max_values: 8,
            max_alternatives: 8,
            seed: 42,
        }
    }
}

/// Injection statistics (drives the paper's Figure 16-style reporting).
#[derive(Clone, Copy, Debug, Default)]
pub struct InjectStats {
    /// Total eligible cells.
    pub total_cells: usize,
    /// Cells made uncertain.
    pub uncertain_cells: usize,
    /// Rows with at least one uncertain cell.
    pub uncertain_rows: usize,
    /// Total rows.
    pub total_rows: usize,
}

impl InjectStats {
    /// Fraction of uncertain cells.
    pub fn attr_uncertainty(&self) -> f64 {
        if self.total_cells == 0 {
            0.0
        } else {
            self.uncertain_cells as f64 / self.total_cells as f64
        }
    }

    /// Fraction of uncertain rows.
    pub fn row_uncertainty(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            self.uncertain_rows as f64 / self.total_rows as f64
        }
    }
}

/// All derived views of one uncertain database.
#[derive(Clone, Debug)]
pub struct UncertainDb {
    /// Tuple-level x-DB (ground representation).
    pub xdb: XDb,
    /// Best-guess world, per relation.
    pub bgw: FxHashMap<String, Table>,
    /// UA-encoded tables (BGW + `ua_c`).
    pub encoded: FxHashMap<String, Table>,
    /// Codd-table view (uncertain cells → NULL) for the Libkin baseline.
    pub nulls: FxHashMap<String, Table>,
    /// Injection statistics.
    pub stats: InjectStats,
}

/// Generate alternative values for one cell.
fn alternatives_for(value: &Value, count: usize, rng: &mut StdRng) -> Vec<Value> {
    let mut out = vec![value.clone()];
    for k in 1..count {
        let alt = match value {
            Value::Int(i) => Value::Int(i + rng.gen_range(1i64..=100) * k as i64),
            Value::Float(f) => Value::float(f.get() * (1.0 + 0.05 * k as f64) + 1.0),
            Value::Str(s) => Value::str(format!("{s}~alt{k}")),
            Value::Bool(b) => Value::Bool(*b ^ (k % 2 == 1)),
            Value::Null | Value::Var(_) => Value::Int(k as i64),
        };
        out.push(alt);
    }
    out.dedup();
    out
}

/// Inject uncertainty into one table. `eligible` names the columns whose
/// cells may become uncertain (PDBench randomizes value-bearing attributes,
/// never keys).
pub fn inject(name: &str, table: &Table, eligible: &[&str], config: &PdbenchConfig) -> UncertainDb {
    let mut rng = StdRng::seed_from_u64(config.seed ^ hash_name(name));
    let eligible_idx: Vec<usize> = eligible
        .iter()
        .map(|c| table.schema().resolve(c).expect("eligible column exists"))
        .collect();

    let mut stats = InjectStats {
        total_rows: table.len(),
        ..Default::default()
    };
    let mut xrel = XRelation::new(table.schema().clone());
    let mut bgw_rows = Vec::with_capacity(table.len());
    let mut enc_rows = Vec::with_capacity(table.len());
    let mut null_rows = Vec::with_capacity(table.len());

    for row in table.rows() {
        // Choose uncertain cells for this row.
        let mut cell_values: FxHashMap<usize, Vec<Value>> = FxHashMap::default();
        for &col in &eligible_idx {
            stats.total_cells += 1;
            if rng.gen::<f64>() < config.uncertainty {
                stats.uncertain_cells += 1;
                let count = rng.gen_range(2..=config.max_values);
                let values = alternatives_for(row.get(col).expect("in range"), count, &mut rng);
                if values.len() > 1 {
                    cell_values.insert(col, values);
                }
            }
        }

        if cell_values.is_empty() {
            // Certain row.
            xrel.push(XTuple::probabilistic(vec![(row.clone(), 1.0)]));
            bgw_rows.push(row.clone());
            enc_rows.push(row.push(Value::Int(1)));
            null_rows.push(row.clone());
            continue;
        }
        stats.uncertain_rows += 1;

        // Build up to `max_alternatives` combos; combo 0 = original values.
        let n_alts = cell_values
            .values()
            .map(Vec::len)
            .try_fold(1usize, |acc, n| acc.checked_mul(n))
            .unwrap_or(usize::MAX)
            .min(config.max_alternatives);
        let mut combos: Vec<Tuple> = Vec::with_capacity(n_alts);
        combos.push(row.clone());
        let mut attempts = 0;
        while combos.len() < n_alts && attempts < n_alts * 10 {
            attempts += 1;
            let candidate = row.substitute(|v| v.clone()); // clone row values
            let mut values: Vec<Value> = candidate.values().to_vec();
            for (&col, alts) in &cell_values {
                values[col] = alts[rng.gen_range(0..alts.len())].clone();
            }
            let combo = Tuple::new(values);
            if !combos.contains(&combo) {
                combos.push(combo);
            }
        }
        // Alternative 0 gets the majority mass so BGW = original data.
        let k = combos.len();
        let mut with_probs: Vec<(Tuple, f64)> = Vec::with_capacity(k);
        if k == 1 {
            with_probs.push((combos[0].clone(), 1.0));
        } else {
            let rest = 0.5 / (k - 1) as f64;
            for (j, combo) in combos.iter().enumerate() {
                with_probs.push((combo.clone(), if j == 0 { 0.5 } else { rest }));
            }
        }
        xrel.push(XTuple::probabilistic(with_probs));

        bgw_rows.push(row.clone());
        enc_rows.push(row.push(Value::Int(0)));
        // Libkin view: uncertain cells become NULL.
        let mut nulled: Vec<Value> = row.values().to_vec();
        for &col in cell_values.keys() {
            nulled[col] = Value::Null;
        }
        null_rows.push(Tuple::new(nulled));
    }

    let mut xdb = XDb::new();
    xdb.insert(name, xrel);

    let enc_schema = table.schema().with_column(ua_core::UA_LABEL_COLUMN);
    let mut bgw = FxHashMap::default();
    bgw.insert(
        name.to_string(),
        Table::from_rows(table.schema().clone(), bgw_rows),
    );
    let mut encoded = FxHashMap::default();
    encoded.insert(name.to_string(), Table::from_rows(enc_schema, enc_rows));
    let mut nulls = FxHashMap::default();
    nulls.insert(
        name.to_string(),
        Table::from_rows(table.schema().clone(), null_rows),
    );

    UncertainDb {
        xdb,
        bgw,
        encoded,
        nulls,
        stats,
    }
}

/// Inject uncertainty into several tables, merging the per-table views.
pub fn inject_db(tables: &[(&str, &Table, &[&str])], config: &PdbenchConfig) -> UncertainDb {
    let mut merged: Option<UncertainDb> = None;
    for (i, (name, table, eligible)) in tables.iter().enumerate() {
        let cfg = PdbenchConfig {
            seed: config.seed.wrapping_add(i as u64),
            ..*config
        };
        let one = inject(name, table, eligible, &cfg);
        merged = Some(match merged {
            None => one,
            Some(mut acc) => {
                if let Some(rel) = one.xdb.get(name) {
                    acc.xdb.insert(*name, rel.clone());
                }
                acc.bgw.extend(one.bgw);
                acc.encoded.extend(one.encoded);
                acc.nulls.extend(one.nulls);
                acc.stats.total_cells += one.stats.total_cells;
                acc.stats.uncertain_cells += one.stats.uncertain_cells;
                acc.stats.uncertain_rows += one.stats.uncertain_rows;
                acc.stats.total_rows += one.stats.total_rows;
                acc
            }
        });
    }
    merged.expect("at least one table")
}

fn hash_name(name: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = ua_data::hash::FxHasher::default();
    name.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{generate, TpchConfig};

    fn small_uncertain(pct: f64) -> UncertainDb {
        let data = generate(&TpchConfig::new(0.0005, 3));
        inject(
            "lineitem",
            &data.lineitem,
            &["quantity", "discount", "shipdate"],
            &PdbenchConfig {
                uncertainty: pct,
                ..Default::default()
            },
        )
    }

    #[test]
    fn uncertainty_rate_is_respected() {
        let u = small_uncertain(0.10);
        let rate = u.stats.attr_uncertainty();
        assert!(
            (0.05..0.18).contains(&rate),
            "expected ≈10% uncertain cells, got {rate}"
        );
        assert!(
            u.stats.row_uncertainty() > rate,
            "rows accumulate cell noise"
        );
    }

    #[test]
    fn bgw_is_original_data() {
        let data = generate(&TpchConfig::new(0.0005, 3));
        let u = small_uncertain(0.10);
        assert_eq!(
            u.bgw["lineitem"].sorted_rows(),
            data.lineitem.sorted_rows(),
            "alternative 0 keeps the original values and dominates"
        );
        // And the x-DB's own best-guess world agrees.
        let xbgw = u.xdb.best_guess_world();
        let rel = xbgw.get("lineitem").unwrap();
        assert_eq!(rel.total_annotation() as usize, data.lineitem.len());
    }

    #[test]
    fn encoded_marker_matches_labeling() {
        let u = small_uncertain(0.10);
        let enc = &u.encoded["lineitem"];
        let marker = enc.schema().arity() - 1;
        let certain_rows = enc
            .rows()
            .iter()
            .filter(|r| r.get(marker) == Some(&Value::Int(1)))
            .count();
        assert_eq!(
            certain_rows,
            u.stats.total_rows - u.stats.uncertain_rows,
            "ua_c = 1 exactly on rows without uncertain cells"
        );
    }

    #[test]
    fn null_view_masks_uncertain_cells() {
        let u = small_uncertain(0.30);
        let nulls = &u.nulls["lineitem"];
        let null_cells: usize = nulls
            .rows()
            .iter()
            .map(|r| {
                r.values()
                    .iter()
                    .filter(|v| matches!(v, Value::Null))
                    .count()
            })
            .sum();
        assert_eq!(null_cells, u.stats.uncertain_cells);
    }

    #[test]
    fn alternatives_capped() {
        let u = small_uncertain(0.50);
        for xt in u.xdb.get("lineitem").unwrap().xtuples() {
            assert!(xt.arity() <= 8);
        }
    }

    #[test]
    fn zero_uncertainty_degenerates_to_deterministic() {
        let u = small_uncertain(0.0);
        assert_eq!(u.stats.uncertain_cells, 0);
        for xt in u.xdb.get("lineitem").unwrap().xtuples() {
            assert!(xt.certain_alternative().is_some());
        }
    }
}
