//! The PDBench query set (≈ TPC-H Q3, Q6, Q7; paper Section 11.1) and
//! random projection-query generation (Figures 15, 20, 21).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use ua_data::algebra::RaExpr;
use ua_data::expr::Expr;
use ua_data::schema::Schema;

/// PDBench Q1 — the TPC-H Q3 shape: 3-way join with selections.
///
/// ```sql
/// SELECT o.orderkey, o.orderdate, o.shippriority
/// FROM customer c, orders o, lineitem l
/// WHERE c.mktsegment = 'BUILDING' AND c.custkey = o.custkey
///   AND l.orderkey = o.orderkey AND o.orderdate < 1200 AND l.shipdate > 1200
/// ```
pub fn pdbench_q1() -> RaExpr {
    RaExpr::table("customer")
        .select(Expr::named("mktsegment").eq(Expr::lit("BUILDING")))
        .join(
            RaExpr::table("orders"),
            Expr::named("customer.custkey").eq(Expr::named("orders.custkey")),
        )
        .select(Expr::named("orderdate").lt(Expr::lit(1200i64)))
        .join(
            RaExpr::table("lineitem"),
            Expr::named("lineitem.orderkey").eq(Expr::named("orders.orderkey")),
        )
        .select(Expr::named("shipdate").gt(Expr::lit(1200i64)))
        .project(["orders.orderkey", "orderdate", "shippriority"])
}

/// PDBench Q2 — the TPC-H Q6 shape: multi-predicate selection.
///
/// ```sql
/// SELECT orderkey, extendedprice, discount FROM lineitem
/// WHERE shipdate >= 370 AND shipdate < 735
///   AND discount BETWEEN 0.04 AND 0.08 AND quantity < 24
/// ```
pub fn pdbench_q2() -> RaExpr {
    RaExpr::table("lineitem")
        .select(
            Expr::named("shipdate")
                .ge(Expr::lit(370i64))
                .and(Expr::named("shipdate").lt(Expr::lit(735i64)))
                .and(Expr::named("discount").between(Expr::lit(0.04), Expr::lit(0.08)))
                .and(Expr::named("quantity").lt(Expr::lit(24i64))),
        )
        .project(["orderkey", "extendedprice", "discount"])
}

/// PDBench Q3 — the TPC-H Q7 shape: 4-way join across nations.
///
/// ```sql
/// SELECT s.suppkey, c.custkey, l.shipdate
/// FROM supplier s, lineitem l, orders o, customer c
/// WHERE s.suppkey = l.suppkey AND o.orderkey = l.orderkey
///   AND c.custkey = o.custkey AND s.nationkey = 1 AND c.nationkey = 2
/// ```
pub fn pdbench_q3() -> RaExpr {
    RaExpr::table("supplier")
        .select(Expr::named("nationkey").eq(Expr::lit(1i64)))
        .join(
            RaExpr::table("lineitem"),
            Expr::named("supplier.suppkey").eq(Expr::named("lineitem.suppkey")),
        )
        .join(
            RaExpr::table("orders"),
            Expr::named("orders.orderkey").eq(Expr::named("lineitem.orderkey")),
        )
        .join(
            RaExpr::table("customer").select(Expr::named("nationkey").eq(Expr::lit(2i64))),
            Expr::named("customer.custkey").eq(Expr::named("orders.custkey")),
        )
        .project(["supplier.suppkey", "customer.custkey", "lineitem.shipdate"])
}

/// The three PDBench queries with their names.
pub fn pdbench_queries() -> Vec<(&'static str, RaExpr)> {
    vec![
        ("Q1", pdbench_q1()),
        ("Q2", pdbench_q2()),
        ("Q3", pdbench_q3()),
    ]
}

/// Which columns of each TPC-H table PDBench may make uncertain
/// (value-bearing attributes; keys stay deterministic so that joins remain
/// meaningful — PDBench randomizes cell *values* the same way).
pub fn pdbench_uncertain_columns(table: &str) -> &'static [&'static str] {
    match table {
        "lineitem" => &["quantity", "extendedprice", "discount", "shipdate"],
        "orders" => &["orderdate", "shippriority", "totalprice"],
        "customer" => &["mktsegment", "acctbal"],
        "supplier" => &["acctbal"],
        _ => &[],
    }
}

/// A random projection onto `k` distinct attribute positions of `schema`
/// (the workload of Figures 15/20/21).
pub fn random_projection(
    schema: &Schema,
    k: usize,
    rng: &mut StdRng,
) -> (Vec<usize>, RaExpr, RaExpr) {
    assert!(k >= 1 && k <= schema.arity());
    let mut positions: Vec<usize> = (0..schema.arity()).collect();
    positions.shuffle(rng);
    positions.truncate(k);
    positions.sort_unstable();
    let names: Vec<String> = positions
        .iter()
        .map(|&i| schema.columns()[i].name.to_string())
        .collect();
    let table_name = schema.columns()[0]
        .qualifier
        .as_deref()
        .unwrap_or("t")
        .to_string();
    let q = RaExpr::table(table_name.clone()).project(names.clone());
    (positions, q.clone(), q)
}

/// Sample `count` random projection widths spanning `1..=max_k`.
pub fn projection_widths(max_k: usize, count: usize, rng: &mut StdRng) -> Vec<usize> {
    (0..count).map(|_| rng.gen_range(1..=max_k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{generate, TpchConfig};
    use rand::SeedableRng;
    use ua_data::relation::Database;

    #[test]
    fn pdbench_queries_run_on_generated_data() {
        let data = generate(&TpchConfig::new(0.002, 11));
        let mut db: Database<u64> = Database::new();
        for (name, table) in data.tables() {
            db.insert(name, table.to_relation());
        }
        for (name, q) in pdbench_queries() {
            let result = ua_data::eval(&q, &db).unwrap_or_else(|e| panic!("{name} failed: {e}"));
            // Q2 on tiny data should still select something.
            if name == "Q2" {
                assert!(result.support_size() > 0, "{name} returned nothing");
            }
        }
    }

    #[test]
    fn random_projection_is_well_formed() {
        let schema = Schema::qualified("t", ["a", "b", "c", "d"]);
        let mut rng = StdRng::seed_from_u64(1);
        let (positions, q, _) = random_projection(&schema, 2, &mut rng);
        assert_eq!(positions.len(), 2);
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(q.operator_count(), 1);
    }
}
