//! A seeded mini TPC-H generator.
//!
//! Generates the TPC-H schema subset the PDBench experiments need
//! (region, nation, supplier, customer, orders, lineitem) with the standard
//! cardinality ratios, scaled by a fractional scale factor. Value
//! distributions follow the benchmark's shapes (uniform keys, skewless
//! dates, segment/priority categories) — enough to reproduce the *relative*
//! behaviour of the paper's Figure 11/12/13/14 workloads at laptop scale
//! (see DESIGN.md's substitution table).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_engine::storage::Table;

/// TPC-H cardinalities at scale factor 1, scaled down by `scale`.
#[derive(Clone, Copy, Debug)]
pub struct TpchConfig {
    /// Fractional scale factor (1.0 ≈ classic SF1 ratios ÷ 50 to stay
    /// laptop-sized; see [`TpchConfig::new`]).
    pub scale: f64,
    /// RNG seed (generation is fully deterministic given `scale` + `seed`).
    pub seed: u64,
}

impl TpchConfig {
    /// Config with the given scale factor and seed.
    pub fn new(scale: f64, seed: u64) -> TpchConfig {
        assert!(scale > 0.0, "scale must be positive");
        TpchConfig { scale, seed }
    }

    fn count(&self, base_sf1: usize) -> usize {
        ((base_sf1 as f64) * self.scale).round().max(1.0) as usize
    }

    /// Number of suppliers.
    pub fn suppliers(&self) -> usize {
        self.count(10_000)
    }

    /// Number of customers.
    pub fn customers(&self) -> usize {
        self.count(150_000)
    }

    /// Number of orders.
    pub fn orders(&self) -> usize {
        self.count(1_500_000)
    }
}

/// The generated database (row tables, ready for the engine catalog).
#[derive(Clone, Debug)]
pub struct TpchData {
    /// `region(regionkey, name)`
    pub region: Table,
    /// `nation(nationkey, name, regionkey)`
    pub nation: Table,
    /// `supplier(suppkey, name, nationkey, acctbal)`
    pub supplier: Table,
    /// `customer(custkey, name, nationkey, mktsegment, acctbal)`
    pub customer: Table,
    /// `orders(orderkey, custkey, orderdate, shippriority, totalprice)`
    pub orders: Table,
    /// `lineitem(orderkey, suppkey, quantity, extendedprice, discount, shipdate)`
    pub lineitem: Table,
}

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDEAST"];

/// Generate the database.
pub fn generate(config: &TpchConfig) -> TpchData {
    let mut rng = StdRng::seed_from_u64(config.seed);

    let region = Table::from_rows(
        Schema::qualified("region", ["regionkey", "name"]),
        REGIONS
            .iter()
            .enumerate()
            .map(|(i, name)| Tuple::new(vec![Value::Int(i as i64), Value::str(name)]))
            .collect(),
    );

    let n_nations = 25;
    let nation = Table::from_rows(
        Schema::qualified("nation", ["nationkey", "name", "regionkey"]),
        (0..n_nations)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::str(format!("NATION_{i:02}")),
                    Value::Int((i % 5) as i64),
                ])
            })
            .collect(),
    );

    let n_suppliers = config.suppliers();
    let supplier = Table::from_rows(
        Schema::qualified("supplier", ["suppkey", "name", "nationkey", "acctbal"]),
        (0..n_suppliers)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::str(format!("Supplier#{i:09}")),
                    Value::Int(rng.gen_range(0..n_nations) as i64),
                    Value::float(rng.gen_range(-999.99..9999.99)),
                ])
            })
            .collect(),
    );

    let n_customers = config.customers();
    let customer = Table::from_rows(
        Schema::qualified(
            "customer",
            ["custkey", "name", "nationkey", "mktsegment", "acctbal"],
        ),
        (0..n_customers)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::str(format!("Customer#{i:09}")),
                    Value::Int(rng.gen_range(0..n_nations) as i64),
                    Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                    Value::float(rng.gen_range(-999.99..9999.99)),
                ])
            })
            .collect(),
    );

    let n_orders = config.orders();
    let mut orders_rows = Vec::with_capacity(n_orders);
    let mut lineitem_rows = Vec::new();
    for o in 0..n_orders {
        let orderdate = rng.gen_range(0..2557); // days within 1992-1998
        orders_rows.push(Tuple::new(vec![
            Value::Int(o as i64),
            Value::Int(rng.gen_range(0..n_customers) as i64),
            Value::Int(orderdate),
            Value::Int(rng.gen_range(0..2)),
            Value::float(rng.gen_range(800.0..500_000.0)),
        ]));
        // 1–7 lineitems per order (TPC-H averages 4).
        for _ in 0..rng.gen_range(1..=7usize) {
            let quantity = rng.gen_range(1..=50i64);
            let price = rng.gen_range(900.0..105_000.0);
            lineitem_rows.push(Tuple::new(vec![
                Value::Int(o as i64),
                Value::Int(rng.gen_range(0..n_suppliers) as i64),
                Value::Int(quantity),
                Value::float(price),
                Value::float(rng.gen_range(0.0..0.11)),
                Value::Int(orderdate + rng.gen_range(1i64..122)),
            ]));
        }
    }
    let orders = Table::from_rows(
        Schema::qualified(
            "orders",
            [
                "orderkey",
                "custkey",
                "orderdate",
                "shippriority",
                "totalprice",
            ],
        ),
        orders_rows,
    );
    let lineitem = Table::from_rows(
        Schema::qualified(
            "lineitem",
            [
                "orderkey",
                "suppkey",
                "quantity",
                "extendedprice",
                "discount",
                "shipdate",
            ],
        ),
        lineitem_rows,
    );

    TpchData {
        region,
        nation,
        supplier,
        customer,
        orders,
        lineitem,
    }
}

impl TpchData {
    /// `(name, table)` pairs for catalog registration.
    pub fn tables(&self) -> Vec<(&'static str, &Table)> {
        vec![
            ("region", &self.region),
            ("nation", &self.nation),
            ("supplier", &self.supplier),
            ("customer", &self.customer),
            ("orders", &self.orders),
            ("lineitem", &self.lineitem),
        ]
    }

    /// Total row count.
    pub fn total_rows(&self) -> usize {
        self.tables().iter().map(|(_, t)| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&TpchConfig::new(0.001, 7));
        let b = generate(&TpchConfig::new(0.001, 7));
        assert_eq!(a.lineitem.sorted_rows(), b.lineitem.sorted_rows());
        let c = generate(&TpchConfig::new(0.001, 8));
        assert_ne!(a.lineitem.sorted_rows(), c.lineitem.sorted_rows());
    }

    #[test]
    fn cardinality_ratios() {
        let d = generate(&TpchConfig::new(0.001, 1));
        assert_eq!(d.region.len(), 5);
        assert_eq!(d.nation.len(), 25);
        assert_eq!(d.supplier.len(), 10);
        assert_eq!(d.customer.len(), 150);
        assert_eq!(d.orders.len(), 1500);
        // ~4 lineitems per order.
        assert!(d.lineitem.len() > 2 * d.orders.len());
        assert!(d.lineitem.len() < 8 * d.orders.len());
    }

    #[test]
    fn foreign_keys_in_range() {
        let d = generate(&TpchConfig::new(0.001, 2));
        let n_cust = d.customer.len() as i64;
        for row in d.orders.rows() {
            match row.get(1) {
                Some(Value::Int(c)) => assert!((0..n_cust).contains(c)),
                other => panic!("bad custkey {other:?}"),
            }
        }
    }
}
