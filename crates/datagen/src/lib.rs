//! Seeded workload generators for the UA-DB evaluation.
//!
//! Every generator is deterministic given its seed, so experiments are
//! reproducible run-to-run:
//!
//! * [`tpch`] — mini TPC-H tables with the standard cardinality ratios;
//! * [`pdbench`] — PDBench-style cell-level uncertainty injection deriving
//!   every system's view (x-DB, BGW, UA-encoding, Codd tables) from one
//!   ground injection;
//! * [`queries`] — the PDBench query set (≈ TPC-H Q3/Q6/Q7) and random
//!   projection workloads;
//! * [`opendata`] — synthetic stand-ins for the paper's nine open datasets
//!   matching their published shape statistics (Figure 16), plus the
//!   Chicago-like tables and SQL for the real queries Q1–Q5;
//! * [`ctables`] — random C-tables and σ/π/⋈ query chains (Figure 10);
//! * [`bidb`] — block-independent databases and QP1–QP3 (Figure 19);
//! * [`utility`] — the ground-truth / null-injection / repair pipeline of
//!   the utility experiment (Figure 18).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bidb;
pub mod ctables;
pub mod opendata;
pub mod pdbench;
pub mod queries;
pub mod tpch;
pub mod utility;
