//! The utility experiment's data pipeline (paper Section 11.5 / Figure 18).
//!
//! 1. Start from a **ground-truth** world `D_ground` (a complete table).
//! 2. Replace a varying fraction of attribute values with `NULL`s, giving
//!    the incomplete database `D` (the Libkin baseline queries this
//!    directly).
//! 3. Repair `D` into a best-guess world by **imputation** (per-column
//!    mode/mean — "BGQP") or by picking **random** replacement values
//!    ("RGQP").
//!
//! The harness then compares query results over each variant against the
//! ground truth with precision/recall.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_data::FxHashMap;
use ua_engine::storage::Table;

/// The three datasets of Figure 18.
pub const UTILITY_DATASETS: [&str; 3] = ["income_survey", "buffalo_news", "business_license"];

/// A generated utility-experiment instance.
#[derive(Clone, Debug)]
pub struct UtilityInstance {
    /// The ground-truth world.
    pub ground: Table,
    /// The incomplete database (nulls injected).
    pub incomplete: Table,
    /// Imputation repair (best-guess world).
    pub imputed: Table,
    /// Random repair (random-guess world).
    pub random_repair: Table,
    /// Fraction of attribute values replaced.
    pub null_rate: f64,
}

/// Generate the ground-truth table for one of the [`UTILITY_DATASETS`].
pub fn ground_truth(dataset: &str, rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    match dataset {
        "income_survey" => Table::from_rows(
            Schema::qualified("survey", ["id", "age_group", "income", "source", "assets"]),
            (0..rows)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int(i as i64),
                        Value::str(format!("age{}", rng.gen_range(2..8) * 10)),
                        Value::Int(rng.gen_range(10i64..200) * 500),
                        Value::str(
                            ["wages", "self", "transfer", "invest"][rng.gen_range(0..4usize)],
                        ),
                        Value::Int(rng.gen_range(0i64..100) * 1000),
                    ])
                })
                .collect(),
        ),
        "buffalo_news" => Table::from_rows(
            Schema::qualified("shootings", ["id", "district", "type", "victims"]),
            (0..rows)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int(i as i64),
                        Value::str(["BD", "CD", "DD", "ED"][rng.gen_range(0..4usize)]),
                        Value::str(["fatal", "injury", "property"][rng.gen_range(0..3usize)]),
                        Value::Int(rng.gen_range(1..5)),
                    ])
                })
                .collect(),
        ),
        _ => Table::from_rows(
            Schema::qualified("licenses", ["id", "kind", "ward", "status", "fee"]),
            (0..rows)
                .map(|i| {
                    // Categorical columns are skewed like the real Chicago
                    // business-license data (most licenses are plain retail
                    // and active): that skew is what makes mode imputation
                    // meaningfully better than random repair.
                    let kind = match rng.gen_range(0..10usize) {
                        0..=5 => "retail",
                        6..=7 => "food",
                        8 => "liquor",
                        _ => "service",
                    };
                    let status = match rng.gen_range(0..10usize) {
                        0..=6 => "AAI",
                        7..=8 => "AAC",
                        _ => "REV",
                    };
                    Tuple::new(vec![
                        Value::Int(i as i64),
                        Value::str(kind),
                        Value::Int(rng.gen_range(1..51)),
                        Value::str(status),
                        Value::Int(rng.gen_range(1i64..40) * 25),
                    ])
                })
                .collect(),
        ),
    }
}

/// Per-column imputation statistics: mode for strings, mean for numbers.
fn column_imputations(table: &Table) -> Vec<Value> {
    let arity = table.schema().arity();
    (0..arity)
        .map(|c| {
            let mut counts: FxHashMap<Value, usize> = FxHashMap::default();
            let mut sum = 0.0;
            let mut n = 0usize;
            let mut numeric = false;
            for row in table.rows() {
                let v = row.get(c).expect("in range");
                if let Some(x) = v.as_f64() {
                    numeric = true;
                    sum += x;
                    n += 1;
                }
                *counts.entry(v.clone()).or_default() += 1;
            }
            if numeric && n > 0 {
                match table.rows().first().and_then(|r| r.get(c)) {
                    Some(Value::Int(_)) => Value::Int((sum / n as f64).round() as i64),
                    _ => Value::float(sum / n as f64),
                }
            } else {
                counts
                    .into_iter()
                    .max_by_key(|(_, n)| *n)
                    .map(|(v, _)| v)
                    .unwrap_or(Value::Null)
            }
        })
        .collect()
}

/// Distinct observed values per column (for random repair).
fn column_domains(table: &Table) -> Vec<Vec<Value>> {
    let arity = table.schema().arity();
    (0..arity)
        .map(|c| {
            let mut vals: Vec<Value> = table
                .rows()
                .iter()
                .map(|r| r.get(c).expect("in range").clone())
                .collect();
            vals.sort();
            vals.dedup();
            vals
        })
        .collect()
}

/// Build the full instance at the given null-injection rate (the id column
/// is never nulled, mirroring the paper's key-preserving cleaning setup).
pub fn build(ground: &Table, null_rate: f64, seed: u64) -> UtilityInstance {
    assert!((0.0..=1.0).contains(&null_rate));
    let mut rng = StdRng::seed_from_u64(seed);
    let arity = ground.schema().arity();
    let imputations = column_imputations(ground);
    let domains = column_domains(ground);

    let mut incomplete_rows = Vec::with_capacity(ground.len());
    let mut imputed_rows = Vec::with_capacity(ground.len());
    let mut random_rows = Vec::with_capacity(ground.len());
    for row in ground.rows() {
        let mut incomplete: Vec<Value> = row.values().to_vec();
        let mut imputed: Vec<Value> = row.values().to_vec();
        let mut random: Vec<Value> = row.values().to_vec();
        for c in 1..arity {
            if rng.gen::<f64>() < null_rate {
                incomplete[c] = Value::Null;
                imputed[c] = imputations[c].clone();
                random[c] = domains[c][rng.gen_range(0..domains[c].len())].clone();
            }
        }
        incomplete_rows.push(Tuple::new(incomplete));
        imputed_rows.push(Tuple::new(imputed));
        random_rows.push(Tuple::new(random));
    }

    UtilityInstance {
        ground: ground.clone(),
        incomplete: Table::from_rows(ground.schema().clone(), incomplete_rows),
        imputed: Table::from_rows(ground.schema().clone(), imputed_rows),
        random_repair: Table::from_rows(ground.schema().clone(), random_rows),
        null_rate,
    }
}

/// Set-level precision/recall of `result` against `truth`.
pub fn precision_recall(result: &Table, truth: &Table) -> (f64, f64) {
    let result_set: std::collections::BTreeSet<Tuple> = result.rows().iter().cloned().collect();
    let truth_set: std::collections::BTreeSet<Tuple> = truth.rows().iter().cloned().collect();
    let hits = result_set.intersection(&truth_set).count() as f64;
    let precision = if result_set.is_empty() {
        1.0
    } else {
        hits / result_set.len() as f64
    };
    let recall = if truth_set.is_empty() {
        1.0
    } else {
        hits / truth_set.len() as f64
    };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_keeps_everything() {
        let g = ground_truth("income_survey", 300, 1);
        let inst = build(&g, 0.0, 2);
        assert_eq!(inst.incomplete.sorted_rows(), g.sorted_rows());
        assert_eq!(inst.imputed.sorted_rows(), g.sorted_rows());
    }

    #[test]
    fn null_rate_is_respected() {
        let g = ground_truth("buffalo_news", 500, 3);
        let inst = build(&g, 0.3, 4);
        let nulls: usize = inst
            .incomplete
            .rows()
            .iter()
            .map(|r| {
                r.values()
                    .iter()
                    .filter(|v| matches!(v, Value::Null))
                    .count()
            })
            .sum();
        let eligible = 500 * (g.schema().arity() - 1);
        let rate = nulls as f64 / eligible as f64;
        assert!((0.2..0.4).contains(&rate), "rate {rate}");
        // Imputed and random repairs are complete.
        assert!(inst.imputed.rows().iter().all(|r| !r.has_unknown()));
        assert!(inst.random_repair.rows().iter().all(|r| !r.has_unknown()));
    }

    #[test]
    fn imputation_beats_random_repair() {
        let g = ground_truth("business_license", 800, 5);
        let inst = build(&g, 0.3, 6);
        let agree = |t: &Table| {
            t.rows()
                .iter()
                .zip(g.rows())
                .filter(|(a, b)| a == b)
                .count()
        };
        assert!(
            agree(&inst.imputed) >= agree(&inst.random_repair),
            "mode/mean imputation should recover at least as many rows"
        );
    }

    #[test]
    fn precision_recall_bounds() {
        let g = ground_truth("income_survey", 100, 7);
        let (p, r) = precision_recall(&g, &g);
        assert_eq!((p, r), (1.0, 1.0));
        let empty = Table::new(g.schema().clone());
        let (p, r) = precision_recall(&empty, &g);
        assert_eq!(p, 1.0);
        assert_eq!(r, 0.0);
    }
}
