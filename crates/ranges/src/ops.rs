//! The `⟦·⟧_AU` operators over [`AuRelation`]s — one shared implementation
//! both engines execute (the row engine directly, the vectorized engine
//! for its per-operator fallbacks), so the two paths cannot diverge.
//!
//! Selection, projection, join and union mirror the UA rewriting with
//! range-aware evaluation; the headline additions are `DISTINCT` and
//! grouping/aggregation, which the UA encoding is *not* closed under
//! (the paper defers them) but attribute-level bounds are:
//!
//! * **σ_θ** — a row survives iff θ is *possibly* true under some
//!   grounding. Its multiplicity triple is refined per component:
//!   `lb` survives only when θ is *certainly* true, `bg` only when θ holds
//!   over the selected-guess tuple (ordinary SQL evaluation), `ub` always.
//! * **π** — interval arithmetic per output expression
//!   ([`crate::eval::eval_range`]); the selected guess is the exact scalar
//!   result.
//! * **⋈** — pairs combine values by concatenation and multiplicities by
//!   the pointwise product, then the predicate refines like σ.
//! * **∪** — rows concatenate (annotations add by standing next to each
//!   other, as in the bag engine).
//! * **δ (DISTINCT)** — rows merge by selected-guess tuple; ranges hull,
//!   `lb/bg` cap at 1, `ub` sums (each merged copy may ground to a
//!   distinct value and survive deduplication on its own).
//! * **γ (GROUP BY / aggregation)** — see [`aggregate`]: output groups are
//!   the distinct selected-guess keys; every input tuple whose key range
//!   intersects a group's key hull contributes to that group's aggregate
//!   bounds, certainly-present point-key members to its lower bounds.

use crate::eval::{eval_range, truth_range};
use crate::mult::MultBound;
use crate::relation::{AuRelation, AuTuple};
use crate::value::{range_cmp, Bound, RangeValue};
use std::cmp::Ordering;
use ua_data::expr::{Expr, ExprError};
use ua_data::schema::{Column, Schema, SchemaError};
use ua_data::tuple::Tuple;
use ua_data::value::{Value, F64};
use ua_data::FxHashMap;
use ua_semiring::Semiring;

/// σ_θ: keep possibly-true rows, refining each multiplicity component.
pub fn filter(rel: &AuRelation, predicate: &Expr) -> Result<AuRelation, ExprError> {
    let bound = predicate.bind(rel.schema())?;
    let mut out = AuRelation::new(rel.schema().clone());
    for row in rel.rows() {
        let bg_tuple = row.bg_tuple();
        let bg_true = bound.holds(&bg_tuple)?;
        let rt = truth_range(&bound, &row.values);
        if !rt.possibly_true() {
            continue;
        }
        out.push(AuTuple {
            values: row.values.clone(),
            mult: MultBound::new(
                if rt.certainly_true() { row.mult.lb } else { 0 },
                if bg_true { row.mult.bg } else { 0 },
                row.mult.ub,
            ),
        });
    }
    Ok(out)
}

/// π: evaluate output expressions as ranges per row.
pub fn map(rel: &AuRelation, columns: &[(Expr, Column)]) -> Result<AuRelation, ExprError> {
    let bound: Vec<Expr> = columns
        .iter()
        .map(|(e, _)| e.bind(rel.schema()))
        .collect::<Result<_, _>>()?;
    let schema = Schema::new(columns.iter().map(|(_, c)| c.clone()).collect());
    let mut out = AuRelation::new(schema);
    for row in rel.rows() {
        let bg_tuple = row.bg_tuple();
        let values: Vec<RangeValue> = bound
            .iter()
            .map(|e| eval_range(e, &row.values, &bg_tuple))
            .collect::<Result<_, _>>()?;
        out.push(AuTuple {
            values,
            mult: row.mult,
        });
    }
    Ok(out)
}

/// θ-join: nested loops in left-major order; multiplicities multiply
/// pointwise, the predicate refines like [`filter`] over the pair.
pub fn join(
    left: &AuRelation,
    right: &AuRelation,
    predicate: Option<&Expr>,
) -> Result<AuRelation, ExprError> {
    let schema = left.schema().concat(right.schema());
    let bound = predicate.map(|p| p.bind(&schema)).transpose()?;
    let mut out = AuRelation::new(schema);
    for l in left.rows() {
        for r in right.rows() {
            let mut values = l.values.clone();
            values.extend(r.values.iter().cloned());
            let mut mult = l.mult.times(&r.mult);
            if let Some(pred) = &bound {
                let bg_tuple: Tuple = values.iter().map(|v| v.bg.clone()).collect();
                let bg_true = pred.holds(&bg_tuple)?;
                let rt = truth_range(pred, &values);
                if !rt.possibly_true() {
                    continue;
                }
                mult = MultBound::new(
                    if rt.certainly_true() { mult.lb } else { 0 },
                    if bg_true { mult.bg } else { 0 },
                    mult.ub,
                );
            }
            out.push(AuTuple { values, mult });
        }
    }
    Ok(out)
}

/// ∪: bag union (left schema wins, like the bag engine).
pub fn union(left: &AuRelation, right: &AuRelation) -> Result<AuRelation, SchemaError> {
    left.schema().check_union_compatible(right.schema())?;
    let mut out = AuRelation::new(left.schema().clone());
    for row in left.rows().iter().chain(right.rows()) {
        out.push(row.clone());
    }
    Ok(out)
}

/// δ: duplicate elimination. Rows merge by selected-guess tuple in
/// first-seen order; each output tuple's ranges hull the merged rows'. A
/// merged row set certainly yields at least one distinct tuple when any
/// member is certainly present, exactly one in the SG world when any
/// member is SG-present, and at most the *sum* of member upper bounds
/// (every copy may ground to a distinct value that survives
/// deduplication).
pub fn distinct(rel: &AuRelation) -> AuRelation {
    let mut order: Vec<Tuple> = Vec::new();
    let mut merged: FxHashMap<Tuple, AuTuple> = FxHashMap::default();
    for row in rel.rows() {
        let key = row.bg_tuple();
        match merged.get_mut(&key) {
            Some(acc) => {
                for (a, r) in acc.values.iter_mut().zip(&row.values) {
                    *a = a.hull(r);
                }
                acc.mult = MultBound::new(
                    acc.mult.lb.max(u64::from(row.mult.lb >= 1)),
                    acc.mult.bg.max(u64::from(row.mult.bg >= 1)),
                    acc.mult.ub.saturating_add(row.mult.ub),
                );
            }
            None => {
                order.push(key.clone());
                merged.insert(
                    key,
                    AuTuple {
                        values: row.values.clone(),
                        mult: MultBound::new(
                            u64::from(row.mult.lb >= 1),
                            u64::from(row.mult.bg >= 1),
                            row.mult.ub,
                        ),
                    },
                );
            }
        }
    }
    let mut out = AuRelation::new(rel.schema().clone());
    for key in order {
        out.push(merged.remove(&key).expect("recorded"));
    }
    out
}

/// An aggregate function kind (mirrors the engine's `AggFunc`; kept local
/// so the bound combination lives below the engine in the crate graph).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggKind {
    /// `COUNT(expr)` — non-null count.
    Count,
    /// `COUNT(*)` — row count.
    CountStar,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

/// One aggregate of an AU aggregation.
#[derive(Clone, Debug)]
pub struct AggSpec {
    /// The function.
    pub kind: AggKind,
    /// Its argument (`None` for `COUNT(*)`).
    pub arg: Option<Expr>,
    /// Output column.
    pub column: Column,
}

/// The selected-guess aggregator — a faithful replica of the engine's
/// `AggState` semantics (COUNT skips unknowns, SUM stays integer until a
/// float appears and accumulates in `f64`, MIN/MAX use SQL comparison,
/// AVG divides `f64` totals), so the SG component of an AU aggregate
/// equals deterministic aggregation over the SG world bit for bit.
enum BgAgg {
    Count(u64),
    Sum {
        total: f64,
        saw_int_only: bool,
        any: bool,
    },
    MinMax {
        best: Option<Value>,
        is_min: bool,
    },
    Avg {
        total: f64,
        n: u64,
    },
}

impl BgAgg {
    fn new(kind: AggKind) -> BgAgg {
        match kind {
            AggKind::Count | AggKind::CountStar => BgAgg::Count(0),
            AggKind::Sum => BgAgg::Sum {
                total: 0.0,
                saw_int_only: true,
                any: false,
            },
            AggKind::Min => BgAgg::MinMax {
                best: None,
                is_min: true,
            },
            AggKind::Max => BgAgg::MinMax {
                best: None,
                is_min: false,
            },
            AggKind::Avg => BgAgg::Avg { total: 0.0, n: 0 },
        }
    }

    fn update(&mut self, value: Option<&Value>, mult: u64) {
        match self {
            BgAgg::Count(n) => match value {
                None => *n += mult,
                Some(v) if !v.is_unknown() => *n += mult,
                _ => {}
            },
            BgAgg::Sum {
                total,
                saw_int_only,
                any,
            } => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *total += x * mult as f64;
                        *any = true;
                        if matches!(v, Value::Float(_)) {
                            *saw_int_only = false;
                        }
                    }
                }
            }
            BgAgg::MinMax { best, is_min } => {
                if let Some(v) = value {
                    if v.is_unknown() {
                        return;
                    }
                    let better = match best {
                        None => true,
                        Some(b) => matches!(
                            (v.sql_cmp(b), *is_min),
                            (Some(Ordering::Less), true) | (Some(Ordering::Greater), false)
                        ),
                    };
                    if better {
                        *best = Some(v.clone());
                    }
                }
            }
            BgAgg::Avg { total, n } => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *total += x * mult as f64;
                        *n += mult;
                    }
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            BgAgg::Count(n) => Value::Int(n as i64),
            BgAgg::Sum {
                total,
                saw_int_only,
                any,
            } => {
                if !any {
                    Value::Null
                } else if saw_int_only {
                    Value::Int(total as i64)
                } else {
                    Value::Float(F64::new(total))
                }
            }
            BgAgg::MinMax { best, .. } => best.unwrap_or(Value::Null),
            BgAgg::Avg { total, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(F64::new(total / n as f64))
                }
            }
        }
    }
}

/// How one tuple's aggregate argument can ground.
#[derive(Clone, Copy, PartialEq, Debug)]
enum ArgClass {
    /// Every grounding is numeric, within `[lo, hi]` (possibly infinite).
    Numeric { lo: f64, hi: f64 },
    /// Every grounding is a known non-numeric value (contributes nothing
    /// to SUM/AVG, counts for COUNT(expr)).
    NonNumeric,
    /// The top range: may ground to anything, including NULL.
    Anything,
}

fn classify_arg(r: &RangeValue) -> ArgClass {
    if r.is_top() {
        return ArgClass::Anything;
    }
    match (r.lb().as_f64(), r.ub().as_f64()) {
        (Some(lo), Some(hi)) => ArgClass::Numeric { lo, hi },
        _ => ArgClass::NonNumeric,
    }
}

/// One possible group member, pre-classified for the bound combination.
struct Member<'a> {
    mult: MultBound,
    /// Certainly in the group's (single-point) key in every world: the
    /// tuple is certainly present and all its key attributes are points
    /// equal to the group key.
    certain: bool,
    arg: Option<ArgClass>,
    arg_range: Option<&'a RangeValue>,
}

fn f64_bound(x: f64) -> Bound {
    if x == f64::NEG_INFINITY {
        Bound::NegInf
    } else if x == f64::INFINITY {
        Bound::PosInf
    } else {
        Bound::Val(Value::Float(F64::new(x)))
    }
}

/// The attribute-level bounds of one aggregate over one group's possible
/// members. `grouped` distinguishes GROUP BY groups (which exist in a
/// world only when non-empty) from the global group (always present, even
/// over an empty input); `case_a` says every covered world group carries
/// exactly the group's selected-guess key (all key hulls are points), so
/// certainly-present point-key members bound from below.
fn agg_bounds(kind: AggKind, members: &[Member], grouped: bool, case_a: bool) -> (Bound, Bound) {
    let certain_members = || members.iter().filter(|m| case_a && m.certain);
    match kind {
        AggKind::CountStar => {
            let mut lb: u64 = certain_members().map(|m| m.mult.lb).sum();
            if grouped {
                // A materialized world group is non-empty.
                lb = lb.max(1);
                if !case_a {
                    lb = 1;
                }
            }
            let ub: u64 = members
                .iter()
                .map(|m| m.mult.ub)
                .fold(0, u64::saturating_add);
            (
                Bound::Val(Value::Int(lb as i64)),
                Bound::Val(Value::Int(i64::try_from(ub).unwrap_or(i64::MAX))),
            )
        }
        AggKind::Count => {
            let lb: u64 = if grouped && !case_a {
                0
            } else {
                certain_members()
                    .filter(|m| !matches!(m.arg, Some(ArgClass::Anything)))
                    .map(|m| m.mult.lb)
                    .sum()
            };
            let ub: u64 = members
                .iter()
                .map(|m| m.mult.ub)
                .fold(0, u64::saturating_add);
            (
                Bound::Val(Value::Int(lb as i64)),
                Bound::Val(Value::Int(i64::try_from(ub).unwrap_or(i64::MAX))),
            )
        }
        AggKind::Sum => {
            // Per-member contribution corners over multiplicity × value.
            let contrib = |m: &Member| -> (f64, f64) {
                match m.arg {
                    Some(ArgClass::Numeric { lo, hi }) => {
                        let corners = [
                            m.mult.lb as f64 * lo,
                            m.mult.lb as f64 * hi,
                            m.mult.ub as f64 * lo,
                            m.mult.ub as f64 * hi,
                        ];
                        // 0 × ±∞ is 0 copies contributing nothing.
                        let fix = |x: f64| if x.is_nan() { 0.0 } else { x };
                        (
                            corners
                                .iter()
                                .copied()
                                .map(fix)
                                .fold(f64::INFINITY, f64::min),
                            corners
                                .iter()
                                .copied()
                                .map(fix)
                                .fold(f64::NEG_INFINITY, f64::max),
                        )
                    }
                    Some(ArgClass::NonNumeric) => (0.0, 0.0),
                    Some(ArgClass::Anything) | None => {
                        if m.mult.ub == 0 {
                            (0.0, 0.0)
                        } else {
                            (f64::NEG_INFINITY, f64::INFINITY)
                        }
                    }
                }
            };
            let has_certain_numeric = certain_members()
                .any(|m| m.mult.lb >= 1 && matches!(m.arg, Some(ArgClass::Numeric { .. })));
            let all_numeric = members
                .iter()
                .all(|m| matches!(m.arg, Some(ArgClass::Numeric { .. })));
            // Whether SUM may be NULL in some covered world (no numeric
            // contribution there).
            let maybe_null = if grouped && !case_a {
                !all_numeric
            } else if grouped {
                !(has_certain_numeric || all_numeric)
            } else {
                !has_certain_numeric
            };
            if maybe_null {
                return (Bound::NegInf, Bound::PosInf);
            }
            let mut lo = 0.0f64;
            let mut hi = 0.0f64;
            for m in members {
                let (cl, ch) = contrib(m);
                let optional = !(case_a && m.certain);
                lo += if optional { cl.min(0.0) } else { cl };
                hi += if optional { ch.max(0.0) } else { ch };
            }
            (f64_bound(lo), f64_bound(hi))
        }
        AggKind::Min | AggKind::Max => {
            let is_min = kind == AggKind::Min;
            let anchor = certain_members()
                .filter(|m| !matches!(m.arg, Some(ArgClass::Anything)))
                .map(|m| m.arg_range.expect("arg present"))
                .fold(None::<Bound>, |acc, r| {
                    let candidate = if is_min {
                        r.ub().clone()
                    } else {
                        r.lb().clone()
                    };
                    Some(match acc {
                        None => candidate,
                        Some(b) => {
                            if is_min {
                                b.min_bound(candidate)
                            } else {
                                b.max_bound(candidate)
                            }
                        }
                    })
                });
            let all_known = members
                .iter()
                .all(|m| !matches!(m.arg, Some(ArgClass::Anything) | None));
            let outer = |pick_low: bool| -> Bound {
                members
                    .iter()
                    .filter(|m| m.mult.ub >= 1)
                    .filter_map(|m| m.arg_range)
                    .fold(None::<Bound>, |acc, r| {
                        let candidate = if pick_low {
                            r.lb().clone()
                        } else {
                            r.ub().clone()
                        };
                        Some(match acc {
                            None => candidate,
                            Some(b) => {
                                if pick_low {
                                    b.min_bound(candidate)
                                } else {
                                    b.max_bound(candidate)
                                }
                            }
                        })
                    })
                    .unwrap_or(if pick_low {
                        Bound::NegInf
                    } else {
                        Bound::PosInf
                    })
            };
            match anchor {
                // A certainly-present member with bounded values anchors
                // one side; the other side hulls all possible members.
                Some(b) if case_a => {
                    if is_min {
                        (outer(true), b)
                    } else {
                        (b, outer(false))
                    }
                }
                // Grouped non-point-key groups still materialize non-empty,
                // so a fully-bounded member pool hulls the result.
                _ if grouped && all_known => (outer(true), outer(false)),
                _ => (Bound::NegInf, Bound::PosInf),
            }
        }
        AggKind::Avg => {
            let has_certain_numeric = certain_members()
                .any(|m| m.mult.lb >= 1 && matches!(m.arg, Some(ArgClass::Numeric { .. })));
            let all_numeric = members
                .iter()
                .all(|m| matches!(m.arg, Some(ArgClass::Numeric { .. })));
            let admissible = if grouped {
                (case_a && has_certain_numeric) || all_numeric
            } else {
                has_certain_numeric
            };
            if !admissible {
                return (Bound::NegInf, Bound::PosInf);
            }
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for m in members.iter().filter(|m| m.mult.ub >= 1) {
                if let Some(ArgClass::Numeric { lo: l, hi: h }) = m.arg {
                    lo = lo.min(l);
                    hi = hi.max(h);
                }
            }
            if lo > hi {
                return (Bound::NegInf, Bound::PosInf);
            }
            (f64_bound(lo), f64_bound(hi))
        }
    }
}

/// γ: grouping + aggregation with sound attribute-level bounds.
///
/// Output groups are the distinct *selected-guess* key tuples, in
/// first-seen order (matching the deterministic engines). For each output
/// group: its key attributes hull the member ranges (so every possible
/// world's group key that any member may take is covered); all input
/// tuples whose key ranges intersect the hull are *possible members* and
/// widen the aggregate bounds; certainly-present members with single-point
/// keys ground the lower bounds; the multiplicity triple is
/// `[certainly materializes, in the SG world, Σ possible member copies]`.
pub fn aggregate(
    rel: &AuRelation,
    group_by: &[(Expr, Column)],
    aggregates: &[AggSpec],
) -> Result<AuRelation, ExprError> {
    let bound_keys: Vec<Expr> = group_by
        .iter()
        .map(|(e, _)| e.bind(rel.schema()))
        .collect::<Result<_, _>>()?;
    let bound_args: Vec<Option<Expr>> = aggregates
        .iter()
        .map(|a| a.arg.as_ref().map(|e| e.bind(rel.schema())).transpose())
        .collect::<Result<_, _>>()?;

    // Evaluate keys and arguments per tuple (errors surface in input order,
    // like the deterministic engines).
    struct Prepared {
        keys: Vec<RangeValue>,
        args: Vec<Option<RangeValue>>,
        mult: MultBound,
    }
    let mut prepared: Vec<Prepared> = Vec::with_capacity(rel.rows().len());
    for row in rel.rows() {
        let bg_tuple = row.bg_tuple();
        let keys: Vec<RangeValue> = bound_keys
            .iter()
            .map(|e| eval_range(e, &row.values, &bg_tuple))
            .collect::<Result<_, _>>()?;
        let args: Vec<Option<RangeValue>> = bound_args
            .iter()
            .map(|e| {
                e.as_ref()
                    .map(|e| eval_range(e, &row.values, &bg_tuple))
                    .transpose()
            })
            .collect::<Result<_, _>>()?;
        prepared.push(Prepared {
            keys,
            args,
            mult: row.mult,
        });
    }

    // Partition by selected-guess key, first-seen order.
    let mut order: Vec<Tuple> = Vec::new();
    let mut groups: FxHashMap<Tuple, Vec<usize>> = FxHashMap::default();
    for (i, p) in prepared.iter().enumerate() {
        let key: Tuple = p.keys.iter().map(|r| r.bg.clone()).collect();
        groups
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key.clone());
                Vec::new()
            })
            .push(i);
    }
    let grouped = !group_by.is_empty();
    // Global aggregation over an empty input still yields one row.
    if !grouped && order.is_empty() {
        order.push(Tuple::empty());
        groups.insert(Tuple::empty(), Vec::new());
    }

    // Pre-classify each tuple once: whether all its key ranges are points
    // (the common certain case), its argument classes, and — for
    // point-keyed tuples — a coercion-normalized key bucket, so point-hull
    // groups find their possible members by lookup instead of rescanning
    // the whole input per group (O(N) instead of O(groups × N)).
    let key_points: Vec<bool> = prepared
        .iter()
        .map(|p| p.keys.iter().all(RangeValue::is_point))
        .collect();
    let arg_classes: Vec<Vec<Option<ArgClass>>> = prepared
        .iter()
        .map(|p| {
            p.args
                .iter()
                .map(|a| a.as_ref().map(classify_arg))
                .collect()
        })
        .collect();
    let normalize =
        |key: &Tuple| -> Tuple { key.values().iter().map(|v| v.clone().join_key()).collect() };
    let mut point_buckets: FxHashMap<Tuple, Vec<usize>> = FxHashMap::default();
    let mut ranged: Vec<usize> = Vec::new();
    for (i, p) in prepared.iter().enumerate() {
        if key_points[i] {
            let norm: Tuple = p.keys.iter().map(|r| r.bg.clone().join_key()).collect();
            point_buckets.entry(norm).or_default().push(i);
        } else {
            ranged.push(i);
        }
    }

    let mut columns: Vec<Column> = group_by.iter().map(|(_, c)| c.clone()).collect();
    columns.extend(aggregates.iter().map(|a| a.column.clone()));
    let mut out = AuRelation::new(Schema::new(columns));

    for key in order {
        let member_idx = groups.remove(&key).expect("group recorded");
        // Key hulls over the group's own (selected-guess) members.
        let hulls: Vec<RangeValue> = (0..bound_keys.len())
            .map(|k| {
                let mut hull =
                    prepared[member_idx[0]].keys[k].with_bg(key.get(k).expect("key arity").clone());
                for &i in &member_idx[1..] {
                    hull = hull.hull(&prepared[i].keys[k]);
                }
                hull
            })
            .collect();
        // Possible members: every tuple whose key ranges intersect the
        // hulls (a grounding may land any of them in a covered world
        // group). Always a superset of the selected-guess members. When
        // the hull is a single point, point-keyed tuples intersect it iff
        // their (coercion-normalized) key equals the group key — a bucket
        // lookup; only range-keyed tuples need the intersection test.
        // Non-point hulls (the uncertain-key minority) fall back to the
        // full scan.
        let case_a = hulls.iter().all(RangeValue::is_point);
        let possible: Vec<usize> = if case_a {
            let mut candidates: Vec<usize> = point_buckets
                .get(&normalize(&key))
                .cloned()
                .unwrap_or_default();
            candidates.extend(ranged.iter().copied().filter(|&i| {
                prepared[i]
                    .keys
                    .iter()
                    .zip(&hulls)
                    .all(|(r, h)| r.intersects(h))
            }));
            candidates.sort_unstable();
            candidates
        } else {
            (0..prepared.len())
                .filter(|&i| {
                    prepared[i]
                        .keys
                        .iter()
                        .zip(&hulls)
                        .all(|(r, h)| r.intersects(h))
                })
                .collect()
        };
        // One certainty flag per possible member, shared by every
        // aggregate's bound computation and the group's multiplicity.
        let certain_flags: Vec<bool> = possible
            .iter()
            .map(|&i| {
                let p = &prepared[i];
                p.mult.lb >= 1
                    && key_points[i]
                    && p.keys
                        .iter()
                        .zip(key.values())
                        .all(|(r, v)| range_cmp(&r.bg, v) == Ordering::Equal)
            })
            .collect();
        let in_sg_group: Vec<usize> = member_idx
            .iter()
            .copied()
            .filter(|&i| prepared[i].mult.bg >= 1)
            .collect();

        // Selected-guess values: ordinary aggregation over the SG members.
        let mut bg_states: Vec<BgAgg> = aggregates.iter().map(|a| BgAgg::new(a.kind)).collect();
        for &i in &in_sg_group {
            for (s, arg) in bg_states.iter_mut().zip(&prepared[i].args) {
                match arg {
                    Some(r) => s.update(Some(&r.bg), prepared[i].mult.bg),
                    None => s.update(None, prepared[i].mult.bg),
                }
            }
        }

        // Bounds per aggregate over the possible members (borrowed arg
        // ranges and precomputed classes — nothing clones per aggregate).
        let mut values: Vec<RangeValue> = hulls;
        for (a_idx, (spec, state)) in aggregates.iter().zip(bg_states).enumerate() {
            let members: Vec<Member> = possible
                .iter()
                .zip(&certain_flags)
                .map(|(&i, &certain)| Member {
                    mult: prepared[i].mult,
                    certain,
                    arg: arg_classes[i][a_idx],
                    arg_range: prepared[i].args[a_idx].as_ref(),
                })
                .collect();
            let (lb, ub) = agg_bounds(spec.kind, &members, grouped, case_a);
            values.push(RangeValue::new(lb, state.finish(), ub));
        }

        let certainly_materializes = !grouped || certain_flags.iter().any(|&c| c);
        let in_sg = !grouped || !in_sg_group.is_empty();
        let ub: u64 = if grouped {
            possible
                .iter()
                .map(|&i| prepared[i].mult.ub)
                .fold(0, u64::saturating_add)
        } else {
            1
        };
        out.push(AuTuple {
            values,
            mult: MultBound::new(
                u64::from(certainly_materializes),
                u64::from(in_sg),
                ub.max(u64::from(in_sg)).max(1),
            ),
        });
    }
    Ok(out)
}

/// Sort rows by selected-guess keys (outermost first, per-key direction)
/// with the full encoded row as the deterministic tie-break. `descending`
/// flags parallel `keys`. Ordering is presentation-level: it reflects the
/// SG world, like the deterministic engines' ORDER BY over the SG.
pub fn sort_by_bg(rel: &AuRelation, keys: &[(Expr, bool)]) -> Result<AuRelation, ExprError> {
    let bound: Vec<(Expr, bool)> = keys
        .iter()
        .map(|(e, d)| Ok((e.bind(rel.schema())?, *d)))
        .collect::<Result<_, ExprError>>()?;
    let mut decorated: Vec<(Vec<Value>, usize)> = rel
        .rows()
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let bg = row.bg_tuple();
            let key: Vec<Value> = bound
                .iter()
                .map(|(e, _)| e.eval(&bg))
                .collect::<Result<_, _>>()?;
            Ok((key, i))
        })
        .collect::<Result<_, ExprError>>()?;
    let tie_break: Vec<Tuple> = rel
        .rows()
        .iter()
        .map(|row| {
            let mut values: Vec<Value> = row.bg_tuple().values().to_vec();
            for r in &row.values {
                values.push(match r.lb() {
                    Bound::Val(v) => v.clone(),
                    _ => Value::Null,
                });
                values.push(match r.ub() {
                    Bound::Val(v) => v.clone(),
                    _ => Value::Null,
                });
            }
            values.push(Value::Int(i64::try_from(row.mult.lb).unwrap_or(i64::MAX)));
            values.push(Value::Int(i64::try_from(row.mult.bg).unwrap_or(i64::MAX)));
            values.push(Value::Int(i64::try_from(row.mult.ub).unwrap_or(i64::MAX)));
            Tuple::new(values)
        })
        .collect();
    decorated.sort_by(|(ka, ia), (kb, ib)| {
        for ((va, vb), (_, desc)) in ka.iter().zip(kb).zip(&bound) {
            let ord = va.cmp(vb);
            let ord = if *desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        tie_break[*ia].cmp(&tie_break[*ib])
    });
    let mut out = AuRelation::new(rel.schema().clone());
    for (_, i) in decorated {
        out.push(rel.rows()[i].clone());
    }
    Ok(out)
}

/// Truncate to the first `limit` rows (AU tuples, not grounded copies —
/// presentation-level, like [`sort_by_bg`]).
pub fn limit(rel: &AuRelation, n: usize) -> AuRelation {
    let mut out = AuRelation::new(rel.schema().clone());
    for row in rel.rows().iter().take(n) {
        out.push(row.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(lo: i64, bg: i64, hi: i64) -> RangeValue {
        RangeValue::new(
            Bound::Val(Value::Int(lo)),
            Value::Int(bg),
            Bound::Val(Value::Int(hi)),
        )
    }

    fn rel() -> AuRelation {
        // g certain for rows 1-2, uncertain for row 3; v uncertain on row 2.
        let mut r = AuRelation::new(Schema::qualified("r", ["g", "v"]));
        r.push(AuTuple {
            values: vec![
                RangeValue::point(Value::Int(1)),
                RangeValue::point(Value::Int(10)),
            ],
            mult: MultBound::certain(1),
        });
        r.push(AuTuple {
            values: vec![RangeValue::point(Value::Int(1)), span(5, 20, 30)],
            mult: MultBound::new(0, 1, 1),
        });
        r.push(AuTuple {
            values: vec![span(1, 2, 2), RangeValue::point(Value::Int(7))],
            mult: MultBound::certain(1),
        });
        r
    }

    #[test]
    fn filter_refines_multiplicities() {
        let r = rel();
        let out = filter(&r, &Expr::named("v").ge(Expr::lit(8i64))).unwrap();
        // Row 1: certainly true → [1,1,1]. Row 2: possibly true (5..30 vs 8)
        // → [0,1,1]. Row 3: v=7 certainly false → dropped.
        assert_eq!(out.rows().len(), 2);
        assert_eq!(out.rows()[0].mult, MultBound::certain(1));
        assert_eq!(out.rows()[1].mult, MultBound::new(0, 1, 1));
    }

    #[test]
    fn group_by_sum_bounds_enclose_groundings() {
        let r = rel();
        let out = aggregate(
            &r,
            &[(Expr::named("g"), Column::unqualified("g"))],
            &[
                AggSpec {
                    kind: AggKind::CountStar,
                    arg: None,
                    column: Column::unqualified("n"),
                },
                AggSpec {
                    kind: AggKind::Sum,
                    arg: Some(Expr::named("v")),
                    column: Column::unqualified("s"),
                },
            ],
        )
        .unwrap();
        // Two SG groups: g=1 and g=2.
        assert_eq!(out.rows().len(), 2);
        let g1 = &out.rows()[0];
        assert_eq!(g1.values[0].bg, Value::Int(1));
        // SG: rows 1+2 → count 2, sum 30.
        assert_eq!(g1.values[1].bg, Value::Int(2));
        assert_eq!(g1.values[2].bg, Value::Int(30));
        // Worlds: row 2 possibly absent, row 3 possibly in g=1 (key range
        // [1,2]). Count ∈ [1, 3].
        assert!(g1.values[1].contains(&Value::Int(1)));
        assert!(g1.values[1].contains(&Value::Int(3)));
        // Sum: row1 certain 10; row2 ∈ {absent} ∪ [5,30]; row3 maybe 7.
        assert!(g1.values[2].contains(&Value::Int(10)));
        assert!(g1.values[2].contains(&Value::Int(47)));
        assert!(!g1.values[2].contains(&Value::Int(3)), "below certain 10");
        assert_eq!(g1.mult, MultBound::new(1, 1, 3));
        // g=2 group: row 3's SG; key hull [1,2] is not a point → wide count.
        let g2 = &out.rows()[1];
        assert_eq!(g2.values[0].bg, Value::Int(2));
        assert!(g2.values[0].contains(&Value::Int(1)));
        assert_eq!(g2.mult.lb, 0, "row 3 may ground its key to 1");
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let r = AuRelation::new(Schema::qualified("r", ["g", "v"]));
        let out = aggregate(
            &r,
            &[],
            &[AggSpec {
                kind: AggKind::CountStar,
                arg: None,
                column: Column::unqualified("n"),
            }],
        )
        .unwrap();
        assert_eq!(out.rows().len(), 1);
        assert_eq!(out.rows()[0].values[0].bg, Value::Int(0));
        assert!(out.rows()[0].values[0].is_point());
        assert_eq!(out.rows()[0].mult, MultBound::certain(1));
    }

    #[test]
    fn distinct_merges_by_selected_guess() {
        let mut r = AuRelation::new(Schema::qualified("r", ["a"]));
        r.push(AuTuple {
            values: vec![span(1, 2, 3)],
            mult: MultBound::certain(2),
        });
        r.push(AuTuple {
            values: vec![span(2, 2, 5)],
            mult: MultBound::new(0, 1, 4),
        });
        r.push(AuTuple {
            values: vec![RangeValue::point(Value::Int(9))],
            mult: MultBound::new(0, 0, 1),
        });
        let out = distinct(&r);
        assert_eq!(out.rows().len(), 2);
        let merged = &out.rows()[0];
        assert!(merged.values[0].contains(&Value::Int(1)));
        assert!(merged.values[0].contains(&Value::Int(5)));
        assert_eq!(merged.mult, MultBound::new(1, 1, 6));
        assert_eq!(out.rows()[1].mult, MultBound::new(0, 0, 1));
    }

    #[test]
    fn join_multiplies_pointwise_and_filters() {
        let mut l = AuRelation::new(Schema::qualified("l", ["a"]));
        l.push(AuTuple {
            values: vec![span(1, 2, 3)],
            mult: MultBound::new(1, 2, 3),
        });
        let mut rr = AuRelation::new(Schema::qualified("s", ["b"]));
        rr.push(AuTuple {
            values: vec![RangeValue::point(Value::Int(2))],
            mult: MultBound::new(0, 1, 2),
        });
        let out = join(&l, &rr, Some(&Expr::named("a").eq(Expr::named("b")))).unwrap();
        assert_eq!(out.rows().len(), 1);
        // Possible (ranges intersect) but not certain → lb 0; SG 2=2 holds.
        assert_eq!(out.rows()[0].mult, MultBound::new(0, 2, 6));
    }
}
