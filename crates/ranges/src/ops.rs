//! The `⟦·⟧_AU` operators over [`AuRelation`]s — one shared implementation
//! both engines execute (the row engine directly, the vectorized engine
//! for its per-operator fallbacks), so the two paths cannot diverge.
//!
//! Selection, projection, join and union mirror the UA rewriting with
//! range-aware evaluation; the headline additions are `DISTINCT` and
//! grouping/aggregation, which the UA encoding is *not* closed under
//! (the paper defers them) but attribute-level bounds are:
//!
//! * **σ_θ** — a row survives iff θ is *possibly* true under some
//!   grounding. Its multiplicity triple is refined per component:
//!   `lb` survives only when θ is *certainly* true, `bg` only when θ holds
//!   over the selected-guess tuple (ordinary SQL evaluation), `ub` always.
//! * **π** — interval arithmetic per output expression
//!   ([`crate::eval::eval_range`]); the selected guess is the exact scalar
//!   result.
//! * **⋈** — pairs combine values by concatenation and multiplicities by
//!   the pointwise product, then the predicate refines like σ.
//! * **∪** — rows concatenate (annotations add by standing next to each
//!   other, as in the bag engine).
//! * **δ (DISTINCT)** — rows merge by selected-guess tuple; ranges hull,
//!   `lb/bg` cap at 1, `ub` sums (each merged copy may ground to a
//!   distinct value and survive deduplication on its own).
//! * **γ (GROUP BY / aggregation)** — see [`aggregate`]: output groups are
//!   the distinct selected-guess keys; every input tuple whose key range
//!   intersects a group's key hull contributes to that group's aggregate
//!   bounds, certainly-present point-key members to its lower bounds.

use crate::eval::{eval_range, truth_range};
use crate::mult::MultBound;
use crate::relation::{encode_row, AuRelation, AuTuple};
use crate::value::{range_cmp, Bound, RangeValue};
use std::cmp::Ordering;
use ua_data::algebra::extract_equi_keys;
use ua_data::expr::{Expr, ExprError};
use ua_data::schema::{Column, Schema, SchemaError};
use ua_data::tuple::Tuple;
use ua_data::value::{Value, F64};
use ua_data::{FxHashMap, FxHashSet};
use ua_semiring::Semiring;

/// σ_θ: keep possibly-true rows, refining each multiplicity component.
pub fn filter(rel: &AuRelation, predicate: &Expr) -> Result<AuRelation, ExprError> {
    let bound = predicate.bind(rel.schema())?;
    let mut out = AuRelation::new(rel.schema().clone());
    for row in rel.rows() {
        let bg_tuple = row.bg_tuple();
        let bg_true = bound.holds(&bg_tuple)?;
        let rt = truth_range(&bound, &row.values);
        if !rt.possibly_true() {
            continue;
        }
        out.push(AuTuple {
            values: row.values.clone(),
            mult: MultBound::new(
                if rt.certainly_true() { row.mult.lb } else { 0 },
                if bg_true { row.mult.bg } else { 0 },
                row.mult.ub,
            ),
        });
    }
    Ok(out)
}

/// π: evaluate output expressions as ranges per row.
pub fn map(rel: &AuRelation, columns: &[(Expr, Column)]) -> Result<AuRelation, ExprError> {
    let bound: Vec<Expr> = columns
        .iter()
        .map(|(e, _)| e.bind(rel.schema()))
        .collect::<Result<_, _>>()?;
    let schema = Schema::new(columns.iter().map(|(_, c)| c.clone()).collect());
    let mut out = AuRelation::new(schema);
    for row in rel.rows() {
        let bg_tuple = row.bg_tuple();
        let values: Vec<RangeValue> = bound
            .iter()
            .map(|e| eval_range(e, &row.values, &bg_tuple))
            .collect::<Result<_, _>>()?;
        out.push(AuTuple {
            values,
            mult: row.mult,
        });
    }
    Ok(out)
}

/// Apply a (bound) join predicate to one concatenated candidate pair
/// exactly as the nested loop does: `None` unless the predicate is
/// possibly true, otherwise the pair with its multiplicity refined like
/// [`filter`] (`lb` survives only certain truth, `bg` only selected-guess
/// truth). Shared by the row and vectorized join paths so refinement
/// cannot diverge between engines.
pub fn refine_join_pair(
    predicate: Option<&Expr>,
    values: Vec<RangeValue>,
    mult: MultBound,
) -> Result<Option<AuTuple>, ExprError> {
    let mut mult = mult;
    if let Some(pred) = predicate {
        let bg_tuple: Tuple = values.iter().map(|v| v.bg.clone()).collect();
        let bg_true = pred.holds(&bg_tuple)?;
        let rt = truth_range(pred, &values);
        if !rt.possibly_true() {
            return Ok(None);
        }
        mult = MultBound::new(
            if rt.certainly_true() { mult.lb } else { 0 },
            if bg_true { mult.bg } else { 0 },
            mult.ub,
        );
    }
    Ok(Some(AuTuple { values, mult }))
}

/// Evaluate per-row key ranges for one join side (`exprs` bound against
/// that side's schema).
fn eval_key_ranges(rel: &AuRelation, exprs: &[Expr]) -> Result<Vec<Vec<RangeValue>>, ExprError> {
    rel.rows()
        .iter()
        .map(|row| {
            let bg = row.bg_tuple();
            exprs
                .iter()
                .map(|e| eval_range(e, &row.values, &bg))
                .collect()
        })
        .collect()
}

/// Whether a point key's selected guess can participate in hash-bucket
/// pruning: NaN floats compare `None` against ints under `sql_cmp`
/// (three-valued ANY), so they stay fuzzy.
fn hashable_point(r: &RangeValue) -> bool {
    r.is_point() && !matches!(&r.bg, Value::Float(f) if f.get().is_nan())
}

fn normalized_key(keys: &[RangeValue]) -> Tuple {
    keys.iter().map(|r| r.bg.clone().join_key()).collect()
}

/// The comparable-type family of a point key value. Cross-family point
/// comparisons are `None` under `sql_cmp` — three-valued ANY, i.e.
/// possibly equal — so hash pruning is sound only when each key column's
/// point keys stay within one family across both sides.
fn key_family(v: &Value) -> u8 {
    match v {
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 2,
        Value::Str(_) => 4,
        _ => 8,
    }
}

/// Per-key-column family bitmasks over the rows whose keys are all
/// hashable points (other rows are fuzzy and join every candidate list,
/// so their families never matter).
pub fn point_key_families(rows: &[Vec<RangeValue>], n_keys: usize) -> Vec<u8> {
    let mut fam = vec![0u8; n_keys];
    for keys in rows {
        if keys.iter().all(hashable_point) {
            for (f, r) in fam.iter_mut().zip(keys) {
                *f |= key_family(&r.bg);
            }
        }
    }
    fam
}

/// A selected-guess key index over one join side's evaluated key ranges:
/// rows whose keys are all points hash by coercion-normalized key tuple;
/// rows with ranged, unknown, or NaN keys are *fuzzy* — possibly equal to
/// any probe key — and appear in every candidate list. Pruned pairs are
/// exactly those with a certainly-false key equality, so candidate
/// refinement reproduces the nested loop's surviving rows.
pub struct SgKeyIndex {
    buckets: FxHashMap<Tuple, Vec<usize>>,
    fuzzy: Vec<usize>,
    families: Vec<u8>,
    len: usize,
}

impl SgKeyIndex {
    /// Index one side's per-row key ranges (`rows[i]` holds row `i`'s
    /// `n_keys` evaluated key ranges).
    pub fn build(rows: &[Vec<RangeValue>], n_keys: usize) -> SgKeyIndex {
        let mut buckets: FxHashMap<Tuple, Vec<usize>> = FxHashMap::default();
        let mut fuzzy = Vec::new();
        let mut families = vec![0u8; n_keys];
        for (i, keys) in rows.iter().enumerate() {
            if keys.iter().all(hashable_point) {
                for (f, r) in families.iter_mut().zip(keys) {
                    *f |= key_family(&r.bg);
                }
                buckets.entry(normalized_key(keys)).or_default().push(i);
            } else {
                fuzzy.push(i);
            }
        }
        SgKeyIndex {
            buckets,
            fuzzy,
            families,
            len: rows.len(),
        }
    }

    /// Whether hash pruning against a probe side with the given point-key
    /// families ([`point_key_families`]) is sound: every key column's
    /// point keys across both sides share one comparable type family.
    pub fn compatible_with(&self, probe_families: &[u8]) -> bool {
        self.families
            .iter()
            .zip(probe_families)
            .all(|(a, b)| (a | b).count_ones() <= 1)
    }

    /// Collect the build rows whose key equality with `keys` is possibly
    /// true, ascending (build-scan order), into `out`.
    pub fn candidates(&self, keys: &[RangeValue], out: &mut Vec<usize>) {
        out.clear();
        if !keys.iter().all(hashable_point) {
            out.extend(0..self.len);
            return;
        }
        let bucket = self
            .buckets
            .get(&normalized_key(keys))
            .map(Vec::as_slice)
            .unwrap_or_default();
        // Merge the two ascending lists (bucket and fuzzy are disjoint).
        let (mut a, mut b) = (bucket.iter().peekable(), self.fuzzy.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => {
                    if x < y {
                        out.push(x);
                        a.next();
                    } else {
                        out.push(y);
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    out.push(x);
                    a.next();
                }
                (None, Some(&&y)) => {
                    out.push(y);
                    b.next();
                }
                (None, None) => break,
            }
        }
    }
}

/// θ-join in left-major order; multiplicities multiply pointwise, the
/// predicate refines like [`filter`] over the pair. When the predicate
/// contains extractable equi-keys whose point keys stay within one
/// comparable type family per column, candidate pairs come from a
/// selected-guess hash index ([`SgKeyIndex`]) instead of the full cross
/// product — pruned pairs have a certainly-false key equality, so output
/// rows and order match the nested loop exactly.
pub fn join(
    left: &AuRelation,
    right: &AuRelation,
    predicate: Option<&Expr>,
) -> Result<AuRelation, ExprError> {
    let schema = left.schema().concat(right.schema());
    let bound = predicate.map(|p| p.bind(&schema)).transpose()?;
    let mut out = AuRelation::new(schema);
    if let Some(pred) = &bound {
        let (keys, _) = extract_equi_keys(pred, left.schema().arity());
        if !keys.is_empty() {
            let lk: Vec<Expr> = keys.iter().map(|k| k.left.clone()).collect();
            let rk: Vec<Expr> = keys.iter().map(|k| k.right.clone()).collect();
            let l_keys = eval_key_ranges(left, &lk)?;
            let r_keys = eval_key_ranges(right, &rk)?;
            let index = SgKeyIndex::build(&r_keys, keys.len());
            if index.compatible_with(&point_key_families(&l_keys, keys.len())) {
                let mut cand: Vec<usize> = Vec::new();
                for (li, l) in left.rows().iter().enumerate() {
                    index.candidates(&l_keys[li], &mut cand);
                    for &ri in &cand {
                        let r = &right.rows()[ri];
                        let mut values = l.values.clone();
                        values.extend(r.values.iter().cloned());
                        if let Some(t) =
                            refine_join_pair(Some(pred), values, l.mult.times(&r.mult))?
                        {
                            out.push(t);
                        }
                    }
                }
                return Ok(out);
            }
        }
    }
    for l in left.rows() {
        for r in right.rows() {
            let mut values = l.values.clone();
            values.extend(r.values.iter().cloned());
            if let Some(t) = refine_join_pair(bound.as_ref(), values, l.mult.times(&r.mult))? {
                out.push(t);
            }
        }
    }
    Ok(out)
}

/// Shift a (bound) right-side expression's column refs up onto the
/// concatenated schema.
fn shift_up(e: &Expr, l_arity: usize) -> Expr {
    e.map_refs(&|n| Some(n.to_string()), &|i| i + l_arity)
        .expect("identity name mapping cannot fail")
}

/// Hash equi-join on selected-guess keys, refined over the full
/// reconstructed predicate (key equalities ∧ `residual`). `keys` pairs
/// per-side key expressions (each bindable against its own side's
/// schema); `build_left` picks the hash-index side, the probe side drives
/// output order (probe-major, candidates in build-scan order), and
/// columns are always left ++ right. The same multiset as [`join`] over
/// the reconstructed predicate; when cross-family point keys make hash
/// pruning unsound it defers to [`join`] entirely (left-major order).
pub fn hash_join(
    left: &AuRelation,
    right: &AuRelation,
    keys: &[(Expr, Expr)],
    residual: Option<&Expr>,
    build_left: bool,
) -> Result<AuRelation, ExprError> {
    let schema = left.schema().concat(right.schema());
    let l_arity = left.schema().arity();
    let lk: Vec<Expr> = keys
        .iter()
        .map(|(l, _)| l.bind(left.schema()))
        .collect::<Result<_, _>>()?;
    let rk: Vec<Expr> = keys
        .iter()
        .map(|(_, r)| r.bind(right.schema()))
        .collect::<Result<_, _>>()?;
    let mut conjuncts: Vec<Expr> = lk
        .iter()
        .zip(&rk)
        .map(|(l, r)| l.clone().eq(shift_up(r, l_arity)))
        .collect();
    if let Some(res) = residual {
        conjuncts.push(res.bind(&schema)?);
    }
    let pred = Expr::conjunction(conjuncts);
    let l_keys = eval_key_ranges(left, &lk)?;
    let r_keys = eval_key_ranges(right, &rk)?;
    let (build_keys, probe_keys) = if build_left {
        (&l_keys, &r_keys)
    } else {
        (&r_keys, &l_keys)
    };
    let index = SgKeyIndex::build(build_keys, keys.len());
    if !index.compatible_with(&point_key_families(probe_keys, keys.len())) {
        return join(left, right, Some(&pred));
    }
    let (build_rel, probe_rel) = if build_left {
        (left, right)
    } else {
        (right, left)
    };
    let mut out = AuRelation::new(schema);
    let mut cand: Vec<usize> = Vec::new();
    for (pi, p) in probe_rel.rows().iter().enumerate() {
        index.candidates(&probe_keys[pi], &mut cand);
        for &bi in &cand {
            let b = &build_rel.rows()[bi];
            let (l, r) = if build_left { (b, p) } else { (p, b) };
            let mut values = l.values.clone();
            values.extend(r.values.iter().cloned());
            if let Some(t) = refine_join_pair(Some(&pred), values, l.mult.times(&r.mult))? {
                out.push(t);
            }
        }
    }
    Ok(out)
}

/// ∪: bag union (left schema wins, like the bag engine).
pub fn union(left: &AuRelation, right: &AuRelation) -> Result<AuRelation, SchemaError> {
    left.schema().check_union_compatible(right.schema())?;
    let mut out = AuRelation::new(left.schema().clone());
    for row in left.rows().iter().chain(right.rows()) {
        out.push(row.clone());
    }
    Ok(out)
}

/// δ: duplicate elimination. Rows merge by selected-guess tuple in
/// first-seen order; each output tuple's ranges hull the merged rows'. A
/// merged row set certainly yields at least one distinct tuple when any
/// member is certainly present, exactly one in the SG world when any
/// member is SG-present, and at most the *sum* of member upper bounds
/// (every copy may ground to a distinct value that survives
/// deduplication).
pub fn distinct(rel: &AuRelation) -> AuRelation {
    let mut order: Vec<Tuple> = Vec::new();
    let mut merged: FxHashMap<Tuple, AuTuple> = FxHashMap::default();
    for row in rel.rows() {
        let key = row.bg_tuple();
        match merged.get_mut(&key) {
            Some(acc) => {
                for (a, r) in acc.values.iter_mut().zip(&row.values) {
                    *a = a.hull(r);
                }
                acc.mult = MultBound::new(
                    acc.mult.lb.max(u64::from(row.mult.lb >= 1)),
                    acc.mult.bg.max(u64::from(row.mult.bg >= 1)),
                    acc.mult.ub.saturating_add(row.mult.ub),
                );
            }
            None => {
                order.push(key.clone());
                merged.insert(
                    key,
                    AuTuple {
                        values: row.values.clone(),
                        mult: MultBound::new(
                            u64::from(row.mult.lb >= 1),
                            u64::from(row.mult.bg >= 1),
                            row.mult.ub,
                        ),
                    },
                );
            }
        }
    }
    let mut out = AuRelation::new(rel.schema().clone());
    for key in order {
        out.push(merged.remove(&key).expect("recorded"));
    }
    out
}

/// An aggregate function kind (mirrors the engine's `AggFunc`; kept local
/// so the bound combination lives below the engine in the crate graph).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggKind {
    /// `COUNT(expr)` — non-null count.
    Count,
    /// `COUNT(*)` — row count.
    CountStar,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

/// One aggregate of an AU aggregation.
#[derive(Clone, Debug)]
pub struct AggSpec {
    /// The function.
    pub kind: AggKind,
    /// Its argument (`None` for `COUNT(*)`).
    pub arg: Option<Expr>,
    /// Output column.
    pub column: Column,
}

/// The selected-guess aggregator — a faithful replica of the engine's
/// `AggState` semantics (COUNT skips unknowns, SUM stays integer until a
/// float appears and accumulates in `f64`, MIN/MAX use SQL comparison,
/// AVG divides `f64` totals), so the SG component of an AU aggregate
/// equals deterministic aggregation over the SG world bit for bit.
enum BgAgg {
    Count(u64),
    Sum {
        total: f64,
        saw_int_only: bool,
        any: bool,
    },
    MinMax {
        best: Option<Value>,
        is_min: bool,
    },
    Avg {
        total: f64,
        n: u64,
    },
}

impl BgAgg {
    fn new(kind: AggKind) -> BgAgg {
        match kind {
            AggKind::Count | AggKind::CountStar => BgAgg::Count(0),
            AggKind::Sum => BgAgg::Sum {
                total: 0.0,
                saw_int_only: true,
                any: false,
            },
            AggKind::Min => BgAgg::MinMax {
                best: None,
                is_min: true,
            },
            AggKind::Max => BgAgg::MinMax {
                best: None,
                is_min: false,
            },
            AggKind::Avg => BgAgg::Avg { total: 0.0, n: 0 },
        }
    }

    fn update(&mut self, value: Option<&Value>, mult: u64) {
        match self {
            BgAgg::Count(n) => match value {
                None => *n += mult,
                Some(v) if !v.is_unknown() => *n += mult,
                _ => {}
            },
            BgAgg::Sum {
                total,
                saw_int_only,
                any,
            } => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *total += x * mult as f64;
                        *any = true;
                        if matches!(v, Value::Float(_)) {
                            *saw_int_only = false;
                        }
                    }
                }
            }
            BgAgg::MinMax { best, is_min } => {
                if let Some(v) = value {
                    if v.is_unknown() {
                        return;
                    }
                    let better = match best {
                        None => true,
                        Some(b) => matches!(
                            (v.sql_cmp(b), *is_min),
                            (Some(Ordering::Less), true) | (Some(Ordering::Greater), false)
                        ),
                    };
                    if better {
                        *best = Some(v.clone());
                    }
                }
            }
            BgAgg::Avg { total, n } => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *total += x * mult as f64;
                        *n += mult;
                    }
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            BgAgg::Count(n) => Value::Int(n as i64),
            BgAgg::Sum {
                total,
                saw_int_only,
                any,
            } => {
                if !any {
                    Value::Null
                } else if saw_int_only {
                    Value::Int(total as i64)
                } else {
                    Value::Float(F64::new(total))
                }
            }
            BgAgg::MinMax { best, .. } => best.unwrap_or(Value::Null),
            BgAgg::Avg { total, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(F64::new(total / n as f64))
                }
            }
        }
    }
}

/// How one tuple's aggregate argument can ground.
#[derive(Clone, Copy, PartialEq, Debug)]
enum ArgClass {
    /// Every grounding is numeric, within `[lo, hi]` (possibly infinite).
    Numeric { lo: f64, hi: f64 },
    /// Every grounding is a known non-numeric value (contributes nothing
    /// to SUM/AVG, counts for COUNT(expr)).
    NonNumeric,
    /// The top range: may ground to anything, including NULL.
    Anything,
}

fn classify_arg(r: &RangeValue) -> ArgClass {
    if r.is_top() {
        return ArgClass::Anything;
    }
    match (r.lb().as_f64(), r.ub().as_f64()) {
        (Some(lo), Some(hi)) => ArgClass::Numeric { lo, hi },
        _ => ArgClass::NonNumeric,
    }
}

/// One possible group member, pre-classified for the bound combination.
#[derive(Clone, Copy)]
struct Member<'a> {
    mult: MultBound,
    /// Certainly in the group's (single-point) key in every world: the
    /// tuple is certainly present and all its key attributes are points
    /// equal to the group key.
    certain: bool,
    arg: Option<ArgClass>,
    arg_range: Option<&'a RangeValue>,
}

/// Contribution corners of one numeric member over multiplicity × value —
/// the enclosure of what `mult` copies within `[lo, hi]` can add to a
/// numeric SUM in a covered world. Shared by [`member_contrib`] and the
/// dense kernel arms of [`agg_bounds_dense`], so the exact corner
/// arithmetic (and its float semantics) has one implementation.
fn numeric_contrib(mult: MultBound, lo: f64, hi: f64) -> (f64, f64) {
    let corners = [
        mult.lb as f64 * lo,
        mult.lb as f64 * hi,
        mult.ub as f64 * lo,
        mult.ub as f64 * hi,
    ];
    // 0 × ±∞ is 0 copies contributing nothing.
    let fix = |x: f64| if x.is_nan() { 0.0 } else { x };
    (
        corners
            .iter()
            .copied()
            .map(fix)
            .fold(f64::INFINITY, f64::min),
        corners
            .iter()
            .copied()
            .map(fix)
            .fold(f64::NEG_INFINITY, f64::max),
    )
}

/// Per-member contribution corners over multiplicity × value — the
/// enclosure of what the member can add to a numeric SUM in a covered
/// world (shared by the SUM and AVG bound combinations).
fn member_contrib(m: &Member) -> (f64, f64) {
    match m.arg {
        Some(ArgClass::Numeric { lo, hi }) => numeric_contrib(m.mult, lo, hi),
        Some(ArgClass::NonNumeric) => (0.0, 0.0),
        Some(ArgClass::Anything) | None => {
            if m.mult.ub == 0 {
                (0.0, 0.0)
            } else {
                (f64::NEG_INFINITY, f64::INFINITY)
            }
        }
    }
}

fn f64_bound(x: f64) -> Bound {
    if x == f64::NEG_INFINITY {
        Bound::NegInf
    } else if x == f64::INFINITY {
        Bound::PosInf
    } else {
        Bound::Val(Value::Float(F64::new(x)))
    }
}

/// The attribute-level bounds of one aggregate over one group's possible
/// members (a cloneable lazy iterator, so per-group member vectors are
/// never materialized per aggregate). `grouped` distinguishes GROUP BY
/// groups (which exist in a world only when non-empty) from the global
/// group (always present, even over an empty input); `case_a` says every
/// covered world group carries exactly the group's selected-guess key
/// (all key hulls are points), so certainly-present point-key members
/// bound from below.
fn agg_bounds<'a>(
    kind: AggKind,
    members: impl Iterator<Item = Member<'a>>,
    grouped: bool,
    case_a: bool,
) -> (Bound, Bound) {
    // Every arm is a single fused pass over the members — the group loop
    // dominates aggregation cost at scale, so the per-member work is kept
    // to one visit (accumulating in member order, which pins the exact
    // float-addition and bound-fold order the multi-pass version had).
    match kind {
        AggKind::CountStar => {
            let mut lb: u64 = 0;
            let mut ub: u64 = 0;
            for m in members {
                if case_a && m.certain {
                    lb += m.mult.lb;
                }
                ub = ub.saturating_add(m.mult.ub);
            }
            if grouped {
                // A materialized world group is non-empty.
                lb = lb.max(1);
                if !case_a {
                    lb = 1;
                }
            }
            (
                Bound::Val(Value::Int(lb as i64)),
                Bound::Val(Value::Int(i64::try_from(ub).unwrap_or(i64::MAX))),
            )
        }
        AggKind::Count => {
            let mut lb: u64 = 0;
            let mut ub: u64 = 0;
            for m in members {
                if case_a && m.certain && !matches!(m.arg, Some(ArgClass::Anything)) {
                    lb += m.mult.lb;
                }
                ub = ub.saturating_add(m.mult.ub);
            }
            if grouped && !case_a {
                lb = 0;
            }
            (
                Bound::Val(Value::Int(lb as i64)),
                Bound::Val(Value::Int(i64::try_from(ub).unwrap_or(i64::MAX))),
            )
        }
        AggKind::Sum => {
            let mut has_certain_numeric = false;
            let mut all_numeric = true;
            let mut lo = 0.0f64;
            let mut hi = 0.0f64;
            for m in members {
                let numeric = matches!(m.arg, Some(ArgClass::Numeric { .. }));
                all_numeric &= numeric;
                let certain = case_a && m.certain;
                has_certain_numeric |= certain && m.mult.lb >= 1 && numeric;
                let (cl, ch) = member_contrib(&m);
                if certain {
                    lo += cl;
                    hi += ch;
                } else {
                    lo += cl.min(0.0);
                    hi += ch.max(0.0);
                }
            }
            // Whether SUM may be NULL in some covered world (no numeric
            // contribution there).
            let maybe_null = if grouped && !case_a {
                !all_numeric
            } else if grouped {
                !(has_certain_numeric || all_numeric)
            } else {
                !has_certain_numeric
            };
            if maybe_null {
                return (Bound::NegInf, Bound::PosInf);
            }
            (f64_bound(lo), f64_bound(hi))
        }
        AggKind::Min | AggKind::Max => {
            let is_min = kind == AggKind::Min;
            let fold = |acc: Option<Bound>, candidate: Bound| {
                Some(match acc {
                    None => candidate,
                    Some(b) => {
                        if is_min {
                            b.min_bound(candidate)
                        } else {
                            b.max_bound(candidate)
                        }
                    }
                })
            };
            // A certainly-present member with bounded values anchors one
            // side; the hull of all possible members gives the other.
            let mut anchor: Option<Bound> = None;
            let mut all_known = true;
            let mut outer_lo: Option<Bound> = None;
            let mut outer_hi: Option<Bound> = None;
            for m in members {
                let known = !matches!(m.arg, Some(ArgClass::Anything) | None);
                all_known &= known;
                if case_a && m.certain && known {
                    let r = m.arg_range.expect("arg present");
                    anchor = fold(
                        anchor,
                        if is_min {
                            r.ub().clone()
                        } else {
                            r.lb().clone()
                        },
                    );
                }
                if m.mult.ub >= 1 {
                    if let Some(r) = m.arg_range {
                        outer_lo = Some(match outer_lo {
                            None => r.lb().clone(),
                            Some(b) => b.min_bound(r.lb().clone()),
                        });
                        outer_hi = Some(match outer_hi {
                            None => r.ub().clone(),
                            Some(b) => b.max_bound(r.ub().clone()),
                        });
                    }
                }
            }
            let outer_lo = outer_lo.unwrap_or(Bound::NegInf);
            let outer_hi = outer_hi.unwrap_or(Bound::PosInf);
            match anchor {
                Some(b) if case_a => {
                    if is_min {
                        (outer_lo, b)
                    } else {
                        (b, outer_hi)
                    }
                }
                // Grouped non-point-key groups still materialize non-empty,
                // so a fully-bounded member pool hulls the result.
                _ if grouped && all_known => (outer_lo, outer_hi),
                _ => (Bound::NegInf, Bound::PosInf),
            }
        }
        AggKind::Avg => {
            // Hull of the possible numeric groundings: the mean of the
            // numeric contributions stays inside their convex hull. A
            // possibly-present member that may ground to *anything* voids
            // the enclosure — its grounding can drag the mean arbitrarily
            // far (hulling only the numeric members, as this arm used to,
            // was unsound tightening). The sum/count corner quotient then
            // tightens the hull: the sum reuses the SUM contribution
            // corners, certain numeric members pin the count from below
            // (≥ 1 by admissibility — with no certain numeric member a
            // covered world group is still non-empty and all-numeric),
            // possible members cap it from above. Sound for any sum/count
            // correlation since the quotient box encloses every corner
            // pairing.
            let mut has_certain_numeric = false;
            let mut all_numeric = true;
            let mut voided = false;
            let mut hull_lo = f64::INFINITY;
            let mut hull_hi = f64::NEG_INFINITY;
            let mut sum_lo = 0.0f64;
            let mut sum_hi = 0.0f64;
            let mut cnt_lo: u64 = 0;
            let mut cnt_hi: u64 = 0;
            for m in members {
                let numeric = matches!(m.arg, Some(ArgClass::Numeric { .. }));
                all_numeric &= numeric;
                let certain = case_a && m.certain;
                has_certain_numeric |= certain && m.mult.lb >= 1 && numeric;
                if m.mult.ub >= 1 {
                    match m.arg {
                        Some(ArgClass::Numeric { lo, hi }) => {
                            hull_lo = hull_lo.min(lo);
                            hull_hi = hull_hi.max(hi);
                        }
                        Some(ArgClass::NonNumeric) => {}
                        Some(ArgClass::Anything) | None => voided = true,
                    }
                }
                let (cl, ch) = member_contrib(&m);
                if certain {
                    sum_lo += cl;
                    sum_hi += ch;
                } else {
                    sum_lo += cl.min(0.0);
                    sum_hi += ch.max(0.0);
                }
                if numeric {
                    if certain {
                        cnt_lo += m.mult.lb;
                    }
                    cnt_hi = cnt_hi.saturating_add(m.mult.ub);
                }
            }
            let admissible = if grouped {
                (case_a && has_certain_numeric) || all_numeric
            } else {
                has_certain_numeric
            };
            if !admissible || voided || hull_lo > hull_hi {
                return (Bound::NegInf, Bound::PosInf);
            }
            let cnt_lo = cnt_lo.max(1) as f64;
            let cnt_hi = cnt_hi.max(1) as f64;
            let corners = [
                sum_lo / cnt_lo,
                sum_lo / cnt_hi,
                sum_hi / cnt_lo,
                sum_hi / cnt_hi,
            ];
            let q_lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
            let q_hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let lo = hull_lo.max(q_lo);
            let hi = hull_hi.min(q_hi);
            if lo > hi {
                // Vacuous (no covered world materializes the group with a
                // numeric value): stay conservative.
                return (Bound::NegInf, Bound::PosInf);
            }
            (f64_bound(lo), f64_bound(hi))
        }
    }
}

/// One aggregation-input column as a flattened `lb/bg/ub` triple — the
/// columnar twin of a `Vec<RangeValue>`.
///
/// The dense variants are the triple-column-native fast path: a columnar
/// executor that already holds an attribute as three same-typed vectors
/// (the AU flattened layout) passes the slices straight through, and the
/// bound combination runs typed kernels over them instead of folding
/// per-row `RangeValue`s. **Invariant**: dense triples must be canonical —
/// element-wise `lb ≤ bg ≤ ub` under the domain order (which for same-typed
/// `i64`/[`F64`] columns is the native `Ord`). Non-canonical, mixed-type,
/// nullable or computed columns go through [`TripleCol::Rows`], the exact
/// per-row representation.
pub enum TripleCol {
    /// A dense all-integer triple (canonical).
    Int {
        /// Lower bounds.
        lb: Vec<i64>,
        /// Selected guesses.
        bg: Vec<i64>,
        /// Upper bounds.
        ub: Vec<i64>,
    },
    /// A dense all-float triple (canonical under the [`F64`] total order).
    Float {
        /// Lower bounds.
        lb: Vec<F64>,
        /// Selected guesses.
        bg: Vec<F64>,
        /// Upper bounds.
        ub: Vec<F64>,
    },
    /// Per-row fallback: materialized ranges.
    Rows(Vec<RangeValue>),
}

impl TripleCol {
    fn view(&self) -> ColView<'_> {
        match self {
            TripleCol::Int { lb, bg, ub } => ColView::Int { lb, bg, ub },
            TripleCol::Float { lb, bg, ub } => ColView::Float { lb, bg, ub },
            TripleCol::Rows(rows) => ColView::Rows(rows),
        }
    }
}

/// Borrowed view of one aggregation-input column; what [`aggregate_view`]
/// actually runs over, so [`AggInput`] (row-backed) and [`AggCols`]
/// (triple-backed) share the whole grouping + bound combination.
#[derive(Clone, Copy)]
enum ColView<'a> {
    Int {
        lb: &'a [i64],
        bg: &'a [i64],
        ub: &'a [i64],
    },
    Float {
        lb: &'a [F64],
        bg: &'a [F64],
        ub: &'a [F64],
    },
    Rows(&'a [RangeValue]),
}

impl<'a> ColView<'a> {
    /// Whether row `i`'s range pins a single known value. For dense
    /// triples structural equality of the three same-typed slots is
    /// exactly [`RangeValue::is_point`] (dense columns hold no unknowns).
    fn is_point(&self, i: usize) -> bool {
        match self {
            ColView::Int { lb, bg, ub } => lb[i] == bg[i] && bg[i] == ub[i],
            ColView::Float { lb, bg, ub } => lb[i] == bg[i] && bg[i] == ub[i],
            ColView::Rows(rows) => rows[i].is_point(),
        }
    }

    /// Row `i`'s selected guess.
    fn bg_at(&self, i: usize) -> Value {
        match self {
            ColView::Int { bg, .. } => Value::Int(bg[i]),
            ColView::Float { bg, .. } => Value::Float(bg[i]),
            ColView::Rows(rows) => rows[i].bg.clone(),
        }
    }

    /// Row `i` materialized as a range (used off the hot member loops:
    /// hull folding and intersection tests; alloc-free for dense scalars).
    fn range_at(&self, i: usize) -> RangeValue {
        match self {
            ColView::Int { lb, bg, ub } => RangeValue::new(
                Bound::Val(Value::Int(lb[i])),
                Value::Int(bg[i]),
                Bound::Val(Value::Int(ub[i])),
            ),
            ColView::Float { lb, bg, ub } => RangeValue::new(
                Bound::Val(Value::Float(lb[i])),
                Value::Float(bg[i]),
                Bound::Val(Value::Float(ub[i])),
            ),
            ColView::Rows(rows) => rows[i].clone(),
        }
    }

    /// `range_cmp(bg_i, v) == Equal` without cloning row-backed guesses.
    fn bg_eq(&self, i: usize, v: &Value) -> bool {
        match self {
            ColView::Int { bg, .. } => range_cmp(&Value::Int(bg[i]), v) == Ordering::Equal,
            ColView::Float { bg, .. } => range_cmp(&Value::Float(bg[i]), v) == Ordering::Equal,
            ColView::Rows(rows) => range_cmp(&rows[i].bg, v) == Ordering::Equal,
        }
    }

    /// Whether row `i`'s range intersects `h`.
    fn intersects_at(&self, i: usize, h: &RangeValue) -> bool {
        match self {
            ColView::Rows(rows) => rows[i].intersects(h),
            _ => self.range_at(i).intersects(h),
        }
    }
}

/// A scalar a dense triple can hold: totally ordered (matching the domain
/// order for same-typed comparisons), numeric, and convertible back into a
/// [`Value`] for the output bounds.
trait DenseVal: Copy + Ord {
    fn to_value(self) -> Value;
    fn to_f64(self) -> f64;
}

impl DenseVal for i64 {
    fn to_value(self) -> Value {
        Value::Int(self)
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl DenseVal for F64 {
    fn to_value(self) -> Value {
        Value::Float(self)
    }
    fn to_f64(self) -> f64 {
        self.get()
    }
}

/// [`agg_bounds`] specialized to a dense canonical triple: every member's
/// argument classifies `Numeric { lb_i, ub_i }` (dense columns hold no
/// unknowns and no infinities), so the per-member `RangeValue` fold
/// collapses to typed scalar loops. Accumulation runs in the same member
/// order with the same float operations ([`numeric_contrib`], `f64`
/// min/max, native `Ord` for the bound folds — which is the domain order
/// for same-typed scalars), so the bounds are byte-identical to the
/// generic path.
#[allow(clippy::too_many_arguments)]
fn agg_bounds_dense<T: DenseVal>(
    kind: AggKind,
    lb: &[T],
    ub: &[T],
    possible: &[usize],
    certain_flags: &[bool],
    mults: &[MultBound],
    grouped: bool,
    case_a: bool,
) -> (Bound, Bound) {
    match kind {
        AggKind::CountStar | AggKind::Count => {
            let mut lo: u64 = 0;
            let mut hi: u64 = 0;
            for (&i, &certain) in possible.iter().zip(certain_flags) {
                // A dense argument is never `Anything`, so COUNT(expr)'s
                // exclusion of possibly-NULL members never fires.
                if case_a && certain {
                    lo += mults[i].lb;
                }
                hi = hi.saturating_add(mults[i].ub);
            }
            if grouped {
                if kind == AggKind::CountStar {
                    lo = lo.max(1);
                    if !case_a {
                        lo = 1;
                    }
                } else if !case_a {
                    lo = 0;
                }
            }
            (
                Bound::Val(Value::Int(lo as i64)),
                Bound::Val(Value::Int(i64::try_from(hi).unwrap_or(i64::MAX))),
            )
        }
        AggKind::Sum => {
            let mut has_certain_numeric = false;
            let mut lo = 0.0f64;
            let mut hi = 0.0f64;
            for (&i, &c) in possible.iter().zip(certain_flags) {
                let certain = case_a && c;
                has_certain_numeric |= certain && mults[i].lb >= 1;
                let (cl, ch) = numeric_contrib(mults[i], lb[i].to_f64(), ub[i].to_f64());
                if certain {
                    lo += cl;
                    hi += ch;
                } else {
                    lo += cl.min(0.0);
                    hi += ch.max(0.0);
                }
            }
            // All members are numeric, so SUM can only be NULL in the
            // global group with no certain numeric contributor.
            if !grouped && !has_certain_numeric {
                return (Bound::NegInf, Bound::PosInf);
            }
            (f64_bound(lo), f64_bound(hi))
        }
        AggKind::Min | AggKind::Max => {
            let is_min = kind == AggKind::Min;
            let mut anchor: Option<T> = None;
            let mut outer_lo: Option<T> = None;
            let mut outer_hi: Option<T> = None;
            for (&i, &c) in possible.iter().zip(certain_flags) {
                if case_a && c {
                    let cand = if is_min { ub[i] } else { lb[i] };
                    anchor = Some(match anchor {
                        None => cand,
                        Some(b) => {
                            if is_min {
                                b.min(cand)
                            } else {
                                b.max(cand)
                            }
                        }
                    });
                }
                if mults[i].ub >= 1 {
                    outer_lo = Some(match outer_lo {
                        None => lb[i],
                        Some(b) => b.min(lb[i]),
                    });
                    outer_hi = Some(match outer_hi {
                        None => ub[i],
                        Some(b) => b.max(ub[i]),
                    });
                }
            }
            let outer_lo = outer_lo.map_or(Bound::NegInf, |v| Bound::Val(v.to_value()));
            let outer_hi = outer_hi.map_or(Bound::PosInf, |v| Bound::Val(v.to_value()));
            match anchor {
                // `anchor` is only ever set under `case_a && certain`.
                Some(b) => {
                    if is_min {
                        (outer_lo, Bound::Val(b.to_value()))
                    } else {
                        (Bound::Val(b.to_value()), outer_hi)
                    }
                }
                // Every dense member is known, so grouped non-point-key
                // groups always hull.
                None if grouped => (outer_lo, outer_hi),
                None => (Bound::NegInf, Bound::PosInf),
            }
        }
        AggKind::Avg => {
            let mut has_certain_numeric = false;
            let mut hull_lo = f64::INFINITY;
            let mut hull_hi = f64::NEG_INFINITY;
            let mut sum_lo = 0.0f64;
            let mut sum_hi = 0.0f64;
            let mut cnt_lo: u64 = 0;
            let mut cnt_hi: u64 = 0;
            for (&i, &c) in possible.iter().zip(certain_flags) {
                let certain = case_a && c;
                has_certain_numeric |= certain && mults[i].lb >= 1;
                if mults[i].ub >= 1 {
                    hull_lo = hull_lo.min(lb[i].to_f64());
                    hull_hi = hull_hi.max(ub[i].to_f64());
                }
                let (cl, ch) = numeric_contrib(mults[i], lb[i].to_f64(), ub[i].to_f64());
                if certain {
                    sum_lo += cl;
                    sum_hi += ch;
                } else {
                    sum_lo += cl.min(0.0);
                    sum_hi += ch.max(0.0);
                }
                if certain {
                    cnt_lo += mults[i].lb;
                }
                cnt_hi = cnt_hi.saturating_add(mults[i].ub);
            }
            // All-numeric members: grouped groups are always admissible
            // and nothing voids the hull.
            let admissible = grouped || has_certain_numeric;
            if !admissible || hull_lo > hull_hi {
                return (Bound::NegInf, Bound::PosInf);
            }
            let cnt_lo = cnt_lo.max(1) as f64;
            let cnt_hi = cnt_hi.max(1) as f64;
            let corners = [
                sum_lo / cnt_lo,
                sum_lo / cnt_hi,
                sum_hi / cnt_lo,
                sum_hi / cnt_hi,
            ];
            let q_lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
            let q_hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let lo = hull_lo.max(q_lo);
            let hi = hull_hi.min(q_hi);
            if lo > hi {
                return (Bound::NegInf, Bound::PosInf);
            }
            (f64_bound(lo), f64_bound(hi))
        }
    }
}

/// Pre-evaluated, column-major aggregation input: every group-key and
/// aggregate-argument range for every row, plus the row multiplicities.
/// Produced by [`aggregate`] from an [`AuRelation`], or directly by a
/// columnar executor that evaluated the expressions batch-at-a-time —
/// both feed [`aggregate_prepared`], so the bound combination has exactly
/// one implementation.
pub struct AggInput {
    /// Group-key ranges, one vector (of `n_rows` entries) per key
    /// expression.
    pub keys: Vec<Vec<RangeValue>>,
    /// Aggregate-argument ranges, one optional vector per aggregate
    /// (`None` for `COUNT(*)`).
    pub args: Vec<Option<Vec<RangeValue>>>,
    /// Tuple multiplicity bounds, one per input row.
    pub mults: Vec<MultBound>,
}

/// Triple-column-native aggregation input: like [`AggInput`] but each
/// column is a [`TripleCol`], so dense `lb/bg/ub` vectors flow straight
/// from a columnar executor's canonical chunks into the typed kernel arms
/// of the bound combination — no per-row [`RangeValue`] gathering.
pub struct AggCols {
    /// Group-key triples, one per key expression.
    pub keys: Vec<TripleCol>,
    /// Aggregate-argument triples, one optional entry per aggregate
    /// (`None` for `COUNT(*)`).
    pub args: Vec<Option<TripleCol>>,
    /// Tuple multiplicity bounds, one per input row.
    pub mults: Vec<MultBound>,
}

/// γ over triple-column input: [`aggregate_prepared`] fed from dense
/// `lb/bg/ub` columns where the executor has them. Output is
/// byte-identical to the row-backed path for the same logical input.
pub fn aggregate_cols(input: &AggCols, kinds: &[AggKind], schema: Schema) -> AuRelation {
    let keys: Vec<ColView> = input.keys.iter().map(TripleCol::view).collect();
    let args: Vec<Option<ColView>> = input
        .args
        .iter()
        .map(|c| c.as_ref().map(TripleCol::view))
        .collect();
    aggregate_view(&keys, &args, &input.mults, kinds, schema)
}

/// γ over pre-evaluated input: the grouping + bound combination of
/// [`aggregate`] without expression evaluation. `kinds` gives one
/// aggregate function per `input.args` entry; `schema` is the output
/// schema (key columns then aggregate columns). Grouped iff
/// `input.keys` is non-empty.
pub fn aggregate_prepared(input: &AggInput, kinds: &[AggKind], schema: Schema) -> AuRelation {
    let keys: Vec<ColView> = input.keys.iter().map(|c| ColView::Rows(c)).collect();
    let args: Vec<Option<ColView>> = input
        .args
        .iter()
        .map(|c| c.as_deref().map(ColView::Rows))
        .collect();
    aggregate_view(&keys, &args, &input.mults, kinds, schema)
}

/// The engine behind [`aggregate_prepared`] and [`aggregate_cols`]:
/// grouping and bound combination over column views — typed kernels where
/// a column is a dense triple, the per-row fold where it is not. One
/// implementation, so the row and columnar feeds cannot diverge.
fn aggregate_view(
    keys: &[ColView],
    args: &[Option<ColView>],
    mults: &[MultBound],
    kinds: &[AggKind],
    schema: Schema,
) -> AuRelation {
    let n_keys = keys.len();
    let n_rows = mults.len();
    let grouped = n_keys > 0;

    // Pre-classify each tuple once: whether all its key ranges are points
    // (the common certain case) and, per row-backed aggregate column, its
    // argument classes. Dense triples skip the per-row classification —
    // a canonical scalar triple always classifies `Numeric { lb, ub }`,
    // which the typed kernel arms read straight off the slices.
    let key_points: Vec<bool> = (0..n_rows)
        .map(|i| keys.iter().all(|c| c.is_point(i)))
        .collect();
    let arg_classes: Vec<Option<Vec<ArgClass>>> = args
        .iter()
        .map(|col| match col {
            Some(ColView::Rows(rows)) => Some(rows.iter().map(classify_arg).collect()),
            _ => None,
        })
        .collect();

    // Partition by selected-guess key, first-seen order; bucket point-keyed
    // tuples by coercion-normalized key so point-hull groups find their
    // possible members by lookup instead of rescanning the whole input per
    // group (O(N) instead of O(groups × N)). Single all-integer keys (the
    // common GROUP BY shape) partition through an i64 map — one integer
    // hash per row instead of a tuple-of-values hash — and only the final
    // per-group handful of keys materializes as tuples.
    let mut order: Vec<Tuple> = Vec::new();
    let mut groups: FxHashMap<Tuple, Vec<usize>> = FxHashMap::default();
    let mut point_buckets: FxHashMap<Tuple, Vec<usize>> = FxHashMap::default();
    let mut ranged: Vec<usize> = Vec::new();
    let int_fast = n_keys == 1
        && match keys[0] {
            ColView::Int { .. } => true,
            ColView::Rows(rows) => rows.iter().all(|r| matches!(r.bg, Value::Int(_))),
            ColView::Float { .. } => false,
        };
    if int_fast {
        let int_key = |i: usize| -> i64 {
            match keys[0] {
                ColView::Int { bg, .. } => bg[i],
                ColView::Rows(rows) => match rows[i].bg {
                    Value::Int(k) => k,
                    _ => unreachable!("int fast path checked"),
                },
                ColView::Float { .. } => unreachable!("int fast path checked"),
            }
        };
        struct IntSlot {
            members: Vec<usize>,
            points: Vec<usize>,
        }
        let mut slots: FxHashMap<i64, IntSlot> = FxHashMap::default();
        let mut int_order: Vec<i64> = Vec::new();
        for (i, &point) in key_points.iter().enumerate() {
            let k = int_key(i);
            let slot = slots.entry(k).or_insert_with(|| {
                int_order.push(k);
                IntSlot {
                    members: Vec::new(),
                    points: Vec::new(),
                }
            });
            slot.members.push(i);
            if point {
                slot.points.push(i);
            } else {
                ranged.push(i);
            }
        }
        // `join_key` is the identity on Int, so the raw and normalized
        // keys coincide and both maps share the slot's index lists.
        for k in int_order {
            let slot = slots.remove(&k).expect("slot recorded");
            let key = Tuple::new(vec![Value::Int(k)]);
            order.push(key.clone());
            point_buckets.insert(key.clone(), slot.points);
            groups.insert(key, slot.members);
        }
    } else {
        for (i, &point) in key_points.iter().enumerate() {
            let key: Tuple = keys.iter().map(|c| c.bg_at(i)).collect();
            if point {
                let norm: Tuple = key.values().iter().map(|v| v.clone().join_key()).collect();
                point_buckets.entry(norm).or_default().push(i);
            } else {
                ranged.push(i);
            }
            groups
                .entry(key.clone())
                .or_insert_with(|| {
                    order.push(key);
                    Vec::new()
                })
                .push(i);
        }
    }
    // Global aggregation over an empty input still yields one row.
    if !grouped && order.is_empty() {
        order.push(Tuple::empty());
        groups.insert(Tuple::empty(), Vec::new());
    }
    let normalize =
        |key: &Tuple| -> Tuple { key.values().iter().map(|v| v.clone().join_key()).collect() };

    let mut out = AuRelation::new(schema);

    for key in order {
        let member_idx = groups.remove(&key).expect("group recorded");
        // Key hulls over the group's own (selected-guess) members. When
        // every member is point-keyed the hull is the shared point — no
        // per-member hull folding.
        let all_member_points = member_idx.iter().all(|&i| key_points[i]);
        let hulls: Vec<RangeValue> = (0..n_keys)
            .map(|k| {
                let mut hull = keys[k]
                    .range_at(member_idx[0])
                    .with_bg(key.get(k).expect("key arity").clone());
                if !all_member_points {
                    for &i in &member_idx[1..] {
                        hull = hull.hull(&keys[k].range_at(i));
                    }
                }
                hull
            })
            .collect();
        // Possible members: every tuple whose key ranges intersect the
        // hulls (a grounding may land any of them in a covered world
        // group). Always a superset of the selected-guess members. When
        // the hull is a single point, point-keyed tuples intersect it iff
        // their (coercion-normalized) key equals the group key — a bucket
        // lookup; only range-keyed tuples need the intersection test.
        // Non-point hulls (the uncertain-key minority) fall back to the
        // full scan.
        let case_a = hulls.iter().all(RangeValue::is_point);
        let intersects_hulls =
            |i: usize| keys.iter().zip(&hulls).all(|(c, h)| c.intersects_at(i, h));
        let possible: Vec<usize> = if case_a {
            let mut candidates: Vec<usize> = point_buckets
                .get(&normalize(&key))
                .cloned()
                .unwrap_or_default();
            // Bucket members are recorded in input order; the sort is
            // only needed once range-keyed candidates interleave.
            let n_bucket = candidates.len();
            candidates.extend(ranged.iter().copied().filter(|&i| intersects_hulls(i)));
            if candidates.len() > n_bucket {
                candidates.sort_unstable();
            }
            candidates
        } else {
            (0..n_rows).filter(|&i| intersects_hulls(i)).collect()
        };
        // One certainty flag per possible member, shared by every
        // aggregate's bound computation and the group's multiplicity.
        let certain_flags: Vec<bool> = possible
            .iter()
            .map(|&i| {
                mults[i].lb >= 1
                    && key_points[i]
                    && keys.iter().zip(key.values()).all(|(c, v)| c.bg_eq(i, v))
            })
            .collect();
        // Selected-guess values: ordinary aggregation over the SG members
        // (those whose selected-guess multiplicity materializes the row).
        let mut in_sg_any = false;
        let mut bg_states: Vec<BgAgg> = kinds.iter().map(|&k| BgAgg::new(k)).collect();
        for &i in &member_idx {
            if mults[i].bg < 1 {
                continue;
            }
            in_sg_any = true;
            for (s, argcol) in bg_states.iter_mut().zip(args) {
                match argcol {
                    Some(ColView::Int { bg, .. }) => {
                        s.update(Some(&Value::Int(bg[i])), mults[i].bg)
                    }
                    Some(ColView::Float { bg, .. }) => {
                        s.update(Some(&Value::Float(bg[i])), mults[i].bg)
                    }
                    Some(ColView::Rows(rows)) => s.update(Some(&rows[i].bg), mults[i].bg),
                    None => s.update(None, mults[i].bg),
                }
            }
        }

        // Bounds per aggregate over the possible members — a lazy,
        // cloneable view over the shared index/flag vectors (borrowed arg
        // ranges and precomputed classes; nothing clones or allocates per
        // aggregate).
        let mut values: Vec<RangeValue> = hulls;
        for (a_idx, (&kind, state)) in kinds.iter().zip(bg_states).enumerate() {
            let (lb, ub) = match args[a_idx] {
                Some(ColView::Int { lb, ub, .. }) => agg_bounds_dense(
                    kind,
                    lb,
                    ub,
                    &possible,
                    &certain_flags,
                    mults,
                    grouped,
                    case_a,
                ),
                Some(ColView::Float { lb, ub, .. }) => agg_bounds_dense(
                    kind,
                    lb,
                    ub,
                    &possible,
                    &certain_flags,
                    mults,
                    grouped,
                    case_a,
                ),
                Some(ColView::Rows(rows)) => {
                    let classes = arg_classes[a_idx].as_deref();
                    let members = possible
                        .iter()
                        .zip(&certain_flags)
                        .map(move |(&i, &certain)| Member {
                            mult: mults[i],
                            certain,
                            arg: classes.map(|c| c[i]),
                            arg_range: Some(&rows[i]),
                        });
                    agg_bounds(kind, members, grouped, case_a)
                }
                None => {
                    let members =
                        possible
                            .iter()
                            .zip(&certain_flags)
                            .map(|(&i, &certain)| Member {
                                mult: mults[i],
                                certain,
                                arg: None,
                                arg_range: None,
                            });
                    agg_bounds(kind, members, grouped, case_a)
                }
            };
            values.push(RangeValue::new(lb, state.finish(), ub));
        }

        let certainly_materializes = !grouped || certain_flags.iter().any(|&c| c);
        let in_sg = !grouped || in_sg_any;
        let ub: u64 = if grouped {
            possible
                .iter()
                .map(|&i| mults[i].ub)
                .fold(0, u64::saturating_add)
        } else {
            1
        };
        out.push(AuTuple {
            values,
            mult: MultBound::new(
                u64::from(certainly_materializes),
                u64::from(in_sg),
                ub.max(u64::from(in_sg)).max(1),
            ),
        });
    }
    out
}

/// γ: grouping + aggregation with sound attribute-level bounds.
///
/// Output groups are the distinct *selected-guess* key tuples, in
/// first-seen order (matching the deterministic engines). For each output
/// group: its key attributes hull the member ranges (so every possible
/// world's group key that any member may take is covered); all input
/// tuples whose key ranges intersect the hull are *possible members* and
/// widen the aggregate bounds; certainly-present members with single-point
/// keys ground the lower bounds; the multiplicity triple is
/// `[certainly materializes, in the SG world, Σ possible member copies]`.
pub fn aggregate(
    rel: &AuRelation,
    group_by: &[(Expr, Column)],
    aggregates: &[AggSpec],
) -> Result<AuRelation, ExprError> {
    let bound_keys: Vec<Expr> = group_by
        .iter()
        .map(|(e, _)| e.bind(rel.schema()))
        .collect::<Result<_, _>>()?;
    let bound_args: Vec<Option<Expr>> = aggregates
        .iter()
        .map(|a| a.arg.as_ref().map(|e| e.bind(rel.schema())).transpose())
        .collect::<Result<_, _>>()?;

    // Evaluate keys and arguments per tuple (errors surface in input order,
    // keys before arguments, like the deterministic engines).
    let n_rows = rel.rows().len();
    let mut input = AggInput {
        keys: (0..bound_keys.len())
            .map(|_| Vec::with_capacity(n_rows))
            .collect(),
        args: bound_args
            .iter()
            .map(|e| e.as_ref().map(|_| Vec::with_capacity(n_rows)))
            .collect(),
        mults: Vec::with_capacity(n_rows),
    };
    for row in rel.rows() {
        let bg_tuple = row.bg_tuple();
        for (e, col) in bound_keys.iter().zip(&mut input.keys) {
            col.push(eval_range(e, &row.values, &bg_tuple)?);
        }
        for (e, col) in bound_args.iter().zip(&mut input.args) {
            if let (Some(e), Some(col)) = (e.as_ref(), col.as_mut()) {
                col.push(eval_range(e, &row.values, &bg_tuple)?);
            }
        }
        input.mults.push(row.mult);
    }

    let kinds: Vec<AggKind> = aggregates.iter().map(|a| a.kind).collect();
    let mut columns: Vec<Column> = group_by.iter().map(|(_, c)| c.clone()).collect();
    columns.extend(aggregates.iter().map(|a| a.column.clone()));
    Ok(aggregate_prepared(&input, &kinds, Schema::new(columns)))
}

/// Sort rows by selected-guess keys (outermost first, per-key direction)
/// with the full encoded row as the deterministic tie-break. `descending`
/// flags parallel `keys`. Ordering is presentation-level: it reflects the
/// SG world, like the deterministic engines' ORDER BY over the SG.
pub fn sort_by_bg(rel: &AuRelation, keys: &[(Expr, bool)]) -> Result<AuRelation, ExprError> {
    let bound: Vec<(Expr, bool)> = keys
        .iter()
        .map(|(e, d)| Ok((e.bind(rel.schema())?, *d)))
        .collect::<Result<_, ExprError>>()?;
    let mut decorated: Vec<(Vec<Value>, usize)> = rel
        .rows()
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let bg = row.bg_tuple();
            let key: Vec<Value> = bound
                .iter()
                .map(|(e, _)| e.eval(&bg))
                .collect::<Result<_, _>>()?;
            Ok((key, i))
        })
        .collect::<Result<_, ExprError>>()?;
    let tie_break: Vec<Tuple> = rel.rows().iter().map(encode_row).collect();
    decorated.sort_by(|(ka, ia), (kb, ib)| {
        for ((va, vb), (_, desc)) in ka.iter().zip(kb).zip(&bound) {
            let ord = va.cmp(vb);
            let ord = if *desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        tie_break[*ia].cmp(&tie_break[*ib])
    });
    let mut out = AuRelation::new(rel.schema().clone());
    for (_, i) in decorated {
        out.push(rel.rows()[i].clone());
    }
    Ok(out)
}

/// Truncate to the first `limit` rows (AU tuples, not grounded copies —
/// presentation-level, like [`sort_by_bg`]).
pub fn limit(rel: &AuRelation, n: usize) -> AuRelation {
    let mut out = AuRelation::new(rel.schema().clone());
    for row in rel.rows().iter().take(n) {
        out.push(row.clone());
    }
    out
}

/// Whether two attribute ranges can be equal under *some* grounding, with
/// NULL treated IS-NOT-DISTINCT-style (NULL matches NULL — the bag
/// engine's EXCEPT matching, not join equality). A definite NULL grounds
/// to NULL in every world, so it possibly matches only another definite
/// NULL or a range wide enough to admit NULL (top). Bounded ranges ground
/// to known values: equality is possible when the intervals intersect, or
/// when the selected guesses are not mutually comparable under SQL
/// (cross-family groundings compare `None` — three-valued ANY, i.e.
/// possibly equal). Over-approximating possible equality is the sound
/// direction everywhere this is consumed (it only lowers `lb`s and raises
/// `ub`s).
fn possibly_equal_nd(a: &RangeValue, b: &RangeValue) -> bool {
    match (a.is_null(), b.is_null()) {
        (true, true) => true,
        (true, false) => b.is_top(),
        (false, true) => a.is_top(),
        (false, false) => {
            a.is_top() || b.is_top() || a.intersects(b) || a.bg.sql_cmp(&b.bg).is_none()
        }
    }
}

/// Whether two attribute ranges are equal under *every* grounding
/// (IS-NOT-DISTINCT): both definite NULL, or both points whose selected
/// guesses compare equal under SQL. Under-approximating certain equality
/// is the sound direction (it only raises `ub`s).
fn certainly_equal_nd(a: &RangeValue, b: &RangeValue) -> bool {
    match (a.is_null(), b.is_null()) {
        (true, true) => true,
        (false, false) => {
            a.is_point() && b.is_point() && a.bg.sql_cmp(&b.bg) == Some(Ordering::Equal)
        }
        _ => false,
    }
}

fn rows_possibly_equal(a: &[RangeValue], b: &[RangeValue]) -> bool {
    a.iter().zip(b).all(|(x, y)| possibly_equal_nd(x, y))
}

fn rows_certainly_equal(a: &[RangeValue], b: &[RangeValue]) -> bool {
    a.iter().zip(b).all(|(x, y)| certainly_equal_nd(x, y))
}

/// Whether the row denotes one known tuple in every world: each attribute
/// is a point or a definite NULL.
fn certain_valued(row: &[RangeValue]) -> bool {
    row.iter().all(|v| v.is_null() || v.is_point())
}

/// `−` (EXCEPT): bag difference under the deterministic engine's
/// IS-NOT-DISTINCT matching, lifted to `[lb, bg, ub]` triples. Output
/// rows keep the left side's values and order; rows whose upper bound
/// drops to zero are certainly removed and disappear.
///
/// The selected-guess component replays the bag engine exactly. For
/// `EXCEPT ALL` the right side's SG multiplicities form a per-tuple
/// removal budget consumed by left rows in scan order (first-`k`
/// removal); for `EXCEPT` the output is the first SG occurrence of each
/// left tuple with no SG right match. The bounds bracket every world:
///
/// * `lb` — survivors guaranteed in every world: the left row's `lb`
///   minus every right-side copy that might ground equal to it
///   (Σ `ub` over [`rows_possibly_equal`] right rows).
/// * `ub` — survivors possible in some world: reducible only when the
///   left row is [`certain_valued`] (its tuple is fixed across worlds).
///   The certain removal budget Σ `lb` over [`rows_certainly_equal`]
///   right rows shrinks it — minus the part that *earlier* left rows
///   might absorb first (removal is first-`k` in scan order, so
///   Σ `ub` over earlier possibly-equal left rows protects this row's
///   copies from the budget).
pub fn except(left: &AuRelation, right: &AuRelation, all: bool) -> Result<AuRelation, SchemaError> {
    left.schema().check_union_compatible(right.schema())?;
    Ok(if all {
        except_all(left, right)
    } else {
        except_distinct(left, right)
    })
}

fn except_all(left: &AuRelation, right: &AuRelation) -> AuRelation {
    // SG removal budget per normalized selected-guess tuple.
    let mut budget: FxHashMap<Tuple, u64> = FxHashMap::default();
    for r in right.rows() {
        if r.mult.bg >= 1 {
            *budget.entry(normalized_key(&r.values)).or_insert(0) += r.mult.bg;
        }
    }
    let rows = left.rows();
    let mut out = AuRelation::new(left.schema().clone());
    for (i, l) in rows.iter().enumerate() {
        let bg_out = if l.mult.bg >= 1 {
            match budget.get_mut(&normalized_key(&l.values)) {
                Some(b) => {
                    let take = (*b).min(l.mult.bg);
                    *b -= take;
                    l.mult.bg - take
                }
                None => l.mult.bg,
            }
        } else {
            0
        };
        let mut possible_removal: u64 = 0;
        let mut certain_removal: u64 = 0;
        let fixed = certain_valued(&l.values);
        for r in right.rows() {
            if r.mult.ub >= 1 && rows_possibly_equal(&l.values, &r.values) {
                possible_removal = possible_removal.saturating_add(r.mult.ub);
            }
            if fixed && r.mult.lb >= 1 && rows_certainly_equal(&l.values, &r.values) {
                certain_removal = certain_removal.saturating_add(r.mult.lb);
            }
        }
        let lb_out = l.mult.lb.saturating_sub(possible_removal);
        let ub_out = if certain_removal > 0 {
            let mut protectors: u64 = 0;
            for k in &rows[..i] {
                if k.mult.ub >= 1 && rows_possibly_equal(&k.values, &l.values) {
                    protectors = protectors.saturating_add(k.mult.ub);
                }
            }
            l.mult
                .ub
                .saturating_sub(certain_removal.saturating_sub(protectors))
        } else {
            l.mult.ub
        };
        if ub_out >= 1 {
            out.push(AuTuple {
                values: l.values.clone(),
                mult: MultBound::new(lb_out.min(bg_out).min(ub_out), bg_out.min(ub_out), ub_out),
            });
        }
    }
    out
}

/// `EXCEPT` (distinct): 0/1 per left row — **not** `distinct` of the bag
/// difference (`{t,t} − {t}` is empty under EXCEPT but `{t}` under
/// `distinct(EXCEPT ALL)`). A left row survives a world iff its grounding
/// is absent from the right side there, and only the first left row
/// grounding a given tuple emits it.
fn except_distinct(left: &AuRelation, right: &AuRelation) -> AuRelation {
    let mut sg_right: FxHashSet<Tuple> = FxHashSet::default();
    for r in right.rows() {
        if r.mult.bg >= 1 {
            sg_right.insert(normalized_key(&r.values));
        }
    }
    // First SG occurrence per left tuple, and first certain claimant per
    // fixed tuple (an earlier certainly-equal row with lb ≥ 1 already
    // guarantees the single output copy, so later rows must not).
    let mut sg_seen: FxHashSet<Tuple> = FxHashSet::default();
    let mut certain_seen: FxHashSet<Tuple> = FxHashSet::default();
    let mut out = AuRelation::new(left.schema().clone());
    for l in left.rows() {
        let key = normalized_key(&l.values);
        let possibly_removed = right
            .rows()
            .iter()
            .any(|r| r.mult.ub >= 1 && rows_possibly_equal(&l.values, &r.values));
        let fixed = certain_valued(&l.values);
        let certainly_removed = fixed
            && right
                .rows()
                .iter()
                .any(|r| r.mult.lb >= 1 && rows_certainly_equal(&l.values, &r.values));
        let bg_out = if l.mult.bg >= 1 && !sg_right.contains(&key) && sg_seen.insert(key.clone()) {
            1
        } else {
            0
        };
        let lb_out =
            if l.mult.lb >= 1 && fixed && !possibly_removed && certain_seen.insert(key.clone()) {
                1
            } else {
                0
            };
        let ub_out = if certainly_removed {
            0
        } else {
            l.mult.ub.min(1)
        };
        if ub_out >= 1 {
            out.push(AuTuple {
                values: l.values.clone(),
                mult: MultBound::new(lb_out.min(bg_out).min(ub_out), bg_out.min(ub_out), ub_out),
            });
        }
    }
    out
}

/// `⟕` / `⟖`: outer join in preserved-side-major order (the deterministic
/// engine's contract — for each preserved row, its surviving matches,
/// then a NULL-padded row when a matchless world is possible). The output
/// schema is always `left ++ right`; `left_kind` selects which side is
/// preserved. Matched pairs refine exactly like the inner [`join`]. The
/// pad row's attributes on the other side are *definite NULLs* and its
/// multiplicity triple is gated per component:
///
/// * `lb` — the preserved row's `lb`, unless any pair is possibly
///   matching (then some world may have a match and the pad is not
///   guaranteed).
/// * `bg` — the preserved row's `bg`, unless a selected-guess match
///   exists (the bag engine's behavior in the SG world).
/// * `ub` — the preserved row's `ub`, unless some certainly-present
///   other-side row matches under every grounding (then every world has
///   a match and the pad is impossible; dropped when this hits zero).
pub fn outer_join(
    left: &AuRelation,
    right: &AuRelation,
    predicate: Option<&Expr>,
    left_kind: bool,
) -> Result<AuRelation, ExprError> {
    let schema = left.schema().concat(right.schema());
    let bound = match predicate {
        Some(p) => Some(p.bind(&schema)?),
        None => None,
    };
    let (l_arity, r_arity) = (left.schema().arity(), right.schema().arity());
    let (outer_rows, inner_rows) = if left_kind {
        (left.rows(), right.rows())
    } else {
        (right.rows(), left.rows())
    };
    let mut out = AuRelation::new(schema);
    for o in outer_rows {
        let mut sg_matched = false;
        let mut possibly_matched = false;
        let mut certainly_matched = false;
        for i in inner_rows {
            let (l, r) = if left_kind { (o, i) } else { (i, o) };
            let mut values = l.values.clone();
            values.extend(r.values.iter().cloned());
            let base = l.mult.times(&r.mult);
            match &bound {
                Some(pred) => {
                    let bg_tuple: Tuple = values.iter().map(|v| v.bg.clone()).collect();
                    let bg_true = pred.holds(&bg_tuple)?;
                    let rt = truth_range(pred, &values);
                    if !rt.possibly_true() {
                        continue;
                    }
                    possibly_matched |= i.mult.ub >= 1;
                    sg_matched |= bg_true && i.mult.bg >= 1;
                    certainly_matched |= rt.certainly_true() && i.mult.lb >= 1;
                    out.push(AuTuple {
                        values,
                        mult: MultBound::new(
                            if rt.certainly_true() { base.lb } else { 0 },
                            if bg_true { base.bg } else { 0 },
                            base.ub,
                        ),
                    });
                }
                None => {
                    possibly_matched |= i.mult.ub >= 1;
                    sg_matched |= i.mult.bg >= 1;
                    certainly_matched |= i.mult.lb >= 1;
                    out.push(AuTuple { values, mult: base });
                }
            }
        }
        let pad = MultBound::new(
            if possibly_matched { 0 } else { o.mult.lb },
            if sg_matched { 0 } else { o.mult.bg },
            if certainly_matched { 0 } else { o.mult.ub },
        );
        if pad.ub >= 1 {
            let mut values = Vec::with_capacity(l_arity + r_arity);
            if left_kind {
                values.extend(o.values.iter().cloned());
                values.extend((0..r_arity).map(|_| RangeValue::null()));
            } else {
                values.extend((0..l_arity).map(|_| RangeValue::null()));
                values.extend(o.values.iter().cloned());
            }
            out.push(AuTuple { values, mult: pad });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::encode_rows;

    fn span(lo: i64, bg: i64, hi: i64) -> RangeValue {
        RangeValue::new(
            Bound::Val(Value::Int(lo)),
            Value::Int(bg),
            Bound::Val(Value::Int(hi)),
        )
    }

    fn rel() -> AuRelation {
        // g certain for rows 1-2, uncertain for row 3; v uncertain on row 2.
        let mut r = AuRelation::new(Schema::qualified("r", ["g", "v"]));
        r.push(AuTuple {
            values: vec![
                RangeValue::point(Value::Int(1)),
                RangeValue::point(Value::Int(10)),
            ],
            mult: MultBound::certain(1),
        });
        r.push(AuTuple {
            values: vec![RangeValue::point(Value::Int(1)), span(5, 20, 30)],
            mult: MultBound::new(0, 1, 1),
        });
        r.push(AuTuple {
            values: vec![span(1, 2, 2), RangeValue::point(Value::Int(7))],
            mult: MultBound::certain(1),
        });
        r
    }

    #[test]
    fn filter_refines_multiplicities() {
        let r = rel();
        let out = filter(&r, &Expr::named("v").ge(Expr::lit(8i64))).unwrap();
        // Row 1: certainly true → [1,1,1]. Row 2: possibly true (5..30 vs 8)
        // → [0,1,1]. Row 3: v=7 certainly false → dropped.
        assert_eq!(out.rows().len(), 2);
        assert_eq!(out.rows()[0].mult, MultBound::certain(1));
        assert_eq!(out.rows()[1].mult, MultBound::new(0, 1, 1));
    }

    #[test]
    fn group_by_sum_bounds_enclose_groundings() {
        let r = rel();
        let out = aggregate(
            &r,
            &[(Expr::named("g"), Column::unqualified("g"))],
            &[
                AggSpec {
                    kind: AggKind::CountStar,
                    arg: None,
                    column: Column::unqualified("n"),
                },
                AggSpec {
                    kind: AggKind::Sum,
                    arg: Some(Expr::named("v")),
                    column: Column::unqualified("s"),
                },
            ],
        )
        .unwrap();
        // Two SG groups: g=1 and g=2.
        assert_eq!(out.rows().len(), 2);
        let g1 = &out.rows()[0];
        assert_eq!(g1.values[0].bg, Value::Int(1));
        // SG: rows 1+2 → count 2, sum 30.
        assert_eq!(g1.values[1].bg, Value::Int(2));
        assert_eq!(g1.values[2].bg, Value::Int(30));
        // Worlds: row 2 possibly absent, row 3 possibly in g=1 (key range
        // [1,2]). Count ∈ [1, 3].
        assert!(g1.values[1].contains(&Value::Int(1)));
        assert!(g1.values[1].contains(&Value::Int(3)));
        // Sum: row1 certain 10; row2 ∈ {absent} ∪ [5,30]; row3 maybe 7.
        assert!(g1.values[2].contains(&Value::Int(10)));
        assert!(g1.values[2].contains(&Value::Int(47)));
        assert!(!g1.values[2].contains(&Value::Int(3)), "below certain 10");
        assert_eq!(g1.mult, MultBound::new(1, 1, 3));
        // g=2 group: row 3's SG; key hull [1,2] is not a point → wide count.
        let g2 = &out.rows()[1];
        assert_eq!(g2.values[0].bg, Value::Int(2));
        assert!(g2.values[0].contains(&Value::Int(1)));
        assert_eq!(g2.mult.lb, 0, "row 3 may ground its key to 1");
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let r = AuRelation::new(Schema::qualified("r", ["g", "v"]));
        let out = aggregate(
            &r,
            &[],
            &[AggSpec {
                kind: AggKind::CountStar,
                arg: None,
                column: Column::unqualified("n"),
            }],
        )
        .unwrap();
        assert_eq!(out.rows().len(), 1);
        assert_eq!(out.rows()[0].values[0].bg, Value::Int(0));
        assert!(out.rows()[0].values[0].is_point());
        assert_eq!(out.rows()[0].mult, MultBound::certain(1));
    }

    #[test]
    fn distinct_merges_by_selected_guess() {
        let mut r = AuRelation::new(Schema::qualified("r", ["a"]));
        r.push(AuTuple {
            values: vec![span(1, 2, 3)],
            mult: MultBound::certain(2),
        });
        r.push(AuTuple {
            values: vec![span(2, 2, 5)],
            mult: MultBound::new(0, 1, 4),
        });
        r.push(AuTuple {
            values: vec![RangeValue::point(Value::Int(9))],
            mult: MultBound::new(0, 0, 1),
        });
        let out = distinct(&r);
        assert_eq!(out.rows().len(), 2);
        let merged = &out.rows()[0];
        assert!(merged.values[0].contains(&Value::Int(1)));
        assert!(merged.values[0].contains(&Value::Int(5)));
        assert_eq!(merged.mult, MultBound::new(1, 1, 6));
        assert_eq!(out.rows()[1].mult, MultBound::new(0, 0, 1));
    }

    #[test]
    fn join_multiplies_pointwise_and_filters() {
        let mut l = AuRelation::new(Schema::qualified("l", ["a"]));
        l.push(AuTuple {
            values: vec![span(1, 2, 3)],
            mult: MultBound::new(1, 2, 3),
        });
        let mut rr = AuRelation::new(Schema::qualified("s", ["b"]));
        rr.push(AuTuple {
            values: vec![RangeValue::point(Value::Int(2))],
            mult: MultBound::new(0, 1, 2),
        });
        let out = join(&l, &rr, Some(&Expr::named("a").eq(Expr::named("b")))).unwrap();
        assert_eq!(out.rows().len(), 1);
        // Possible (ranges intersect) but not certain → lb 0; SG 2=2 holds.
        assert_eq!(out.rows()[0].mult, MultBound::new(0, 2, 6));
    }

    fn fv(x: f64) -> Value {
        Value::Float(F64::new(x))
    }

    fn avg_over(rows: Vec<AuTuple>) -> RangeValue {
        let mut r = AuRelation::new(Schema::qualified("r", ["g", "v"]));
        for row in rows {
            r.push(row);
        }
        let out = aggregate(
            &r,
            &[(Expr::named("g"), Column::unqualified("g"))],
            &[AggSpec {
                kind: AggKind::Avg,
                arg: Some(Expr::named("v")),
                column: Column::unqualified("a"),
            }],
        )
        .unwrap();
        assert_eq!(out.rows().len(), 1);
        out.rows()[0].values[1].clone()
    }

    #[test]
    fn avg_bounds_tighten_via_sum_count() {
        // Two certain members {10, 20}: every world averages exactly 15,
        // which the sum/count quotient pins down (the old min/max hull
        // reported [10, 20]).
        let avg = avg_over(vec![
            AuTuple {
                values: vec![
                    RangeValue::point(Value::Int(1)),
                    RangeValue::point(Value::Int(10)),
                ],
                mult: MultBound::certain(1),
            },
            AuTuple {
                values: vec![
                    RangeValue::point(Value::Int(1)),
                    RangeValue::point(Value::Int(20)),
                ],
                mult: MultBound::certain(1),
            },
        ]);
        assert_eq!(avg.bg, fv(15.0));
        assert!(avg.contains(&fv(15.0)));
        assert!(!avg.contains(&fv(14.9)));
        assert!(!avg.contains(&fv(15.1)));
    }

    #[test]
    fn avg_bounds_enclose_optional_members() {
        // Certain 10 plus an optional member in [5, 30]: possible averages
        // are {10} ∪ [(10 + 5)/2, (10 + 30)/2] = {10} ∪ [7.5, 20].
        let avg = avg_over(vec![
            AuTuple {
                values: vec![
                    RangeValue::point(Value::Int(1)),
                    RangeValue::point(Value::Int(10)),
                ],
                mult: MultBound::certain(1),
            },
            AuTuple {
                values: vec![RangeValue::point(Value::Int(1)), span(5, 20, 30)],
                mult: MultBound::new(0, 1, 1),
            },
        ]);
        for world in [7.5, 10.0, 15.0, 20.0] {
            assert!(avg.contains(&fv(world)), "must enclose {world}");
        }
        assert!(!avg.contains(&fv(4.9)));
        assert!(!avg.contains(&fv(31.0)));
    }

    #[test]
    fn avg_bounds_widen_for_unbounded_members() {
        // A possible member that may ground to anything voids the
        // enclosure: its grounding can drag the mean arbitrarily far (the
        // old hull silently skipped it and reported [10, 10]).
        let avg = avg_over(vec![
            AuTuple {
                values: vec![
                    RangeValue::point(Value::Int(1)),
                    RangeValue::point(Value::Int(10)),
                ],
                mult: MultBound::certain(1),
            },
            AuTuple {
                values: vec![
                    RangeValue::point(Value::Int(1)),
                    RangeValue::top(Value::Int(990)),
                ],
                mult: MultBound::certain(1),
            },
        ]);
        assert_eq!(avg.bg, fv(500.0));
        assert!(avg.contains(&fv(505.0)));
        assert!(avg.contains(&fv(-1e9)));
    }

    fn join_fixture() -> (AuRelation, AuRelation) {
        let mut l = AuRelation::new(Schema::qualified("l", ["a"]));
        for (v, m) in [
            (RangeValue::point(Value::Int(1)), MultBound::certain(1)),
            (span(1, 2, 3), MultBound::new(0, 1, 2)),
            (RangeValue::null(), MultBound::certain(1)),
            (RangeValue::point(Value::Int(5)), MultBound::certain(2)),
        ] {
            l.push(AuTuple {
                values: vec![v],
                mult: m,
            });
        }
        let mut r = AuRelation::new(Schema::qualified("s", ["b", "c"]));
        for (v, c, m) in [
            (
                RangeValue::point(Value::Int(1)),
                0i64,
                MultBound::certain(1),
            ),
            (RangeValue::point(Value::Int(2)), 1, MultBound::new(0, 1, 2)),
            (RangeValue::point(Value::Int(7)), 2, MultBound::certain(1)),
            (RangeValue::top(Value::Int(9)), 3, MultBound::certain(1)),
        ] {
            r.push(AuTuple {
                values: vec![v, RangeValue::point(Value::Int(c))],
                mult: m,
            });
        }
        (l, r)
    }

    #[test]
    fn hash_join_matches_theta_join() {
        let (l, r) = join_fixture();
        let keys = [(Expr::named("a"), Expr::named("b"))];
        let pred = Expr::named("a").eq(Expr::named("b"));
        let theta = join(&l, &r, Some(&pred)).unwrap();
        assert!(theta.rows().len() >= 4, "fixture exercises the join");
        // An OR-wrapped equivalent predicate defeats equi-key extraction,
        // so this runs the pure nested loop — the hash-pruned paths must
        // reproduce it exactly, rows and order.
        let nested_pred = pred.clone().or(Expr::lit(1i64).eq(Expr::lit(2i64)));
        let nested = join(&l, &r, Some(&nested_pred)).unwrap();
        assert_eq!(theta, nested);
        // Probe-left order matches the nested loop's left-major order.
        let probe_left = hash_join(&l, &r, &keys, None, false).unwrap();
        assert_eq!(probe_left, theta);
        // Build-left emits right-major: same multiset, re-sorted.
        let build_left = hash_join(&l, &r, &keys, None, true).unwrap();
        let mut a = encode_rows(&build_left);
        let mut b = encode_rows(&theta);
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // The certainly-equal pair keeps its certain multiplicity.
        assert!(theta.rows().iter().any(|t| t.mult.lb >= 1));
    }

    #[test]
    fn hash_join_applies_residual() {
        let (l, r) = join_fixture();
        let keys = [(Expr::named("a"), Expr::named("b"))];
        let residual = Expr::named("c").ge(Expr::lit(1i64));
        let full = Expr::named("a")
            .eq(Expr::named("b"))
            .and(Expr::named("c").ge(Expr::lit(1i64)));
        let theta = join(&l, &r, Some(&full)).unwrap();
        let hashed = hash_join(&l, &r, &keys, Some(&residual), false).unwrap();
        assert_eq!(hashed, theta);
    }

    #[test]
    fn hash_join_cross_family_keys_fall_back() {
        // Int vs Str point keys are possibly equal under three-valued SQL
        // comparison (`sql_cmp` is `None`), so the hash path must not
        // bucket-prune them: the whole join falls back to the nested loop.
        let mut l = AuRelation::new(Schema::qualified("l", ["a"]));
        l.push(AuTuple {
            values: vec![RangeValue::point(Value::Int(1))],
            mult: MultBound::certain(1),
        });
        let mut r = AuRelation::new(Schema::qualified("s", ["b"]));
        r.push(AuTuple {
            values: vec![RangeValue::point(Value::str("1"))],
            mult: MultBound::certain(1),
        });
        let keys = [(Expr::named("a"), Expr::named("b"))];
        let hashed = hash_join(&l, &r, &keys, None, false).unwrap();
        let theta = join(&l, &r, Some(&Expr::named("a").eq(Expr::named("b")))).unwrap();
        assert_eq!(hashed, theta);
        assert_eq!(hashed.rows().len(), 1);
        assert_eq!(hashed.rows()[0].mult, MultBound::new(0, 0, 1));
    }

    #[test]
    fn sort_tie_break_is_input_order_independent() {
        // Two rows with equal sort keys but different bound encodings
        // (definite NULL vs top): either input order sorts identically.
        let row_null = AuTuple {
            values: vec![RangeValue::point(Value::Int(1)), RangeValue::null()],
            mult: MultBound::certain(1),
        };
        let row_top = AuTuple {
            values: vec![
                RangeValue::point(Value::Int(1)),
                RangeValue::top(Value::Null),
            ],
            mult: MultBound::certain(1),
        };
        let sorted = |first: &AuTuple, second: &AuTuple| {
            let mut r = AuRelation::new(Schema::qualified("r", ["g", "v"]));
            r.push(first.clone());
            r.push(second.clone());
            sort_by_bg(&r, &[(Expr::named("g"), false)]).unwrap()
        };
        assert_eq!(
            sorted(&row_null, &row_top),
            sorted(&row_top, &row_null),
            "tie-break must not depend on input order"
        );
    }

    fn one_col(name: &str, rows: Vec<AuTuple>) -> AuRelation {
        let mut r = AuRelation::new(Schema::qualified(name, ["a"]));
        for t in rows {
            r.push(t);
        }
        r
    }

    fn pt(v: i64, mult: MultBound) -> AuTuple {
        AuTuple {
            values: vec![RangeValue::point(Value::Int(v))],
            mult,
        }
    }

    #[test]
    fn except_all_maybe_present_right_widens_both_copies() {
        // left = {1, 1} certain; right = {1} maybe present ([0,1,1]).
        // Worlds: right absent → both copies survive; present → one does.
        let l = one_col(
            "l",
            vec![pt(1, MultBound::certain(1)), pt(1, MultBound::certain(1))],
        );
        let r = one_col("r", vec![pt(1, MultBound::new(0, 1, 1))]);
        let out = except(&l, &r, true).unwrap();
        assert_eq!(out.rows().len(), 2);
        // First copy absorbs the SG removal budget; neither survival is
        // guaranteed (lb 0: the maybe-row may ground onto either copy) and
        // neither is certainly removed (right's lb is 0 → ub stays).
        assert_eq!(out.rows()[0].mult, MultBound::new(0, 0, 1));
        assert_eq!(out.rows()[1].mult, MultBound::new(0, 1, 1));
    }

    #[test]
    fn except_all_certain_match_drops_the_row() {
        let l = one_col("l", vec![pt(1, MultBound::certain(1))]);
        let r = one_col("r", vec![pt(1, MultBound::certain(1))]);
        let out = except(&l, &r, true).unwrap();
        assert!(out.rows().is_empty(), "a certainly removed row must vanish");
    }

    #[test]
    fn except_all_earlier_copies_protect_the_ub() {
        // left = {1, 1} certain, right = {1} certain: first-k removal takes
        // the FIRST copy, so the second's upper bound survives — the
        // earlier copy absorbs ("protects against") the certain budget.
        let l = one_col(
            "l",
            vec![pt(1, MultBound::certain(1)), pt(1, MultBound::certain(1))],
        );
        let r = one_col("r", vec![pt(1, MultBound::certain(1))]);
        let out = except(&l, &r, true).unwrap();
        assert_eq!(out.rows().len(), 1, "the first copy is certainly removed");
        assert_eq!(out.rows()[0].mult, MultBound::new(0, 1, 1));
    }

    #[test]
    fn except_distinct_is_not_distinct_of_except_all() {
        // {1, 1} EXCEPT {1} = ∅ (1 appears on the right), whereas
        // distinct({1, 1} EXCEPT ALL {1}) would keep one copy.
        let l = one_col(
            "l",
            vec![pt(1, MultBound::certain(1)), pt(1, MultBound::certain(1))],
        );
        let r = one_col("r", vec![pt(1, MultBound::certain(1))]);
        let out = except(&l, &r, false).unwrap();
        assert!(out.rows().is_empty());
        // And a surviving tuple emits exactly one certain copy.
        let l2 = one_col("l", vec![pt(2, MultBound::certain(3))]);
        let out2 = except(&l2, &r, false).unwrap();
        assert_eq!(out2.rows().len(), 1);
        assert_eq!(out2.rows()[0].mult, MultBound::certain(1));
    }

    #[test]
    fn outer_join_pad_components_are_gated_independently() {
        // Preserved row certain; the only match is maybe-present: the pair
        // is uncertain and the pad keeps ub (a matchless world exists) but
        // loses lb (a matched world exists too) and bg (the SG world has
        // the match).
        let l = one_col("l", vec![pt(1, MultBound::certain(1))]);
        let mut r = AuRelation::new(Schema::qualified("r", ["b"]));
        r.push(pt(1, MultBound::new(0, 1, 1)));
        let out = outer_join(&l, &r, Some(&Expr::named("a").eq(Expr::named("b"))), true).unwrap();
        assert_eq!(out.rows().len(), 2, "one matched pair + one pad");
        assert_eq!(out.rows()[0].mult, MultBound::new(0, 1, 1));
        assert_eq!(out.rows()[1].mult, MultBound::new(0, 0, 1));
        assert!(
            out.rows()[1].values[1].is_null(),
            "the pad's other side must be a definite NULL"
        );
    }

    #[test]
    fn outer_join_certain_match_kills_the_pad() {
        let l = one_col("l", vec![pt(1, MultBound::certain(1))]);
        let mut r = AuRelation::new(Schema::qualified("r", ["b"]));
        r.push(pt(1, MultBound::certain(1)));
        let out = outer_join(&l, &r, Some(&Expr::named("a").eq(Expr::named("b"))), true).unwrap();
        assert_eq!(out.rows().len(), 1, "every world has the match: no pad");
        assert_eq!(out.rows()[0].mult, MultBound::certain(1));
    }

    #[test]
    fn right_outer_join_pads_the_left_side() {
        let l = one_col("l", vec![]);
        let mut r = AuRelation::new(Schema::qualified("r", ["b"]));
        r.push(pt(7, MultBound::new(1, 2, 3)));
        let out = outer_join(&l, &r, None, false).unwrap();
        assert_eq!(out.rows().len(), 1);
        assert!(out.rows()[0].values[0].is_null(), "left side pads to NULL");
        assert_eq!(out.rows()[0].values[1], RangeValue::point(Value::Int(7)));
        assert_eq!(out.rows()[0].mult, MultBound::new(1, 2, 3));
    }
}
