//! Range-annotated relations and their flattened row encoding.
//!
//! An [`AuRelation`] is the AU-DB analogue of the paper's `ℕ_UA`-relation:
//! every row carries a [`RangeValue`] per attribute and a [`MultBound`]
//! triple. The flattened *encoding* — the AU counterpart of Definition 8's
//! `Enc` — lays a row out as ordinary attribute values so a classical
//! engine can store and ship it:
//!
//! ```text
//! [bg₀ … bgₙ₋₁ | ua_lb_0 … ua_lb_{n-1} | ua_ub_0 … ua_ub_{n-1} | ua_m_lb ua_m_bg ua_m_ub]
//! ```
//!
//! with `NULL` standing for `∓∞` in the bound columns (only normalized
//! ranges are encoded, so a `NULL` bound is unambiguous).

use crate::mult::MultBound;
use crate::value::{Bound, RangeValue};
use ua_data::relation::Relation;
use ua_data::schema::{Column, Schema};
use ua_data::tuple::Tuple;
use ua_data::value::Value;

/// Prefix of the encoded per-attribute lower-bound columns.
pub const AU_LB_PREFIX: &str = "ua_lb_";
/// Prefix of the encoded per-attribute upper-bound columns.
pub const AU_UB_PREFIX: &str = "ua_ub_";
/// Encoded tuple-multiplicity lower-bound column.
pub const AU_MULT_LB: &str = "ua_m_lb";
/// Encoded tuple-multiplicity selected-guess column.
pub const AU_MULT_BG: &str = "ua_m_bg";
/// Encoded tuple-multiplicity upper-bound column.
pub const AU_MULT_UB: &str = "ua_m_ub";

/// One range-annotated tuple.
#[derive(Clone, PartialEq, Debug)]
pub struct AuTuple {
    /// Per-attribute ranges.
    pub values: Vec<RangeValue>,
    /// The tuple-level multiplicity bounds.
    pub mult: MultBound,
}

impl AuTuple {
    /// The selected-guess tuple (the `bg` of every attribute).
    pub fn bg_tuple(&self) -> Tuple {
        self.values.iter().map(|r| r.bg.clone()).collect()
    }

    /// Whether a concrete row falls within every attribute's bounds.
    pub fn covers(&self, row: &Tuple) -> bool {
        row.arity() == self.values.len()
            && self
                .values
                .iter()
                .zip(row.values())
                .all(|(r, v)| r.contains(v))
    }
}

/// A range-annotated relation: user schema + rows of [`AuTuple`]s. Row
/// order is significant (both engines materialize AU results in the same
/// order).
#[derive(Clone, PartialEq, Debug)]
pub struct AuRelation {
    schema: Schema,
    rows: Vec<AuTuple>,
}

impl AuRelation {
    /// An empty relation.
    pub fn new(schema: Schema) -> AuRelation {
        AuRelation {
            schema,
            rows: Vec::new(),
        }
    }

    /// The (user) schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Replace the schema (re-qualification; arity must match).
    pub fn with_schema(mut self, schema: Schema) -> AuRelation {
        assert_eq!(self.schema.arity(), schema.arity(), "arity must not change");
        self.schema = schema;
        self
    }

    /// The rows.
    pub fn rows(&self) -> &[AuTuple] {
        &self.rows
    }

    /// Append a row (rows with `ub = 0` represent nothing and are dropped).
    pub fn push(&mut self, row: AuTuple) {
        assert_eq!(row.values.len(), self.schema.arity(), "row arity mismatch");
        debug_assert!(row.mult.is_well_formed(), "ill-formed multiplicity bound");
        if row.mult.ub == 0 {
            return;
        }
        self.rows.push(row);
    }

    /// A certain relation: every tuple at its exact multiplicity, every
    /// attribute a point range.
    pub fn from_relation(rel: &Relation<u64>) -> AuRelation {
        let mut out = AuRelation::new(rel.schema().clone());
        for (t, &n) in rel.iter() {
            if n == 0 {
                continue;
            }
            out.push(AuTuple {
                values: t.values().iter().cloned().map(RangeValue::point).collect(),
                mult: MultBound::certain(n),
            });
        }
        out.rows.sort_by_key(|a| a.bg_tuple());
        out
    }

    /// The x-DB labeling into range annotations: one AU tuple per x-tuple
    /// block of weighted alternatives. Attribute bounds hull the
    /// alternatives, the selected guess is the argmax-probability
    /// alternative, and the multiplicity triple is
    /// `[total ≥ 1 ? 1 : 0, best ≥ absent ? 1 : 0, 1]` — present in every
    /// world iff the block's mass is 1, present in the SG world unless
    /// absence is likelier, never more than one copy per block.
    pub fn from_x_blocks<'a>(
        schema: Schema,
        blocks: impl IntoIterator<Item = &'a [(Tuple, f64)]>,
    ) -> AuRelation {
        let mut out = AuRelation::new(schema);
        for block in blocks {
            if block.is_empty() {
                continue;
            }
            let mut best = 0usize;
            let mut total = 0.0f64;
            for (i, (_, p)) in block.iter().enumerate() {
                total += p;
                if *p > block[best].1 {
                    best = i;
                }
            }
            let p_absent = (1.0 - total).max(0.0);
            let arity = out.schema.arity();
            let mut values: Vec<RangeValue> = Vec::with_capacity(arity);
            for c in 0..arity {
                let mut range =
                    RangeValue::point(block[best].0.get(c).expect("block arity").clone());
                for (t, _) in block {
                    range = range.hull(&RangeValue::point(t.get(c).expect("arity").clone()));
                }
                values.push(range);
            }
            let certainly_present = total >= 1.0 - 1e-9;
            let in_sg = block[best].1 >= p_absent;
            out.push(AuTuple {
                values,
                mult: MultBound::new(u64::from(certainly_present), u64::from(in_sg), 1),
            });
        }
        out
    }
}

/// The flattened schema of an AU-encoded relation.
pub fn flattened_schema(user: &Schema) -> Schema {
    let mut cols: Vec<Column> = user.columns().to_vec();
    for i in 0..user.arity() {
        cols.push(Column::unqualified(format!("{AU_LB_PREFIX}{i}")));
    }
    for i in 0..user.arity() {
        cols.push(Column::unqualified(format!("{AU_UB_PREFIX}{i}")));
    }
    cols.push(Column::unqualified(AU_MULT_LB));
    cols.push(Column::unqualified(AU_MULT_BG));
    cols.push(Column::unqualified(AU_MULT_UB));
    Schema::new(cols)
}

/// The user schema of a flattened AU schema, or `None` when the layout
/// does not match (wrong arity arithmetic or missing sidecar names).
pub fn au_base_schema(flat: &Schema) -> Option<Schema> {
    let total = flat.arity();
    if total < 3 || !(total - 3).is_multiple_of(3) {
        return None;
    }
    let n = (total - 3) / 3;
    let cols = flat.columns();
    let tail_ok = cols[total - 3].name.eq_ignore_ascii_case(AU_MULT_LB)
        && cols[total - 2].name.eq_ignore_ascii_case(AU_MULT_BG)
        && cols[total - 1].name.eq_ignore_ascii_case(AU_MULT_UB);
    if !tail_ok {
        return None;
    }
    for i in 0..n {
        if !cols[n + i]
            .name
            .eq_ignore_ascii_case(&format!("{AU_LB_PREFIX}{i}"))
            || !cols[2 * n + i]
                .name
                .eq_ignore_ascii_case(&format!("{AU_UB_PREFIX}{i}"))
        {
            return None;
        }
    }
    Some(Schema::new(cols[..n].to_vec()))
}

fn encode_bound(b: &Bound) -> Value {
    match b {
        Bound::NegInf | Bound::PosInf => Value::Null,
        Bound::Val(v) => v.clone(),
    }
}

fn decode_bound(v: &Value, lower: bool) -> Bound {
    if v.is_unknown() {
        if lower {
            Bound::NegInf
        } else {
            Bound::PosInf
        }
    } else {
        Bound::Val(v.clone())
    }
}

fn mult_value(m: u64) -> Value {
    Value::Int(i64::try_from(m).unwrap_or(i64::MAX))
}

/// The encoded bound sentinel marking a definite-NULL range: no
/// normalized range pairs a `NULL` selected guess with *known* bound
/// values (`RangeValue::new` widens an unknown bg to top, whose bounds
/// encode as `NULL`), so `(true, NULL, true)` is free to carry the
/// definiteness flag through the flattened representation.
fn null_sentinel() -> Value {
    Value::Bool(true)
}

/// Assemble a range from its encoded parts (`NULL` bounds meaning `∓`),
/// normalized — the single definition of the encoding convention shared
/// with the columnar executor's triple columns.
pub fn range_from_parts(lb: Value, bg: Value, ub: Value) -> RangeValue {
    if bg == Value::Null && lb == null_sentinel() && ub == null_sentinel() {
        return RangeValue::null();
    }
    RangeValue::new(decode_bound(&lb, true), bg, decode_bound(&ub, false))
}

/// Split a range into its encoded parts `(lb, bg, ub)` (`∓∞` as `NULL`,
/// definite NULL as the sentinel triple).
pub fn range_parts(r: &RangeValue) -> (Value, Value, Value) {
    if r.is_null() {
        return (null_sentinel(), Value::Null, null_sentinel());
    }
    (encode_bound(r.lb()), r.bg.clone(), encode_bound(r.ub()))
}

/// Encode one AU tuple into its flattened row (`[bg* | lb* | ub* | m*]`).
/// This layout doubles as the deterministic tie-break order for AU sorts,
/// so both engines compare ties over identical byte sequences.
pub fn encode_row(row: &AuTuple) -> Tuple {
    let parts: Vec<(Value, Value, Value)> = row.values.iter().map(range_parts).collect();
    let mut values: Vec<Value> = Vec::with_capacity(3 * parts.len() + 3);
    values.extend(parts.iter().map(|(_, bg, _)| bg.clone()));
    values.extend(parts.iter().map(|(lb, _, _)| lb.clone()));
    values.extend(parts.iter().map(|(_, _, ub)| ub.clone()));
    values.push(mult_value(row.mult.lb));
    values.push(mult_value(row.mult.bg));
    values.push(mult_value(row.mult.ub));
    Tuple::new(values)
}

/// Encode an [`AuRelation`] into flattened rows (pair with
/// [`flattened_schema`] of its schema).
pub fn encode_rows(rel: &AuRelation) -> Vec<Tuple> {
    rel.rows().iter().map(encode_row).collect()
}

/// Decode one flattened row of user arity `n`: `Ok(None)` for well-formed
/// rows with `ub = 0` (they represent nothing and are dropped), an error
/// describing the first malformed multiplicity component otherwise. The
/// row must have flattened arity `3n + 3`.
pub fn decode_row(n: usize, row: &Tuple) -> Result<Option<AuTuple>, String> {
    let mult_at = |i: usize| -> Result<u64, String> {
        match row.get(3 * n + i) {
            Some(Value::Int(m)) if *m >= 0 => Ok(*m as u64),
            other => Err(format!("invalid AU multiplicity {other:?}")),
        }
    };
    let mult = MultBound::new(mult_at(0)?, mult_at(1)?, mult_at(2)?);
    if !mult.is_well_formed() {
        return Err(format!(
            "ill-formed AU multiplicity bound [{}, {}, {}]",
            mult.lb, mult.bg, mult.ub
        ));
    }
    if mult.ub == 0 {
        return Ok(None);
    }
    let values: Vec<RangeValue> = (0..n)
        .map(|i| {
            range_from_parts(
                row.get(n + i).expect("arity checked").clone(),
                row.get(i).expect("arity checked").clone(),
                row.get(2 * n + i).expect("arity checked").clone(),
            )
        })
        .collect();
    Ok(Some(AuTuple { values, mult }))
}

/// Decode flattened rows back into an [`AuRelation`]. `flat` must be the
/// flattened schema; errors describe the first malformed row.
pub fn decode_rows(flat: &Schema, rows: &[Tuple]) -> Result<AuRelation, String> {
    let user = au_base_schema(flat).ok_or_else(|| {
        format!("schema {flat} is not AU-encoded (ua_lb_*/ua_ub_*/ua_m_* layout)")
    })?;
    let n = user.arity();
    let mut out = AuRelation::new(user);
    for row in rows {
        if let Some(t) = decode_row(n, row)? {
            out.push(t);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::tuple;

    #[test]
    fn encode_decode_round_trip() {
        let mut rel = AuRelation::new(Schema::qualified("r", ["a", "b"]));
        rel.push(AuTuple {
            values: vec![
                RangeValue::point(Value::Int(1)),
                RangeValue::new(
                    Bound::Val(Value::Int(0)),
                    Value::Int(5),
                    Bound::Val(Value::Int(9)),
                ),
            ],
            mult: MultBound::new(0, 1, 2),
        });
        rel.push(AuTuple {
            values: vec![
                RangeValue::top(Value::Null),
                RangeValue::point(Value::str("x")),
            ],
            mult: MultBound::certain(3),
        });
        rel.push(AuTuple {
            values: vec![RangeValue::null(), RangeValue::point(Value::Int(7))],
            mult: MultBound::certain(1),
        });
        let flat = flattened_schema(rel.schema());
        assert_eq!(au_base_schema(&flat).unwrap().arity(), 2);
        let rows = encode_rows(&rel);
        let back = decode_rows(&flat, &rows).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn x_block_labeling_bounds_alternatives() {
        let blocks: Vec<Vec<(Tuple, f64)>> = vec![
            vec![(tuple![1i64, 10i64], 1.0)],
            vec![(tuple![2i64, 20i64], 0.6), (tuple![2i64, 30i64], 0.4)],
            vec![(tuple![3i64, 5i64], 0.2)],
        ];
        let rel = AuRelation::from_x_blocks(
            Schema::qualified("r", ["id", "v"]),
            blocks.iter().map(Vec::as_slice),
        );
        assert_eq!(rel.rows().len(), 3);
        let certain = &rel.rows()[0];
        assert_eq!(certain.mult, MultBound::certain(1));
        assert!(certain.values[1].is_point());
        let alt = &rel.rows()[1];
        assert_eq!(alt.mult, MultBound::new(1, 1, 1));
        assert!(alt.values[1].contains(&Value::Int(20)));
        assert!(alt.values[1].contains(&Value::Int(30)));
        assert_eq!(alt.values[1].bg, Value::Int(20));
        let unlikely = &rel.rows()[2];
        assert_eq!(unlikely.mult, MultBound::new(0, 0, 1), "absence likelier");
    }

    #[test]
    fn non_au_schema_rejected() {
        assert!(au_base_schema(&Schema::qualified("r", ["a", "b"])).is_none());
        let flat = flattened_schema(&Schema::qualified("r", ["a"]));
        assert!(au_base_schema(&flat).is_some());
    }
}
