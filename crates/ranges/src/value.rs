//! Range-annotated values: the attribute-level bounds of AU-DBs.
//!
//! An AU-DB (Feng et al., *Efficient Uncertainty Tracking for Complex
//! Queries with Attribute-level Bounds* — the follow-up to the UA-DB paper
//! this repository reproduces) annotates every attribute with a triple
//! `[lb, bg, ub]`: a lower bound, the *selected-guess* value (the value in
//! the distinguished best-guess world, mirroring the UA-DB `det`
//! component), and an upper bound. A tuple's groundings — its values in the
//! possible worlds — all fall between `lb` and `ub` under the ordered
//! domain's comparison.
//!
//! Bounds live in the domain extended with `±∞` ([`Bound`]): a labeled null
//! or SQL `NULL` selected-guess has no finite bounds, and conservative
//! widening ("this expression's bounds are unknown") is expressed as the
//! *top* range `(-∞, +∞)`. By convention only the top range can ground to
//! an unknown (`NULL`/variable) value — every bounded range grounds to
//! ordinary domain values between its endpoints.

use std::cmp::Ordering;
use ua_data::value::Value;

/// Domain-order comparison for bounds: SQL's coercing comparison where it
/// applies (so `Int(2)` and `Float(2.0)` coincide and numeric ranges mix
/// integer and float endpoints), with the structural total order as the
/// tie-break for incomparable types. Total over the values that actually
/// share a range; cross-type ranges are widened by the evaluator before
/// this order matters.
pub fn range_cmp(a: &Value, b: &Value) -> Ordering {
    match a.sql_cmp(b) {
        Some(ord) => ord,
        None => a.cmp(b),
    }
}

/// A range endpoint: a domain value or an infinity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Bound {
    /// `-∞` — no lower bound.
    NegInf,
    /// A finite (known) domain value.
    Val(Value),
    /// `+∞` — no upper bound.
    PosInf,
}

impl Bound {
    /// Total order: `-∞ < values (domain order) < +∞`.
    pub fn cmp_bound(&self, other: &Bound) -> Ordering {
        match (self, other) {
            (Bound::NegInf, Bound::NegInf) | (Bound::PosInf, Bound::PosInf) => Ordering::Equal,
            (Bound::NegInf, _) | (_, Bound::PosInf) => Ordering::Less,
            (_, Bound::NegInf) | (Bound::PosInf, _) => Ordering::Greater,
            (Bound::Val(a), Bound::Val(b)) => range_cmp(a, b),
        }
    }

    /// The smaller of two bounds.
    pub fn min_bound(self, other: Bound) -> Bound {
        if self.cmp_bound(&other) == Ordering::Greater {
            other
        } else {
            self
        }
    }

    /// The larger of two bounds.
    pub fn max_bound(self, other: Bound) -> Bound {
        if self.cmp_bound(&other) == Ordering::Less {
            other
        } else {
            self
        }
    }

    /// The numeric interpretation (`±∞` for the infinities, `None` for
    /// non-numeric values).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Bound::NegInf => Some(f64::NEG_INFINITY),
            Bound::PosInf => Some(f64::INFINITY),
            Bound::Val(v) => v.as_f64(),
        }
    }

    /// Whether a (known) value satisfies `self ≤ v` / `v ≤ self` as the
    /// lower / upper endpoint respectively.
    fn admits_below(&self, v: &Value) -> bool {
        match self {
            Bound::NegInf => true,
            Bound::PosInf => false,
            Bound::Val(b) => range_cmp(b, v) != Ordering::Greater,
        }
    }

    fn admits_above(&self, v: &Value) -> bool {
        match self {
            Bound::PosInf => true,
            Bound::NegInf => false,
            Bound::Val(b) => range_cmp(b, v) != Ordering::Less,
        }
    }
}

/// A range-annotated value `[lb, bg, ub]` (attribute-level AU-DB bounds).
///
/// Invariant (enforced by every constructor): either the range is *top*
/// (`(-∞, +∞)` — the only range that may ground to `NULL`/variables, and
/// the mandatory form whenever `bg` itself is unknown), or
/// `lb ⪯ bg ⪯ ub` in the domain order with a known `bg`.
#[derive(Clone, PartialEq, Debug)]
pub struct RangeValue {
    lb: Bound,
    /// The selected-guess value.
    pub bg: Value,
    ub: Bound,
    /// The attribute is `NULL` under *every* grounding (definite NULL).
    /// Carries `(-∞, +∞)` internal bounds so every bounds-based
    /// consumer treats it like top (always sound); only the operations
    /// that can exploit certainty (`IS NULL`, containment, hulls of two
    /// definite NULLs) look at the flag.
    null: bool,
}

impl RangeValue {
    /// A certain (point) value. SQL `NULL` yields the definite-NULL
    /// range ([`RangeValue::null`]); a labeled null (one unknown domain
    /// value) yields top, since it admits any grounding.
    pub fn point(v: Value) -> RangeValue {
        if v == Value::Null {
            RangeValue::null()
        } else if v.is_unknown() {
            RangeValue::top(v)
        } else {
            RangeValue {
                lb: Bound::Val(v.clone()),
                bg: v.clone(),
                ub: Bound::Val(v),
                null: false,
            }
        }
    }

    /// The range of an attribute that is `NULL` in every world: top-like
    /// bounds (so bound arithmetic and comparisons stay sound without
    /// special cases) plus the definiteness flag `IS NULL` exploits.
    pub fn null() -> RangeValue {
        RangeValue {
            lb: Bound::NegInf,
            bg: Value::Null,
            ub: Bound::PosInf,
            null: true,
        }
    }

    /// Whether the attribute is certainly `NULL` (definite NULL).
    pub fn is_null(&self) -> bool {
        self.null
    }

    /// The unbounded range around a selected guess.
    pub fn top(bg: Value) -> RangeValue {
        RangeValue {
            lb: Bound::NegInf,
            bg,
            ub: Bound::PosInf,
            null: false,
        }
    }

    /// A range from explicit endpoints, normalized: an unknown `bg` or an
    /// inconsistent ordering (`lb ⋠ bg` or `bg ⋠ ub`) widens to top, which
    /// is always sound.
    pub fn new(lb: Bound, bg: Value, ub: Bound) -> RangeValue {
        if bg.is_unknown() || !lb.admits_below(&bg) || !ub.admits_above(&bg) {
            return RangeValue::top(bg);
        }
        RangeValue {
            lb,
            bg,
            ub,
            null: false,
        }
    }

    /// The lower endpoint.
    pub fn lb(&self) -> &Bound {
        &self.lb
    }

    /// The upper endpoint.
    pub fn ub(&self) -> &Bound {
        &self.ub
    }

    /// Whether the range pins a single known value.
    pub fn is_point(&self) -> bool {
        !self.bg.is_unknown()
            && self.lb == Bound::Val(self.bg.clone())
            && self.ub == Bound::Val(self.bg.clone())
    }

    /// Whether the range is completely unbounded (and may ground unknown).
    pub fn is_top(&self) -> bool {
        self.lb == Bound::NegInf && self.ub == Bound::PosInf
    }

    /// Whether a grounding `v` falls within the bounds. Unknown values are
    /// only admitted by the top range (the convention every labeling and
    /// operator maintains); a definite NULL admits *only* unknowns.
    pub fn contains(&self, v: &Value) -> bool {
        if self.null {
            return v.is_unknown();
        }
        if v.is_unknown() {
            return self.is_top();
        }
        self.lb.admits_below(v) && self.ub.admits_above(v)
    }

    /// Whether two ranges share at least one grounding.
    pub fn intersects(&self, other: &RangeValue) -> bool {
        self.lb.cmp_bound(&other.ub) != Ordering::Greater
            && other.lb.cmp_bound(&self.ub) != Ordering::Greater
    }

    /// The smallest range covering both inputs; the selected guess is kept
    /// from `self` (callers override it where a different representative is
    /// exact).
    pub fn hull(&self, other: &RangeValue) -> RangeValue {
        if self.null && other.null {
            return RangeValue::null();
        }
        RangeValue::new(
            self.lb.clone().min_bound(other.lb.clone()),
            self.bg.clone(),
            self.ub.clone().max_bound(other.ub.clone()),
        )
    }

    /// The same range with a replaced selected guess (re-normalized). A
    /// definite NULL stays definite as long as the new guess is unknown;
    /// a known guess contradicts definiteness and widens to top.
    pub fn with_bg(&self, bg: Value) -> RangeValue {
        if self.null && bg.is_unknown() {
            return RangeValue::null();
        }
        RangeValue::new(self.lb.clone(), bg, self.ub.clone())
    }
}

fn bound_binop(a: &Bound, b: &Bound, f: impl Fn(&Value, &Value) -> Option<Value>) -> Option<Bound> {
    match (a, b) {
        (Bound::Val(x), Bound::Val(y)) => f(x, y).map(Bound::Val),
        (Bound::NegInf, Bound::PosInf) | (Bound::PosInf, Bound::NegInf) => None,
        (Bound::NegInf, _) | (_, Bound::NegInf) => Some(Bound::NegInf),
        (Bound::PosInf, _) | (_, Bound::PosInf) => Some(Bound::PosInf),
    }
}

/// Interval addition. `bg` must already be the exact selected-guess result
/// (the caller computes it with the scalar evaluator); endpoint failures —
/// type errors, opposing infinities, wrap-around that inverts the ordering —
/// widen to top via [`RangeValue::new`].
pub fn interval_add(a: &RangeValue, b: &RangeValue, bg: Value) -> RangeValue {
    let lb = bound_binop(&a.lb, &b.lb, Value::add);
    let ub = bound_binop(&a.ub, &b.ub, Value::add);
    match (lb, ub) {
        (Some(lb), Some(ub)) => RangeValue::new(lb, bg, ub),
        _ => RangeValue::top(bg),
    }
}

/// Interval subtraction (`[a.lb - b.ub, a.ub - b.lb]`).
pub fn interval_sub(a: &RangeValue, b: &RangeValue, bg: Value) -> RangeValue {
    let lb = bound_binop(&a.lb, &b.ub, Value::sub);
    let ub = bound_binop(&a.ub, &b.lb, Value::sub);
    match (lb, ub) {
        (Some(lb), Some(ub)) => RangeValue::new(lb, bg, ub),
        _ => RangeValue::top(bg),
    }
}

/// Interval multiplication: the hull of the four endpoint products. Any
/// infinite endpoint widens to top (sign analysis over infinities buys
/// little here and the top range is always sound).
pub fn interval_mul(a: &RangeValue, b: &RangeValue, bg: Value) -> RangeValue {
    let corners = [
        (&a.lb, &b.lb),
        (&a.lb, &b.ub),
        (&a.ub, &b.lb),
        (&a.ub, &b.ub),
    ];
    let mut lo: Option<Bound> = None;
    let mut hi: Option<Bound> = None;
    for (x, y) in corners {
        let p = match (x, y) {
            (Bound::Val(x), Bound::Val(y)) => x.mul(y).map(Bound::Val),
            _ => None,
        };
        match p {
            Some(p) => {
                lo = Some(match lo {
                    None => p.clone(),
                    Some(l) => l.min_bound(p.clone()),
                });
                hi = Some(match hi {
                    None => p,
                    Some(h) => h.max_bound(p),
                });
            }
            None => return RangeValue::top(bg),
        }
    }
    match (lo, hi) {
        (Some(lo), Some(hi)) => RangeValue::new(lo, bg, hi),
        _ => RangeValue::top(bg),
    }
}

/// Interval division: exact corner quotients when the divisor range is
/// strictly signed (excludes zero); top otherwise (a possible zero divisor
/// means a possible `NULL` result).
pub fn interval_div(a: &RangeValue, b: &RangeValue, bg: Value) -> RangeValue {
    let strictly_signed = match (b.lb.as_f64(), b.ub.as_f64()) {
        (Some(lo), Some(hi)) => lo > 0.0 || hi < 0.0,
        _ => false,
    };
    if !strictly_signed {
        return RangeValue::top(bg);
    }
    let corners = [
        (&a.lb, &b.lb),
        (&a.lb, &b.ub),
        (&a.ub, &b.lb),
        (&a.ub, &b.ub),
    ];
    let mut lo: Option<Bound> = None;
    let mut hi: Option<Bound> = None;
    for (x, y) in corners {
        let q = match (x, y) {
            (Bound::Val(x), Bound::Val(y)) => x.div(y).map(Bound::Val),
            _ => None,
        };
        match q {
            Some(q) => {
                lo = Some(match lo {
                    None => q.clone(),
                    Some(l) => l.min_bound(q.clone()),
                });
                hi = Some(match hi {
                    None => q,
                    Some(h) => h.max_bound(q),
                });
            }
            None => return RangeValue::top(bg),
        }
    }
    match (lo, hi) {
        (Some(lo), Some(hi)) => RangeValue::new(lo, bg, hi),
        _ => RangeValue::top(bg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(lo: i64, bg: i64, hi: i64) -> RangeValue {
        RangeValue::new(
            Bound::Val(Value::Int(lo)),
            Value::Int(bg),
            Bound::Val(Value::Int(hi)),
        )
    }

    #[test]
    fn normalization_widens_inconsistency() {
        let r = RangeValue::new(
            Bound::Val(Value::Int(5)),
            Value::Int(1),
            Bound::Val(Value::Int(9)),
        );
        assert!(r.is_top(), "bg below lb must widen");
        assert!(RangeValue::point(Value::Null).is_top());
        assert!(span(1, 2, 3).contains(&Value::Int(2)));
        assert!(span(1, 2, 3).contains(&Value::float(2.5)));
        assert!(!span(1, 2, 3).contains(&Value::Int(4)));
        assert!(!span(1, 2, 3).contains(&Value::Null));
        assert!(RangeValue::top(Value::Null).contains(&Value::Null));
    }

    #[test]
    fn definite_null_semantics() {
        let n = RangeValue::null();
        assert!(n.is_null() && n.is_top(), "null is top-like for bounds");
        assert!(n.contains(&Value::Null));
        assert!(!n.contains(&Value::Int(1)));
        assert_eq!(RangeValue::point(Value::Null), RangeValue::null());
        assert!(
            !RangeValue::top(Value::Null).is_null(),
            "top may be non-NULL"
        );
        assert!(n.hull(&RangeValue::null()).is_null());
        assert!(!n.hull(&RangeValue::point(Value::Int(3))).is_null());
        assert!(n.with_bg(Value::Null).is_null());
        assert!(!n.with_bg(Value::Int(1)).is_null());
    }

    #[test]
    fn interval_arithmetic_encloses_groundings() {
        let a = span(1, 2, 3);
        let b = span(-2, 0, 5);
        let sum = interval_add(&a, &b, Value::Int(2));
        let prod = interval_mul(&a, &b, Value::Int(0));
        for va in 1..=3i64 {
            for vb in -2..=5i64 {
                assert!(sum.contains(&Value::Int(va + vb)), "{va}+{vb}");
                assert!(prod.contains(&Value::Int(va * vb)), "{va}*{vb}");
            }
        }
        let diff = interval_sub(&a, &b, Value::Int(2));
        assert!(diff.contains(&Value::Int(3 - -2)));
    }

    #[test]
    fn division_by_possibly_zero_is_top() {
        let a = span(10, 10, 10);
        assert!(interval_div(&a, &span(-1, 1, 1), Value::Int(10)).is_top());
        let q = interval_div(&a, &span(2, 2, 5), Value::Int(5));
        assert!(q.contains(&Value::Int(10 / 2)));
        assert!(q.contains(&Value::Int(10 / 5)));
    }

    #[test]
    fn hull_and_intersection() {
        let a = span(1, 2, 4);
        let b = span(3, 5, 9);
        assert!(a.intersects(&b));
        let h = a.hull(&b);
        assert!(h.contains(&Value::Int(1)) && h.contains(&Value::Int(9)));
        assert!(!span(1, 1, 2).intersects(&span(3, 3, 4)));
    }
}
