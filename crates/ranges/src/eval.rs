//! Range-aware expression evaluation: interval arithmetic for scalars and
//! three-valued *possibility* analysis for predicates.
//!
//! Two entry points, both over *bound* (positional) expressions and one
//! tuple's attribute ranges:
//!
//! * [`eval_range`] — a [`RangeValue`] whose selected guess is computed by
//!   the ordinary scalar evaluator over the selected-guess tuple (so the
//!   SG component of AU execution is *exactly* deterministic execution,
//!   errors included) and whose bounds enclose the expression's value under
//!   every grounding;
//! * [`truth_range`] — a [`RangeTruth`]: which truth values
//!   (true/false/unknown) the predicate can take across groundings. It
//!   over-approximates each possibility, which makes
//!   [`RangeTruth::certainly_true`] an under-approximation of "the
//!   predicate holds in every world" and [`RangeTruth::possibly_true`] an
//!   over-approximation of "it holds in some world" — the two directions
//!   the `⟦·⟧_AU` selection rule needs for sound multiplicity bounds.

use crate::value::{interval_add, interval_div, interval_mul, interval_sub, Bound, RangeValue};
use std::cmp::Ordering;
use ua_data::expr::{ArithOp, CmpOp, Expr, ExprError, Truth};
use ua_data::tuple::Tuple;
use ua_data::value::Value;

/// The set of truth values a predicate may take across groundings. Each
/// flag is an over-approximation ("may be …"), so widening any flag is
/// always sound.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RangeTruth {
    /// Some grounding may make the predicate true.
    pub t: bool,
    /// Some grounding may make it false.
    pub f: bool,
    /// Some grounding may make it unknown (three-valued NULL logic).
    pub u: bool,
}

impl RangeTruth {
    /// Everything is possible — the conservative default.
    pub const ANY: RangeTruth = RangeTruth {
        t: true,
        f: true,
        u: true,
    };

    /// Exactly one known truth value.
    pub fn exact(t: Truth) -> RangeTruth {
        RangeTruth {
            t: t == Truth::True,
            f: t == Truth::False,
            u: t == Truth::Unknown,
        }
    }

    /// The predicate holds under *every* grounding (the row certainly
    /// survives selection in all worlds).
    pub fn certainly_true(&self) -> bool {
        self.t && !self.f && !self.u
    }

    /// The predicate may hold under *some* grounding (the row possibly
    /// survives in some world).
    pub fn possibly_true(&self) -> bool {
        self.t
    }

    /// Kleene conjunction on possibility sets.
    pub fn and(self, o: RangeTruth) -> RangeTruth {
        RangeTruth {
            t: self.t && o.t,
            f: self.f || o.f,
            u: (self.u && (o.t || o.u)) || (o.u && (self.t || self.u)),
        }
    }

    /// Kleene disjunction on possibility sets.
    pub fn or(self, o: RangeTruth) -> RangeTruth {
        RangeTruth {
            t: self.t || o.t,
            f: self.f && o.f,
            u: (self.u && (o.f || o.u)) || (o.u && (self.f || self.u)),
        }
    }

    /// Kleene negation swaps the true/false possibilities.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> RangeTruth {
        RangeTruth {
            t: self.f,
            f: self.t,
            u: self.u,
        }
    }
}

/// Bounds-only evaluation (infallible): the returned range encloses the
/// expression's value under every grounding of `ranges`. The selected
/// guess inside the result is best-effort — [`eval_range`] replaces it
/// with the exact scalar result.
pub fn approx_range(expr: &Expr, ranges: &[RangeValue]) -> RangeValue {
    match expr {
        Expr::Col(i) => ranges
            .get(*i)
            .cloned()
            .unwrap_or_else(|| RangeValue::top(Value::Null)),
        Expr::Named(_) => RangeValue::top(Value::Null),
        Expr::Lit(v) => RangeValue::point(v.clone()),
        Expr::Arith(op, a, b) => {
            let ra = approx_range(a, ranges);
            let rb = approx_range(b, ranges);
            let bg = match op {
                ArithOp::Add => ra.bg.add(&rb.bg),
                ArithOp::Sub => ra.bg.sub(&rb.bg),
                ArithOp::Mul => ra.bg.mul(&rb.bg),
                ArithOp::Div => ra.bg.div(&rb.bg),
            }
            .unwrap_or(Value::Null);
            match op {
                ArithOp::Add => interval_add(&ra, &rb, bg),
                ArithOp::Sub => interval_sub(&ra, &rb, bg),
                ArithOp::Mul => interval_mul(&ra, &rb, bg),
                ArithOp::Div => interval_div(&ra, &rb, bg),
            }
        }
        Expr::Cmp(..)
        | Expr::And(..)
        | Expr::Or(..)
        | Expr::Not(..)
        | Expr::IsNull(..)
        | Expr::Between(..)
        | Expr::InList(..) => {
            // A predicate used as a value: true/false/NULL per grounding.
            let rt = truth_range(expr, ranges);
            if rt.certainly_true() {
                RangeValue::point(Value::Bool(true))
            } else if !rt.t && !rt.u {
                RangeValue::point(Value::Bool(false))
            } else if rt.u {
                RangeValue::top(Value::Null)
            } else {
                RangeValue::new(
                    Bound::Val(Value::Bool(false)),
                    Value::Bool(rt.t && !rt.f),
                    Bound::Val(Value::Bool(true)),
                )
            }
        }
        Expr::Case {
            branches,
            otherwise,
        } => {
            // Walk the branches: certainly-false conditions are skipped,
            // a certainly-true condition ends the walk; every still-possible
            // branch result joins the hull.
            let mut results: Vec<RangeValue> = Vec::new();
            let mut decided = false;
            for (cond, result) in branches {
                let rt = truth_range(cond, ranges);
                if rt.possibly_true() {
                    results.push(approx_range(result, ranges));
                }
                if rt.certainly_true() {
                    decided = true;
                    break;
                }
            }
            if !decided {
                results.push(match otherwise {
                    Some(e) => approx_range(e, ranges),
                    None => RangeValue::top(Value::Null),
                });
            }
            let mut iter = results.into_iter();
            let first = iter.next().expect("at least the otherwise branch");
            iter.fold(first, |acc, r| {
                if r.is_top() {
                    RangeValue::top(acc.bg.clone())
                } else {
                    acc.hull(&r)
                }
            })
        }
        Expr::Least(a, b) => {
            let ra = approx_range(a, ranges);
            let rb = approx_range(b, ranges);
            if ra.is_top() || rb.is_top() {
                return RangeValue::top(Value::Null);
            }
            RangeValue::new(
                ra.lb().clone().min_bound(rb.lb().clone()),
                match ra.bg.sql_cmp(&rb.bg) {
                    Some(Ordering::Greater) => rb.bg.clone(),
                    Some(_) => ra.bg.clone(),
                    None => Value::Null,
                },
                ra.ub().clone().min_bound(rb.ub().clone()),
            )
        }
    }
}

/// Evaluate `expr` to a range whose selected guess is the *exact* scalar
/// result over the selected-guess tuple `bg` (including that path's
/// errors, so AU execution fails on exactly the queries deterministic
/// execution over the SG world fails on) and whose bounds come from
/// [`approx_range`].
pub fn eval_range(expr: &Expr, ranges: &[RangeValue], bg: &Tuple) -> Result<RangeValue, ExprError> {
    let exact = expr.eval(bg)?;
    let approx = approx_range(expr, ranges);
    Ok(reanchor(&approx, exact))
}

/// Re-anchor an approximate range on the exact scalar selected guess.
/// Ordinary re-normalization ([`RangeValue::new`]) applies, except that a
/// definite NULL stays definite when the exact result is `NULL` — plain
/// normalization would widen it to top and lose the `IS NULL` certainty
/// on pass-through projections. Shared by [`eval_range`] and the
/// vectorized executor's computed-column path.
pub fn reanchor(approx: &RangeValue, exact: Value) -> RangeValue {
    if approx.is_null() && exact == Value::Null {
        return RangeValue::null();
    }
    RangeValue::new(approx.lb().clone(), exact, approx.ub().clone())
}

/// Whether every grounding of the ranges on both sides is comparable under
/// SQL semantics (so endpoint comparisons decide possibility exactly): both
/// selected guesses are known and SQL-comparable, which for normalized,
/// non-top ranges pins both sides to one comparable type family.
fn comparable(a: &RangeValue, b: &RangeValue) -> bool {
    !a.is_top() && !b.is_top() && a.bg.sql_cmp(&b.bg).is_some()
}

fn cmp_possibilities(op: CmpOp, a: &RangeValue, b: &RangeValue) -> RangeTruth {
    if !comparable(a, b) {
        return RangeTruth::ANY;
    }
    let lt_possible = a.lb().cmp_bound(b.ub()) == Ordering::Less;
    let gt_possible = b.lb().cmp_bound(a.ub()) == Ordering::Less;
    let eq_possible = a.intersects(b);
    let (t, f) = match op {
        CmpOp::Lt => (lt_possible, gt_possible || eq_possible),
        CmpOp::Le => (lt_possible || eq_possible, gt_possible),
        CmpOp::Gt => (gt_possible, lt_possible || eq_possible),
        CmpOp::Ge => (gt_possible || eq_possible, lt_possible),
        CmpOp::Eq => (
            eq_possible,
            lt_possible || gt_possible || !points_equal(a, b),
        ),
        CmpOp::Ne => (
            lt_possible || gt_possible || !points_equal(a, b),
            eq_possible,
        ),
    };
    RangeTruth { t, f, u: false }
}

/// Both ranges are the same single point.
fn points_equal(a: &RangeValue, b: &RangeValue) -> bool {
    a.is_point() && b.is_point() && crate::value::range_cmp(&a.bg, &b.bg) == Ordering::Equal
}

/// Three-valued possibility analysis of a (bound) predicate over one
/// tuple's attribute ranges. Infallible: shapes without a precise rule
/// return [`RangeTruth::ANY`]; scalar-evaluation errors surface through
/// the selected-guess path instead.
pub fn truth_range(expr: &Expr, ranges: &[RangeValue]) -> RangeTruth {
    match expr {
        Expr::Cmp(op, a, b) => {
            cmp_possibilities(*op, &approx_range(a, ranges), &approx_range(b, ranges))
        }
        Expr::And(a, b) => truth_range(a, ranges).and(truth_range(b, ranges)),
        Expr::Or(a, b) => truth_range(a, ranges).or(truth_range(b, ranges)),
        Expr::Not(a) => truth_range(a, ranges).not(),
        Expr::IsNull(a) => {
            // Only the top range may ground to NULL; a bounded range never
            // does. A *definite* NULL ([`RangeValue::null`]) grounds to
            // NULL in every world, so IS NULL is certainly true there.
            let r = approx_range(a, ranges);
            if r.is_null() {
                RangeTruth::exact(Truth::True)
            } else {
                RangeTruth {
                    t: r.is_top(),
                    f: true,
                    u: false,
                }
            }
        }
        Expr::Between(e, lo, hi) => {
            let ge = Expr::Cmp(CmpOp::Ge, e.clone(), lo.clone());
            let le = Expr::Cmp(CmpOp::Le, e.clone(), hi.clone());
            truth_range(&ge, ranges).and(truth_range(&le, ranges))
        }
        Expr::InList(e, list) => {
            let mut acc = RangeTruth::exact(Truth::False);
            for item in list {
                let eq = Expr::Cmp(CmpOp::Eq, e.clone(), Box::new(item.clone()));
                acc = acc.or(truth_range(&eq, ranges));
            }
            acc
        }
        Expr::Lit(Value::Bool(b)) => RangeTruth::exact(Truth::from_bool(*b)),
        Expr::Lit(v) if v.is_unknown() => RangeTruth::exact(Truth::Unknown),
        other => {
            // Boolean-valued columns / CASE / anything else: read the value
            // range and report which truth values it admits.
            let r = approx_range(other, ranges);
            if r.is_top() {
                return RangeTruth::ANY;
            }
            RangeTruth {
                t: r.contains(&Value::Bool(true)),
                f: r.contains(&Value::Bool(false)),
                u: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(lo: i64, bg: i64, hi: i64) -> RangeValue {
        RangeValue::new(
            Bound::Val(Value::Int(lo)),
            Value::Int(bg),
            Bound::Val(Value::Int(hi)),
        )
    }

    #[test]
    fn comparison_possibilities() {
        let ranges = vec![span(1, 2, 4), span(6, 7, 9)];
        // a < b holds for every grounding.
        let lt = truth_range(&Expr::Col(0).lt(Expr::Col(1)), &ranges);
        assert!(lt.certainly_true());
        // a = b impossible.
        let eq = truth_range(&Expr::Col(0).eq(Expr::Col(1)), &ranges);
        assert!(!eq.possibly_true());
        // Overlapping: a >= 3 possible but not certain.
        let ge = truth_range(&Expr::Col(0).ge(Expr::lit(3i64)), &ranges);
        assert!(ge.possibly_true() && !ge.certainly_true());
    }

    #[test]
    fn negation_does_not_promote_unknown_to_certain() {
        // col0 is top (may be NULL): `col0 = 5` is never certainly true,
        // and NOT(col0 = 5) must not become certainly true either — the
        // grounding where col0 IS NULL makes both comparisons unknown.
        let ranges = vec![RangeValue::top(Value::Null)];
        let eq = truth_range(&Expr::Col(0).eq(Expr::lit(5i64)), &ranges);
        assert!(!eq.certainly_true());
        let ne = truth_range(&Expr::Col(0).eq(Expr::lit(5i64)).not(), &ranges);
        assert!(!ne.certainly_true(), "NOT over a possibly-unknown operand");
        assert!(ne.possibly_true());
    }

    #[test]
    fn exhaustive_groundings_respect_possibility_sets() {
        // Enumerate all groundings of two small ranges for a few predicate
        // shapes and check the possibility sets over-approximate reality
        // and certainly_true under-approximates it.
        let ranges = vec![span(0, 1, 3), span(2, 2, 5)];
        let exprs = [
            Expr::Col(0).lt(Expr::Col(1)),
            Expr::Col(0).eq(Expr::Col(1)),
            Expr::Col(0)
                .ge(Expr::lit(1i64))
                .and(Expr::Col(1).le(Expr::lit(4i64))),
            Expr::Col(0).add(Expr::Col(1)).gt(Expr::lit(4i64)),
            Expr::Col(0).between(Expr::lit(1i64), Expr::Col(1)),
            Expr::InList(
                Box::new(Expr::Col(0)),
                vec![Expr::lit(2i64), Expr::lit(7i64)],
            ),
            Expr::Col(0).lt(Expr::Col(1)).not(),
        ];
        for e in &exprs {
            let rt = truth_range(e, &ranges);
            let mut seen_true = false;
            let mut all_true = true;
            for a in 0..=3i64 {
                for b in 2..=5i64 {
                    let t = e
                        .eval_truth(&Tuple::new(vec![Value::Int(a), Value::Int(b)]))
                        .unwrap();
                    match t {
                        Truth::True => seen_true = true,
                        _ => all_true = false,
                    }
                }
            }
            assert!(
                !rt.certainly_true() || all_true,
                "{e}: claimed certain but a grounding fails"
            );
            assert!(
                rt.possibly_true() || !seen_true,
                "{e}: a true grounding exists but possibility denied"
            );
        }
    }

    #[test]
    fn is_null_certainty_tracks_definite_null() {
        let ranges = vec![
            RangeValue::null(),
            RangeValue::point(Value::Int(5)),
            RangeValue::top(Value::Null),
        ];
        let certain = truth_range(&Expr::IsNull(Box::new(Expr::Col(0))), &ranges);
        assert!(certain.certainly_true(), "definitely-NULL attribute");
        let never = truth_range(&Expr::IsNull(Box::new(Expr::Col(1))), &ranges);
        assert!(!never.possibly_true(), "bounded range never grounds NULL");
        let maybe = truth_range(&Expr::IsNull(Box::new(Expr::Col(2))), &ranges);
        assert!(maybe.possibly_true() && !maybe.certainly_true(), "top");
        // Kleene negation keeps the certainty: NOT (NULL IS NULL) is
        // certainly false.
        let not_null = truth_range(
            &Expr::Not(Box::new(Expr::IsNull(Box::new(Expr::Col(0))))),
            &ranges,
        );
        assert!(!not_null.possibly_true());
        // A NULL literal is definitely NULL too.
        let lit = truth_range(&Expr::IsNull(Box::new(Expr::Lit(Value::Null))), &ranges);
        assert!(lit.certainly_true());
    }

    #[test]
    fn projection_preserves_definite_null() {
        // A pass-through projection of a definitely-NULL attribute must
        // stay definite (so IS NULL after π remains certainly true).
        let ranges = vec![RangeValue::null()];
        let bg = Tuple::new(vec![Value::Null]);
        let r = eval_range(&Expr::Col(0), &ranges, &bg).unwrap();
        assert!(r.is_null());
        let lit = eval_range(&Expr::Lit(Value::Null), &ranges, &bg).unwrap();
        assert!(lit.is_null());
        // A known exact value contradicts definiteness and widens.
        assert!(!reanchor(&RangeValue::null(), Value::Int(1)).is_null());
    }

    #[test]
    fn eval_range_selected_guess_is_exact() {
        let ranges = vec![span(1, 2, 4), span(0, 10, 20)];
        let bg = Tuple::new(vec![Value::Int(2), Value::Int(10)]);
        let e = Expr::Col(0).add(Expr::Col(1)).mul(Expr::lit(2i64));
        let r = eval_range(&e, &ranges, &bg).unwrap();
        assert_eq!(r.bg, Value::Int(24));
        for a in 1..=4i64 {
            for b in 0..=20i64 {
                assert!(r.contains(&Value::Int((a + b) * 2)));
            }
        }
    }
}
