//! Bound-precision summaries: how tight an AU result's ranges are.
//!
//! The whole pitch of attribute-level bounds is *tight* enclosure at low
//! overhead — a result whose every attribute widened to ⊤ is sound but
//! useless. [`WidthSummary`] condenses a set of range-annotated tuples
//! into the precision profile EXPLAIN ANALYZE reports per operator, so a
//! query plan shows *where* bounds blow up:
//!
//! * the fraction of attribute cells that are points / that widened to
//!   top (`(-∞, +∞)`, including definite NULLs),
//! * the mean relative interval width of numerically bounded cells
//!   (`(ub − lb) / (1 + |bg|)`, so the figure is scale-free), and
//! * the tuple-multiplicity spread `Σ (mult.ub − mult.lb)` with the count
//!   of certainly-present rows (`mult.lb ≥ 1`).
//!
//! All accumulation is integral (per-cell widths are rounded to per-mille
//! before summing), so summaries are **order-insensitive and
//! deterministic**: merging per-batch summaries in any grouping yields
//! the same figures as one pass over the whole relation — what lets the
//! vectorized engine fold them morsel by morsel and still match the row
//! engine's numbers byte for byte in golden snapshots.

use crate::relation::{AuRelation, AuTuple};
use crate::value::Bound;

/// An order-insensitive precision profile of range-annotated tuples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WidthSummary {
    /// Tuples observed.
    pub rows: u64,
    /// Tuples certainly present in every world (`mult.lb ≥ 1`).
    pub certain_rows: u64,
    /// Attribute cells observed (`rows × arity`).
    pub attrs: u64,
    /// Cells pinning a single known value.
    pub point_attrs: u64,
    /// Cells widened to top (`(-∞, +∞)`), definite NULLs included.
    pub top_attrs: u64,
    /// Cells with finite numeric bounds (points included at width 0) —
    /// the denominator of the mean relative width.
    pub width_cells: u64,
    /// Σ per-cell relative width in per-mille
    /// (`round(1000 · (ub − lb) / (1 + |bg|))`), saturating.
    pub rel_width_permille_sum: u64,
    /// Σ per-tuple multiplicity spread (`mult.ub − mult.lb`), saturating.
    pub mult_spread: u64,
}

impl WidthSummary {
    /// The empty summary.
    pub fn new() -> WidthSummary {
        WidthSummary::default()
    }

    /// The summary of a whole relation.
    pub fn of(rel: &AuRelation) -> WidthSummary {
        let mut s = WidthSummary::new();
        for row in rel.rows() {
            s.observe(row);
        }
        s
    }

    /// Fold one tuple into the summary.
    pub fn observe(&mut self, row: &AuTuple) {
        self.rows += 1;
        if row.mult.certainly_present() {
            self.certain_rows += 1;
        }
        self.mult_spread = self
            .mult_spread
            .saturating_add(row.mult.ub.saturating_sub(row.mult.lb));
        for r in &row.values {
            self.attrs += 1;
            if r.is_top() {
                self.top_attrs += 1;
                continue;
            }
            if r.is_point() {
                self.point_attrs += 1;
                self.width_cells += 1;
                continue;
            }
            // Bounded, non-point: numeric cells contribute their relative
            // width; bounded non-numeric ranges (e.g. string hulls) have
            // no meaningful width and stay out of the mean.
            if let (Bound::Val(lo), Bound::Val(hi)) = (r.lb(), r.ub()) {
                if let (Some(lo), Some(hi), Some(bg)) = (lo.as_f64(), hi.as_f64(), r.bg.as_f64()) {
                    let rel = (hi - lo).max(0.0) / (1.0 + bg.abs());
                    let permille = (rel * 1000.0).round();
                    self.width_cells += 1;
                    self.rel_width_permille_sum = self.rel_width_permille_sum.saturating_add(
                        if permille >= u64::MAX as f64 {
                            u64::MAX
                        } else {
                            permille as u64
                        },
                    );
                }
            }
        }
    }

    /// Fold another summary in (associative and commutative).
    pub fn merge(&mut self, other: &WidthSummary) {
        self.rows += other.rows;
        self.certain_rows += other.certain_rows;
        self.attrs += other.attrs;
        self.point_attrs += other.point_attrs;
        self.top_attrs += other.top_attrs;
        self.width_cells += other.width_cells;
        self.rel_width_permille_sum = self
            .rel_width_permille_sum
            .saturating_add(other.rel_width_permille_sum);
        self.mult_spread = self.mult_spread.saturating_add(other.mult_spread);
    }

    /// Fraction of attribute cells widened to top, in per-mille (0 on an
    /// empty summary).
    pub fn top_attr_permille(&self) -> u64 {
        self.top_attrs
            .saturating_mul(1000)
            .checked_div(self.attrs)
            .unwrap_or(0)
    }

    /// Mean relative interval width over numerically bounded cells, in
    /// per-mille (0 when no cell qualifies).
    pub fn mean_rel_width_permille(&self) -> u64 {
        self.rel_width_permille_sum
            .checked_div(self.width_cells)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mult::MultBound;
    use crate::value::RangeValue;
    use ua_data::schema::Schema;
    use ua_data::value::Value;

    fn span(lo: i64, bg: i64, hi: i64) -> RangeValue {
        RangeValue::new(
            Bound::Val(Value::Int(lo)),
            Value::Int(bg),
            Bound::Val(Value::Int(hi)),
        )
    }

    fn rel(rows: Vec<AuTuple>) -> AuRelation {
        let arity = rows.first().map_or(0, |r| r.values.len());
        let names: Vec<String> = (0..arity).map(|i| format!("c{i}")).collect();
        let mut out = AuRelation::new(Schema::qualified("t", names));
        for r in rows {
            out.push(r);
        }
        out
    }

    #[test]
    fn profiles_points_tops_and_widths() {
        let s = WidthSummary::of(&rel(vec![
            AuTuple {
                values: vec![RangeValue::point(Value::Int(7)), span(0, 1, 9)],
                mult: MultBound::certain(1),
            },
            AuTuple {
                values: vec![RangeValue::top(Value::Int(3)), RangeValue::null()],
                mult: MultBound::new(0, 1, 4),
            },
        ]));
        assert_eq!((s.rows, s.certain_rows), (2, 1));
        assert_eq!((s.attrs, s.point_attrs, s.top_attrs), (4, 1, 2));
        // span(0,1,9): rel width (9-0)/(1+1) = 4.5 → 4500‰ over 2 cells
        // (the point contributes width 0).
        assert_eq!(s.width_cells, 2);
        assert_eq!(s.mean_rel_width_permille(), 2250);
        assert_eq!(s.top_attr_permille(), 500);
        assert_eq!(s.mult_spread, 4);
    }

    #[test]
    fn merge_matches_single_pass_regardless_of_split() {
        let rows: Vec<AuTuple> = (0..10)
            .map(|i| AuTuple {
                values: vec![span(0, i, 2 * i + 1), RangeValue::point(Value::str("x"))],
                mult: MultBound::new(0, 1, (i as u64) + 1),
            })
            .collect();
        let whole = WidthSummary::of(&rel(rows.clone()));
        for split in [1, 3, 7] {
            let mut merged = WidthSummary::new();
            for chunk in rows.chunks(split) {
                let mut part = WidthSummary::new();
                for r in chunk {
                    part.observe(r);
                }
                merged.merge(&part);
            }
            assert_eq!(merged, whole, "split={split}");
        }
    }

    #[test]
    fn empty_and_non_numeric_cells_are_safe() {
        let s = WidthSummary::new();
        assert_eq!(s.top_attr_permille(), 0);
        assert_eq!(s.mean_rel_width_permille(), 0);
        // A bounded string hull has no numeric width: counted as an attr
        // but outside the mean.
        let hull = RangeValue::new(
            Bound::Val(Value::str("a")),
            Value::str("b"),
            Bound::Val(Value::str("c")),
        );
        let s = WidthSummary::of(&rel(vec![AuTuple {
            values: vec![hull],
            mult: MultBound::certain(2),
        }]));
        assert_eq!((s.attrs, s.width_cells, s.top_attrs), (1, 0, 0));
        assert_eq!(s.mean_rel_width_permille(), 0);
    }
}
