//! Tuple-level multiplicity-bound triples over the natural numbers.
//!
//! Where a UA-DB annotates a tuple with the pair `[cert, det]` (a certain
//! lower bound and the best-guess multiplicity), an AU-DB extends the pair
//! to the triple `[lb, bg, ub]`: in every possible world the tuple's
//! multiplicity is at least `lb` and at most `ub`, and it is exactly `bg`
//! in the selected-guess world. `ℕ³` with pointwise operations is a
//! semiring (the same product construction as `K²`), so K-relational
//! evaluation applies unchanged — which is what keeps the `⟦·⟧_AU`
//! rewriting's join/union rules one-line pointwise combinations.

use ua_semiring::{NaturalOrder, Semiring};

/// A multiplicity-bound triple `[lb, bg, ub]` over saturating `ℕ`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct MultBound {
    /// Guaranteed copies in every possible world.
    pub lb: u64,
    /// Copies in the selected-guess world.
    pub bg: u64,
    /// Maximum copies in any possible world.
    pub ub: u64,
}

impl MultBound {
    /// The triple `[lb, bg, ub]`.
    pub fn new(lb: u64, bg: u64, ub: u64) -> MultBound {
        MultBound { lb, bg, ub }
    }

    /// A fully certain multiplicity `[n, n, n]`.
    pub fn certain(n: u64) -> MultBound {
        MultBound::new(n, n, n)
    }

    /// Well-formedness: the selected-guess world is one of the possible
    /// worlds, so `lb ≤ bg ≤ ub`.
    pub fn is_well_formed(&self) -> bool {
        self.lb <= self.bg && self.bg <= self.ub
    }

    /// Whether the tuple certainly appears (in every world).
    pub fn certainly_present(&self) -> bool {
        self.lb >= 1
    }
}

impl Semiring for MultBound {
    fn zero() -> Self {
        MultBound::new(0, 0, 0)
    }

    fn one() -> Self {
        MultBound::new(1, 1, 1)
    }

    fn plus(&self, other: &Self) -> Self {
        MultBound::new(
            self.lb.saturating_add(other.lb),
            self.bg.saturating_add(other.bg),
            self.ub.saturating_add(other.ub),
        )
    }

    fn times(&self, other: &Self) -> Self {
        MultBound::new(
            self.lb.saturating_mul(other.lb),
            self.bg.saturating_mul(other.bg),
            self.ub.saturating_mul(other.ub),
        )
    }

    fn is_zero(&self) -> bool {
        *self == MultBound::new(0, 0, 0)
    }

    fn is_one(&self) -> bool {
        *self == MultBound::new(1, 1, 1)
    }
}

impl NaturalOrder for MultBound {
    fn natural_leq(&self, other: &Self) -> bool {
        self.lb <= other.lb && self.bg <= other.bg && self.ub <= other.ub
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_semiring::laws;

    #[test]
    fn triple_semiring_laws() {
        let elems: Vec<MultBound> = [
            (0, 0, 0),
            (0, 0, 1),
            (0, 1, 1),
            (1, 1, 1),
            (1, 2, 3),
            (0, 1, 4),
        ]
        .iter()
        .map(|&(l, b, u)| MultBound::new(l, b, u))
        .collect();
        laws::check_semiring_laws(&elems);
        for e in &elems {
            assert!(e.is_well_formed());
        }
    }

    #[test]
    fn pointwise_combination() {
        let a = MultBound::new(1, 2, 3);
        let b = MultBound::new(0, 1, 2);
        assert_eq!(a.plus(&b), MultBound::new(1, 3, 5));
        assert_eq!(a.times(&b), MultBound::new(0, 2, 6));
        assert!(a.times(&b).is_well_formed());
        assert!(!MultBound::new(2, 1, 3).is_well_formed());
    }
}
