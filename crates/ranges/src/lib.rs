//! **ua-ranges** — attribute-level uncertainty bounds (AU-DBs).
//!
//! The source paper's `⟦·⟧_UA` encoding bounds certain answers for the
//! positive relational algebra only; `DISTINCT` and aggregation are
//! explicitly future work there. The authors' follow-up — *Efficient
//! Uncertainty Tracking for Complex Queries with Attribute-level Bounds*
//! (AU-DBs) — closes full queries by extending annotations from the
//! tuple-level pair `[cert, det]` to:
//!
//! * a per-attribute range `[lb, bg, ub]` ([`RangeValue`]) enclosing the
//!   attribute's value in every possible world, with the *selected guess*
//!   `bg` playing the UA-DB's best-guess role, and
//! * a tuple-level multiplicity triple `[lb, bg, ub]` ([`MultBound`]) over
//!   the `ua-semiring` naturals (pointwise `ℕ³`, a product semiring).
//!
//! This crate is the model layer the engines build on:
//!
//! * [`value`] / [`mult`] — the annotations and their ordered-domain
//!   arithmetic;
//! * [`eval`] — interval evaluation of engine expressions and the
//!   three-valued (certainly-true / possibly-true) range predicate
//!   analysis the `⟦·⟧_AU` selection rule needs;
//! * [`relation`] — [`AuRelation`] plus the flattened row encoding (the AU
//!   counterpart of the paper's Definition 8 `Enc`) and labelings from the
//!   TI/x-DB models into range annotations;
//! * [`ops`] — the shared `⟦σ⟧/⟦π⟧/⟦⋈⟧/⟦∪⟧/⟦δ⟧/⟦γ⟧` operators, including
//!   the headline sound bound combination for grouping/aggregation with
//!   uncertain group membership;
//! * [`enclosure`] — the test oracle: flow-based verification that an AU
//!   result encloses every possible world's answer;
//! * [`width`] — bound-precision summaries ([`WidthSummary`]): the
//!   per-operator tightness profile EXPLAIN ANALYZE reports.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod enclosure;
pub mod eval;
pub mod mult;
pub mod ops;
pub mod relation;
pub mod value;
pub mod width;

pub use enclosure::{check_encloses_world, sg_rows};
pub use eval::{approx_range, eval_range, reanchor, truth_range, RangeTruth};
pub use mult::MultBound;
pub use ops::{AggCols, AggInput, AggKind, AggSpec, SgKeyIndex, TripleCol};
pub use relation::{
    au_base_schema, decode_row, decode_rows, encode_row, encode_rows, flattened_schema,
    range_from_parts, range_parts, AuRelation, AuTuple, AU_LB_PREFIX, AU_MULT_BG, AU_MULT_LB,
    AU_MULT_UB, AU_UB_PREFIX,
};
pub use value::{range_cmp, Bound, RangeValue};
pub use width::WidthSummary;
