//! The AU-DB correctness oracle: does a range-annotated relation *enclose*
//! a concrete possible world's result?
//!
//! Enclosure, per the AU-DB bound-preservation theorem, has three parts,
//! checked against every possible world `w` of the `K^W` ground truth:
//!
//! 1. **Upper bound** — every row copy of `Q(w)` can be charged to some AU
//!    tuple whose attribute ranges contain it, with no AU tuple charged
//!    more than its multiplicity upper bound. This is a bipartite
//!    feasibility question, decided exactly with a small max-flow.
//! 2. **Lower bound** — every AU tuple claiming `lb ≥ k` finds at least
//!    `k` row copies of `Q(w)` within its ranges (no false certainty).
//! 3. **Selected guess** — expanding the `bg` components (values ×
//!    multiplicity) reproduces `Q` over the selected-guess world exactly.

use crate::relation::AuRelation;
use ua_data::tuple::Tuple;

/// Max-flow on a tiny dense graph (Edmonds–Karp). Node 0 is the source,
/// node `n-1` the sink.
fn max_flow(mut cap: Vec<Vec<u64>>, want: u64) -> u64 {
    let n = cap.len();
    let mut flow = 0u64;
    while flow < want {
        // BFS for an augmenting path.
        let mut parent: Vec<Option<usize>> = vec![None; n];
        parent[0] = Some(0);
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(u) = queue.pop_front() {
            for v in 0..n {
                if parent[v].is_none() && cap[u][v] > 0 {
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        if parent[n - 1].is_none() {
            break;
        }
        // Bottleneck along the path.
        let mut bottleneck = u64::MAX;
        let mut v = n - 1;
        while v != 0 {
            let u = parent[v].expect("on path");
            bottleneck = bottleneck.min(cap[u][v]);
            v = u;
        }
        let mut v = n - 1;
        while v != 0 {
            let u = parent[v].expect("on path");
            cap[u][v] -= bottleneck;
            cap[v][u] = cap[v][u].saturating_add(bottleneck);
            v = u;
        }
        flow = flow.saturating_add(bottleneck);
    }
    flow
}

/// Check that `au` encloses one world's result rows (a bag, as row
/// copies). Returns a description of the first violation.
pub fn check_encloses_world(au: &AuRelation, world_rows: &[Tuple]) -> Result<(), String> {
    // Distinct world tuples with their copy counts.
    let mut distinct: Vec<(Tuple, u64)> = Vec::new();
    for row in world_rows {
        match distinct.iter_mut().find(|(t, _)| t == row) {
            Some((_, n)) => *n += 1,
            None => distinct.push((row.clone(), 1)),
        }
    }

    // 1. Upper bound: feasibility flow source → world tuple → AU tuple →
    //    sink.
    let nw = distinct.len();
    let na = au.rows().len();
    let n = nw + na + 2;
    let total: u64 = distinct.iter().map(|(_, c)| *c).sum();
    let mut cap = vec![vec![0u64; n]; n];
    for (i, (t, c)) in distinct.iter().enumerate() {
        cap[0][1 + i] = *c;
        for (j, r) in au.rows().iter().enumerate() {
            if r.covers(t) {
                cap[1 + i][1 + nw + j] = u64::MAX / 4;
            }
        }
    }
    for (j, r) in au.rows().iter().enumerate() {
        cap[1 + nw + j][n - 1] = r.mult.ub;
    }
    let flow = max_flow(cap, total);
    if flow < total {
        let uncovered = distinct
            .iter()
            .find(|(t, _)| !au.rows().iter().any(|r| r.covers(t)))
            .map(|(t, _)| format!(" (e.g. {t} matches no AU tuple's ranges)"))
            .unwrap_or_default();
        return Err(format!(
            "upper-bound violation: only {flow} of {total} world row copies \
             chargeable within AU multiplicity upper bounds{uncovered}"
        ));
    }

    // 2. Lower bound: each certainty claim finds enough copies.
    for (j, r) in au.rows().iter().enumerate() {
        if r.mult.lb == 0 {
            continue;
        }
        let matched: u64 = distinct
            .iter()
            .filter(|(t, _)| r.covers(t))
            .map(|(_, c)| *c)
            .sum();
        if matched < r.mult.lb {
            return Err(format!(
                "lower-bound violation: AU tuple #{j} claims lb = {} but only \
                 {matched} world copies fall within its ranges",
                r.mult.lb
            ));
        }
    }
    Ok(())
}

/// The selected-guess rows of an AU relation, expanded by `bg`
/// multiplicity — must equal deterministic evaluation over the SG world.
pub fn sg_rows(au: &AuRelation) -> Vec<Tuple> {
    let mut out = Vec::new();
    for r in au.rows() {
        let t = r.bg_tuple();
        out.extend(std::iter::repeat_n(t, r.mult.bg as usize));
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mult::MultBound;
    use crate::relation::AuTuple;
    use crate::value::{Bound, RangeValue};
    use ua_data::schema::Schema;
    use ua_data::tuple;
    use ua_data::value::Value;

    fn span(lo: i64, bg: i64, hi: i64) -> RangeValue {
        RangeValue::new(
            Bound::Val(Value::Int(lo)),
            Value::Int(bg),
            Bound::Val(Value::Int(hi)),
        )
    }

    #[test]
    fn coverage_respects_capacities() {
        let mut au = AuRelation::new(Schema::qualified("r", ["a"]));
        au.push(AuTuple {
            values: vec![span(1, 2, 3)],
            mult: MultBound::new(0, 1, 1),
        });
        // One copy of 2: covered.
        assert!(check_encloses_world(&au, &[tuple![2i64]]).is_ok());
        // Two copies exceed ub = 1.
        assert!(check_encloses_world(&au, &[tuple![2i64], tuple![3i64]]).is_err());
        // Out-of-range value.
        assert!(check_encloses_world(&au, &[tuple![9i64]]).is_err());
    }

    #[test]
    fn flow_routes_around_greedy_choices() {
        // w1 = 2 fits both tuples; w2 = 3 fits only the second. A greedy
        // assignment of w2's slot to w1 would fail; the flow must not.
        let mut au = AuRelation::new(Schema::qualified("r", ["a"]));
        au.push(AuTuple {
            values: vec![span(1, 2, 2)],
            mult: MultBound::new(0, 1, 1),
        });
        au.push(AuTuple {
            values: vec![span(2, 3, 3)],
            mult: MultBound::new(0, 1, 1),
        });
        assert!(check_encloses_world(&au, &[tuple![2i64], tuple![3i64]]).is_ok());
    }

    #[test]
    fn lower_bound_claims_are_checked() {
        let mut au = AuRelation::new(Schema::qualified("r", ["a"]));
        au.push(AuTuple {
            values: vec![span(5, 5, 5)],
            mult: MultBound::new(2, 2, 2),
        });
        assert!(check_encloses_world(&au, &[tuple![5i64], tuple![5i64]]).is_ok());
        assert!(check_encloses_world(&au, &[tuple![5i64]]).is_err());
    }
}
