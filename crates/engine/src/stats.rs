//! Per-operator execution statistics for the row engine.
//!
//! [`Tracer`] is the span stack the recursive executors
//! ([`crate::exec::execute`], [`crate::au::execute_au`]) thread through
//! their recursion: entering a plan node pushes a frame (stamped with the
//! planner's cardinality estimate from [`crate::optimize::estimate_rows`]),
//! exiting pops it — filled with rows out and cumulative wall time — and
//! attaches it to the parent frame, so a finished query yields an
//! [`OperatorStats`] tree mirroring the executed plan.
//!
//! The tracer is **off the result path**: every method is a no-op for
//! [`Tracer::off`], and nothing an executor produces depends on the
//! tracer's state — results are byte-identical with collection on or off
//! (the differential tests assert it).

use crate::exec::EngineError;
use crate::plan::Plan;
use crate::storage::{Catalog, Table};
use ua_obs::{OperatorStats, Stopwatch};

/// The span stack threaded through the row executors' recursion.
pub(crate) struct Tracer<'a> {
    state: Option<TraceState<'a>>,
}

struct TraceState<'a> {
    catalog: &'a Catalog,
    /// `stack[0]` is a sentinel root; finished spans attach to the frame
    /// below them.
    stack: Vec<Frame>,
}

struct Frame {
    node: OperatorStats,
    start: Stopwatch,
}

impl<'a> Tracer<'a> {
    /// A disabled tracer: every method is a no-op (the default execution
    /// path).
    pub(crate) fn off() -> Tracer<'a> {
        Tracer { state: None }
    }

    /// A collecting tracer. `catalog` supplies the planner statistics for
    /// per-node cardinality estimates.
    pub(crate) fn on(catalog: &'a Catalog) -> Tracer<'a> {
        Tracer {
            state: Some(TraceState {
                catalog,
                stack: vec![Frame {
                    node: OperatorStats::new("", ""),
                    start: Stopwatch::start(),
                }],
            }),
        }
    }

    /// Open a span for `plan` (records the estimated cardinality now, the
    /// actuals at [`Tracer::exit`]).
    pub(crate) fn enter(&mut self, plan: &Plan) {
        if let Some(st) = &mut self.state {
            let (name, detail) = node_label(plan);
            let mut node = OperatorStats::new(name, detail);
            node.est_rows = crate::optimize::estimate_rows(plan, st.catalog);
            st.stack.push(Frame {
                node,
                start: Stopwatch::start(),
            });
        }
    }

    /// Close the current span with its actual output cardinality and
    /// attach it to the parent.
    pub(crate) fn exit(&mut self, rows_out: usize) {
        if let Some(st) = &mut self.state {
            let mut frame = st.stack.pop().expect("exit without enter");
            frame.node.rows_out = rows_out as u64;
            frame.node.wall_ns = frame.start.elapsed_ns();
            st.stack
                .last_mut()
                .expect("sentinel root below every span")
                .node
                .children
                .push(frame.node);
        }
    }

    /// Close the current span as *failed*: stamp its wall time, mark it
    /// with an `error=1` extra, and attach it to the parent — so a query
    /// that dies mid-execution still yields the partial operator tree up
    /// to (and including) the failing span, instead of nothing.
    pub(crate) fn abandon(&mut self) {
        if let Some(st) = &mut self.state {
            let mut frame = st.stack.pop().expect("abandon without enter");
            frame.node.wall_ns = frame.start.elapsed_ns();
            frame.node.push_extra("error", 1);
            st.stack
                .last_mut()
                .expect("sentinel root below every span")
                .node
                .children
                .push(frame.node);
        }
    }

    /// Record a named counter on the current span.
    pub(crate) fn extra(&mut self, key: &str, value: u64) {
        if let Some(st) = &mut self.state {
            st.stack
                .last_mut()
                .expect("extra outside a span")
                .node
                .push_extra(key, value);
        }
    }

    /// Whether this tracer collects (lets executors skip pure-stats work
    /// like phase timing when off).
    pub(crate) fn enabled(&self) -> bool {
        self.state.is_some()
    }

    /// The finished span tree (the single top-level operator), if any.
    /// Error unwinding can leave spans open (the fused Map-over-Join path
    /// holds two frames at once); they are closed here with the `error`
    /// marker so partial trees always come out well-formed.
    pub(crate) fn finish(self) -> Option<OperatorStats> {
        self.state.and_then(|mut st| {
            while st.stack.len() > 1 {
                let mut frame = st.stack.pop().expect("len checked");
                frame.node.wall_ns = frame.start.elapsed_ns();
                frame.node.push_extra("error", 1);
                st.stack
                    .last_mut()
                    .expect("len checked")
                    .node
                    .children
                    .push(frame.node);
            }
            let mut root = st.stack.pop().expect("sentinel root");
            debug_assert!(root.node.children.len() <= 1, "one top-level span");
            root.node.children.pop()
        })
    }
}

/// Execute `plan` on the row engine while collecting the per-operator
/// span tree — [`crate::execute`] plus instrumentation; the result table
/// is byte-identical to the uninstrumented run.
pub fn execute_with_stats(
    plan: &Plan,
    catalog: &Catalog,
) -> Result<(Table, OperatorStats), EngineError> {
    let (result, root) = try_execute_with_stats(plan, catalog);
    Ok((result?, root.expect("traced execution yields a root span")))
}

/// [`execute_with_stats`] that keeps the span tree on failure: the stats
/// come back alongside the result, and a query that errors mid-execution
/// yields the partial operator tree with the failing spans carrying an
/// `error=1` extra — the instrument for debugging failed queries.
pub fn try_execute_with_stats(
    plan: &Plan,
    catalog: &Catalog,
) -> (Result<Table, EngineError>, Option<OperatorStats>) {
    let mut tracer = Tracer::on(catalog);
    let result = crate::exec::execute_traced(plan, catalog, &mut tracer);
    (result, tracer.finish())
}

/// Execute an AU plan on the row interpreter while collecting the
/// per-operator span tree (the instrumented [`crate::execute_au`]).
pub fn execute_au_with_stats(
    plan: &Plan,
    catalog: &Catalog,
) -> Result<(ua_ranges::AuRelation, OperatorStats), EngineError> {
    let (result, root) = try_execute_au_with_stats(plan, catalog);
    Ok((result?, root.expect("traced execution yields a root span")))
}

/// [`execute_au_with_stats`] that keeps the (partial, error-marked) span
/// tree on failure — the AU counterpart of [`try_execute_with_stats`].
pub fn try_execute_au_with_stats(
    plan: &Plan,
    catalog: &Catalog,
) -> (
    Result<ua_ranges::AuRelation, EngineError>,
    Option<OperatorStats>,
) {
    let mut tracer = Tracer::on(catalog);
    let result = crate::au::execute_au_traced(plan, catalog, &mut tracer);
    (result, tracer.finish())
}

/// Estimated logical bytes of one value: a fixed 16-byte slot (tag +
/// payload word) plus string payload. Computed from value *shape*, never
/// the allocator, so the figure is deterministic across runs and safe for
/// golden snapshots — the convention every `mem_bytes` figure in both
/// engines follows.
pub fn value_mem_bytes(v: &ua_data::value::Value) -> u64 {
    match v {
        ua_data::value::Value::Str(s) => 16 + s.len() as u64,
        _ => 16,
    }
}

/// Estimated logical bytes of one tuple: an 8-byte header plus its
/// values' [`value_mem_bytes`].
pub fn tuple_mem_bytes(t: &ua_data::tuple::Tuple) -> u64 {
    8 + t.values().iter().map(value_mem_bytes).sum::<u64>()
}

/// The node-local operator label: the same rendering [`Plan`]'s `Display`
/// uses, minus the recursive children. Public so the vectorized driver
/// labels its spans identically.
pub fn node_label(plan: &Plan) -> (String, String) {
    match plan {
        Plan::Scan(name) => ("Scan".into(), name.clone()),
        Plan::Alias { name, .. } => ("Alias".into(), name.clone()),
        Plan::Filter { predicate, .. } => ("Filter".into(), predicate.to_string()),
        Plan::Map { columns, .. } => {
            let detail = columns
                .iter()
                .map(|c| format!("{}→{}", c.expr, c.column))
                .collect::<Vec<_>>()
                .join(", ");
            ("Map".into(), detail)
        }
        Plan::Join {
            predicate: Some(p), ..
        } => ("Join".into(), p.to_string()),
        Plan::Join {
            predicate: None, ..
        } => ("Cross".into(), String::new()),
        Plan::HashJoin {
            keys,
            residual,
            build_left,
            ..
        } => {
            let mut detail = keys
                .iter()
                .map(|(l, r)| format!("{l}={r}"))
                .collect::<Vec<_>>()
                .join(", ");
            if let Some(res) = residual {
                detail.push_str(&format!("; σ[{res}]"));
            }
            detail.push_str(&format!(
                "; build={}",
                if *build_left { "left" } else { "right" }
            ));
            ("HashJoin".into(), detail)
        }
        Plan::UnionAll { .. } => ("UnionAll".into(), String::new()),
        Plan::Except { all, .. } => (
            "Except".into(),
            if *all { "all".into() } else { String::new() },
        ),
        Plan::OuterJoin {
            predicate, kind, ..
        } => (
            "OuterJoin".into(),
            match predicate {
                Some(p) => format!("{kind}; {p}"),
                None => kind.to_string(),
            },
        ),
        Plan::Distinct { .. } => ("Distinct".into(), String::new()),
        Plan::Aggregate {
            group_by,
            aggregates,
            ..
        } => {
            let groups = group_by
                .iter()
                .map(|g| g.column.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let aggs = aggregates
                .iter()
                .map(|a| format!("{}→{}", a.func, a.name))
                .collect::<Vec<_>>()
                .join(", ");
            ("Aggregate".into(), format!("{groups}; {aggs}"))
        }
        Plan::Sort { keys, .. } => ("Sort".into(), keys.len().to_string()),
        Plan::Limit { limit, .. } => ("Limit".into(), limit.to_string()),
        Plan::TopK { keys, limit, .. } => ("TopK".into(), format!("{} keys; {limit}", keys.len())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::schema::Schema;
    use ua_data::tuple;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.register(
            "emp",
            Table::from_rows(
                Schema::qualified("emp", ["name", "dept", "salary"]),
                vec![
                    tuple!["ann", "eng", 100i64],
                    tuple!["bob", "eng", 80i64],
                    tuple!["cat", "ops", 60i64],
                ],
            ),
        );
        c
    }

    #[test]
    fn traced_execution_matches_plain_and_builds_tree() {
        let c = catalog();
        let plan = Plan::Filter {
            input: Box::new(Plan::Scan("emp".into())),
            predicate: ua_data::expr::Expr::named("salary").ge(ua_data::expr::Expr::lit(80i64)),
        };
        let plain = crate::execute(&plan, &c).unwrap();
        let (traced, root) = execute_with_stats(&plan, &c).unwrap();
        assert_eq!(plain.schema(), traced.schema());
        assert_eq!(plain.rows(), traced.rows());
        assert_eq!(root.name, "Filter");
        assert_eq!(root.rows_out, 2);
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "Scan");
        assert_eq!(root.children[0].rows_out, 3);
        assert_eq!(root.children[0].est_rows, Some(3));
        assert!(root.wall_ns >= root.children[0].wall_ns);
    }

    #[test]
    fn off_tracer_is_inert() {
        let mut t = Tracer::off();
        t.enter(&Plan::Scan("emp".into()));
        t.extra("k", 1);
        t.exit(5);
        assert!(!t.enabled());
        assert!(t.finish().is_none());
    }
}
