//! Execution-mode selection and the vectorized-executor hook registry.
//!
//! The engine ships two executors for the same [`Plan`](crate::plan::Plan)s:
//! the row-at-a-time interpreter in [`crate::exec`] and the batch-oriented
//! columnar engine in the `ua-vecexec` crate. `ua-vecexec` sits *above* this
//! crate in the dependency graph (it reuses the plan, storage and error
//! types), so the engine cannot call it directly; instead `ua-vecexec`
//! registers its entry points here once per process
//! ([`register_vectorized_hooks`], called by `ua_vecexec::install()`), and
//! [`crate::ua::UaSession`] dispatches on its [`ExecMode`].

use crate::exec::EngineError;
use crate::plan::Plan;
use crate::storage::{Catalog, Table};
use std::sync::OnceLock;

/// Which executor a session uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecMode {
    /// The materializing row-at-a-time interpreter (the default).
    #[default]
    Row,
    /// The batch-oriented columnar engine (`ua-vecexec`), which carries UA
    /// labels as per-batch bitmaps. Requires `ua_vecexec::install()` to have
    /// run (the `uadb` facade re-exports it as `uadb::vecexec::install`).
    Vectorized,
}

/// Runtime knobs a session passes to the vectorized executor per query.
///
/// The executor's *output* is independent of every field here — the
/// morsel-parallel pipeline merges per-batch results in deterministic
/// batch-index order, so any thread count (and any batch size) produces
/// byte-identical tables; the differential/determinism tests assert it.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOptions {
    /// Worker threads for the morsel-driven parallel pipeline. `0` means
    /// resolve automatically: the `UA_VEC_THREADS` environment variable if
    /// set, else the machine's available parallelism. `1` forces the serial
    /// pipeline.
    pub threads: usize,
    /// Rows per column-batch morsel; `0` means the executor's default
    /// (`ua_vecexec::DEFAULT_BATCH_ROWS`).
    pub batch_rows: usize,
    /// Whether the executor should collect per-operator
    /// [`ua_obs::QueryStats`] and deposit them in the thread-local handoff
    /// slot (`ua_obs::set_last_query_stats`) for the session to pick up.
    /// Stats ride *next to* the result — output is byte-identical on or
    /// off.
    pub collect_stats: bool,
    /// Whether the executor should emit query-lifetime trace events
    /// (bind/execute/merge phase spans on the session thread's armed
    /// trace ring, plus per-morsel task spans recorded by the pool and
    /// injected after the join). Like stats, tracing is a pure observer —
    /// output is byte-identical on or off.
    pub collect_trace: bool,
}

/// Entry points a vectorized executor registers.
#[derive(Clone, Copy)]
pub struct VectorizedHooks {
    /// Execute an arbitrary [`Plan`] (deterministic semantics).
    pub plan: fn(&Plan, &Catalog, ExecOptions) -> Result<Table, EngineError>,
    /// Execute a physical plan over UA-encoded base tables — the `RA⁺`
    /// fragment (optionally optimizer-planned, so [`Plan::HashJoin`]
    /// appears) plus trailing [`Plan::Sort`]/[`Plan::Limit`]/[`Plan::TopK`]
    /// wrappers, which the executor runs natively over its encoded batches
    /// — returning the encoded result (certainty marker in last position).
    /// The plan is the *user* query's — label propagation per `⟦·⟧_UA`
    /// happens inside the executor, on its label bitmaps, instead of via a
    /// rewritten plan.
    pub ua: fn(&Plan, &Catalog, ExecOptions) -> Result<Table, EngineError>,
    /// Execute a plan over AU-encoded (range-annotated) base tables — the
    /// full plan algebra including `DISTINCT` and aggregation — returning
    /// the flattened encoded result (`ua_ranges::flattened_schema` layout).
    /// The executor runs σ/π/aggregation over range column triples and
    /// falls back per-operator to the shared `ua_ranges::ops`
    /// implementations elsewhere, so results are identical to the row
    /// engine's AU interpreter.
    pub au: fn(&Plan, &Catalog, ExecOptions) -> Result<Table, EngineError>,
}

static HOOKS: OnceLock<VectorizedHooks> = OnceLock::new();

/// Register the vectorized executor (idempotent; first registration wins).
pub fn register_vectorized_hooks(hooks: VectorizedHooks) {
    let _ = HOOKS.set(hooks);
}

/// The registered vectorized executor, if any.
pub fn vectorized_hooks() -> Option<&'static VectorizedHooks> {
    HOOKS.get()
}

pub(crate) fn require_vectorized_hooks() -> Result<&'static VectorizedHooks, EngineError> {
    vectorized_hooks().ok_or_else(|| {
        EngineError::Sql(
            "ExecMode::Vectorized requires the ua-vecexec executor; call \
             ua_vecexec::install() (re-exported as uadb::vecexec::install) \
             before querying"
                .into(),
        )
    })
}
