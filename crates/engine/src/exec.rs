//! The row-at-a-time executor.
//!
//! Evaluates [`Plan`]s against a [`Catalog`], materializing each operator's
//! output. Joins pick a hash strategy when the (bound) predicate contains
//! extractable equi-keys — the same extraction the K-relation evaluator
//! uses, so both engines make identical strategy choices. `WHERE` follows
//! SQL semantics: only rows whose predicate is *certainly* true survive
//! (`Unknown` rejects, matching `θ(t) ∈ {0_K, 1_K}` of the paper).

use crate::plan::{AggExpr, AggFunc, OuterKind, Plan, SortOrder};
use crate::stats::Tracer;
use crate::storage::{Catalog, Table};
use std::fmt;
use ua_data::algebra::extract_equi_keys;
use ua_data::expr::{Expr, ExprError};
use ua_data::schema::{Schema, SchemaError};
use ua_data::tuple::Tuple;
use ua_data::value::{Value, F64};
use ua_data::FxHashMap;
use ua_obs::Stopwatch;

/// Errors raised during plan execution.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// A scanned table is not in the catalog.
    UnknownTable(String),
    /// Schema resolution failed.
    Schema(SchemaError),
    /// Expression binding or evaluation failed.
    Expr(ExprError),
    /// SQL-level failure (parser/planner).
    Sql(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EngineError::Schema(e) => write!(f, "{e}"),
            EngineError::Expr(e) => write!(f, "{e}"),
            EngineError::Sql(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SchemaError> for EngineError {
    fn from(e: SchemaError) -> Self {
        EngineError::Schema(e)
    }
}

impl From<ExprError> for EngineError {
    fn from(e: ExprError) -> Self {
        EngineError::Expr(e)
    }
}

impl From<ua_data::algebra::RaError> for EngineError {
    fn from(e: ua_data::algebra::RaError) -> Self {
        match e {
            ua_data::algebra::RaError::UnknownTable(t) => EngineError::UnknownTable(t),
            ua_data::algebra::RaError::Schema(s) => EngineError::Schema(s),
            ua_data::algebra::RaError::Expr(x) => EngineError::Expr(x),
        }
    }
}

/// Execute `plan` against `catalog`, materializing the result.
pub fn execute(plan: &Plan, catalog: &Catalog) -> Result<Table, EngineError> {
    execute_traced(plan, catalog, &mut Tracer::off())
}

/// [`execute`] with a span tracer threaded through the recursion: each node
/// opens a span (stamped with the planner's cardinality estimate), executes,
/// and closes it with actual rows and wall time. A no-op for
/// [`Tracer::off`]; results are byte-identical either way. On error each
/// open span is closed with an `error=1` marker, so the tracer still
/// finishes into a (partial) tree. When query tracing is armed
/// (`ua_obs::trace_start`), each node additionally brackets an `operator`
/// trace span — independent of the stats tracer.
pub(crate) fn execute_traced(
    plan: &Plan,
    catalog: &Catalog,
    tracer: &mut Tracer<'_>,
) -> Result<Table, EngineError> {
    let trace_name = ua_obs::trace_active().then(|| crate::stats::node_label(plan).0);
    if let Some(name) = &trace_name {
        ua_obs::trace_begin(name, "operator");
    }
    tracer.enter(plan);
    let result = match execute_node(plan, catalog, tracer) {
        Ok(t) => {
            ua_certainty_extras(&t, tracer);
            tracer.exit(t.len());
            Ok(t)
        }
        Err(e) => {
            tracer.abandon();
            Err(e)
        }
    };
    if let Some(name) = &trace_name {
        ua_obs::trace_end(name, "operator");
    }
    result
}

/// Record the UA certainty profile on the current span: when the output
/// carries the UA certainty marker (`ua_c` in last position), count the
/// rows labeled certain. No-op for disabled tracers and non-UA tables.
fn ua_certainty_extras(t: &Table, tracer: &mut Tracer<'_>) {
    if !tracer.enabled() {
        return;
    }
    let marker_last = t
        .schema()
        .columns()
        .last()
        .is_some_and(|c| c.name.eq_ignore_ascii_case(ua_core::UA_LABEL_COLUMN));
    if !marker_last {
        return;
    }
    let last = t.schema().arity() - 1;
    let certain = t
        .rows()
        .iter()
        .filter(|row| matches!(row.get(last), Some(Value::Int(n)) if *n >= 1))
        .count() as u64;
    tracer.extra("certain_rows", certain);
}

fn execute_node(
    plan: &Plan,
    catalog: &Catalog,
    tracer: &mut Tracer<'_>,
) -> Result<Table, EngineError> {
    match plan {
        Plan::Scan(name) => catalog
            .get(name)
            .map(|t| (*t).clone())
            .ok_or_else(|| EngineError::UnknownTable(name.clone())),
        Plan::Alias { input, name } => {
            let t = execute_traced(input, catalog, tracer)?;
            let schema = t.schema().with_qualifier(name);
            Ok(t.with_schema(schema))
        }
        Plan::Filter { input, predicate } => {
            let t = execute_traced(input, catalog, tracer)?;
            let bound = predicate.bind(t.schema())?;
            let mut out = Table::new(t.schema().clone());
            for row in t.rows() {
                if bound.holds(row)? {
                    out.push(row.clone());
                }
            }
            Ok(out)
        }
        Plan::Map { input, columns } => {
            // Fuse projection into a child join: real engines pipeline, and
            // the UA rewriting inserts exactly this Map-over-Join shape
            // (Figure 9's join rule) — without fusion it would pay a full
            // extra materialization pass over the join result.
            if matches!(input.as_ref(), Plan::Join { .. } | Plan::HashJoin { .. }) {
                let (left, right) = join_inputs(input).expect("matched join");
                // The fused join still gets its own span (between the Map
                // span and the input spans), with joined-row cardinality
                // counted as rows stream through.
                tracer.enter(input);
                let l = execute_traced(left, catalog, tracer)?;
                let r = execute_traced(right, catalog, tracer)?;
                let join_schema = l.schema().concat(r.schema());
                let bound: Vec<Expr> = columns
                    .iter()
                    .map(|c| c.expr.bind(&join_schema))
                    .collect::<Result<_, _>>()?;
                let out_schema = Schema::new(columns.iter().map(|c| c.column.clone()).collect());
                let mut out = Table::new(out_schema);
                let mut join_rows: usize = 0;
                let mut meter = tracer.enabled().then(JoinMeter::default);
                join_node_stream(input, &l, &r, meter.as_mut(), &mut |joined| {
                    join_rows += 1;
                    let mapped: Tuple = bound
                        .iter()
                        .map(|e| e.eval(&joined))
                        .collect::<Result<_, _>>()?;
                    out.push(mapped);
                    Ok(())
                })?;
                join_span_extras(input, &l, &r, meter.as_ref(), tracer);
                tracer.extra("fused_into_map", 1);
                tracer.exit(join_rows);
                return Ok(out);
            }
            let t = execute_traced(input, catalog, tracer)?;
            let bound: Vec<Expr> = columns
                .iter()
                .map(|c| c.expr.bind(t.schema()))
                .collect::<Result<_, _>>()?;
            let schema = Schema::new(columns.iter().map(|c| c.column.clone()).collect());
            let mut out = Table::new(schema);
            for row in t.rows() {
                let mapped: Tuple = bound
                    .iter()
                    .map(|e| e.eval(row))
                    .collect::<Result<_, _>>()?;
                out.push(mapped);
            }
            Ok(out)
        }
        Plan::Join { left, right, .. } | Plan::HashJoin { left, right, .. } => {
            let l = execute_traced(left, catalog, tracer)?;
            let r = execute_traced(right, catalog, tracer)?;
            let schema = l.schema().concat(r.schema());
            let mut out = Table::new(schema);
            let mut meter = tracer.enabled().then(JoinMeter::default);
            join_node_stream(plan, &l, &r, meter.as_mut(), &mut |joined| {
                out.push(joined);
                Ok(())
            })?;
            join_span_extras(plan, &l, &r, meter.as_ref(), tracer);
            Ok(out)
        }
        Plan::UnionAll { left, right } => {
            let l = execute_traced(left, catalog, tracer)?;
            let r = execute_traced(right, catalog, tracer)?;
            l.schema().check_union_compatible(r.schema())?;
            let mut out = l.clone();
            for row in r.rows() {
                out.push(row.clone());
            }
            Ok(out)
        }
        Plan::Distinct { input } => {
            let t = execute_traced(input, catalog, tracer)?;
            let mut mem = tracer.enabled().then(ua_obs::MemTracker::new);
            let mut seen: ua_data::FxHashSet<Tuple> = ua_data::FxHashSet::default();
            let mut out = Table::new(t.schema().clone());
            for row in t.rows() {
                if seen.insert(row.clone()) {
                    if let Some(mem) = &mut mem {
                        mem.alloc(crate::stats::tuple_mem_bytes(row));
                    }
                    out.push(row.clone());
                }
            }
            if let Some(mem) = &mem {
                tracer.extra("mem_bytes", mem.peak());
            }
            Ok(out)
        }
        Plan::Except { left, right, all } => {
            let l = execute_traced(left, catalog, tracer)?;
            let r = execute_traced(right, catalog, tracer)?;
            l.schema().check_union_compatible(r.schema())?;
            let mut mem_bytes = 0u64;
            let out =
                except_table_metered(&l, &r, *all, tracer.enabled().then_some(&mut mem_bytes));
            if tracer.enabled() {
                tracer.extra("mem_bytes", mem_bytes);
            }
            Ok(out)
        }
        Plan::OuterJoin {
            left,
            right,
            predicate,
            kind,
        } => {
            let l = execute_traced(left, catalog, tracer)?;
            let r = execute_traced(right, catalog, tracer)?;
            let schema = l.schema().concat(r.schema());
            let mut out = Table::new(schema);
            outer_join_stream(&l, &r, predicate.as_ref(), *kind, &mut |row| {
                out.push(row);
                Ok(())
            })?;
            Ok(out)
        }
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => aggregate(input, group_by, aggregates, catalog, tracer),
        Plan::Sort { input, keys } => {
            let t = execute_traced(input, catalog, tracer)?;
            let mut mem_bytes = 0u64;
            let out = sort_table_metered(&t, keys, tracer.enabled().then_some(&mut mem_bytes))?;
            if tracer.enabled() {
                tracer.extra("mem_bytes", mem_bytes);
            }
            Ok(out)
        }
        Plan::Limit { input, limit } => {
            let t = execute_traced(input, catalog, tracer)?;
            Ok(limit_table(&t, *limit))
        }
        Plan::TopK { input, keys, limit } => {
            let t = execute_traced(input, catalog, tracer)?;
            let mut mem_bytes = 0u64;
            let out =
                top_k_table_metered(&t, keys, *limit, tracer.enabled().then_some(&mut mem_bytes))?;
            if tracer.enabled() {
                tracer.extra("mem_bytes", mem_bytes);
            }
            Ok(out)
        }
    }
}

/// Join instrumentation collected while streaming a join node: the build
/// phase's wall time and the build hash table's estimated logical bytes
/// ([`crate::stats::tuple_mem_bytes`] per distinct key plus a slot per
/// row). Only allocated when the tracer collects.
#[derive(Default)]
pub(crate) struct JoinMeter {
    build_ns: u64,
    build_bytes: u64,
}

/// Record the hash-join build/probe split and build-table memory on the
/// current span (no-op for disabled tracers; θ-joins that fall back to
/// nested loops build no table and report nothing).
fn join_span_extras(
    plan: &Plan,
    l: &Table,
    r: &Table,
    meter: Option<&JoinMeter>,
    tracer: &mut Tracer<'_>,
) {
    let Some(meter) = meter else { return };
    match plan {
        Plan::HashJoin { build_left, .. } => {
            let (build, probe) = if *build_left { (l, r) } else { (r, l) };
            tracer.extra("build_rows", build.len() as u64);
            tracer.extra("probe_rows", probe.len() as u64);
            tracer.extra("build_ns", meter.build_ns);
            tracer.extra("mem_bytes", meter.build_bytes);
        }
        Plan::Join { .. } if meter.build_bytes > 0 => {
            tracer.extra("mem_bytes", meter.build_bytes);
        }
        _ => {}
    }
}

/// The one sort-ordering definition both `sort_table` and `top_k_table`
/// (and, mirrored over columns, the vectorized operators) share: decorated
/// keys outermost-first under each key's direction, then the full row as
/// the deterministic tie-break. Anything that changes this ordering
/// changes `Limit(Sort(..))` and `TopK` together, never one of them.
fn decorated_row_cmp(
    bound: &[(Expr, SortOrder)],
    ka: &[Value],
    ra: &Tuple,
    kb: &[Value],
    rb: &Tuple,
) -> std::cmp::Ordering {
    for ((va, vb), (_, order)) in ka.iter().zip(kb).zip(bound) {
        let ord = va.cmp(vb);
        let ord = match order {
            SortOrder::Asc => ord,
            SortOrder::Desc => ord.reverse(),
        };
        if !ord.is_eq() {
            return ord;
        }
    }
    ra.cmp(rb)
}

/// Sort a materialized table by `keys` (outermost first), with a
/// deterministic full-row tie-break. Shared by both executors: the
/// vectorized engine materializes before sorting too, so the operators stay
/// byte-for-byte compatible.
pub fn sort_table(t: &Table, keys: &[(Expr, SortOrder)]) -> Result<Table, EngineError> {
    sort_table_metered(t, keys, None)
}

/// [`sort_table`] with optional memory accounting: when `mem_bytes` is
/// given, the decorated sort buffer's estimated logical bytes (keys +
/// rows) are tracked through [`ua_obs::MemTracker`] and the peak written
/// back.
pub(crate) fn sort_table_metered(
    t: &Table,
    keys: &[(Expr, SortOrder)],
    mem_bytes: Option<&mut u64>,
) -> Result<Table, EngineError> {
    let bound: Vec<(Expr, SortOrder)> = keys
        .iter()
        .map(|(e, o)| Ok((e.bind(t.schema())?, *o)))
        .collect::<Result<_, EngineError>>()?;
    let mut decorated: Vec<(Vec<Value>, Tuple)> = t
        .rows()
        .iter()
        .map(|row| {
            let key: Vec<Value> = bound
                .iter()
                .map(|(e, _)| e.eval(row))
                .collect::<Result<_, _>>()?;
            Ok((key, row.clone()))
        })
        .collect::<Result<_, EngineError>>()?;
    let mut mem = mem_bytes.map(|slot| (slot, ua_obs::MemTracker::new()));
    if let Some((_, tracker)) = &mut mem {
        let bytes: u64 = decorated
            .iter()
            .map(|(key, row)| sort_entry_bytes(key, row))
            .sum();
        tracker.alloc(bytes);
    }
    decorated.sort_by(|(ka, ra), (kb, rb)| decorated_row_cmp(&bound, ka, ra, kb, rb));
    let out = Table::from_rows(
        t.schema().clone(),
        decorated.into_iter().map(|(_, row)| row).collect(),
    );
    if let Some((slot, tracker)) = mem {
        *slot = tracker.peak();
    }
    Ok(out)
}

/// Estimated logical bytes of one decorated sort/Top-K buffer entry.
fn sort_entry_bytes(key: &[Value], row: &Tuple) -> u64 {
    8 + key.iter().map(crate::stats::value_mem_bytes).sum::<u64>()
        + crate::stats::tuple_mem_bytes(row)
}

/// The first `k` rows of `sort_table(t, keys)` without sorting the whole
/// table: a bounded buffer of the `k` best rows (kept ordered, with a
/// cheap "worse than the current k-th" rejection test for the common case)
/// replaces the full decorate-sort pass. Ordering is [`decorated_row_cmp`]
/// — the same comparison `sort_table` sorts with.
pub fn top_k_table(t: &Table, keys: &[(Expr, SortOrder)], k: usize) -> Result<Table, EngineError> {
    top_k_table_metered(t, keys, k, None)
}

/// [`top_k_table`] with optional memory accounting over the bounded
/// buffer: entries alloc on insert and free on eviction, so the reported
/// peak reflects the k-row working set, not the input size.
pub(crate) fn top_k_table_metered(
    t: &Table,
    keys: &[(Expr, SortOrder)],
    k: usize,
    mem_bytes: Option<&mut u64>,
) -> Result<Table, EngineError> {
    let bound: Vec<(Expr, SortOrder)> = keys
        .iter()
        .map(|(e, o)| Ok((e.bind(t.schema())?, *o)))
        .collect::<Result<_, EngineError>>()?;
    let cmp = |ka: &[Value], ra: &Tuple, kb: &[Value], rb: &Tuple| {
        decorated_row_cmp(&bound, ka, ra, kb, rb)
    };
    let mut mem = mem_bytes.map(|slot| (slot, ua_obs::MemTracker::new()));
    let mut top: Vec<(Vec<Value>, Tuple)> = Vec::with_capacity(k.min(t.len()) + 1);
    for row in t.rows() {
        let key: Vec<Value> = bound
            .iter()
            .map(|(e, _)| e.eval(row))
            .collect::<Result<_, _>>()?;
        if k == 0 {
            continue; // keys still evaluate row by row, like the full sort
        }
        if top.len() == k {
            let (wk, wr) = top.last().expect("k > 0");
            if cmp(&key, row, wk, wr) != std::cmp::Ordering::Less {
                continue;
            }
        }
        let pos = top
            .binary_search_by(|(ek, er)| cmp(ek, er, &key, row))
            .unwrap_or_else(|p| p);
        if let Some((_, tracker)) = &mut mem {
            tracker.alloc(sort_entry_bytes(&key, row));
        }
        top.insert(pos, (key, row.clone()));
        if top.len() > k {
            let (ek, er) = top.last().expect("over capacity");
            if let Some((_, tracker)) = &mut mem {
                tracker.free(sort_entry_bytes(ek, er));
            }
            top.truncate(k);
        }
    }
    let out = Table::from_rows(
        t.schema().clone(),
        top.into_iter().map(|(_, row)| row).collect(),
    );
    if let Some((slot, tracker)) = mem {
        *slot = tracker.peak();
    }
    Ok(out)
}

/// The first `limit` rows of a materialized table.
pub fn limit_table(t: &Table, limit: usize) -> Table {
    Table::from_rows(
        t.schema().clone(),
        t.rows().iter().take(limit).cloned().collect(),
    )
}

/// Bag difference. Tuples match under IS-NOT-DISTINCT semantics: keys are
/// coercion-normalized ([`Value::join_key`]) and NULL matches NULL — like
/// `DISTINCT`/`GROUP BY` keys, *unlike* join equality. `all = true` is bag
/// monus with earliest-first removal: each right occurrence cancels one
/// left occurrence in left scan order. `all = false` keeps the first
/// occurrence of each unmatched left tuple, in order of first occurrence.
/// Shared contract for both executors.
pub fn except_table(l: &Table, r: &Table, all: bool) -> Table {
    except_table_metered(l, r, all, None)
}

/// [`except_table`] with optional memory accounting over the budget map
/// (and, for `EXCEPT` without `ALL`, the seen set); the peak estimated
/// logical bytes are written back through `mem_bytes`.
pub(crate) fn except_table_metered(
    l: &Table,
    r: &Table,
    all: bool,
    mem_bytes: Option<&mut u64>,
) -> Table {
    let key_of =
        |row: &Tuple| -> Tuple { row.values().iter().map(|v| v.clone().join_key()).collect() };
    let mut mem = mem_bytes.map(|slot| (slot, ua_obs::MemTracker::new()));
    let mut budget: FxHashMap<Tuple, u64> = FxHashMap::default();
    for row in r.rows() {
        let key = key_of(row);
        if let Some((_, tracker)) = &mut mem {
            if !budget.contains_key(&key) {
                tracker.alloc(crate::stats::tuple_mem_bytes(&key) + 8);
            }
        }
        *budget.entry(key).or_insert(0) += 1;
    }
    let mut out = Table::new(l.schema().clone());
    if all {
        for row in l.rows() {
            match budget.get_mut(&key_of(row)) {
                Some(n) if *n > 0 => *n -= 1,
                _ => out.push(row.clone()),
            }
        }
    } else {
        let mut seen: ua_data::FxHashSet<Tuple> = ua_data::FxHashSet::default();
        for row in l.rows() {
            let key = key_of(row);
            if budget.contains_key(&key) {
                continue;
            }
            if let Some((_, tracker)) = &mut mem {
                if !seen.contains(&key) {
                    tracker.alloc(crate::stats::tuple_mem_bytes(&key));
                }
            }
            if seen.insert(key) {
                out.push(row.clone());
            }
        }
    }
    if let Some((slot, tracker)) = mem {
        *slot = tracker.peak();
    }
    out
}

/// Stream a left/right outer θ-join through `on_row`. Output columns are
/// always `left ++ right`; order is preserved-side-major (for each
/// preserved row in scan order: its surviving matches in the other side's
/// scan order, else one NULL-padded row). Join equality follows SQL
/// semantics — NULL keys never match, so NULL-keyed preserved rows come
/// out padded. Shared contract for both executors.
pub fn outer_join_stream(
    l: &Table,
    r: &Table,
    predicate: Option<&Expr>,
    kind: OuterKind,
    on_row: &mut dyn FnMut(Tuple) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    outer_join_pairs(l, r, predicate, kind, &mut |_, _, row| on_row(row))
}

/// [`outer_join_stream`] with provenance: the callback also receives the
/// preserved-side row index and the matched other-side row index (`None`
/// for the NULL-padded miss). The UA frontend combines certainty markers
/// through these indices.
pub(crate) fn outer_join_pairs(
    l: &Table,
    r: &Table,
    predicate: Option<&Expr>,
    kind: OuterKind,
    on_row: &mut dyn FnMut(usize, Option<usize>, Tuple) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    let schema = l.schema().concat(r.schema());
    let bound = predicate.map(|p| p.bind(&schema)).transpose()?;
    let outer_is_left = kind == OuterKind::Left;
    let (outer, inner) = if outer_is_left { (l, r) } else { (r, l) };
    let pad = Tuple::new(vec![Value::Null; inner.schema().arity()]);
    let concat = |orow: &Tuple, irow: &Tuple| -> Tuple {
        if outer_is_left {
            orow.concat(irow)
        } else {
            irow.concat(orow)
        }
    };

    if let Some(pred) = &bound {
        let (keys, residual) = extract_equi_keys(pred, l.schema().arity());
        if !keys.is_empty() {
            let residual = Expr::conjunction(residual);
            let key_of = |exprs: &[&Expr], row: &Tuple| -> Result<Tuple, EngineError> {
                Ok(exprs
                    .iter()
                    .map(|e| e.eval(row).map(Value::join_key))
                    .collect::<Result<_, _>>()?)
            };
            let (build_exprs, probe_exprs): (Vec<&Expr>, Vec<&Expr>) = if outer_is_left {
                (
                    keys.iter().map(|k| &k.right).collect(),
                    keys.iter().map(|k| &k.left).collect(),
                )
            } else {
                (
                    keys.iter().map(|k| &k.left).collect(),
                    keys.iter().map(|k| &k.right).collect(),
                )
            };
            let mut table: FxHashMap<Tuple, Vec<usize>> = FxHashMap::default();
            for (ii, irow) in inner.rows().iter().enumerate() {
                let key = key_of(&build_exprs, irow)?;
                if key.has_null() {
                    continue;
                }
                table.entry(key).or_default().push(ii);
            }
            for (oi, orow) in outer.rows().iter().enumerate() {
                let key = key_of(&probe_exprs, orow)?;
                let mut matched = false;
                if !key.has_null() {
                    if let Some(matches) = table.get(&key) {
                        for &ii in matches {
                            let joined = concat(orow, &inner.rows()[ii]);
                            if residual.holds(&joined)? {
                                matched = true;
                                on_row(oi, Some(ii), joined)?;
                            }
                        }
                    }
                }
                if !matched {
                    on_row(oi, None, concat(orow, &pad))?;
                }
            }
            return Ok(());
        }
    }

    for (oi, orow) in outer.rows().iter().enumerate() {
        let mut matched = false;
        for (ii, irow) in inner.rows().iter().enumerate() {
            let joined = concat(orow, irow);
            let keep = match &bound {
                Some(p) => p.holds(&joined)?,
                None => true,
            };
            if keep {
                matched = true;
                on_row(oi, Some(ii), joined)?;
            }
        }
        if !matched {
            on_row(oi, None, concat(orow, &pad))?;
        }
    }
    Ok(())
}

/// The two inputs of a join-like plan node.
fn join_inputs(plan: &Plan) -> Option<(&Plan, &Plan)> {
    match plan {
        Plan::Join { left, right, .. } | Plan::HashJoin { left, right, .. } => Some((left, right)),
        _ => None,
    }
}

/// Stream a join-like plan node ([`Plan::Join`] or [`Plan::HashJoin`]) over
/// its executed inputs.
fn join_node_stream(
    plan: &Plan,
    l: &Table,
    r: &Table,
    meter: Option<&mut JoinMeter>,
    on_row: &mut dyn FnMut(Tuple) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    match plan {
        Plan::Join { predicate, .. } => join_stream(l, r, predicate.as_ref(), meter, on_row),
        Plan::HashJoin {
            keys,
            residual,
            build_left,
            ..
        } => hash_join_stream(l, r, keys, residual.as_ref(), *build_left, meter, on_row),
        other => Err(EngineError::Sql(format!("not a join node: {other}"))),
    }
}

/// Stream an optimizer-planned hash join: build a hash table on the chosen
/// side, probe with the other in scan order (so output order is probe-major
/// with build-side scan order within a probe row — the contract the
/// vectorized executor replicates).
fn hash_join_stream(
    l: &Table,
    r: &Table,
    keys: &[(Expr, Expr)],
    residual: Option<&Expr>,
    build_left: bool,
    meter: Option<&mut JoinMeter>,
    on_row: &mut dyn FnMut(Tuple) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    let lkeys: Vec<Expr> = keys
        .iter()
        .map(|(e, _)| e.bind(l.schema()))
        .collect::<Result<_, _>>()?;
    let rkeys: Vec<Expr> = keys
        .iter()
        .map(|(_, e)| e.bind(r.schema()))
        .collect::<Result<_, _>>()?;
    let joined_schema = l.schema().concat(r.schema());
    let residual = residual.map(|e| e.bind(&joined_schema)).transpose()?;
    let key_of = |exprs: &[Expr], row: &Tuple| -> Result<Tuple, EngineError> {
        Ok(exprs
            .iter()
            .map(|e| e.eval(row).map(Value::join_key))
            .collect::<Result<_, _>>()?)
    };
    let emit = |joined: Tuple,
                on_row: &mut dyn FnMut(Tuple) -> Result<(), EngineError>|
     -> Result<(), EngineError> {
        match &residual {
            Some(p) if !p.holds(&joined)? => Ok(()),
            _ => on_row(joined),
        }
    };
    // One build/probe loop regardless of side: only which input builds and
    // the concat order depend on `build_left` (output columns stay
    // left ++ right).
    let (build, build_keys, probe, probe_keys) = if build_left {
        (l, &lkeys, r, &rkeys)
    } else {
        (r, &rkeys, l, &lkeys)
    };
    let build_timer = meter.as_ref().map(|_| Stopwatch::start());
    let mut mem = meter.as_ref().map(|_| ua_obs::MemTracker::new());
    let mut table: FxHashMap<Tuple, Vec<&Tuple>> = FxHashMap::default();
    for brow in build.rows() {
        let key = key_of(build_keys, brow)?;
        if key.has_null() {
            continue; // SQL NULL keys never join
        }
        if let Some(mem) = &mut mem {
            // One slot per build row plus the key tuple per distinct key.
            mem.alloc(if table.contains_key(&key) {
                8
            } else {
                8 + crate::stats::tuple_mem_bytes(&key)
            });
        }
        table.entry(key).or_default().push(brow);
    }
    if let (Some(meter), Some(timer)) = (meter, build_timer) {
        meter.build_ns = timer.elapsed_ns();
        meter.build_bytes = mem.as_ref().map_or(0, ua_obs::MemTracker::peak);
    }
    for prow in probe.rows() {
        let key = key_of(probe_keys, prow)?;
        if key.has_null() {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for brow in matches {
                let joined = if build_left {
                    brow.concat(prow)
                } else {
                    prow.concat(brow)
                };
                emit(joined, on_row)?;
            }
        }
    }
    Ok(())
}

/// Stream the join of `l` and `r` through `on_row` (hash strategy when the
/// predicate has extractable equi-keys, nested loops otherwise). Streaming
/// lets parent operators fuse with the join instead of materializing it.
fn join_stream(
    l: &Table,
    r: &Table,
    predicate: Option<&Expr>,
    meter: Option<&mut JoinMeter>,
    on_row: &mut dyn FnMut(Tuple) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    let schema = l.schema().concat(r.schema());
    let bound = match predicate {
        Some(p) => Some(p.bind(&schema)?),
        None => None,
    };

    if let Some(pred) = &bound {
        let (keys, residual) = extract_equi_keys(pred, l.schema().arity());
        if !keys.is_empty() {
            let residual = Expr::conjunction(residual);
            let build_timer = meter.as_ref().map(|_| Stopwatch::start());
            let mut mem = meter.as_ref().map(|_| ua_obs::MemTracker::new());
            let mut table: FxHashMap<Tuple, Vec<&Tuple>> = FxHashMap::default();
            for row in r.rows() {
                let key: Tuple = keys
                    .iter()
                    .map(|k| k.right.eval(row).map(Value::join_key))
                    .collect::<Result<_, _>>()?;
                if key.has_null() {
                    continue;
                }
                if let Some(mem) = &mut mem {
                    mem.alloc(if table.contains_key(&key) {
                        8
                    } else {
                        8 + crate::stats::tuple_mem_bytes(&key)
                    });
                }
                table.entry(key).or_default().push(row);
            }
            if let (Some(meter), Some(timer)) = (meter, build_timer) {
                meter.build_ns = timer.elapsed_ns();
                meter.build_bytes = mem.as_ref().map_or(0, ua_obs::MemTracker::peak);
            }
            for lrow in l.rows() {
                let key: Tuple = keys
                    .iter()
                    .map(|k| k.left.eval(lrow).map(Value::join_key))
                    .collect::<Result<_, _>>()?;
                if key.has_null() {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    for rrow in matches {
                        let joined = lrow.concat(rrow);
                        if residual.holds(&joined)? {
                            on_row(joined)?;
                        }
                    }
                }
            }
            return Ok(());
        }
    }

    for lrow in l.rows() {
        for rrow in r.rows() {
            let joined = lrow.concat(rrow);
            let keep = match &bound {
                Some(p) => p.holds(&joined)?,
                None => true,
            };
            if keep {
                on_row(joined)?;
            }
        }
    }
    Ok(())
}

/// Running state of one aggregate.
///
/// Shared by both executors: the row engine feeds it one row at a time
/// (`mult = 1`), the vectorized engine feeds batch rows weighted by their
/// multiplicity column — keeping the two engines' aggregate semantics a
/// single code path.
pub enum AggState {
    /// `COUNT(*)` / `COUNT(expr)` running count.
    Count(u64),
    /// `SUM(expr)` running total (int/float typing tracked).
    Sum {
        /// Accumulated total.
        total: f64,
        /// Whether only integer inputs were seen (result stays `Int`).
        saw_int_only: bool,
        /// Whether any numeric input was seen (`NULL` otherwise).
        any: bool,
    },
    /// `MIN`/`MAX` best-so-far.
    MinMax {
        /// Current best value.
        best: Option<Value>,
        /// `true` for `MIN`, `false` for `MAX`.
        is_min: bool,
    },
    /// `AVG(expr)` running total and count.
    Avg {
        /// Accumulated total.
        total: f64,
        /// Number of numeric inputs.
        n: u64,
    },
}

impl AggState {
    /// Fresh state for `func`.
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count | AggFunc::CountStar => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                total: 0.0,
                saw_int_only: true,
                any: false,
            },
            AggFunc::Min => AggState::MinMax {
                best: None,
                is_min: true,
            },
            AggFunc::Max => AggState::MinMax {
                best: None,
                is_min: false,
            },
            AggFunc::Avg => AggState::Avg { total: 0.0, n: 0 },
        }
    }

    /// Fold in `value` standing for `mult` duplicate rows (`None` = the
    /// `COUNT(*)` row marker).
    pub fn update(&mut self, value: Option<&Value>, mult: u64) {
        match self {
            AggState::Count(n) => {
                // COUNT(*) passes None; COUNT(e) skips unknowns.
                match value {
                    None => *n += mult,
                    Some(v) if !v.is_unknown() => *n += mult,
                    _ => {}
                }
            }
            AggState::Sum {
                total,
                saw_int_only,
                any,
            } => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *total += x * mult as f64;
                        *any = true;
                        if matches!(v, Value::Float(_)) {
                            *saw_int_only = false;
                        }
                    }
                }
            }
            AggState::MinMax { best, is_min } => {
                if let Some(v) = value {
                    if v.is_unknown() {
                        return;
                    }
                    let better = match best {
                        None => true,
                        Some(b) => matches!(
                            (v.sql_cmp(b), *is_min),
                            (Some(std::cmp::Ordering::Less), true)
                                | (Some(std::cmp::Ordering::Greater), false)
                        ),
                    };
                    if better {
                        *best = Some(v.clone());
                    }
                }
            }
            AggState::Avg { total, n } => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *total += x * mult as f64;
                        *n += mult;
                    }
                }
            }
        }
    }

    /// The final aggregate value.
    pub fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n as i64),
            AggState::Sum {
                total,
                saw_int_only,
                any,
            } => {
                if !any {
                    Value::Null
                } else if saw_int_only {
                    Value::Int(total as i64)
                } else {
                    Value::Float(F64::new(total))
                }
            }
            AggState::MinMax { best, .. } => best.unwrap_or(Value::Null),
            AggState::Avg { total, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(F64::new(total / n as f64))
                }
            }
        }
    }
}

fn aggregate(
    input: &Plan,
    group_by: &[ua_data::algebra::ProjColumn],
    aggregates: &[AggExpr],
    catalog: &Catalog,
    tracer: &mut Tracer<'_>,
) -> Result<Table, EngineError> {
    let t = execute_traced(input, catalog, tracer)?;
    let bound_groups: Vec<Expr> = group_by
        .iter()
        .map(|g| g.expr.bind(t.schema()))
        .collect::<Result<_, _>>()?;
    let bound_aggs: Vec<Option<Expr>> = aggregates
        .iter()
        .map(|a| a.arg.as_ref().map(|e| e.bind(t.schema())).transpose())
        .collect::<Result<_, _>>()?;

    // Group rows; preserve first-seen order for deterministic output.
    let mut mem = tracer.enabled().then(ua_obs::MemTracker::new);
    // Estimated logical bytes per group entry: the key twice (map key +
    // order slot) and a fixed 32-byte slot per aggregate state.
    let group_bytes =
        |key: &Tuple| 2 * crate::stats::tuple_mem_bytes(key) + 32 * aggregates.len() as u64;
    let mut groups: FxHashMap<Tuple, Vec<AggState>> = FxHashMap::default();
    let mut order: Vec<Tuple> = Vec::new();
    for row in t.rows() {
        let key: Tuple = bound_groups
            .iter()
            .map(|e| e.eval(row))
            .collect::<Result<_, _>>()?;
        let states = match groups.get_mut(&key) {
            Some(s) => s,
            None => {
                if let Some(mem) = &mut mem {
                    mem.alloc(group_bytes(&key));
                }
                order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| aggregates.iter().map(|a| AggState::new(a.func)).collect())
            }
        };
        for (state, arg) in states.iter_mut().zip(&bound_aggs) {
            match arg {
                Some(e) => state.update(Some(&e.eval(row)?), 1),
                None => state.update(None, 1),
            }
        }
    }

    // Global aggregation over an empty input still yields one row.
    if bound_groups.is_empty() && groups.is_empty() {
        let key = Tuple::empty();
        if let Some(mem) = &mut mem {
            mem.alloc(group_bytes(&key));
        }
        order.push(key.clone());
        groups.insert(
            key,
            aggregates.iter().map(|a| AggState::new(a.func)).collect(),
        );
    }

    let mut columns: Vec<ua_data::schema::Column> =
        group_by.iter().map(|g| g.column.clone()).collect();
    for a in aggregates {
        columns.push(ua_data::schema::Column::unqualified(&a.name));
    }
    let mut out = Table::new(Schema::new(columns));
    for key in order {
        let states = groups.remove(&key).expect("group recorded");
        let mut values: Vec<Value> = key.values().to_vec();
        for s in states {
            values.push(s.finish());
        }
        out.push(Tuple::new(values));
    }
    if let Some(mem) = &mem {
        tracer.extra("mem_bytes", mem.peak());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;
    use ua_data::algebra::ProjColumn;
    use ua_data::tuple;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.register(
            "emp",
            Table::from_rows(
                Schema::qualified("emp", ["name", "dept", "salary"]),
                vec![
                    tuple!["ann", "eng", 100i64],
                    tuple!["bob", "eng", 80i64],
                    tuple!["cat", "ops", 60i64],
                    tuple!["dan", "ops", 60i64],
                ],
            ),
        );
        c.register(
            "dept",
            Table::from_rows(
                Schema::qualified("dept", ["name", "city"]),
                vec![tuple!["eng", "nyc"], tuple!["ops", "chi"]],
            ),
        );
        c
    }

    #[test]
    fn scan_filter_map() {
        let plan = Plan::Map {
            input: Box::new(Plan::Filter {
                input: Box::new(Plan::Scan("emp".into())),
                predicate: Expr::named("salary").ge(Expr::lit(80i64)),
            }),
            columns: vec![ProjColumn::named("name")],
        };
        let t = execute(&plan, &catalog()).unwrap();
        assert_eq!(t.sorted_rows(), vec![tuple!["ann"], tuple!["bob"]]);
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let c = catalog();
        let equi = Plan::Join {
            left: Box::new(Plan::Scan("emp".into())),
            right: Box::new(Plan::Scan("dept".into())),
            predicate: Some(Expr::named("emp.dept").eq(Expr::named("dept.name"))),
        };
        let disguised = Plan::Join {
            left: Box::new(Plan::Scan("emp".into())),
            right: Box::new(Plan::Scan("dept".into())),
            predicate: Some(
                Expr::named("emp.dept")
                    .eq(Expr::named("dept.name"))
                    .or(Expr::lit(false)),
            ),
        };
        let a = execute(&equi, &c).unwrap();
        let b = execute(&disguised, &c).unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows());
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn union_all_keeps_duplicates() {
        let plan = Plan::UnionAll {
            left: Box::new(Plan::Map {
                input: Box::new(Plan::Scan("emp".into())),
                columns: vec![ProjColumn::named("dept")],
            }),
            right: Box::new(Plan::Map {
                input: Box::new(Plan::Scan("emp".into())),
                columns: vec![ProjColumn::named("dept")],
            }),
        };
        let t = execute(&plan, &catalog()).unwrap();
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn distinct_dedupes() {
        let plan = Plan::Distinct {
            input: Box::new(Plan::Map {
                input: Box::new(Plan::Scan("emp".into())),
                columns: vec![ProjColumn::named("dept")],
            }),
        };
        let t = execute(&plan, &catalog()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn aggregation_group_by() {
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Scan("emp".into())),
            group_by: vec![ProjColumn::named("dept")],
            aggregates: vec![
                AggExpr {
                    func: AggFunc::CountStar,
                    arg: None,
                    name: "n".into(),
                },
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(Expr::named("salary")),
                    name: "total".into(),
                },
                AggExpr {
                    func: AggFunc::Min,
                    arg: Some(Expr::named("salary")),
                    name: "lo".into(),
                },
                AggExpr {
                    func: AggFunc::Avg,
                    arg: Some(Expr::named("salary")),
                    name: "mean".into(),
                },
            ],
        };
        let t = execute(&plan, &catalog()).unwrap();
        let rows = t.sorted_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], tuple!["eng", 2i64, 180i64, 80i64, 90.0]);
        assert_eq!(rows[1], tuple!["ops", 2i64, 120i64, 60i64, 60.0]);
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Filter {
                input: Box::new(Plan::Scan("emp".into())),
                predicate: Expr::lit(false),
            }),
            group_by: vec![],
            aggregates: vec![AggExpr {
                func: AggFunc::CountStar,
                arg: None,
                name: "n".into(),
            }],
        };
        let t = execute(&plan, &catalog()).unwrap();
        assert_eq!(t.rows(), &[tuple![0i64]]);
    }

    #[test]
    fn sort_and_limit() {
        let plan = Plan::Limit {
            input: Box::new(Plan::Sort {
                input: Box::new(Plan::Scan("emp".into())),
                keys: vec![(Expr::named("salary"), SortOrder::Desc)],
            }),
            limit: 2,
        };
        let t = execute(&plan, &catalog()).unwrap();
        assert_eq!(t.rows()[0], tuple!["ann", "eng", 100i64]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn count_skips_nulls_count_star_does_not() {
        let c = Catalog::new();
        c.register(
            "t",
            Table::from_rows(
                Schema::qualified("t", ["a"]),
                vec![tuple![1i64], Tuple::new(vec![Value::Null]), tuple![3i64]],
            ),
        );
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Scan("t".into())),
            group_by: vec![],
            aggregates: vec![
                AggExpr {
                    func: AggFunc::Count,
                    arg: Some(Expr::named("a")),
                    name: "c".into(),
                },
                AggExpr {
                    func: AggFunc::CountStar,
                    arg: None,
                    name: "cs".into(),
                },
            ],
        };
        let t = execute(&plan, &c).unwrap();
        assert_eq!(t.rows(), &[tuple![2i64, 3i64]]);
    }

    #[test]
    fn executor_agrees_with_k_relation_evaluator() {
        // The row engine and the ℕ-relation evaluator implement the same
        // RA⁺ semantics.
        let c = catalog();
        let ra = ua_data::RaExpr::table("emp")
            .join(
                ua_data::RaExpr::table("dept"),
                Expr::named("emp.dept").eq(Expr::named("dept.name")),
            )
            .select(Expr::named("salary").ge(Expr::lit(60i64)))
            .project(["city"]);
        let plan = Plan::from_ra(&ra);
        let rows = execute(&plan, &c).unwrap();

        let mut db: ua_data::Database<u64> = ua_data::Database::new();
        for name in ["emp", "dept"] {
            db.insert(name, c.get(name).unwrap().to_relation());
        }
        let rel = ua_data::eval(&ra, &db).unwrap();
        assert_eq!(rows.to_relation(), rel);
    }
}
