//! Physical query plans.
//!
//! [`Plan`] extends the paper's `RA⁺` core (scan / filter / map / join /
//! union-all) with the operators a usable SQL engine needs on top:
//! duplicate elimination, grouping/aggregation, sorting and limits. Only the
//! `RA⁺` core participates in the UA rewriting (the paper defers
//! aggregation to future work); the extras exist so that the evaluation
//! queries (Q1–Q5, QP1–QP3) run end-to-end.

use std::fmt;
use ua_data::algebra::{ProjColumn, RaExpr};
use ua_data::expr::Expr;

/// An aggregate function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggFunc {
    /// `COUNT(expr)` — non-null count.
    Count,
    /// `COUNT(*)` — row count.
    CountStar,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "count",
            AggFunc::CountStar => "count(*)",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        })
    }
}

/// One aggregate in an [`Plan::Aggregate`] node.
#[derive(Clone, PartialEq, Debug)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Its argument (`None` for `COUNT(*)`).
    pub arg: Option<Expr>,
    /// Output column name.
    pub name: String,
}

/// Sort direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SortOrder {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// Which side of an outer join is preserved (emitted even without a
/// match, padded with NULLs on the other side).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OuterKind {
    /// `LEFT [OUTER] JOIN` — every left row survives.
    Left,
    /// `RIGHT [OUTER] JOIN` — every right row survives.
    Right,
}

impl fmt::Display for OuterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OuterKind::Left => "left",
            OuterKind::Right => "right",
        })
    }
}

/// A physical plan.
#[derive(Clone, PartialEq, Debug)]
pub enum Plan {
    /// Scan a catalog table.
    Scan(String),
    /// Re-qualify columns.
    Alias {
        /// Input plan.
        input: Box<Plan>,
        /// New qualifier.
        name: String,
    },
    /// σ — keep rows whose predicate is (certainly) true.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// The predicate.
        predicate: Expr,
    },
    /// π — per-row expression evaluation, duplicates preserved.
    Map {
        /// Input plan.
        input: Box<Plan>,
        /// Output columns.
        columns: Vec<ProjColumn>,
    },
    /// θ-join (hash join on extractable equi-keys, else nested loops).
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join predicate (`None` = cross product).
        predicate: Option<Expr>,
    },
    /// Equi-hash-join with an explicit physical strategy, produced by the
    /// optimizer's join-planning pass (`optimize::plan_joins`). Output
    /// columns are always `left ++ right` regardless of build side; rows are
    /// emitted in probe-side scan order (build-side scan order within one
    /// probe row), so both executors produce identical row orders.
    HashJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Equi-key pairs: the first expression is evaluated against the
        /// left input's schema, the second against the right input's.
        keys: Vec<(Expr, Expr)>,
        /// Remaining predicate over the concatenated schema (`None` when
        /// the keys cover the whole join condition).
        residual: Option<Expr>,
        /// Build the hash table on the left (smaller) side and probe with
        /// the right; `false` builds on the right and probes with the left.
        build_left: bool,
    },
    /// Bag union.
    UnionAll {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Bag difference (`EXCEPT [ALL]`). Tuples match under IS-NOT-DISTINCT
    /// semantics (NULL matches NULL, like `GROUP BY`/`DISTINCT` keys, unlike
    /// join equality). `all = true` is bag monus: each right occurrence
    /// cancels one left occurrence, earliest-first in left scan order.
    /// `all = false` is set EXCEPT: the first occurrence of each left tuple
    /// with no right match survives, in order of first occurrence.
    Except {
        /// Left input.
        left: Box<Plan>,
        /// Right input (union-compatible with the left).
        right: Box<Plan>,
        /// Bag (`EXCEPT ALL`) vs set (`EXCEPT`) semantics.
        all: bool,
    },
    /// Left/right outer θ-join. Output columns are always `left ++ right`;
    /// the preserved side's unmatched rows are emitted padded with NULLs on
    /// the other side. Row order is preserved-side-major: for each preserved
    /// row in scan order, its matches in the other side's scan order, else
    /// its single padded row.
    OuterJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join predicate (`None` = always true, so padding only appears
        /// when the other side is empty).
        predicate: Option<Expr>,
        /// Which side is preserved.
        kind: OuterKind,
    },
    /// Duplicate elimination (`SELECT DISTINCT`).
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Grouping + aggregation.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Group-by expressions (become the leading output columns).
        group_by: Vec<ProjColumn>,
        /// Aggregates (become the trailing output columns).
        aggregates: Vec<AggExpr>,
    },
    /// Sorting.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort keys, outermost first.
        keys: Vec<(Expr, SortOrder)>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Maximum number of rows.
        limit: usize,
    },
    /// Fused Sort+Limit (Top-K), produced by the optimizer's
    /// `Limit(Sort(..))` rewrite (`optimize::fuse_topk`). Semantically
    /// identical to `Limit { input: Sort { input, keys }, limit }` — same
    /// key comparison, same deterministic full-row tie-break — but executed
    /// with a bounded heap of `limit` rows instead of a full sort, on both
    /// engines.
    TopK {
        /// Input plan.
        input: Box<Plan>,
        /// Sort keys, outermost first.
        keys: Vec<(Expr, SortOrder)>,
        /// Maximum number of rows.
        limit: usize,
    },
}

impl Plan {
    /// Lift an `RA⁺` query into a physical plan (the identity embedding —
    /// the two trees share operator semantics for the positive fragment).
    pub fn from_ra(ra: &RaExpr) -> Plan {
        match ra {
            RaExpr::Table(name) => Plan::Scan(name.clone()),
            RaExpr::Alias { input, name } => Plan::Alias {
                input: Box::new(Plan::from_ra(input)),
                name: name.clone(),
            },
            RaExpr::Select { input, predicate } => Plan::Filter {
                input: Box::new(Plan::from_ra(input)),
                predicate: predicate.clone(),
            },
            RaExpr::Project { input, columns } => Plan::Map {
                input: Box::new(Plan::from_ra(input)),
                columns: columns.clone(),
            },
            RaExpr::Join {
                left,
                right,
                predicate,
            } => Plan::Join {
                left: Box::new(Plan::from_ra(left)),
                right: Box::new(Plan::from_ra(right)),
                predicate: predicate.clone(),
            },
            RaExpr::Union { left, right } => Plan::UnionAll {
                left: Box::new(Plan::from_ra(left)),
                right: Box::new(Plan::from_ra(right)),
            },
        }
    }

    /// Recover the `RA⁺` query when the plan uses only the positive
    /// fragment; `None` when it contains Distinct/Aggregate/Sort/Limit.
    pub fn to_ra(&self) -> Option<RaExpr> {
        Some(match self {
            Plan::Scan(name) => RaExpr::Table(name.clone()),
            Plan::Alias { input, name } => RaExpr::Alias {
                input: Box::new(input.to_ra()?),
                name: name.clone(),
            },
            Plan::Filter { input, predicate } => RaExpr::Select {
                input: Box::new(input.to_ra()?),
                predicate: predicate.clone(),
            },
            Plan::Map { input, columns } => RaExpr::Project {
                input: Box::new(input.to_ra()?),
                columns: columns.clone(),
            },
            Plan::Join {
                left,
                right,
                predicate,
            } => RaExpr::Join {
                left: Box::new(left.to_ra()?),
                right: Box::new(right.to_ra()?),
                predicate: predicate.clone(),
            },
            Plan::UnionAll { left, right } => RaExpr::Union {
                left: Box::new(left.to_ra()?),
                right: Box::new(right.to_ra()?),
            },
            // HashJoin is a physical operator chosen by the optimizer; the
            // logical RA⁺ query it came from is reconstructible in principle
            // but callers only convert *pre*-optimization plans. Except and
            // OuterJoin are outside RA⁺ by definition (negation).
            Plan::HashJoin { .. }
            | Plan::Distinct { .. }
            | Plan::Aggregate { .. }
            | Plan::Sort { .. }
            | Plan::Limit { .. }
            | Plan::TopK { .. }
            | Plan::Except { .. }
            | Plan::OuterJoin { .. } => return None,
        })
    }

    /// Number of relational operators (for plan statistics).
    pub fn operator_count(&self) -> usize {
        match self {
            Plan::Scan(_) => 0,
            Plan::Alias { input, .. } => input.operator_count(),
            Plan::Filter { input, .. }
            | Plan::Map { input, .. }
            | Plan::Distinct { input }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::TopK { input, .. } => 1 + input.operator_count(),
            Plan::Join { left, right, .. }
            | Plan::HashJoin { left, right, .. }
            | Plan::UnionAll { left, right }
            | Plan::Except { left, right, .. }
            | Plan::OuterJoin { left, right, .. } => {
                1 + left.operator_count() + right.operator_count()
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plan::Scan(name) => write!(f, "Scan({name})"),
            Plan::Alias { input, name } => write!(f, "Alias[{name}]({input})"),
            Plan::Filter { input, predicate } => write!(f, "Filter[{predicate}]({input})"),
            Plan::Map { input, columns } => {
                write!(f, "Map[")?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}→{}", c.expr, c.column)?;
                }
                write!(f, "]({input})")
            }
            Plan::Join {
                left,
                right,
                predicate: Some(p),
            } => write!(f, "Join[{p}]({left}, {right})"),
            Plan::Join {
                left,
                right,
                predicate: None,
            } => write!(f, "Cross({left}, {right})"),
            Plan::HashJoin {
                left,
                right,
                keys,
                residual,
                build_left,
            } => {
                write!(f, "HashJoin[")?;
                for (i, (l, r)) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}={r}")?;
                }
                if let Some(res) = residual {
                    write!(f, "; σ[{res}]")?;
                }
                write!(
                    f,
                    "; build={}]({left}, {right})",
                    if *build_left { "left" } else { "right" }
                )
            }
            Plan::UnionAll { left, right } => write!(f, "UnionAll({left}, {right})"),
            Plan::Except { left, right, all } => {
                write!(
                    f,
                    "Except{}({left}, {right})",
                    if *all { "All" } else { "" }
                )
            }
            Plan::OuterJoin {
                left,
                right,
                predicate,
                kind,
            } => match predicate {
                Some(p) => write!(f, "OuterJoin[{kind}; {p}]({left}, {right})"),
                None => write!(f, "OuterJoin[{kind}]({left}, {right})"),
            },
            Plan::Distinct { input } => write!(f, "Distinct({input})"),
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                write!(f, "Aggregate[")?;
                for (i, g) in group_by.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", g.column)?;
                }
                write!(f, "; ")?;
                for (i, a) in aggregates.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}→{}", a.func, a.name)?;
                }
                write!(f, "]({input})")
            }
            Plan::Sort { input, keys } => write!(f, "Sort[{}]({input})", keys.len()),
            Plan::Limit { input, limit } => write!(f, "Limit[{limit}]({input})"),
            Plan::TopK { input, keys, limit } => {
                write!(f, "TopK[{} keys; {limit}]({input})", keys.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ra_round_trip() {
        let q = RaExpr::table("r")
            .select(Expr::named("a").lt(Expr::lit(5i64)))
            .join(RaExpr::table("s"), Expr::named("x").eq(Expr::named("y")))
            .project(["a"]);
        let plan = Plan::from_ra(&q);
        assert_eq!(plan.to_ra(), Some(q));
        assert_eq!(plan.operator_count(), 3);
    }

    #[test]
    fn extras_do_not_round_trip() {
        let plan = Plan::Distinct {
            input: Box::new(Plan::Scan("r".into())),
        };
        assert_eq!(plan.to_ra(), None);
    }
}
