//! Plan optimization: filter pushdown and cost-aware join planning.
//!
//! The optimizer is a small pass pipeline over [`Plan`]s, applied by
//! [`crate::ua::UaSession`] to the plan each executor actually runs —
//! uniformly before `ExecMode::Row` / `ExecMode::Vectorized` dispatch, and
//! for both deterministic and UA queries — so the two engines cannot drift
//! (the differential test harness locks them together).
//!
//! Passes, in pipeline order ([`optimize`] / [`optimize_with`]):
//!
//! 1. **Filter pushdown** ([`push_filters`]). The UA rewriting (Figure 9)
//!    wraps every join in a projection that re-labels columns and combines
//!    the two certainty markers, and user queries add their own
//!    projections; selections sit *above* those projections, so a naive
//!    executor pays the projection over the full input before filtering.
//!    `Filter(P) ∘ Map(M) ≡ Map(M) ∘ Filter(P∘M)` whenever `P`'s column
//!    references can be substituted by `M`'s expressions, which is exactly
//!    the shape both produce.
//! 2. **Join planning** ([`plan_joins`]). SQL comma-joins
//!    (`FROM r, s WHERE r.k = s.k`) lower to a cross product with the
//!    `WHERE` as a filter on top — pathological at scale. The pass merges
//!    the filter stack into the join condition, pushes single-side
//!    conjuncts below the join, extracts conjunctive equi-join keys into a
//!    [`Plan::HashJoin`] (the rest stays as a residual), and picks the hash
//!    build side from table cardinalities ([`estimate_rows`], backed by
//!    [`Catalog`]): build on the smaller input, probe with the larger.
//! 3. Filter pushdown again: selections pushed onto join inputs by pass 2
//!    may sink further through projections (e.g. into subqueries).
//!
//! Invariants (checked by `tests/plans.rs`, `tests/differential.rs` and
//! `tests/label_soundness.rs`):
//!
//! * rewrites never change result rows, UA labels, or multiplicities;
//! * rewrites preserve the engines' shared row order contract: the same
//!   optimized plan executes to byte-identical tables on both engines;
//! * expressions stay *unbound* (name-based) unless they already were
//!   positional — the vectorized UA path runs over marker-stripped batches,
//!   so positions valid against encoded schemas would misalign there.

use crate::plan::Plan;
use crate::sql::planner::plan_schema;
use crate::storage::Catalog;
use ua_data::algebra::{shift_columns, ProjColumn};
use ua_data::expr::{CmpOp, Expr};
use ua_data::schema::{Schema, SchemaError};

/// Which optimizer passes to run (all on by default).
#[derive(Clone, Copy, Debug)]
pub struct OptimizerPasses {
    /// Sink filters below projections (pass 1 and 3).
    pub push_filters: bool,
    /// Rewrite cross-join+filter into hash joins with build-side selection
    /// (pass 2).
    pub plan_joins: bool,
    /// Let join planning classify and shift *positional* (`Expr::Col`)
    /// references. Must be off when the executor's runtime schemas differ
    /// from `plan_schema` — the vectorized UA path strips the `ua_c` marker
    /// out of its batches, so positions computed against encoded schemas
    /// would split at the wrong arity and silently join on the wrong
    /// columns. Named references are always safe (the marker never
    /// participates in name resolution).
    pub positional_joins: bool,
}

impl Default for OptimizerPasses {
    fn default() -> OptimizerPasses {
        OptimizerPasses {
            push_filters: true,
            plan_joins: true,
            positional_joins: true,
        }
    }
}

/// Run the full optimizer pipeline.
pub fn optimize(plan: Plan, catalog: &Catalog) -> Plan {
    optimize_with(plan, catalog, OptimizerPasses::default())
}

/// Run the selected optimizer passes.
pub fn optimize_with(plan: Plan, catalog: &Catalog, passes: OptimizerPasses) -> Plan {
    let mut plan = plan;
    if passes.push_filters {
        plan = push_filters(plan);
    }
    if passes.plan_joins {
        plan = plan_joins_impl(plan, catalog, passes.positional_joins);
        if passes.push_filters {
            plan = push_filters(plan);
        }
    }
    plan
}

/// Apply filter pushdown throughout the plan.
pub fn push_filters(plan: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = push_filters(*input);
            match input {
                Plan::Map {
                    input: map_input,
                    columns,
                } => match substitute(&predicate, &columns) {
                    Some(pushed) => Plan::Map {
                        input: Box::new(push_filters(Plan::Filter {
                            input: map_input,
                            predicate: pushed,
                        })),
                        columns,
                    },
                    None => Plan::Filter {
                        input: Box::new(Plan::Map {
                            input: map_input,
                            columns,
                        }),
                        predicate,
                    },
                },
                // Aliases only re-qualify names; a fully positional
                // predicate (as produced by join planning or earlier
                // substitution) is untouched by that and can sink through.
                Plan::Alias {
                    input: alias_input,
                    name,
                } if !has_named_refs(&predicate) => Plan::Alias {
                    input: Box::new(push_filters(Plan::Filter {
                        input: alias_input,
                        predicate,
                    })),
                    name,
                },
                other => Plan::Filter {
                    input: Box::new(other),
                    predicate,
                },
            }
        }
        Plan::Scan(name) => Plan::Scan(name),
        Plan::Alias { input, name } => Plan::Alias {
            input: Box::new(push_filters(*input)),
            name,
        },
        Plan::Map { input, columns } => Plan::Map {
            input: Box::new(push_filters(*input)),
            columns,
        },
        Plan::Join {
            left,
            right,
            predicate,
        } => Plan::Join {
            left: Box::new(push_filters(*left)),
            right: Box::new(push_filters(*right)),
            predicate,
        },
        Plan::HashJoin {
            left,
            right,
            keys,
            residual,
            build_left,
        } => Plan::HashJoin {
            left: Box::new(push_filters(*left)),
            right: Box::new(push_filters(*right)),
            keys,
            residual,
            build_left,
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: Box::new(push_filters(*left)),
            right: Box::new(push_filters(*right)),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(push_filters(*input)),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => Plan::Aggregate {
            input: Box::new(push_filters(*input)),
            group_by,
            aggregates,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(push_filters(*input)),
            keys,
        },
        Plan::Limit { input, limit } => Plan::Limit {
            input: Box::new(push_filters(*input)),
            limit,
        },
    }
}

/// Rewrite cross-join+filter shapes into [`Plan::HashJoin`]s throughout the
/// plan (see the module docs for the full rule).
pub fn plan_joins(plan: Plan, catalog: &Catalog) -> Plan {
    plan_joins_impl(plan, catalog, true)
}

/// [`plan_joins`] with positional-reference classification gated by
/// `positional` (see [`OptimizerPasses::positional_joins`]).
fn plan_joins_impl(plan: Plan, catalog: &Catalog, positional: bool) -> Plan {
    match plan {
        Plan::Filter { .. } => {
            // Peel the whole filter stack sitting on this node; if a join is
            // underneath, the conjuncts take part in join planning.
            let mut conjuncts: Vec<Expr> = Vec::new();
            let mut core = plan;
            while let Plan::Filter { input, predicate } = core {
                conjuncts.extend(predicate.split_conjuncts().into_iter().cloned());
                core = *input;
            }
            match core {
                Plan::Join {
                    left,
                    right,
                    predicate,
                } => {
                    if let Some(p) = predicate {
                        conjuncts.extend(p.split_conjuncts().into_iter().cloned());
                    }
                    rewrite_join(*left, *right, conjuncts, catalog, positional)
                }
                other => wrap_filters(plan_joins_impl(other, catalog, positional), conjuncts),
            }
        }
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            let conjuncts = match predicate {
                Some(p) => p.split_conjuncts().into_iter().cloned().collect(),
                None => Vec::new(),
            };
            rewrite_join(*left, *right, conjuncts, catalog, positional)
        }
        Plan::Scan(name) => Plan::Scan(name),
        Plan::Alias { input, name } => Plan::Alias {
            input: Box::new(plan_joins_impl(*input, catalog, positional)),
            name,
        },
        Plan::Map { input, columns } => Plan::Map {
            input: Box::new(plan_joins_impl(*input, catalog, positional)),
            columns,
        },
        Plan::HashJoin {
            left,
            right,
            keys,
            residual,
            build_left,
        } => Plan::HashJoin {
            left: Box::new(plan_joins_impl(*left, catalog, positional)),
            right: Box::new(plan_joins_impl(*right, catalog, positional)),
            keys,
            residual,
            build_left,
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: Box::new(plan_joins_impl(*left, catalog, positional)),
            right: Box::new(plan_joins_impl(*right, catalog, positional)),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(plan_joins_impl(*input, catalog, positional)),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => Plan::Aggregate {
            input: Box::new(plan_joins_impl(*input, catalog, positional)),
            group_by,
            aggregates,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(plan_joins_impl(*input, catalog, positional)),
            keys,
        },
        Plan::Limit { input, limit } => Plan::Limit {
            input: Box::new(plan_joins_impl(*input, catalog, positional)),
            limit,
        },
    }
}

/// Plan one join given every conjunct that constrains it (its own predicate
/// plus any filters that sat on top of it).
fn rewrite_join(
    left: Plan,
    right: Plan,
    conjuncts: Vec<Expr>,
    catalog: &Catalog,
    positional: bool,
) -> Plan {
    let left = plan_joins_impl(left, catalog, positional);
    let right = plan_joins_impl(right, catalog, positional);
    let (ls, rs) = match (plan_schema(&left, catalog), plan_schema(&right, catalog)) {
        (Ok(l), Ok(r)) => (l, r),
        // Unknown table / malformed subtree: leave the join alone; execution
        // reports the same error the unoptimized plan would.
        _ => {
            return Plan::Join {
                left: Box::new(left),
                right: Box::new(right),
                predicate: option_conjunction(conjuncts),
            }
        }
    };
    let la = ls.arity();

    let mut left_only: Vec<Expr> = Vec::new();
    let mut right_only: Vec<Expr> = Vec::new();
    let mut keys: Vec<(Expr, Expr)> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    for c in conjuncts {
        // A conjunct moved below the join gets evaluated on rows the join
        // would have excluded; that is only sound when its evaluation
        // cannot *error* there (predicates over columns/literals degrade to
        // Unknown on bad types, but arithmetic raises). Error-capable
        // single-side conjuncts stay in the residual instead, which runs on
        // the same joined rows the original filter saw.
        match side_of(&c, &ls, &rs, la, positional).filter(|_| is_error_free(&c)) {
            Some(Side::Left) => left_only.push(c),
            Some(Side::Right) => right_only.push(shift_columns(&c, la)),
            None => {
                if let Expr::Cmp(CmpOp::Eq, a, b) = &c {
                    match (
                        side_of(a, &ls, &rs, la, positional),
                        side_of(b, &ls, &rs, la, positional),
                    ) {
                        (Some(Side::Left), Some(Side::Right)) => {
                            keys.push(((**a).clone(), shift_columns(b, la)));
                            continue;
                        }
                        (Some(Side::Right), Some(Side::Left)) => {
                            keys.push(((**b).clone(), shift_columns(a, la)));
                            continue;
                        }
                        _ => {}
                    }
                }
                residual.push(c);
            }
        }
    }

    // Single-side conjuncts become selections below the join; re-plan a
    // child only when the new filter actually sits on an (unplanned) join
    // it could merge into — anything else would re-traverse an
    // already-planned subtree for nothing.
    let replan = |child: Plan, gained: bool, catalog: &Catalog| -> Plan {
        if gained && peels_to_join(&child) {
            plan_joins_impl(child, catalog, positional)
        } else {
            child
        }
    };
    let gained_left = !left_only.is_empty();
    let gained_right = !right_only.is_empty();
    let left = replan(wrap_filters(left, left_only), gained_left, catalog);
    let right = replan(wrap_filters(right, right_only), gained_right, catalog);

    if keys.is_empty() {
        return Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
            predicate: option_conjunction(residual),
        };
    }
    let build_left = match (
        estimate_rows(&left, catalog),
        estimate_rows(&right, catalog),
    ) {
        (Some(l), Some(r)) => l < r,
        _ => false,
    };
    Plan::HashJoin {
        left: Box::new(left),
        right: Box::new(right),
        keys,
        residual: option_conjunction(residual),
        build_left,
    }
}

/// Crude cardinality estimation for build-side selection, anchored on the
/// actual row counts of catalog tables (`storage::Table::len`). Operator
/// factors are deliberately simple — the estimate only has to order the two
/// inputs of a join, not predict costs.
pub fn estimate_rows(plan: &Plan, catalog: &Catalog) -> Option<u64> {
    match plan {
        Plan::Scan(name) => catalog.get(name).map(|t| t.len() as u64),
        Plan::Alias { input, .. }
        | Plan::Map { input, .. }
        | Plan::Distinct { input }
        | Plan::Aggregate { input, .. }
        | Plan::Sort { input, .. } => estimate_rows(input, catalog),
        // System-R-style default selectivity of 1/3 per filter.
        Plan::Filter { input, .. } => estimate_rows(input, catalog).map(|n| n.div_ceil(3)),
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            let l = estimate_rows(left, catalog)?;
            let r = estimate_rows(right, catalog)?;
            match predicate {
                None => l.checked_mul(r),
                // Key/foreign-key-ish guess for θ-joins.
                Some(_) => Some(l.max(r)),
            }
        }
        Plan::HashJoin { left, right, .. } => {
            Some(estimate_rows(left, catalog)?.max(estimate_rows(right, catalog)?))
        }
        Plan::UnionAll { left, right } => {
            Some(estimate_rows(left, catalog)?.saturating_add(estimate_rows(right, catalog)?))
        }
        Plan::Limit { input, limit } => Some(estimate_rows(input, catalog)?.min(*limit as u64)),
    }
}

/// Which join input an expression reads from.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

/// Classify an expression over the concatenated join schema: `Some(side)`
/// when *every* column reference resolves on exactly that input, `None` for
/// mixed/ambiguous/unresolvable references and for constants.
///
/// Positional references split at the left arity; named references are
/// resolved against each input's schema — a name that resolves on both
/// sides (ambiguous) or neither (unknown) disqualifies the expression, so
/// the pass leaves it where binding will report the same error the
/// unoptimized plan would.
fn side_of(expr: &Expr, ls: &Schema, rs: &Schema, la: usize, positional: bool) -> Option<Side> {
    let mut cols: Vec<usize> = Vec::new();
    let mut names: Vec<&str> = Vec::new();
    collect_refs(expr, &mut cols, &mut names);
    if cols.is_empty() && names.is_empty() {
        return None; // constant: stays in the residual
    }
    if !positional && !cols.is_empty() {
        // The caller's runtime schemas disagree with `plan_schema` on
        // positions; leave the conjunct for runtime binding.
        return None;
    }
    let mut side: Option<Side> = None;
    let mut merge = |s: Side| -> bool {
        match side {
            None => {
                side = Some(s);
                true
            }
            Some(prev) => prev == s,
        }
    };
    for c in cols {
        let s = if c < la { Side::Left } else { Side::Right };
        if !merge(s) {
            return None;
        }
    }
    for n in names {
        let (l, r) = (ls.resolve(n), rs.resolve(n));
        // A name ambiguous *within* one input is at least as ambiguous in
        // the concatenated schema: classifying it by the other side would
        // silently pick a binding where the unoptimized plan errors.
        if matches!(l, Err(SchemaError::AmbiguousColumn(_)))
            || matches!(r, Err(SchemaError::AmbiguousColumn(_)))
        {
            return None;
        }
        let s = match (l.is_ok(), r.is_ok()) {
            (true, false) => Side::Left,
            (false, true) => Side::Right,
            _ => return None,
        };
        if !merge(s) {
            return None;
        }
    }
    side
}

/// Collect positional and named column references of an expression.
fn collect_refs<'a>(expr: &'a Expr, cols: &mut Vec<usize>, names: &mut Vec<&'a str>) {
    match expr {
        Expr::Col(i) => cols.push(*i),
        Expr::Named(n) => names.push(n),
        Expr::Lit(_) => {}
        Expr::Cmp(_, a, b)
        | Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::Arith(_, a, b)
        | Expr::Least(a, b) => {
            collect_refs(a, cols, names);
            collect_refs(b, cols, names);
        }
        Expr::Not(a) | Expr::IsNull(a) => collect_refs(a, cols, names),
        Expr::Between(e, lo, hi) => {
            collect_refs(e, cols, names);
            collect_refs(lo, cols, names);
            collect_refs(hi, cols, names);
        }
        Expr::InList(e, list) => {
            collect_refs(e, cols, names);
            for i in list {
                collect_refs(i, cols, names);
            }
        }
        Expr::Case {
            branches,
            otherwise,
        } => {
            for (c, v) in branches {
                collect_refs(c, cols, names);
                collect_refs(v, cols, names);
            }
            if let Some(e) = otherwise {
                collect_refs(e, cols, names);
            }
        }
    }
}

fn has_named_refs(expr: &Expr) -> bool {
    let mut cols = Vec::new();
    let mut names = Vec::new();
    collect_refs(expr, &mut cols, &mut names);
    !names.is_empty()
}

/// Whether evaluating the predicate can raise an error (as opposed to
/// degrading to SQL `Unknown`) on some row: comparisons and membership
/// tests over plain columns and literals cannot (`sql_cmp` returns `None`
/// on incomparable types), but arithmetic errors on type mismatches and a
/// bare column in boolean position errors on non-boolean values.
fn is_error_free(expr: &Expr) -> bool {
    // A value-position operand that cannot error under `Expr::eval`.
    fn operand_ok(e: &Expr) -> bool {
        matches!(e, Expr::Col(_) | Expr::Named(_) | Expr::Lit(_))
    }
    match expr {
        Expr::Cmp(_, a, b) => operand_ok(a) && operand_ok(b),
        Expr::And(a, b) | Expr::Or(a, b) => is_error_free(a) && is_error_free(b),
        Expr::Not(a) => is_error_free(a),
        Expr::IsNull(a) => operand_ok(a),
        Expr::Between(e, lo, hi) => operand_ok(e) && operand_ok(lo) && operand_ok(hi),
        Expr::InList(e, list) => operand_ok(e) && list.iter().all(operand_ok),
        // Bare columns/literals in boolean position error on non-booleans;
        // arithmetic, LEAST and CASE can error on operand types.
        _ => false,
    }
}

/// Whether the plan is a join under a (possibly empty) stack of filters —
/// the only shape a freshly pushed filter can merge into.
fn peels_to_join(plan: &Plan) -> bool {
    match plan {
        Plan::Join { .. } => true,
        Plan::Filter { input, .. } => peels_to_join(input),
        _ => false,
    }
}

fn wrap_filters(plan: Plan, conjuncts: Vec<Expr>) -> Plan {
    if conjuncts.is_empty() {
        plan
    } else {
        Plan::Filter {
            input: Box::new(plan),
            predicate: Expr::conjunction(conjuncts),
        }
    }
}

fn option_conjunction(conjuncts: Vec<Expr>) -> Option<Expr> {
    if conjuncts.is_empty() {
        None
    } else {
        Some(Expr::conjunction(conjuncts))
    }
}

/// Rewrite `predicate` to run below a projection by substituting its column
/// references with the projection's expressions. `None` when a reference
/// cannot be resolved uniquely (the pushdown is then skipped).
fn substitute(predicate: &Expr, columns: &[ProjColumn]) -> Option<Expr> {
    Some(match predicate {
        Expr::Col(i) => columns.get(*i)?.expr.clone(),
        Expr::Named(name) => {
            let (qualifier, base) = match name.rsplit_once('.') {
                Some((q, n)) => (Some(q), n),
                None => (None, name.as_str()),
            };
            let mut matches = columns.iter().filter(|c| {
                c.column.name.eq_ignore_ascii_case(base)
                    && match qualifier {
                        None => true,
                        Some(q) => c
                            .column
                            .qualifier
                            .as_deref()
                            .is_some_and(|mine| mine.eq_ignore_ascii_case(q)),
                    }
            });
            let col = matches.next()?;
            if matches.next().is_some() {
                return None; // ambiguous
            }
            col.expr.clone()
        }
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(substitute(a, columns)?),
            Box::new(substitute(b, columns)?),
        ),
        Expr::And(a, b) => Expr::And(
            Box::new(substitute(a, columns)?),
            Box::new(substitute(b, columns)?),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(substitute(a, columns)?),
            Box::new(substitute(b, columns)?),
        ),
        Expr::Not(a) => Expr::Not(Box::new(substitute(a, columns)?)),
        Expr::Arith(op, a, b) => Expr::Arith(
            *op,
            Box::new(substitute(a, columns)?),
            Box::new(substitute(b, columns)?),
        ),
        Expr::IsNull(a) => Expr::IsNull(Box::new(substitute(a, columns)?)),
        Expr::Between(e, lo, hi) => Expr::Between(
            Box::new(substitute(e, columns)?),
            Box::new(substitute(lo, columns)?),
            Box::new(substitute(hi, columns)?),
        ),
        Expr::InList(e, list) => Expr::InList(
            Box::new(substitute(e, columns)?),
            list.iter()
                .map(|i| substitute(i, columns))
                .collect::<Option<_>>()?,
        ),
        Expr::Least(a, b) => Expr::Least(
            Box::new(substitute(a, columns)?),
            Box::new(substitute(b, columns)?),
        ),
        Expr::Case {
            branches,
            otherwise,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| Some((substitute(c, columns)?, substitute(v, columns)?)))
                .collect::<Option<_>>()?,
            otherwise: match otherwise {
                Some(e) => Some(Box::new(substitute(e, columns)?)),
                None => None,
            },
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::storage::{Catalog, Table};
    use ua_data::schema::Schema;
    use ua_data::tuple;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.register(
            "r",
            Table::from_rows(
                Schema::qualified("r", ["a", "b"]),
                vec![
                    tuple![1i64, 10i64],
                    tuple![2i64, 20i64],
                    tuple![3i64, 30i64],
                ],
            ),
        );
        c.register(
            "s",
            Table::from_rows(
                Schema::qualified("s", ["b", "d"]),
                vec![tuple![10i64, 1i64], tuple![30i64, 3i64]],
            ),
        );
        c
    }

    #[test]
    fn filter_moves_below_projection() {
        let plan = Plan::Filter {
            input: Box::new(Plan::Map {
                input: Box::new(Plan::Scan("r".into())),
                columns: vec![ProjColumn::named("b")],
            }),
            predicate: Expr::named("b").gt(Expr::lit(15i64)),
        };
        let optimized = push_filters(plan.clone());
        match &optimized {
            Plan::Map { input, .. } => {
                assert!(
                    matches!(**input, Plan::Filter { .. }),
                    "filter pushed below"
                );
            }
            other => panic!("expected Map on top, got {other}"),
        }
        // Semantics preserved.
        let c = catalog();
        assert_eq!(
            execute(&plan, &c).unwrap().sorted_rows(),
            execute(&optimized, &c).unwrap().sorted_rows()
        );
    }

    #[test]
    fn computed_columns_substitute_into_the_predicate() {
        // Filter on a computed column: pushdown substitutes the expression.
        let plan = Plan::Filter {
            input: Box::new(Plan::Map {
                input: Box::new(Plan::Scan("r".into())),
                columns: vec![ProjColumn::expr(
                    Expr::named("a").add(Expr::named("b")),
                    "s",
                )],
            }),
            predicate: Expr::named("s").ge(Expr::lit(22i64)),
        };
        let optimized = push_filters(plan.clone());
        let c = catalog();
        assert_eq!(
            execute(&plan, &c).unwrap().sorted_rows(),
            execute(&optimized, &c).unwrap().sorted_rows()
        );
        assert!(matches!(optimized, Plan::Map { .. }));
    }

    #[test]
    fn unresolvable_references_block_pushdown() {
        // Predicate references a column the Map does not produce — the
        // plan is left alone (it would fail at bind time either way).
        let plan = Plan::Filter {
            input: Box::new(Plan::Map {
                input: Box::new(Plan::Scan("r".into())),
                columns: vec![ProjColumn::named("a")],
            }),
            predicate: Expr::named("zzz").gt(Expr::lit(0i64)),
        };
        assert!(matches!(push_filters(plan), Plan::Filter { .. }));
    }

    #[test]
    fn comma_join_becomes_hash_join() {
        let plan = Plan::Filter {
            input: Box::new(Plan::Join {
                left: Box::new(Plan::Scan("r".into())),
                right: Box::new(Plan::Scan("s".into())),
                predicate: None,
            }),
            predicate: Expr::named("r.b")
                .eq(Expr::named("s.b"))
                .and(Expr::named("a").ge(Expr::lit(2i64))),
        };
        let c = catalog();
        let optimized = optimize(plan.clone(), &c);
        match &optimized {
            Plan::HashJoin {
                left,
                keys,
                residual,
                ..
            } => {
                assert_eq!(keys.len(), 1);
                assert!(residual.is_none());
                assert!(
                    matches!(**left, Plan::Filter { .. }),
                    "left-only conjunct pushed below the join, got {left}"
                );
            }
            other => panic!("expected HashJoin, got {other}"),
        }
        assert_eq!(
            execute(&plan, &c).unwrap().sorted_rows(),
            execute(&optimized, &c).unwrap().sorted_rows()
        );
    }

    #[test]
    fn build_side_follows_cardinalities() {
        // r has 3 rows, s has 2 → build on s (right) when s is on the
        // right, and on s (left) when the inputs are flipped.
        let c = catalog();
        let join = |l: &str, r: &str| {
            optimize(
                Plan::Filter {
                    input: Box::new(Plan::Join {
                        left: Box::new(Plan::Scan(l.into())),
                        right: Box::new(Plan::Scan(r.into())),
                        predicate: None,
                    }),
                    predicate: Expr::named(format!("{l}.b")).eq(Expr::named(format!("{r}.b"))),
                },
                &c,
            )
        };
        match join("r", "s") {
            Plan::HashJoin { build_left, .. } => assert!(!build_left, "smaller side is right"),
            other => panic!("expected HashJoin, got {other}"),
        }
        match join("s", "r") {
            Plan::HashJoin { build_left, .. } => assert!(build_left, "smaller side is left"),
            other => panic!("expected HashJoin, got {other}"),
        }
    }

    #[test]
    fn non_equi_theta_join_stays_a_join() {
        let plan = Plan::Filter {
            input: Box::new(Plan::Join {
                left: Box::new(Plan::Scan("r".into())),
                right: Box::new(Plan::Scan("s".into())),
                predicate: None,
            }),
            predicate: Expr::named("r.b").lt(Expr::named("s.b")),
        };
        let c = catalog();
        let optimized = optimize(plan.clone(), &c);
        assert!(
            matches!(
                optimized,
                Plan::Join {
                    predicate: Some(_),
                    ..
                }
            ),
            "θ-only predicate becomes the join condition, got {optimized}"
        );
        assert_eq!(
            execute(&plan, &c).unwrap().sorted_rows(),
            execute(&optimized, &c).unwrap().sorted_rows()
        );
    }

    #[test]
    fn estimates_anchor_on_catalog_cardinalities() {
        let c = catalog();
        assert_eq!(estimate_rows(&Plan::Scan("r".into()), &c), Some(3));
        assert_eq!(
            estimate_rows(
                &Plan::Filter {
                    input: Box::new(Plan::Scan("r".into())),
                    predicate: Expr::lit(true),
                },
                &c
            ),
            Some(1)
        );
        assert_eq!(estimate_rows(&Plan::Scan("nope".into()), &c), None);
    }
}
