//! Plan optimization: filter pushdown, statistics-driven join reordering
//! and cost-aware join planning.
//!
//! The optimizer is a pass pipeline over [`Plan`]s, applied by
//! [`crate::ua::UaSession`] to the plan each executor actually runs —
//! uniformly before `ExecMode::Row` / `ExecMode::Vectorized` dispatch, and
//! for both deterministic and UA queries — so the two engines cannot drift
//! (the differential test harness locks them together).
//!
//! Passes, in pipeline order ([`optimize`] / [`optimize_with`]):
//!
//! 1. **Filter pushdown** ([`push_filters`]). The UA rewriting (Figure 9)
//!    wraps every join in a projection that re-labels columns and combines
//!    the two certainty markers, and user queries add their own
//!    projections; selections sit *above* those projections, so a naive
//!    executor pays the projection over the full input before filtering.
//!    `Filter(P) ∘ Map(M) ≡ Map(M) ∘ Filter(P∘M)` whenever `P`'s column
//!    references can be substituted by `M`'s expressions, which is exactly
//!    the shape both produce. Name-based predicates also sink through
//!    `Alias` by *requalifying* their references against the inner schema
//!    (`q.salary` above `Alias[q]` becomes `salary` below it, when the
//!    requalified reference resolves uniquely back to the same column).
//! 2. **Join reordering** ([`reorder_joins`]). A filter stack over a tree
//!    of joins is flattened into its base relations plus one conjunct set
//!    (the comma-join graph); single-relation conjuncts become selections
//!    on their relation, equality conjuncts linking two relations become
//!    join edges, and a cost model over [`crate::storage::TableStats`]
//!    (histogram selectivities for filters, `1/max(ndv)` for equi-join
//!    edges) drives join-order enumeration — dynamic programming over
//!    connected subsets for ≤ [`DP_MAX_RELATIONS`] relations, greedy
//!    pairwise merging above. The chosen order is emitted as a *logical*
//!    `Join` tree (predicates at their lowest covering node) under a
//!    projection restoring the as-written column order, so the pass also
//!    runs on user `RA⁺` plans before the UA rewriting.
//! 3. **Join planning** ([`plan_joins`]). Each (possibly reordered) binary
//!    join with its filter stack merges into one conjunct set; the pass
//!    pushes single-side conjuncts below the join, extracts conjunctive
//!    equi-join keys into a [`Plan::HashJoin`] (the rest stays as a
//!    residual), and picks the hash build side from cardinality estimates
//!    ([`estimate_rows`], backed by catalog statistics): build on the
//!    smaller input, probe with the larger.
//! 4. Filter pushdown again: selections pushed onto join inputs by passes
//!    2/3 may sink further through projections (e.g. into subqueries).
//!
//! Invariants (checked by `tests/plans.rs`, `tests/differential.rs` and
//! `tests/label_soundness.rs`):
//!
//! * rewrites never change result rows, UA labels, or multiplicities;
//! * rewrites preserve the engines' shared row order contract: the same
//!   optimized plan executes to byte-identical tables on both engines;
//! * expressions stay *unbound* (name-based) unless they already were
//!   positional — the vectorized UA path runs over marker-stripped batches,
//!   so positions valid against encoded schemas would misalign there.

use crate::plan::Plan;
use crate::sql::planner::plan_schema;
use crate::storage::{Catalog, TableStats};
use std::sync::Arc;
use ua_data::algebra::{shift_columns, ProjColumn};
use ua_data::expr::{CmpOp, Expr};
use ua_data::schema::{Schema, SchemaError};

/// Which optimizer passes to run (all on by default).
#[derive(Clone, Copy, Debug)]
pub struct OptimizerPasses {
    /// Sink filters below projections (pass 1 and 4).
    pub push_filters: bool,
    /// Rewrite cross-join+filter into hash joins with build-side selection
    /// (pass 3).
    pub plan_joins: bool,
    /// Reorder 3+-way join trees by estimated cost before planning them
    /// (pass 2; only runs when `plan_joins` is on).
    pub reorder_joins: bool,
    /// Let join planning and reordering classify and shift *positional*
    /// (`Expr::Col`) references. Must be off when the executor's runtime
    /// schemas differ from `plan_schema` — the vectorized UA path strips
    /// the `ua_c` marker out of its batches, so positions computed against
    /// encoded schemas would split at the wrong arity and silently join on
    /// the wrong columns. Named references are always safe (the marker
    /// never participates in name resolution).
    pub positional_joins: bool,
    /// Fuse `Limit(Sort(..))` into the bounded-heap [`Plan::TopK`]
    /// operator ([`fuse_topk`]).
    pub fuse_topk: bool,
}

impl Default for OptimizerPasses {
    fn default() -> OptimizerPasses {
        OptimizerPasses {
            push_filters: true,
            plan_joins: true,
            reorder_joins: true,
            positional_joins: true,
            fuse_topk: true,
        }
    }
}

/// Run the full optimizer pipeline.
pub fn optimize(plan: Plan, catalog: &Catalog) -> Plan {
    optimize_with(plan, catalog, OptimizerPasses::default())
}

/// Run the selected optimizer passes.
pub fn optimize_with(plan: Plan, catalog: &Catalog, passes: OptimizerPasses) -> Plan {
    let mut plan = plan;
    if passes.push_filters {
        plan = push_filters(plan, catalog);
    }
    if passes.plan_joins {
        if passes.reorder_joins {
            plan = reorder_joins_impl(plan, catalog, passes.positional_joins, false);
        }
        plan = plan_joins_impl(plan, catalog, passes.positional_joins);
        if passes.push_filters {
            plan = push_filters(plan, catalog);
        }
    }
    if passes.fuse_topk {
        plan = fuse_topk(plan);
    }
    plan
}

/// Rewrite every `Limit(Sort(..))` stack into the fused [`Plan::TopK`]
/// operator. The rewrite is exact — `TopK` is *defined* as that
/// composition (same key comparison, same deterministic full-row
/// tie-break) — but executes with a bounded heap of `limit` rows instead
/// of sorting the whole input, on both engines.
///
/// `Limit` over an already-fused `TopK` also folds (the smaller count
/// wins), so stacked `LIMIT`s cannot undo the fusion.
pub fn fuse_topk(plan: Plan) -> Plan {
    match plan {
        Plan::Limit { input, limit } => match fuse_topk(*input) {
            Plan::Sort { input, keys } => Plan::TopK { input, keys, limit },
            Plan::TopK {
                input,
                keys,
                limit: inner,
            } => Plan::TopK {
                input,
                keys,
                limit: inner.min(limit),
            },
            fused => Plan::Limit {
                input: Box::new(fused),
                limit,
            },
        },
        Plan::Scan(name) => Plan::Scan(name),
        Plan::Alias { input, name } => Plan::Alias {
            input: Box::new(fuse_topk(*input)),
            name,
        },
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(fuse_topk(*input)),
            predicate,
        },
        Plan::Map { input, columns } => Plan::Map {
            input: Box::new(fuse_topk(*input)),
            columns,
        },
        Plan::Join {
            left,
            right,
            predicate,
        } => Plan::Join {
            left: Box::new(fuse_topk(*left)),
            right: Box::new(fuse_topk(*right)),
            predicate,
        },
        Plan::HashJoin {
            left,
            right,
            keys,
            residual,
            build_left,
        } => Plan::HashJoin {
            left: Box::new(fuse_topk(*left)),
            right: Box::new(fuse_topk(*right)),
            keys,
            residual,
            build_left,
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: Box::new(fuse_topk(*left)),
            right: Box::new(fuse_topk(*right)),
        },
        Plan::Except { left, right, all } => Plan::Except {
            left: Box::new(fuse_topk(*left)),
            right: Box::new(fuse_topk(*right)),
            all,
        },
        Plan::OuterJoin {
            left,
            right,
            predicate,
            kind,
        } => Plan::OuterJoin {
            left: Box::new(fuse_topk(*left)),
            right: Box::new(fuse_topk(*right)),
            predicate,
            kind,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(fuse_topk(*input)),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => Plan::Aggregate {
            input: Box::new(fuse_topk(*input)),
            group_by,
            aggregates,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(fuse_topk(*input)),
            keys,
        },
        Plan::TopK { input, keys, limit } => Plan::TopK {
            input: Box::new(fuse_topk(*input)),
            keys,
            limit,
        },
    }
}

/// Apply filter pushdown throughout the plan. The catalog supplies base
/// schemas for requalifying name-based predicates through `Alias` nodes.
pub fn push_filters(plan: Plan, catalog: &Catalog) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = push_filters(*input, catalog);
            match input {
                Plan::Map {
                    input: map_input,
                    columns,
                } => match substitute(&predicate, &columns) {
                    Some(pushed) => Plan::Map {
                        input: Box::new(push_filters(
                            Plan::Filter {
                                input: map_input,
                                predicate: pushed,
                            },
                            catalog,
                        )),
                        columns,
                    },
                    None => Plan::Filter {
                        input: Box::new(Plan::Map {
                            input: map_input,
                            columns,
                        }),
                        predicate,
                    },
                },
                // Aliases only re-qualify names: a fully positional
                // predicate (as produced by join planning or earlier
                // substitution) sinks through untouched, and a name-based
                // one sinks once its references are requalified against the
                // inner schema (`q.salary` → `salary`), provided each
                // requalified reference resolves uniquely back to the same
                // column.
                Plan::Alias {
                    input: alias_input,
                    name,
                } => {
                    let requalified = if has_named_refs(&predicate) {
                        requalify_through_alias(&predicate, &name, &alias_input, catalog)
                    } else {
                        Some(predicate.clone())
                    };
                    match requalified {
                        Some(pushed) => Plan::Alias {
                            input: Box::new(push_filters(
                                Plan::Filter {
                                    input: alias_input,
                                    predicate: pushed,
                                },
                                catalog,
                            )),
                            name,
                        },
                        None => Plan::Filter {
                            input: Box::new(Plan::Alias {
                                input: alias_input,
                                name,
                            }),
                            predicate,
                        },
                    }
                }
                // Everything else keeps the filter above it. This is
                // load-bearing for the non-monotone operators: a predicate
                // must never sink into either side of `Except` (removal is
                // first-k by full-tuple match, so pre-filtering the left
                // changes *which* copies the right's budget removes under
                // the AU bounds, and filtering the right changes the
                // removal set outright) nor into the preserved side of an
                // `OuterJoin` (pre-filtering would turn matched rows into
                // absent rows instead of NULL-padded ones under the other
                // side's visibility), nor into the NULL-supplying side
                // (rows filtered there pad instead of disappearing).
                other => Plan::Filter {
                    input: Box::new(other),
                    predicate,
                },
            }
        }
        Plan::Scan(name) => Plan::Scan(name),
        Plan::Alias { input, name } => Plan::Alias {
            input: Box::new(push_filters(*input, catalog)),
            name,
        },
        Plan::Map { input, columns } => Plan::Map {
            input: Box::new(push_filters(*input, catalog)),
            columns,
        },
        Plan::Join {
            left,
            right,
            predicate,
        } => Plan::Join {
            left: Box::new(push_filters(*left, catalog)),
            right: Box::new(push_filters(*right, catalog)),
            predicate,
        },
        Plan::HashJoin {
            left,
            right,
            keys,
            residual,
            build_left,
        } => Plan::HashJoin {
            left: Box::new(push_filters(*left, catalog)),
            right: Box::new(push_filters(*right, catalog)),
            keys,
            residual,
            build_left,
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: Box::new(push_filters(*left, catalog)),
            right: Box::new(push_filters(*right, catalog)),
        },
        Plan::Except { left, right, all } => Plan::Except {
            left: Box::new(push_filters(*left, catalog)),
            right: Box::new(push_filters(*right, catalog)),
            all,
        },
        Plan::OuterJoin {
            left,
            right,
            predicate,
            kind,
        } => Plan::OuterJoin {
            left: Box::new(push_filters(*left, catalog)),
            right: Box::new(push_filters(*right, catalog)),
            predicate,
            kind,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(push_filters(*input, catalog)),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => Plan::Aggregate {
            input: Box::new(push_filters(*input, catalog)),
            group_by,
            aggregates,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(push_filters(*input, catalog)),
            keys,
        },
        Plan::Limit { input, limit } => Plan::Limit {
            input: Box::new(push_filters(*input, catalog)),
            limit,
        },
        Plan::TopK { input, keys, limit } => Plan::TopK {
            input: Box::new(push_filters(*input, catalog)),
            keys,
            limit,
        },
    }
}

/// Rewrite a name-based predicate so it binds *below* `Alias[alias]` over
/// `inner`: every named reference is resolved against the aliased schema,
/// then re-expressed against the inner schema (bare name first, then the
/// inner column's own qualified name), requiring the new reference to
/// resolve uniquely to the same column. `None` when any reference cannot be
/// requalified (the filter then stays above the alias).
fn requalify_through_alias(
    predicate: &Expr,
    alias: &str,
    inner: &Plan,
    catalog: &Catalog,
) -> Option<Expr> {
    let inner_schema = plan_schema(inner, catalog).ok()?;
    let outer_schema = inner_schema.with_qualifier(alias);
    map_named(predicate, &|name| {
        let idx = outer_schema.resolve(name).ok()?;
        let col = &inner_schema.columns()[idx];
        let bare = col.name.to_string();
        if matches!(inner_schema.resolve(&bare), Ok(i) if i == idx) {
            return Some(bare);
        }
        if let Some(q) = &col.qualifier {
            let qualified = format!("{q}.{}", col.name);
            if matches!(inner_schema.resolve(&qualified), Ok(i) if i == idx) {
                return Some(qualified);
            }
        }
        None
    })
}

/// Rebuild an expression with every `Expr::Named` reference mapped through
/// `f`; `None` as soon as `f` declines one (positions and literals pass
/// through untouched).
fn map_named(expr: &Expr, f: &dyn Fn(&str) -> Option<String>) -> Option<Expr> {
    expr.map_refs(f, &|i| i)
}

/// Rebuild an expression with every positional reference mapped through
/// `f`; names and literals pass through untouched.
fn remap_positions(expr: &Expr, f: &dyn Fn(usize) -> usize) -> Expr {
    expr.map_refs(&|n| Some(n.to_string()), f)
        .expect("identity name mapping cannot fail")
}

/// Rewrite cross-join+filter shapes into [`Plan::HashJoin`]s throughout the
/// plan (see the module docs for the full rule).
pub fn plan_joins(plan: Plan, catalog: &Catalog) -> Plan {
    plan_joins_impl(plan, catalog, true)
}

/// [`plan_joins`] with positional-reference classification gated by
/// `positional` (see [`OptimizerPasses::positional_joins`]).
fn plan_joins_impl(plan: Plan, catalog: &Catalog, positional: bool) -> Plan {
    match plan {
        Plan::Filter { .. } => {
            // Peel the filter stack level by level (outermost first); if a
            // join is underneath, the conjuncts take part in join planning.
            // Level boundaries are load-bearing for errors: `And` evaluates
            // eagerly, so merging the stack into one conjunction would run
            // an outer error-capable predicate (arithmetic can raise) on
            // rows an inner level used to exclude. The *bottom* level saw
            // the raw join rows and is always absorbed; higher levels are
            // absorbed only when error-free (conjunction commutes freely
            // for those), and error-capable levels stay stacked, in order,
            // above the planned join.
            let mut levels: Vec<Expr> = Vec::new();
            let mut core = plan;
            while let Plan::Filter { input, predicate } = core {
                levels.push(predicate);
                core = *input;
            }
            match core {
                Plan::Join {
                    left,
                    right,
                    predicate,
                } => {
                    let mut conjuncts: Vec<Expr> = Vec::new();
                    let mut kept: Vec<Expr> = Vec::new();
                    let bottom = levels.len() - 1;
                    for (i, level) in levels.into_iter().enumerate() {
                        let split = level.split_conjuncts();
                        if i == bottom || split.iter().all(|c| is_error_free(c)) {
                            conjuncts.extend(split.into_iter().cloned());
                        } else {
                            kept.push(level);
                        }
                    }
                    if let Some(p) = predicate {
                        conjuncts.extend(p.split_conjuncts().into_iter().cloned());
                    }
                    let mut planned = rewrite_join(*left, *right, conjuncts, catalog, positional);
                    for predicate in kept.into_iter().rev() {
                        planned = Plan::Filter {
                            input: Box::new(planned),
                            predicate,
                        };
                    }
                    planned
                }
                other => {
                    // Not a join: keep the stack exactly as written.
                    let mut planned = plan_joins_impl(other, catalog, positional);
                    for predicate in levels.into_iter().rev() {
                        planned = Plan::Filter {
                            input: Box::new(planned),
                            predicate,
                        };
                    }
                    planned
                }
            }
        }
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            let conjuncts = match predicate {
                Some(p) => p.split_conjuncts().into_iter().cloned().collect(),
                None => Vec::new(),
            };
            rewrite_join(*left, *right, conjuncts, catalog, positional)
        }
        Plan::Scan(name) => Plan::Scan(name),
        Plan::Alias { input, name } => Plan::Alias {
            input: Box::new(plan_joins_impl(*input, catalog, positional)),
            name,
        },
        Plan::Map { input, columns } => Plan::Map {
            input: Box::new(plan_joins_impl(*input, catalog, positional)),
            columns,
        },
        Plan::HashJoin {
            left,
            right,
            keys,
            residual,
            build_left,
        } => Plan::HashJoin {
            left: Box::new(plan_joins_impl(*left, catalog, positional)),
            right: Box::new(plan_joins_impl(*right, catalog, positional)),
            keys,
            residual,
            build_left,
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: Box::new(plan_joins_impl(*left, catalog, positional)),
            right: Box::new(plan_joins_impl(*right, catalog, positional)),
        },
        Plan::Except { left, right, all } => Plan::Except {
            left: Box::new(plan_joins_impl(*left, catalog, positional)),
            right: Box::new(plan_joins_impl(*right, catalog, positional)),
            all,
        },
        // The ON predicate stays on the logical node — the vectorized
        // anti/outer probe extracts equi-keys itself, and rewriting to
        // `HashJoin` would lose the padding semantics.
        Plan::OuterJoin {
            left,
            right,
            predicate,
            kind,
        } => Plan::OuterJoin {
            left: Box::new(plan_joins_impl(*left, catalog, positional)),
            right: Box::new(plan_joins_impl(*right, catalog, positional)),
            predicate,
            kind,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(plan_joins_impl(*input, catalog, positional)),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => Plan::Aggregate {
            input: Box::new(plan_joins_impl(*input, catalog, positional)),
            group_by,
            aggregates,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(plan_joins_impl(*input, catalog, positional)),
            keys,
        },
        Plan::Limit { input, limit } => Plan::Limit {
            input: Box::new(plan_joins_impl(*input, catalog, positional)),
            limit,
        },
        Plan::TopK { input, keys, limit } => Plan::TopK {
            input: Box::new(plan_joins_impl(*input, catalog, positional)),
            keys,
            limit,
        },
    }
}

/// Plan one join given every conjunct that constrains it (its own predicate
/// plus any filters that sat on top of it).
fn rewrite_join(
    left: Plan,
    right: Plan,
    conjuncts: Vec<Expr>,
    catalog: &Catalog,
    positional: bool,
) -> Plan {
    let left = plan_joins_impl(left, catalog, positional);
    let right = plan_joins_impl(right, catalog, positional);
    let (ls, rs) = match (plan_schema(&left, catalog), plan_schema(&right, catalog)) {
        (Ok(l), Ok(r)) => (l, r),
        // Unknown table / malformed subtree: leave the join alone; execution
        // reports the same error the unoptimized plan would.
        _ => {
            return Plan::Join {
                left: Box::new(left),
                right: Box::new(right),
                predicate: option_conjunction(conjuncts),
            }
        }
    };
    let la = ls.arity();

    let mut left_only: Vec<Expr> = Vec::new();
    let mut right_only: Vec<Expr> = Vec::new();
    let mut keys: Vec<(Expr, Expr)> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    for c in conjuncts {
        // A conjunct moved below the join gets evaluated on rows the join
        // would have excluded; that is only sound when its evaluation
        // cannot *error* there (predicates over columns/literals degrade to
        // Unknown on bad types, but arithmetic raises). Error-capable
        // single-side conjuncts stay in the residual instead, which runs on
        // the same joined rows the original filter saw.
        match side_of(&c, &ls, &rs, la, positional).filter(|_| is_error_free(&c)) {
            Some(Side::Left) => left_only.push(c),
            Some(Side::Right) => right_only.push(shift_columns(&c, la)),
            None => {
                if let Expr::Cmp(CmpOp::Eq, a, b) = &c {
                    match (
                        side_of(a, &ls, &rs, la, positional),
                        side_of(b, &ls, &rs, la, positional),
                    ) {
                        (Some(Side::Left), Some(Side::Right)) => {
                            keys.push(((**a).clone(), shift_columns(b, la)));
                            continue;
                        }
                        (Some(Side::Right), Some(Side::Left)) => {
                            keys.push(((**b).clone(), shift_columns(a, la)));
                            continue;
                        }
                        _ => {}
                    }
                }
                residual.push(c);
            }
        }
    }

    // Single-side conjuncts become selections below the join; re-plan a
    // child only when the new filter actually sits on an (unplanned) join
    // it could merge into — anything else would re-traverse an
    // already-planned subtree for nothing. Projections may separate the
    // fresh filter from that join (the `⟦·⟧_UA` rewriting wraps every join
    // in a marker-combining Map, so on the row UA path a 3-way join's
    // inner joins are always behind one); the filter is first sunk through
    // them, then planning merges it — keeping the row and vectorized
    // paths' join trees, and hence their row orders, in lockstep.
    let replan = |child: Plan, gained: bool, catalog: &Catalog| -> Plan {
        if !gained {
            return child;
        }
        if peels_to_join(&child) {
            return plan_joins_impl(child, catalog, positional);
        }
        if peels_to_join_through_maps(&child) {
            return plan_joins_impl(push_filters(child, catalog), catalog, positional);
        }
        child
    };
    let gained_left = !left_only.is_empty();
    let gained_right = !right_only.is_empty();
    let left = replan(wrap_filters(left, left_only), gained_left, catalog);
    let right = replan(wrap_filters(right, right_only), gained_right, catalog);

    if keys.is_empty() {
        return Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
            predicate: option_conjunction(residual),
        };
    }
    let build_left = match (
        estimate_rows(&left, catalog),
        estimate_rows(&right, catalog),
    ) {
        (Some(l), Some(r)) => l < r,
        _ => false,
    };
    Plan::HashJoin {
        left: Box::new(left),
        right: Box::new(right),
        keys,
        residual: option_conjunction(residual),
        build_left,
    }
}

/// Default selectivity for predicates the statistics cannot estimate
/// (System R's classic 1/3).
pub const DEFAULT_FILTER_SELECTIVITY: f64 = 1.0 / 3.0;

/// A planned join whose estimated and actual cardinalities differ by at
/// least this factor (in either direction) counts as misestimated in
/// [`record_join_misestimates`].
pub const MISESTIMATE_RATIO: f64 = 4.0;

/// Planner feedback: walk an executed query's per-operator stats tree and
/// record, in the global [`ua_obs`] registry, how the optimizer's
/// cardinality estimates held up against reality on every planned join.
///
/// Three metrics are maintained:
///
/// * `planner.join.observed` — joins executed with an estimate available;
/// * `planner.join.misestimated` — of those, how many were off by
///   [`MISESTIMATE_RATIO`]× or more (either direction);
/// * `planner.join.est_ratio_x100` — histogram of
///   `100 · max(actual/est, est/actual)`, so `mean()/100` is the average
///   misestimation factor.
///
/// A climbing misestimated/observed ratio is the signal that catalog
/// statistics have drifted from the live store and
/// [`crate::storage::Catalog::analyze`] should be re-run.
pub fn record_join_misestimates(root: &ua_obs::OperatorStats) {
    let reg = ua_obs::global();
    root.walk(&mut |node| {
        let joinish = matches!(node.name.as_str(), "Join" | "HashJoin" | "Cross");
        if !joinish {
            return;
        }
        let Some(est) = node.est_rows else { return };
        let actual = node.rows_out;
        reg.counter("planner.join.observed").inc();
        // Ratio in "x100" fixed point; a zero on one side with rows on the
        // other is an unbounded miss — clamp to the histogram's range.
        let ratio = match (est, actual) {
            (0, 0) => 1.0,
            (0, _) | (_, 0) => f64::from(u32::MAX),
            (e, a) => {
                let (e, a) = (e as f64, a as f64);
                (a / e).max(e / a)
            }
        };
        reg.histogram("planner.join.est_ratio_x100")
            .record((ratio * 100.0) as u64);
        if ratio >= MISESTIMATE_RATIO {
            reg.counter("planner.join.misestimated").inc();
        }
    });
}

/// Cardinality estimation anchored on catalog statistics
/// ([`crate::storage::TableStats`], collected from the live store): scans
/// report actual row counts, filters apply histogram/ndv-based
/// selectivities ([`DEFAULT_FILTER_SELECTIVITY`] when unestimable), and
/// equi-joins apply `1/max(ndv)` per key pair. Used for hash build-side
/// selection and join-order costing.
pub fn estimate_rows(plan: &Plan, catalog: &Catalog) -> Option<u64> {
    estimate_rows_f(plan, catalog).map(|n| n.ceil() as u64)
}

fn estimate_rows_f(plan: &Plan, catalog: &Catalog) -> Option<f64> {
    match plan {
        Plan::Scan(name) => catalog.stats_of(name).map(|s| s.rows as f64),
        Plan::Alias { input, .. } | Plan::Map { input, .. } | Plan::Sort { input, .. } => {
            estimate_rows_f(input, catalog)
        }
        // Deduplicated cardinality, NOT the input's: like the Aggregate
        // arm below, the output is capped by the product of the columns'
        // distinct counts. Passing the input estimate through here let
        // joins above a DISTINCT subquery inherit the pre-dedup row count
        // and trip `planner.join.misestimated` on correct plans.
        Plan::Distinct { input } => {
            let rows = estimate_rows_f(input, catalog)?;
            let Ok(schema) = plan_schema(input, catalog) else {
                return Some(rows);
            };
            let mut groups = 1.0f64;
            for i in 0..schema.arity() {
                // Unknown-ndv columns keep the conservative pass-through.
                let Some(ndv) = expr_ndv(&Expr::Col(i), input, catalog) else {
                    return Some(rows);
                };
                groups *= ndv;
            }
            Some(groups.min(rows))
        }
        // Post-grouping cardinality, NOT the input's: one output row per
        // group (a global aggregate always emits exactly one row — det
        // and AU alike). Passing the input estimate through here let
        // joins above an aggregate subquery inherit the pre-grouping row
        // count and trip `planner.join.misestimated` on correct plans.
        Plan::Aggregate {
            input, group_by, ..
        } => {
            if group_by.is_empty() {
                return Some(1.0);
            }
            let rows = estimate_rows_f(input, catalog)?;
            let mut groups = 1.0f64;
            for key in group_by {
                // Unknown-ndv keys keep the conservative pass-through.
                let Some(ndv) = expr_ndv(&key.expr, input, catalog) else {
                    return Some(rows);
                };
                groups *= ndv;
            }
            Some(groups.min(rows))
        }
        Plan::Filter { input, predicate } => {
            let rows = estimate_rows_f(input, catalog)?;
            Some(rows * predicate_selectivity(predicate, input, catalog))
        }
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            let l = estimate_rows_f(left, catalog)?;
            let r = estimate_rows_f(right, catalog)?;
            match predicate {
                None => Some(l * r),
                Some(p) => {
                    // Estimate extractable equality conjuncts with ndv
                    // statistics; anything else keeps the key/foreign-key
                    // guess of max(l, r).
                    let sel = equi_conjunct_selectivity(p, left, right, catalog, l, r);
                    match sel {
                        Some(sel) => Some(l * r * sel),
                        None => Some(l.max(r)),
                    }
                }
            }
        }
        Plan::HashJoin {
            left, right, keys, ..
        } => {
            let l = estimate_rows_f(left, catalog)?;
            let r = estimate_rows_f(right, catalog)?;
            let mut out = l * r;
            for (kl, kr) in keys {
                out *= key_pair_selectivity(kl, left, kr, right, catalog, l, r);
            }
            Some(out)
        }
        Plan::UnionAll { left, right } => {
            Some(estimate_rows_f(left, catalog)? + estimate_rows_f(right, catalog)?)
        }
        // A difference keeps at most the left side's rows (the removal
        // count is not estimable without value overlap statistics); the
        // distinct variant additionally dedupes like `Distinct`.
        Plan::Except { left, all, .. } => {
            if *all {
                estimate_rows_f(left, catalog)
            } else {
                estimate_rows_f(
                    &Plan::Distinct {
                        input: left.clone(),
                    },
                    catalog,
                )
            }
        }
        // Inner-join estimate, floored by the preserved side: every
        // preserved row appears at least once (matched or NULL-padded).
        Plan::OuterJoin {
            left,
            right,
            predicate,
            kind,
        } => {
            let l = estimate_rows_f(left, catalog)?;
            let r = estimate_rows_f(right, catalog)?;
            let inner = match predicate {
                None => l * r,
                Some(p) => match equi_conjunct_selectivity(p, left, right, catalog, l, r) {
                    Some(sel) => l * r * sel,
                    None => l.max(r),
                },
            };
            let preserved = match kind {
                crate::plan::OuterKind::Left => l,
                crate::plan::OuterKind::Right => r,
            };
            Some(inner.max(preserved))
        }
        Plan::Limit { input, limit } => Some(estimate_rows_f(input, catalog)?.min(*limit as f64)),
        Plan::TopK { input, limit, .. } => {
            Some(estimate_rows_f(input, catalog)?.min(*limit as f64))
        }
    }
}

/// Selectivity of one equi-key pair: `1/max(ndv_left, ndv_right)`, with a
/// column's row count standing in when its distinct count is unknown.
fn key_pair_selectivity(
    kl: &Expr,
    left: &Plan,
    kr: &Expr,
    right: &Plan,
    catalog: &Catalog,
    l_rows: f64,
    r_rows: f64,
) -> f64 {
    let ndv_l = expr_ndv(kl, left, catalog).unwrap_or(l_rows);
    let ndv_r = expr_ndv(kr, right, catalog).unwrap_or(r_rows);
    1.0 / ndv_l.max(ndv_r).max(1.0)
}

/// ndv-based selectivity of a join predicate's extractable equality
/// conjuncts: `Some` only when every conjunct is a two-sided equality over
/// the inputs (otherwise the caller keeps its θ-join guess).
fn equi_conjunct_selectivity(
    predicate: &Expr,
    left: &Plan,
    right: &Plan,
    catalog: &Catalog,
    // The inputs' row estimates, passed in by the caller (who already has
    // them) so join-tree estimation stays linear in plan depth.
    l_rows: f64,
    r_rows: f64,
) -> Option<f64> {
    let ls = plan_schema(left, catalog).ok()?;
    let rs = plan_schema(right, catalog).ok()?;
    let la = ls.arity();
    let mut sel = 1.0;
    for c in predicate.split_conjuncts() {
        let Expr::Cmp(CmpOp::Eq, a, b) = c else {
            return None;
        };
        let (l_expr, r_expr) = match (
            side_of(a, &ls, &rs, la, true),
            side_of(b, &ls, &rs, la, true),
        ) {
            (Some(Side::Left), Some(Side::Right)) => ((**a).clone(), shift_columns(b, la)),
            (Some(Side::Right), Some(Side::Left)) => ((**b).clone(), shift_columns(a, la)),
            _ => return None,
        };
        sel *= key_pair_selectivity(&l_expr, left, &r_expr, right, catalog, l_rows, r_rows);
    }
    Some(sel)
}

/// Distinct-value count of an expression over a plan's output: traced to
/// base-table column statistics when the expression is a plain column
/// reference, `None` otherwise.
fn expr_ndv(expr: &Expr, plan: &Plan, catalog: &Catalog) -> Option<f64> {
    let idx = expr_column_index(expr, plan, catalog)?;
    let (stats, col) = base_column_stats(plan, idx, catalog)?;
    Some(stats.columns.get(col)?.distinct.max(1) as f64)
}

/// Resolve a plain column reference against a plan's output schema.
fn expr_column_index(expr: &Expr, plan: &Plan, catalog: &Catalog) -> Option<usize> {
    match expr {
        Expr::Col(i) => Some(*i),
        Expr::Named(n) => plan_schema(plan, catalog).ok()?.resolve(n).ok(),
        _ => None,
    }
}

/// Trace output column `idx` of `plan` back to a base-table column and its
/// statistics, looking through aliases, filters, limits/sorts, joins and
/// column-reference projections.
fn base_column_stats(
    plan: &Plan,
    idx: usize,
    catalog: &Catalog,
) -> Option<(Arc<TableStats>, usize)> {
    match plan {
        Plan::Scan(name) => Some((catalog.stats_of(name)?, idx)),
        Plan::Alias { input, .. }
        | Plan::Filter { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::TopK { input, .. }
        | Plan::Distinct { input } => base_column_stats(input, idx, catalog),
        Plan::Map { input, columns } => {
            let col = columns.get(idx)?;
            let inner_idx = match &col.expr {
                Expr::Col(i) => *i,
                Expr::Named(n) => plan_schema(input, catalog).ok()?.resolve(n).ok()?,
                _ => return None,
            };
            base_column_stats(input, inner_idx, catalog)
        }
        Plan::Join { left, right, .. }
        | Plan::HashJoin { left, right, .. }
        | Plan::OuterJoin { left, right, .. } => {
            let la = plan_schema(left, catalog).ok()?.arity();
            if idx < la {
                base_column_stats(left, idx, catalog)
            } else {
                base_column_stats(right, idx - la, catalog)
            }
        }
        // Except's output columns are the left side's (a subset of its
        // rows, so base distinct counts stay sound upper bounds).
        Plan::Except { left, .. } => base_column_stats(left, idx, catalog),
        Plan::UnionAll { .. } | Plan::Aggregate { .. } => None,
    }
}

/// Estimated fraction of `input`'s rows a predicate keeps, in `[0, 1]`.
///
/// Histogram-backed for range comparisons against numeric literals,
/// `1/ndv` for equalities, composed through AND/OR/NOT;
/// [`DEFAULT_FILTER_SELECTIVITY`] for anything the statistics cannot see.
pub fn predicate_selectivity(predicate: &Expr, input: &Plan, catalog: &Catalog) -> f64 {
    selectivity_of(predicate, input, catalog).clamp(0.0, 1.0)
}

fn selectivity_of(predicate: &Expr, input: &Plan, catalog: &Catalog) -> f64 {
    match predicate {
        Expr::And(a, b) => selectivity_of(a, input, catalog) * selectivity_of(b, input, catalog),
        Expr::Or(a, b) => {
            let (sa, sb) = (
                selectivity_of(a, input, catalog),
                selectivity_of(b, input, catalog),
            );
            (sa + sb - sa * sb).min(1.0)
        }
        Expr::Not(a) => 1.0 - selectivity_of(a, input, catalog),
        Expr::Cmp(op, a, b) => {
            cmp_selectivity(*op, a, b, input, catalog).unwrap_or(DEFAULT_FILTER_SELECTIVITY)
        }
        Expr::Between(e, lo, hi) => {
            let ge = cmp_selectivity(CmpOp::Ge, e, lo, input, catalog);
            let le = cmp_selectivity(CmpOp::Le, e, hi, input, catalog);
            match (ge, le) {
                // P[lo <= x <= hi] = P[x <= hi] - P[x < lo] = le - (1 - ge).
                (Some(ge), Some(le)) => (ge + le - 1.0).max(0.0),
                _ => DEFAULT_FILTER_SELECTIVITY,
            }
        }
        Expr::InList(e, list) => {
            let eq_sum: Option<f64> = list
                .iter()
                .map(|lit| cmp_selectivity(CmpOp::Eq, e, lit, input, catalog))
                .sum();
            eq_sum
                .map(|s| s.min(1.0))
                .unwrap_or(DEFAULT_FILTER_SELECTIVITY)
        }
        Expr::IsNull(e) => null_fraction(e, input, catalog).unwrap_or(DEFAULT_FILTER_SELECTIVITY),
        _ => DEFAULT_FILTER_SELECTIVITY,
    }
}

fn null_fraction(expr: &Expr, input: &Plan, catalog: &Catalog) -> Option<f64> {
    let idx = expr_column_index(expr, input, catalog)?;
    let (stats, col) = base_column_stats(input, idx, catalog)?;
    if stats.rows == 0 {
        return Some(0.0);
    }
    Some(stats.columns.get(col)?.nulls as f64 / stats.rows as f64)
}

/// Selectivity of `a op b` where one side is a plain column and the other a
/// literal; `None` when the statistics cannot estimate the shape.
fn cmp_selectivity(op: CmpOp, a: &Expr, b: &Expr, input: &Plan, catalog: &Catalog) -> Option<f64> {
    // Normalize to column-op-literal.
    let (col_expr, lit, op) = match (a, b) {
        (col @ (Expr::Col(_) | Expr::Named(_)), Expr::Lit(v)) => (col, v, op),
        (Expr::Lit(v), col @ (Expr::Col(_) | Expr::Named(_))) => (col, v, flip_cmp(op)),
        _ => return None,
    };
    let idx = expr_column_index(col_expr, input, catalog)?;
    let (stats, col) = base_column_stats(input, idx, catalog)?;
    let cs = stats.columns.get(col)?;
    let eq_sel = || {
        let s = 1.0 / cs.distinct.max(1) as f64;
        // A literal provably outside the column's range never matches.
        match (&cs.histogram, lit.as_f64()) {
            (Some(h), Some(v)) if v < h.lo || v > h.hi => 0.0,
            _ => s,
        }
    };
    match op {
        CmpOp::Eq => Some(eq_sel()),
        CmpOp::Ne => Some(1.0 - eq_sel()),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let h = cs.histogram.as_ref()?;
            let v = lit.as_f64()?;
            Some(match op {
                // The continuous-uniform bucket model puts zero mass on any
                // single point, so a strict bound *at* an observed extreme
                // would estimate 1.0 even when many rows equal it; clamp
                // those cases by the equality point mass (1/ndv) instead.
                CmpOp::Lt if v == h.hi => (1.0 - eq_sel()).max(0.0),
                CmpOp::Lt => h.fraction_below(v, false),
                CmpOp::Le if v == h.lo => eq_sel(),
                CmpOp::Le => h.fraction_below(v, true),
                CmpOp::Gt if v == h.lo => (1.0 - eq_sel()).max(0.0),
                CmpOp::Gt => 1.0 - h.fraction_below(v, true),
                CmpOp::Ge if v == h.hi => eq_sel(),
                CmpOp::Ge => 1.0 - h.fraction_below(v, false),
                _ => unreachable!("range ops only"),
            })
        }
    }
}

fn flip_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Maximum number of relations the join-order DP enumerates exhaustively;
/// larger joins fall back to greedy pairwise merging.
pub const DP_MAX_RELATIONS: usize = 6;

/// Reorder 3+-way join trees by estimated cost (pipeline pass 2; see the
/// module docs). Positional (`Expr::Col`) references are classified and
/// remapped — use [`reorder_joins_ua`] when runtime schemas differ from
/// `plan_schema`.
pub fn reorder_joins(plan: Plan, catalog: &Catalog) -> Plan {
    reorder_joins_impl(plan, catalog, true, false)
}

/// [`reorder_joins`] for *user* `RA⁺` plans over UA-annotated sources, as
/// run by `UaSession` before the `⟦·⟧_UA` rewriting: leaf schemas are the
/// encoded tables' schemas with the trailing `ua_c` marker stripped (the
/// user-visible columns), classification is name-based only (positions
/// computed against encoded schemas would misalign on the vectorized
/// path's marker-stripped batches), and the emitted plan stays in the
/// `RA⁺` fragment so `Plan::to_ra` succeeds.
pub fn reorder_joins_ua(plan: Plan, catalog: &Catalog) -> Plan {
    reorder_joins_impl(plan, catalog, false, true)
}

fn reorder_joins_impl(plan: Plan, catalog: &Catalog, positional: bool, strip: bool) -> Plan {
    if peels_to_join(&plan) {
        return match try_reorder(&plan, catalog, positional, strip) {
            Some(reordered) => reordered,
            // The region was analyzed and left as-written (best order
            // already, or unreorderable). Walk through its filters and
            // joins WITHOUT re-analyzing them — re-running `try_reorder`
            // on the bare join under the filter stack would reorder by
            // raw cross-product sizes, blind to the stack's conjuncts —
            // and give only the region's leaves their own turn.
            None => descend_region(plan, catalog, positional, strip),
        };
    }
    // Structural recursion: the node itself stays, children get their turn.
    match plan {
        Plan::Scan(name) => Plan::Scan(name),
        Plan::Alias { input, name } => Plan::Alias {
            input: Box::new(reorder_joins_impl(*input, catalog, positional, strip)),
            name,
        },
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(reorder_joins_impl(*input, catalog, positional, strip)),
            predicate,
        },
        Plan::Map { input, columns } => Plan::Map {
            input: Box::new(reorder_joins_impl(*input, catalog, positional, strip)),
            columns,
        },
        Plan::Join {
            left,
            right,
            predicate,
        } => Plan::Join {
            left: Box::new(reorder_joins_impl(*left, catalog, positional, strip)),
            right: Box::new(reorder_joins_impl(*right, catalog, positional, strip)),
            predicate,
        },
        Plan::HashJoin {
            left,
            right,
            keys,
            residual,
            build_left,
        } => Plan::HashJoin {
            left: Box::new(reorder_joins_impl(*left, catalog, positional, strip)),
            right: Box::new(reorder_joins_impl(*right, catalog, positional, strip)),
            keys,
            residual,
            build_left,
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: Box::new(reorder_joins_impl(*left, catalog, positional, strip)),
            right: Box::new(reorder_joins_impl(*right, catalog, positional, strip)),
        },
        // Reorder barriers: `flatten_join_tree` treats both as leaves (a
        // difference or padded join cannot commute with inner joins), but
        // each side is its own reorderable region.
        Plan::Except { left, right, all } => Plan::Except {
            left: Box::new(reorder_joins_impl(*left, catalog, positional, strip)),
            right: Box::new(reorder_joins_impl(*right, catalog, positional, strip)),
            all,
        },
        Plan::OuterJoin {
            left,
            right,
            predicate,
            kind,
        } => Plan::OuterJoin {
            left: Box::new(reorder_joins_impl(*left, catalog, positional, strip)),
            right: Box::new(reorder_joins_impl(*right, catalog, positional, strip)),
            predicate,
            kind,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(reorder_joins_impl(*input, catalog, positional, strip)),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => Plan::Aggregate {
            input: Box::new(reorder_joins_impl(*input, catalog, positional, strip)),
            group_by,
            aggregates,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(reorder_joins_impl(*input, catalog, positional, strip)),
            keys,
        },
        Plan::Limit { input, limit } => Plan::Limit {
            input: Box::new(reorder_joins_impl(*input, catalog, positional, strip)),
            limit,
        },
        Plan::TopK { input, keys, limit } => Plan::TopK {
            input: Box::new(reorder_joins_impl(*input, catalog, positional, strip)),
            keys,
            limit,
        },
    }
}

/// Recurse into an analyzed-but-unchanged join region: filters and joins
/// pass through untouched, leaves re-enter the reorder pass.
fn descend_region(plan: Plan, catalog: &Catalog, positional: bool, strip: bool) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(descend_region(*input, catalog, positional, strip)),
            predicate,
        },
        Plan::Join {
            left,
            right,
            predicate,
        } => Plan::Join {
            left: Box::new(descend_region(*left, catalog, positional, strip)),
            right: Box::new(descend_region(*right, catalog, positional, strip)),
            predicate,
        },
        other => reorder_joins_impl(other, catalog, positional, strip),
    }
}

/// Where one conjunct of the flattened join graph ends up.
enum Placement {
    /// Error-free conjunct over a single relation: selection on that leaf
    /// (expression remapped to leaf-local positions).
    LeafFilter(usize, Expr),
    /// Two-sided equality linking two relations: a join edge. Key
    /// expressions are stored leaf-local.
    Edge {
        l: usize,
        r: usize,
        l_expr: Expr,
        r_expr: Expr,
    },
    /// Error-free conjunct spanning ≥ 2 relations (mask of leaf bits):
    /// predicate at its lowest covering join node.
    Node(u64, Expr),
    /// Everything else — error-capable, constant, or unresolvable
    /// conjuncts: filter over the full join result, where evaluation sees
    /// exactly the rows the original filter stack saw (and unresolvable
    /// references report the same binding errors).
    Top(Expr),
}

/// A binary join order over leaf indices.
#[derive(Clone, PartialEq, Debug)]
enum Tree {
    Leaf(usize),
    Node(u64, Box<Tree>, Box<Tree>),
}

impl Tree {
    fn mask(&self) -> u64 {
        match self {
            Tree::Leaf(i) => 1u64 << i,
            Tree::Node(mask, ..) => *mask,
        }
    }

    fn inorder(&self, out: &mut Vec<usize>) {
        match self {
            Tree::Leaf(i) => out.push(*i),
            Tree::Node(_, a, b) => {
                a.inorder(out);
                b.inorder(out);
            }
        }
    }
}

/// Attempt the n-ary reorder of a filter-stack-over-join region. `None`
/// means "leave the plan for the binary passes": fewer than 3 relations,
/// unresolvable schemas, positional references in name-only mode, an
/// unexpressible column-order restoration, or a chosen order equal to the
/// as-written one.
fn try_reorder(plan: &Plan, catalog: &Catalog, positional: bool, strip: bool) -> Option<Plan> {
    // Peel the filter stack sitting on the outermost join.
    let mut conjuncts: Vec<Expr> = Vec::new();
    let mut core = plan;
    while let Plan::Filter { input, predicate } = core {
        conjuncts.extend(predicate.split_conjuncts().into_iter().cloned());
        core = input;
    }
    let mut leaf_refs: Vec<&Plan> = Vec::new();
    let as_written = flatten_join_tree(core, &mut leaf_refs, &mut conjuncts);
    let n = leaf_refs.len();
    if !(3..=63).contains(&n) {
        return None;
    }

    // Reorder within each leaf first (subqueries carry their own joins),
    // then snapshot schemas — possibly marker-stripped for the UA path.
    let leaves: Vec<Plan> = leaf_refs
        .into_iter()
        .map(|l| reorder_joins_impl(l.clone(), catalog, positional, strip))
        .collect();
    let schemas: Vec<Schema> = leaves
        .iter()
        .map(|l| {
            let s = plan_schema(l, catalog).ok()?;
            Some(if strip { strip_trailing_marker(s) } else { s })
        })
        .collect::<Option<_>>()?;
    let offsets: Vec<usize> = schemas
        .iter()
        .scan(0usize, |acc, s| {
            let off = *acc;
            *acc += s.arity();
            Some(off)
        })
        .collect();
    let total_arity: usize = schemas.iter().map(Schema::arity).sum();
    let leaf_of_pos = |p: usize| -> Option<usize> {
        (p < total_arity).then(|| offsets.iter().rposition(|&off| off <= p).expect("offset 0"))
    };

    // Classify every conjunct against the leaf schemas.
    let mut placements: Vec<Placement> = Vec::with_capacity(conjuncts.len());
    for c in conjuncts {
        placements.push(classify_conjunct(
            c,
            &schemas,
            &offsets,
            &leaf_of_pos,
            positional,
        )?);
    }
    close_transitive_edges(&mut placements);

    // Cost inputs: per-leaf cardinalities with their pushed-down filter
    // selectivities applied, and per-edge `1/max(ndv)` selectivities.
    let mut leaf_rows: Vec<f64> = leaves
        .iter()
        .map(|l| estimate_rows_f(l, catalog).unwrap_or(1000.0))
        .collect();
    for p in &placements {
        if let Placement::LeafFilter(i, e) = p {
            leaf_rows[*i] *= predicate_selectivity(e, &leaves[*i], catalog);
        }
    }
    let edges: Vec<(u64, f64)> = placements
        .iter()
        .filter_map(|p| match p {
            Placement::Edge {
                l,
                r,
                l_expr,
                r_expr,
            } => {
                let sel = key_pair_selectivity(
                    l_expr,
                    &leaves[*l],
                    r_expr,
                    &leaves[*r],
                    catalog,
                    leaf_rows[*l],
                    leaf_rows[*r],
                );
                Some(((1u64 << l) | (1u64 << r), sel))
            }
            _ => None,
        })
        .collect();
    let rows_of = |mask: u64| -> f64 {
        let mut rows = 1.0;
        for (i, &r) in leaf_rows.iter().enumerate() {
            if mask & (1 << i) != 0 {
                rows *= r;
            }
        }
        for &(emask, sel) in &edges {
            if emask & mask == emask {
                rows *= sel;
            }
        }
        rows
    };

    let tree = if n <= DP_MAX_RELATIONS {
        dp_order(n, &edges, &rows_of)?
    } else {
        greedy_order(n, &edges, &rows_of)
    };
    if tree == as_written {
        return None; // the as-written shape is already best: leave it alone
    }

    emit_reordered(
        &tree,
        &leaves,
        &schemas,
        &offsets,
        placements,
        total_arity,
        positional,
    )
}

/// Close the join-edge set over equality-transitivity: `a.x = b.x AND
/// b.x = c.x` implies `a.x = c.x`, but without the implied edge the order
/// enumeration never considers joining `a` and `c` directly — the pair
/// looks like a cross product, so orders routing through the implied
/// equality were unreachable however cheap. Union-find over the distinct
/// `(leaf, key expression)` endpoints of the [`Placement::Edge`]s; every
/// same-class cross-leaf pair without a direct edge becomes one. Implied
/// edges are genuine placements — costed by the DP *and* emitted as
/// predicates at their covering node — so the cost model stays honest
/// about the orders it ranks (a node joined only through an implied edge
/// really does execute with that equality).
fn close_transitive_edges(placements: &mut Vec<Placement>) {
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    fn endpoint(
        endpoints: &mut Vec<(usize, Expr)>,
        parent: &mut Vec<usize>,
        l: usize,
        e: &Expr,
    ) -> usize {
        match endpoints.iter().position(|(pl, pe)| *pl == l && pe == e) {
            Some(i) => i,
            None => {
                endpoints.push((l, e.clone()));
                parent.push(parent.len());
                endpoints.len() - 1
            }
        }
    }
    let mut endpoints: Vec<(usize, Expr)> = Vec::new();
    let mut parent: Vec<usize> = Vec::new();
    let mut direct: Vec<(usize, usize)> = Vec::new();
    for p in placements.iter() {
        if let Placement::Edge {
            l,
            r,
            l_expr,
            r_expr,
        } = p
        {
            let a = endpoint(&mut endpoints, &mut parent, *l, l_expr);
            let b = endpoint(&mut endpoints, &mut parent, *r, r_expr);
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent[ra] = rb;
            direct.push((a.min(b), a.max(b)));
        }
    }
    for a in 0..endpoints.len() {
        for b in (a + 1)..endpoints.len() {
            if endpoints[a].0 == endpoints[b].0
                || find(&mut parent, a) != find(&mut parent, b)
                || direct.contains(&(a, b))
            {
                continue;
            }
            placements.push(Placement::Edge {
                l: endpoints[a].0,
                r: endpoints[b].0,
                l_expr: endpoints[a].1.clone(),
                r_expr: endpoints[b].1.clone(),
            });
        }
    }
}

/// Flatten a tree of joins into its leaves and one conjunct set, returning
/// the *as-written* join shape over those leaf indices (the baseline the
/// chosen order is compared against — an input can be left-deep, right-deep
/// or bushy). Nested filter stacks over joins are absorbed only when every
/// conjunct is error-free (relocating an error-capable predicate could
/// change *where* evaluation errors surface); anything else becomes a leaf
/// boundary.
fn flatten_join_tree<'a>(
    plan: &'a Plan,
    leaves: &mut Vec<&'a Plan>,
    conjuncts: &mut Vec<Expr>,
) -> Tree {
    match plan {
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            let lt = flatten_join_tree(left, leaves, conjuncts);
            let rt = flatten_join_tree(right, leaves, conjuncts);
            if let Some(p) = predicate {
                conjuncts.extend(p.split_conjuncts().into_iter().cloned());
            }
            Tree::Node(lt.mask() | rt.mask(), Box::new(lt), Box::new(rt))
        }
        Plan::Filter { .. } => {
            let mut stack: Vec<Expr> = Vec::new();
            let mut core = plan;
            while let Plan::Filter { input, predicate } = core {
                stack.extend(predicate.split_conjuncts().into_iter().cloned());
                core = input;
            }
            if matches!(core, Plan::Join { .. }) && stack.iter().all(is_error_free) {
                let tree = flatten_join_tree(core, leaves, conjuncts);
                conjuncts.append(&mut stack);
                tree
            } else {
                leaves.push(plan);
                Tree::Leaf(leaves.len() - 1)
            }
        }
        other => {
            leaves.push(other);
            Tree::Leaf(leaves.len() - 1)
        }
    }
}

/// Strip one trailing `ua_c` marker column (the invariant position of the
/// paper's encoding) so UA-path classification sees user-visible schemas.
fn strip_trailing_marker(schema: Schema) -> Schema {
    let cols = schema.columns();
    match cols.last() {
        Some(c) if c.name.eq_ignore_ascii_case(ua_core::UA_LABEL_COLUMN) => {
            Schema::new(cols[..cols.len() - 1].to_vec())
        }
        _ => schema,
    }
}

/// Classify one conjunct of the flattened join graph. Returns `None` only
/// for shapes that must disable reordering altogether (positional
/// references in name-only mode, or positions outside the joined schema).
fn classify_conjunct(
    c: Expr,
    schemas: &[Schema],
    offsets: &[usize],
    leaf_of_pos: &dyn Fn(usize) -> Option<usize>,
    positional: bool,
) -> Option<Placement> {
    let mut cols: Vec<usize> = Vec::new();
    let mut names: Vec<&str> = Vec::new();
    collect_refs(&c, &mut cols, &mut names);
    if !cols.is_empty() && !positional {
        // Runtime schemas disagree with plan_schema on positions: any
        // reorder would rebind these at the wrong columns.
        return None;
    }
    let mut mask = 0u64;
    let mut unresolvable = false;
    for &p in &cols {
        match leaf_of_pos(p) {
            Some(l) => mask |= 1 << l,
            // A position outside the joined schema errors at bind time;
            // reordering cannot remap it, so it must disable the rewrite.
            None => return None,
        }
    }
    for n in &names {
        match leaf_of_name(n, schemas) {
            NameLeaf::One(l) => mask |= 1 << l,
            NameLeaf::None | NameLeaf::Many => {
                unresolvable = true;
            }
        }
    }
    drop(names);
    if unresolvable || mask == 0 {
        return Some(Placement::Top(c));
    }
    if mask.count_ones() == 1 {
        let l = mask.trailing_zeros() as usize;
        if is_error_free(&c) {
            let local = remap_positions(&c, &|p| p - offsets[l]);
            return Some(Placement::LeafFilter(l, local));
        }
        return Some(Placement::Top(c));
    }
    // Join edges, like every placement below a full-join filter, are
    // restricted to error-free conjuncts: an edge's key expressions are
    // evaluated per input row at whichever node the order puts it, so an
    // error-capable equality (arithmetic can raise) relocated to an inner
    // join could fail on rows the original plan never evaluated it on.
    if mask.count_ones() == 2 && is_error_free(&c) {
        if let Expr::Cmp(CmpOp::Eq, a, b) = &c {
            let side_leaf = |e: &Expr| -> Option<usize> {
                let mut cols = Vec::new();
                let mut names = Vec::new();
                collect_refs(e, &mut cols, &mut names);
                let mut m = 0u64;
                for &p in &cols {
                    m |= 1 << leaf_of_pos(p)?;
                }
                for n in &names {
                    match leaf_of_name(n, schemas) {
                        NameLeaf::One(l) => m |= 1 << l,
                        _ => return None,
                    }
                }
                (m.count_ones() == 1).then(|| m.trailing_zeros() as usize)
            };
            if let (Some(l), Some(r)) = (side_leaf(a), side_leaf(b)) {
                if l != r {
                    return Some(Placement::Edge {
                        l,
                        r,
                        l_expr: remap_positions(a, &|p| p - offsets[l]),
                        r_expr: remap_positions(b, &|p| p - offsets[r]),
                    });
                }
            }
        }
    }
    if is_error_free(&c) {
        Some(Placement::Node(mask, c))
    } else {
        Some(Placement::Top(c))
    }
}

/// How a column name resolves across the leaf schemas.
enum NameLeaf {
    /// Unique match in exactly one leaf.
    One(usize),
    /// No leaf resolves it (unknown column in the concatenated schema).
    None,
    /// Ambiguous — within one leaf or across several.
    Many,
}

fn leaf_of_name(name: &str, schemas: &[Schema]) -> NameLeaf {
    let mut found: Option<usize> = None;
    for (l, s) in schemas.iter().enumerate() {
        match s.resolve(name) {
            Ok(_) => match found {
                None => found = Some(l),
                Some(_) => return NameLeaf::Many,
            },
            Err(SchemaError::AmbiguousColumn(_)) => return NameLeaf::Many,
            Err(_) => {}
        }
    }
    match found {
        Some(l) => NameLeaf::One(l),
        None => NameLeaf::None,
    }
}

/// Selinger-style dynamic programming over connected subsets: the best
/// plan for a subset is the cheapest way to split it into two joinable
/// halves, where cost is the cumulative estimated size of intermediate
/// results. Disconnected subsets fall back to cross-product splits so a
/// plan always exists.
fn dp_order(n: usize, edges: &[(u64, f64)], rows_of: &dyn Fn(u64) -> f64) -> Option<Tree> {
    let full: u64 = (1 << n) - 1;
    let mut best: Vec<Option<(f64, Tree)>> = vec![None; (full + 1) as usize];
    for i in 0..n {
        best[1usize << i] = Some((0.0, Tree::Leaf(i)));
    }
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let rows = rows_of(mask);
        let low = mask & mask.wrapping_neg();
        let mut found: Option<(f64, Tree)> = None;
        for connected_only in [true, false] {
            let mut a = (mask - 1) & mask;
            while a > 0 {
                // Canonical split: the half holding the lowest leaf is the
                // left child (orientation is cosmetic — the physical pass
                // picks the hash build side by cardinality either way).
                if a & low != 0 {
                    let b = mask & !a;
                    let joinable = !connected_only
                        || edges
                            .iter()
                            .any(|&(em, _)| em & a != 0 && em & b != 0 && em & mask == em);
                    if joinable {
                        if let (Some((ca, ta)), Some((cb, tb))) =
                            (best[a as usize].as_ref(), best[b as usize].as_ref())
                        {
                            let cost = ca + cb + rows;
                            if found.as_ref().is_none_or(|(c, _)| cost < *c) {
                                found = Some((
                                    cost,
                                    Tree::Node(mask, Box::new(ta.clone()), Box::new(tb.clone())),
                                ));
                            }
                        }
                    }
                }
                a = (a - 1) & mask;
            }
            if found.is_some() {
                break;
            }
        }
        best[mask as usize] = found;
    }
    best[full as usize].take().map(|(_, t)| t)
}

/// Greedy operator ordering for joins too wide for the DP: repeatedly
/// merge the pair of components with the smallest estimated join size,
/// preferring edge-connected pairs.
fn greedy_order(n: usize, edges: &[(u64, f64)], rows_of: &dyn Fn(u64) -> f64) -> Tree {
    let mut comps: Vec<Tree> = (0..n).map(Tree::Leaf).collect();
    while comps.len() > 1 {
        let mut pick: Option<(f64, usize, usize)> = None;
        for connected_only in [true, false] {
            for i in 0..comps.len() {
                for j in (i + 1)..comps.len() {
                    let mask = comps[i].mask() | comps[j].mask();
                    let joinable = !connected_only
                        || edges
                            .iter()
                            .any(|&(em, _)| em & comps[i].mask() != 0 && em & comps[j].mask() != 0);
                    if joinable {
                        let rows = rows_of(mask);
                        if pick.as_ref().is_none_or(|(r, ..)| rows < *r) {
                            pick = Some((rows, i, j));
                        }
                    }
                }
            }
            if pick.is_some() {
                break;
            }
        }
        let (_, i, j) = pick.expect("at least one pair");
        let right = comps.remove(j);
        let left = comps.remove(i);
        let mask = left.mask() | right.mask();
        comps.insert(i, Tree::Node(mask, Box::new(left), Box::new(right)));
    }
    comps.pop().expect("one component")
}

/// Emit the chosen join order as a logical plan: leaves under their pushed
/// selections, edge equalities and covered conjuncts as join predicates at
/// their lowest covering node, top conjuncts as a filter over the full
/// join, and — when the leaf sequence changed — a projection restoring the
/// as-written column order.
fn emit_reordered(
    tree: &Tree,
    leaves: &[Plan],
    schemas: &[Schema],
    offsets: &[usize],
    placements: Vec<Placement>,
    total_arity: usize,
    positional: bool,
) -> Option<Plan> {
    let mut order: Vec<usize> = Vec::with_capacity(leaves.len());
    tree.inorder(&mut order);

    // New global offset of each leaf under the reordered sequence.
    let mut new_offsets = vec![0usize; leaves.len()];
    {
        let mut acc = 0usize;
        for &l in &order {
            new_offsets[l] = acc;
            acc += schemas[l].arity();
        }
    }
    let new_pos = |p: usize| -> usize {
        let l = offsets.iter().rposition(|&off| off <= p).expect("offset 0");
        new_offsets[l] + (p - offsets[l])
    };

    let mut leaf_filters: Vec<Vec<Expr>> = vec![Vec::new(); leaves.len()];
    let mut edges: Vec<(u64, usize, usize, Expr, Expr, bool)> = Vec::new();
    let mut node_conjuncts: Vec<(u64, Expr, bool)> = Vec::new();
    let mut top: Vec<Expr> = Vec::new();
    for p in placements {
        match p {
            Placement::LeafFilter(l, e) => leaf_filters[l].push(e),
            Placement::Edge {
                l,
                r,
                l_expr,
                r_expr,
            } => edges.push(((1u64 << l) | (1u64 << r), l, r, l_expr, r_expr, false)),
            Placement::Node(mask, e) => node_conjuncts.push((mask, e, false)),
            Placement::Top(e) => top.push(e),
        }
    }

    let plan = emit_tree(
        tree,
        leaves,
        schemas,
        offsets,
        &leaf_filters,
        &mut edges,
        &mut node_conjuncts,
    );
    // Edges whose endpoints never ended up split across a node (possible
    // only in degenerate shapes) and leftovers keep their semantics at the
    // top, alongside the conjuncts routed there directly.
    let mut leftovers: Vec<Expr> = Vec::new();
    for (_, l, r, l_expr, r_expr, used) in &edges {
        if !used {
            leftovers.push(Expr::Cmp(
                CmpOp::Eq,
                Box::new(remap_positions(l_expr, &|p| p + new_offsets[*l])),
                Box::new(remap_positions(r_expr, &|p| p + new_offsets[*r])),
            ));
        }
    }
    for (_, e, placed) in &node_conjuncts {
        if !placed {
            leftovers.push(remap_positions(e, &new_pos));
        }
    }
    // Leftovers (all error-free) merge into one conjunction, but the Top
    // conjuncts — error-capable or unresolvable — are stacked as
    // *individual* filters in their original inner-to-outer order: `And`
    // evaluates both operands eagerly, so merging them would run an outer
    // error-capable predicate on rows an inner one used to exclude (e.g.
    // a `x <> 0` guard under `100 / x > 10`). `top` holds conjuncts in
    // peel order (outermost first), hence the reverse.
    let mut plan = wrap_filters(plan, leftovers);
    for e in top.into_iter().rev() {
        plan = Plan::Filter {
            input: Box::new(plan),
            predicate: remap_positions(&e, &new_pos),
        };
    }

    // Column-order restoration, needed whenever the leaf sequence moved.
    let identity: Vec<usize> = (0..leaves.len()).collect();
    if order == identity {
        return Some(plan);
    }
    let reordered_schema = {
        let mut cols = Vec::with_capacity(total_arity);
        for &l in &order {
            cols.extend(schemas[l].columns().iter().cloned());
        }
        Schema::new(cols)
    };
    let mut columns = Vec::with_capacity(total_arity);
    for (l, schema) in schemas.iter().enumerate() {
        for (k, col) in schema.columns().iter().enumerate() {
            let target = new_offsets[l] + k;
            let expr = if positional {
                Expr::Col(target)
            } else {
                // Name-based restoration: the column's own reference must
                // resolve uniquely to its new position.
                let reference = match &col.qualifier {
                    Some(q) => format!("{q}.{}", col.name),
                    None => col.name.to_string(),
                };
                if !matches!(reordered_schema.resolve(&reference), Ok(i) if i == target) {
                    return None;
                }
                Expr::named(reference)
            };
            columns.push(ProjColumn::with_column(expr, col.clone()));
        }
    }
    Some(Plan::Map {
        input: Box::new(plan),
        columns,
    })
}

/// Recursively emit one subtree, consuming edges and node conjuncts at
/// their lowest covering node.
fn emit_tree(
    tree: &Tree,
    leaves: &[Plan],
    schemas: &[Schema],
    offsets: &[usize],
    leaf_filters: &[Vec<Expr>],
    edges: &mut Vec<(u64, usize, usize, Expr, Expr, bool)>,
    node_conjuncts: &mut Vec<(u64, Expr, bool)>,
) -> Plan {
    match tree {
        Tree::Leaf(i) => wrap_filters(leaves[*i].clone(), leaf_filters[*i].clone()),
        Tree::Node(mask, a, b) => {
            let left = emit_tree(
                a,
                leaves,
                schemas,
                offsets,
                leaf_filters,
                edges,
                node_conjuncts,
            );
            let right = emit_tree(
                b,
                leaves,
                schemas,
                offsets,
                leaf_filters,
                edges,
                node_conjuncts,
            );
            // This node's concatenated schema: subtree leaves in order.
            let mut node_order: Vec<usize> = Vec::new();
            a.inorder(&mut node_order);
            b.inorder(&mut node_order);
            let mut node_offsets = vec![0usize; leaves.len()];
            {
                let mut acc = 0usize;
                for &l in &node_order {
                    node_offsets[l] = acc;
                    acc += schemas[l].arity();
                }
            }
            let node_pos = |p: usize| -> usize {
                let l = offsets.iter().rposition(|&off| off <= p).expect("offset 0");
                node_offsets[l] + (p - offsets[l])
            };
            let (amask, bmask) = (a.mask(), b.mask());
            let mut predicate: Vec<Expr> = Vec::new();
            for (emask, l, r, l_expr, r_expr, used) in edges.iter_mut() {
                let crosses = *emask & amask != 0 && *emask & bmask != 0;
                if !*used && crosses {
                    *used = true;
                    predicate.push(Expr::Cmp(
                        CmpOp::Eq,
                        Box::new(remap_positions(l_expr, &|p| p + node_offsets[*l])),
                        Box::new(remap_positions(r_expr, &|p| p + node_offsets[*r])),
                    ));
                }
            }
            for (cmask, e, placed) in node_conjuncts.iter_mut() {
                let covered = *cmask & *mask == *cmask;
                let inside_child = *cmask & amask == *cmask || *cmask & bmask == *cmask;
                if !*placed && covered && !inside_child {
                    *placed = true;
                    predicate.push(remap_positions(e, &node_pos));
                }
            }
            Plan::Join {
                left: Box::new(left),
                right: Box::new(right),
                predicate: option_conjunction(predicate),
            }
        }
    }
}

/// Which join input an expression reads from.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

/// Classify an expression over the concatenated join schema: `Some(side)`
/// when *every* column reference resolves on exactly that input, `None` for
/// mixed/ambiguous/unresolvable references and for constants.
///
/// Positional references split at the left arity; named references are
/// resolved against each input's schema — a name that resolves on both
/// sides (ambiguous) or neither (unknown) disqualifies the expression, so
/// the pass leaves it where binding will report the same error the
/// unoptimized plan would.
fn side_of(expr: &Expr, ls: &Schema, rs: &Schema, la: usize, positional: bool) -> Option<Side> {
    let mut cols: Vec<usize> = Vec::new();
    let mut names: Vec<&str> = Vec::new();
    collect_refs(expr, &mut cols, &mut names);
    if cols.is_empty() && names.is_empty() {
        return None; // constant: stays in the residual
    }
    if !positional && !cols.is_empty() {
        // The caller's runtime schemas disagree with `plan_schema` on
        // positions; leave the conjunct for runtime binding.
        return None;
    }
    let mut side: Option<Side> = None;
    let mut merge = |s: Side| -> bool {
        match side {
            None => {
                side = Some(s);
                true
            }
            Some(prev) => prev == s,
        }
    };
    for c in cols {
        let s = if c < la { Side::Left } else { Side::Right };
        if !merge(s) {
            return None;
        }
    }
    for n in names {
        let (l, r) = (ls.resolve(n), rs.resolve(n));
        // A name ambiguous *within* one input is at least as ambiguous in
        // the concatenated schema: classifying it by the other side would
        // silently pick a binding where the unoptimized plan errors.
        if matches!(l, Err(SchemaError::AmbiguousColumn(_)))
            || matches!(r, Err(SchemaError::AmbiguousColumn(_)))
        {
            return None;
        }
        let s = match (l.is_ok(), r.is_ok()) {
            (true, false) => Side::Left,
            (false, true) => Side::Right,
            _ => return None,
        };
        if !merge(s) {
            return None;
        }
    }
    side
}

/// Collect positional and named column references of an expression.
fn collect_refs<'a>(expr: &'a Expr, cols: &mut Vec<usize>, names: &mut Vec<&'a str>) {
    match expr {
        Expr::Col(i) => cols.push(*i),
        Expr::Named(n) => names.push(n),
        Expr::Lit(_) => {}
        Expr::Cmp(_, a, b)
        | Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::Arith(_, a, b)
        | Expr::Least(a, b) => {
            collect_refs(a, cols, names);
            collect_refs(b, cols, names);
        }
        Expr::Not(a) | Expr::IsNull(a) => collect_refs(a, cols, names),
        Expr::Between(e, lo, hi) => {
            collect_refs(e, cols, names);
            collect_refs(lo, cols, names);
            collect_refs(hi, cols, names);
        }
        Expr::InList(e, list) => {
            collect_refs(e, cols, names);
            for i in list {
                collect_refs(i, cols, names);
            }
        }
        Expr::Case {
            branches,
            otherwise,
        } => {
            for (c, v) in branches {
                collect_refs(c, cols, names);
                collect_refs(v, cols, names);
            }
            if let Some(e) = otherwise {
                collect_refs(e, cols, names);
            }
        }
    }
}

fn has_named_refs(expr: &Expr) -> bool {
    let mut cols = Vec::new();
    let mut names = Vec::new();
    collect_refs(expr, &mut cols, &mut names);
    !names.is_empty()
}

/// Whether evaluating the predicate can raise an error (as opposed to
/// degrading to SQL `Unknown`) on some row: comparisons and membership
/// tests over plain columns and literals cannot (`sql_cmp` returns `None`
/// on incomparable types), but arithmetic errors on type mismatches and a
/// bare column in boolean position errors on non-boolean values.
fn is_error_free(expr: &Expr) -> bool {
    // A value-position operand that cannot error under `Expr::eval`.
    fn operand_ok(e: &Expr) -> bool {
        matches!(e, Expr::Col(_) | Expr::Named(_) | Expr::Lit(_))
    }
    match expr {
        Expr::Cmp(_, a, b) => operand_ok(a) && operand_ok(b),
        Expr::And(a, b) | Expr::Or(a, b) => is_error_free(a) && is_error_free(b),
        Expr::Not(a) => is_error_free(a),
        Expr::IsNull(a) => operand_ok(a),
        Expr::Between(e, lo, hi) => operand_ok(e) && operand_ok(lo) && operand_ok(hi),
        Expr::InList(e, list) => operand_ok(e) && list.iter().all(operand_ok),
        // Bare columns/literals in boolean position error on non-booleans;
        // arithmetic, LEAST and CASE can error on operand types.
        _ => false,
    }
}

/// Whether the plan is a join under a (possibly empty) stack of filters —
/// the only shape a freshly pushed filter can merge into.
fn peels_to_join(plan: &Plan) -> bool {
    match plan {
        Plan::Join { .. } => true,
        Plan::Filter { input, .. } => peels_to_join(input),
        _ => false,
    }
}

/// Like [`peels_to_join`], but looking through interposed projections: a
/// filter over `Map(… Join …)` can reach the join once `push_filters`
/// substitutes it through (the shape the UA rewriting's marker Maps
/// produce).
fn peels_to_join_through_maps(plan: &Plan) -> bool {
    match plan {
        Plan::Join { .. } => true,
        Plan::Filter { input, .. } | Plan::Map { input, .. } => peels_to_join_through_maps(input),
        _ => false,
    }
}

fn wrap_filters(plan: Plan, conjuncts: Vec<Expr>) -> Plan {
    if conjuncts.is_empty() {
        plan
    } else {
        Plan::Filter {
            input: Box::new(plan),
            predicate: Expr::conjunction(conjuncts),
        }
    }
}

fn option_conjunction(conjuncts: Vec<Expr>) -> Option<Expr> {
    if conjuncts.is_empty() {
        None
    } else {
        Some(Expr::conjunction(conjuncts))
    }
}

/// Rewrite `predicate` to run below a projection by substituting its column
/// references with the projection's expressions. `None` when a reference
/// cannot be resolved uniquely (the pushdown is then skipped).
fn substitute(predicate: &Expr, columns: &[ProjColumn]) -> Option<Expr> {
    Some(match predicate {
        Expr::Col(i) => columns.get(*i)?.expr.clone(),
        Expr::Named(name) => {
            let (qualifier, base) = match name.rsplit_once('.') {
                Some((q, n)) => (Some(q), n),
                None => (None, name.as_str()),
            };
            let mut matches = columns.iter().filter(|c| {
                c.column.name.eq_ignore_ascii_case(base)
                    && match qualifier {
                        None => true,
                        Some(q) => c
                            .column
                            .qualifier
                            .as_deref()
                            .is_some_and(|mine| mine.eq_ignore_ascii_case(q)),
                    }
            });
            let col = matches.next()?;
            if matches.next().is_some() {
                return None; // ambiguous
            }
            col.expr.clone()
        }
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(substitute(a, columns)?),
            Box::new(substitute(b, columns)?),
        ),
        Expr::And(a, b) => Expr::And(
            Box::new(substitute(a, columns)?),
            Box::new(substitute(b, columns)?),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(substitute(a, columns)?),
            Box::new(substitute(b, columns)?),
        ),
        Expr::Not(a) => Expr::Not(Box::new(substitute(a, columns)?)),
        Expr::Arith(op, a, b) => Expr::Arith(
            *op,
            Box::new(substitute(a, columns)?),
            Box::new(substitute(b, columns)?),
        ),
        Expr::IsNull(a) => Expr::IsNull(Box::new(substitute(a, columns)?)),
        Expr::Between(e, lo, hi) => Expr::Between(
            Box::new(substitute(e, columns)?),
            Box::new(substitute(lo, columns)?),
            Box::new(substitute(hi, columns)?),
        ),
        Expr::InList(e, list) => Expr::InList(
            Box::new(substitute(e, columns)?),
            list.iter()
                .map(|i| substitute(i, columns))
                .collect::<Option<_>>()?,
        ),
        Expr::Least(a, b) => Expr::Least(
            Box::new(substitute(a, columns)?),
            Box::new(substitute(b, columns)?),
        ),
        Expr::Case {
            branches,
            otherwise,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| Some((substitute(c, columns)?, substitute(v, columns)?)))
                .collect::<Option<_>>()?,
            otherwise: match otherwise {
                Some(e) => Some(Box::new(substitute(e, columns)?)),
                None => None,
            },
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::storage::{Catalog, Table};
    use ua_data::schema::Schema;
    use ua_data::tuple;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.register(
            "r",
            Table::from_rows(
                Schema::qualified("r", ["a", "b"]),
                vec![
                    tuple![1i64, 10i64],
                    tuple![2i64, 20i64],
                    tuple![3i64, 30i64],
                ],
            ),
        );
        c.register(
            "s",
            Table::from_rows(
                Schema::qualified("s", ["b", "d"]),
                vec![tuple![10i64, 1i64], tuple![30i64, 3i64]],
            ),
        );
        c
    }

    #[test]
    fn filter_moves_below_projection() {
        let plan = Plan::Filter {
            input: Box::new(Plan::Map {
                input: Box::new(Plan::Scan("r".into())),
                columns: vec![ProjColumn::named("b")],
            }),
            predicate: Expr::named("b").gt(Expr::lit(15i64)),
        };
        let c = catalog();
        let optimized = push_filters(plan.clone(), &c);
        match &optimized {
            Plan::Map { input, .. } => {
                assert!(
                    matches!(**input, Plan::Filter { .. }),
                    "filter pushed below"
                );
            }
            other => panic!("expected Map on top, got {other}"),
        }
        // Semantics preserved.
        let c = catalog();
        assert_eq!(
            execute(&plan, &c).unwrap().sorted_rows(),
            execute(&optimized, &c).unwrap().sorted_rows()
        );
    }

    #[test]
    fn computed_columns_substitute_into_the_predicate() {
        // Filter on a computed column: pushdown substitutes the expression.
        let plan = Plan::Filter {
            input: Box::new(Plan::Map {
                input: Box::new(Plan::Scan("r".into())),
                columns: vec![ProjColumn::expr(
                    Expr::named("a").add(Expr::named("b")),
                    "s",
                )],
            }),
            predicate: Expr::named("s").ge(Expr::lit(22i64)),
        };
        let c = catalog();
        let optimized = push_filters(plan.clone(), &c);
        assert_eq!(
            execute(&plan, &c).unwrap().sorted_rows(),
            execute(&optimized, &c).unwrap().sorted_rows()
        );
        assert!(matches!(optimized, Plan::Map { .. }));
    }

    #[test]
    fn unresolvable_references_block_pushdown() {
        // Predicate references a column the Map does not produce — the
        // plan is left alone (it would fail at bind time either way).
        let plan = Plan::Filter {
            input: Box::new(Plan::Map {
                input: Box::new(Plan::Scan("r".into())),
                columns: vec![ProjColumn::named("a")],
            }),
            predicate: Expr::named("zzz").gt(Expr::lit(0i64)),
        };
        assert!(matches!(
            push_filters(plan, &catalog()),
            Plan::Filter { .. }
        ));
    }

    #[test]
    fn comma_join_becomes_hash_join() {
        let plan = Plan::Filter {
            input: Box::new(Plan::Join {
                left: Box::new(Plan::Scan("r".into())),
                right: Box::new(Plan::Scan("s".into())),
                predicate: None,
            }),
            predicate: Expr::named("r.b")
                .eq(Expr::named("s.b"))
                .and(Expr::named("a").ge(Expr::lit(2i64))),
        };
        let c = catalog();
        let optimized = optimize(plan.clone(), &c);
        match &optimized {
            Plan::HashJoin {
                left,
                keys,
                residual,
                ..
            } => {
                assert_eq!(keys.len(), 1);
                assert!(residual.is_none());
                assert!(
                    matches!(**left, Plan::Filter { .. }),
                    "left-only conjunct pushed below the join, got {left}"
                );
            }
            other => panic!("expected HashJoin, got {other}"),
        }
        assert_eq!(
            execute(&plan, &c).unwrap().sorted_rows(),
            execute(&optimized, &c).unwrap().sorted_rows()
        );
    }

    #[test]
    fn build_side_follows_cardinalities() {
        // r has 3 rows, s has 2 → build on s (right) when s is on the
        // right, and on s (left) when the inputs are flipped.
        let c = catalog();
        let join = |l: &str, r: &str| {
            optimize(
                Plan::Filter {
                    input: Box::new(Plan::Join {
                        left: Box::new(Plan::Scan(l.into())),
                        right: Box::new(Plan::Scan(r.into())),
                        predicate: None,
                    }),
                    predicate: Expr::named(format!("{l}.b")).eq(Expr::named(format!("{r}.b"))),
                },
                &c,
            )
        };
        match join("r", "s") {
            Plan::HashJoin { build_left, .. } => assert!(!build_left, "smaller side is right"),
            other => panic!("expected HashJoin, got {other}"),
        }
        match join("s", "r") {
            Plan::HashJoin { build_left, .. } => assert!(build_left, "smaller side is left"),
            other => panic!("expected HashJoin, got {other}"),
        }
    }

    #[test]
    fn non_equi_theta_join_stays_a_join() {
        let plan = Plan::Filter {
            input: Box::new(Plan::Join {
                left: Box::new(Plan::Scan("r".into())),
                right: Box::new(Plan::Scan("s".into())),
                predicate: None,
            }),
            predicate: Expr::named("r.b").lt(Expr::named("s.b")),
        };
        let c = catalog();
        let optimized = optimize(plan.clone(), &c);
        assert!(
            matches!(
                optimized,
                Plan::Join {
                    predicate: Some(_),
                    ..
                }
            ),
            "θ-only predicate becomes the join condition, got {optimized}"
        );
        assert_eq!(
            execute(&plan, &c).unwrap().sorted_rows(),
            execute(&optimized, &c).unwrap().sorted_rows()
        );
    }

    #[test]
    fn estimates_anchor_on_catalog_cardinalities() {
        let c = catalog();
        assert_eq!(estimate_rows(&Plan::Scan("r".into()), &c), Some(3));
        // An unestimable predicate falls back to the 1/3 default.
        assert_eq!(
            estimate_rows(
                &Plan::Filter {
                    input: Box::new(Plan::Scan("r".into())),
                    predicate: Expr::lit(true),
                },
                &c
            ),
            Some(1)
        );
        assert_eq!(estimate_rows(&Plan::Scan("nope".into()), &c), None);
    }

    #[test]
    fn filter_estimates_use_histograms_and_ndv() {
        let c = Catalog::new();
        c.register(
            "u",
            Table::from_rows(
                Schema::qualified("u", ["a"]),
                (0..100i64).map(|i| tuple![i]).collect(),
            ),
        );
        let filt = |predicate: Expr| Plan::Filter {
            input: Box::new(Plan::Scan("u".into())),
            predicate,
        };
        // Range: `a >= 75` keeps ~1/4 of a uniform 0..100 column.
        let quarter = estimate_rows(&filt(Expr::named("a").ge(Expr::lit(75i64))), &c).unwrap();
        assert!((20..=32).contains(&quarter), "got {quarter}");
        // Equality: 1/ndv = 1/100 → ~1 row.
        assert_eq!(
            estimate_rows(&filt(Expr::named("a").eq(Expr::lit(42i64))), &c),
            Some(1)
        );
        // A literal outside the observed range matches nothing.
        assert_eq!(
            estimate_rows(&filt(Expr::named("a").eq(Expr::lit(1000i64))), &c),
            Some(0)
        );
        // Conjunctions multiply under the independence assumption
        // (0.5 · 0.75 ≈ 37 rows here); the estimate sinks through Alias.
        let aliased = Plan::Filter {
            input: Box::new(Plan::Alias {
                input: Box::new(Plan::Scan("u".into())),
                name: "q".into(),
            }),
            predicate: Expr::named("q.a")
                .ge(Expr::lit(50i64))
                .and(Expr::named("q.a").lt(Expr::lit(75i64))),
        };
        let est = estimate_rows(&aliased, &c).unwrap();
        assert!((33..=42).contains(&est), "got {est}");
    }

    #[test]
    fn strict_bounds_at_observed_extremes_use_the_point_mass() {
        // Half the rows equal the maximum; `a < max` must not estimate 1.0
        // (the continuous bucket model alone would) — it is clamped by the
        // equality point mass `1/ndv`.
        let c = Catalog::new();
        c.register(
            "u",
            Table::from_rows(
                Schema::qualified("u", ["a"]),
                (0..100i64).map(|i| tuple![i % 2]).collect(),
            ),
        );
        let filt = |predicate: Expr| Plan::Filter {
            input: Box::new(Plan::Scan("u".into())),
            predicate,
        };
        assert_eq!(
            estimate_rows(&filt(Expr::named("a").lt(Expr::lit(1i64))), &c),
            Some(50)
        );
        assert_eq!(
            estimate_rows(&filt(Expr::named("a").gt(Expr::lit(0i64))), &c),
            Some(50)
        );
        // The mirrored non-strict bounds must not estimate 0 rows.
        assert_eq!(
            estimate_rows(&filt(Expr::named("a").ge(Expr::lit(1i64))), &c),
            Some(50)
        );
        assert_eq!(
            estimate_rows(&filt(Expr::named("a").le(Expr::lit(0i64))), &c),
            Some(50)
        );
    }

    #[test]
    fn equi_join_estimates_use_distinct_counts() {
        // u(k): 100 rows, 10 distinct keys; v(k): 50 rows, 50 distinct.
        // |u ⋈ v| ≈ 100·50 / max(10, 50) = 100.
        let c = Catalog::new();
        c.register(
            "u",
            Table::from_rows(
                Schema::qualified("u", ["k"]),
                (0..100i64).map(|i| tuple![i % 10]).collect(),
            ),
        );
        c.register(
            "v",
            Table::from_rows(
                Schema::qualified("v", ["k"]),
                (0..50i64).map(|i| tuple![i]).collect(),
            ),
        );
        let join = Plan::Join {
            left: Box::new(Plan::Scan("u".into())),
            right: Box::new(Plan::Scan("v".into())),
            predicate: Some(Expr::named("u.k").eq(Expr::named("v.k"))),
        };
        assert_eq!(estimate_rows(&join, &c), Some(100));
    }

    #[test]
    fn estimates_follow_table_replacement() {
        // Re-registering a table must change subsequent estimates — the
        // stats cache validates against the live store.
        let c = Catalog::new();
        let schema = Schema::qualified("w", ["a"]);
        c.register("w", Table::from_rows(schema.clone(), vec![tuple![1i64]]));
        assert_eq!(estimate_rows(&Plan::Scan("w".into()), &c), Some(1));
        c.register(
            "w",
            Table::from_rows(schema, (0..500i64).map(|i| tuple![i]).collect()),
        );
        assert_eq!(estimate_rows(&Plan::Scan("w".into()), &c), Some(500));
    }
}
