//! Plan optimization: filter pushdown through projections.
//!
//! The UA rewriting (Figure 9) wraps every join in a projection that
//! re-labels columns and combines the two certainty markers. User
//! selections sit *above* that projection, so a naive executor pays the
//! projection over the full join result before filtering — something no
//! real optimizer would do. `Filter(P) ∘ Map(M) ≡ Map(M) ∘ Filter(P∘M)`
//! whenever `P`'s column references can be substituted by `M`'s expressions,
//! which is exactly the shape the rewriting produces. The deterministic
//! path goes through the same optimizer, keeping the Det-vs-UA comparison
//! honest.

use crate::plan::Plan;
use ua_data::algebra::ProjColumn;
use ua_data::expr::Expr;

/// Apply filter pushdown throughout the plan.
pub fn push_filters(plan: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = push_filters(*input);
            if let Plan::Map {
                input: map_input,
                columns,
            } = input
            {
                match substitute(&predicate, &columns) {
                    Some(pushed) => Plan::Map {
                        input: Box::new(push_filters(Plan::Filter {
                            input: map_input,
                            predicate: pushed,
                        })),
                        columns,
                    },
                    None => Plan::Filter {
                        input: Box::new(Plan::Map {
                            input: map_input,
                            columns,
                        }),
                        predicate,
                    },
                }
            } else {
                Plan::Filter {
                    input: Box::new(input),
                    predicate,
                }
            }
        }
        Plan::Scan(name) => Plan::Scan(name),
        Plan::Alias { input, name } => Plan::Alias {
            input: Box::new(push_filters(*input)),
            name,
        },
        Plan::Map { input, columns } => Plan::Map {
            input: Box::new(push_filters(*input)),
            columns,
        },
        Plan::Join {
            left,
            right,
            predicate,
        } => Plan::Join {
            left: Box::new(push_filters(*left)),
            right: Box::new(push_filters(*right)),
            predicate,
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: Box::new(push_filters(*left)),
            right: Box::new(push_filters(*right)),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(push_filters(*input)),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => Plan::Aggregate {
            input: Box::new(push_filters(*input)),
            group_by,
            aggregates,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(push_filters(*input)),
            keys,
        },
        Plan::Limit { input, limit } => Plan::Limit {
            input: Box::new(push_filters(*input)),
            limit,
        },
    }
}

/// Rewrite `predicate` to run below a projection by substituting its column
/// references with the projection's expressions. `None` when a reference
/// cannot be resolved uniquely (the pushdown is then skipped).
fn substitute(predicate: &Expr, columns: &[ProjColumn]) -> Option<Expr> {
    Some(match predicate {
        Expr::Col(i) => columns.get(*i)?.expr.clone(),
        Expr::Named(name) => {
            let (qualifier, base) = match name.rsplit_once('.') {
                Some((q, n)) => (Some(q), n),
                None => (None, name.as_str()),
            };
            let mut matches = columns.iter().filter(|c| {
                c.column.name.eq_ignore_ascii_case(base)
                    && match qualifier {
                        None => true,
                        Some(q) => c
                            .column
                            .qualifier
                            .as_deref()
                            .is_some_and(|mine| mine.eq_ignore_ascii_case(q)),
                    }
            });
            let col = matches.next()?;
            if matches.next().is_some() {
                return None; // ambiguous
            }
            col.expr.clone()
        }
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(substitute(a, columns)?),
            Box::new(substitute(b, columns)?),
        ),
        Expr::And(a, b) => Expr::And(
            Box::new(substitute(a, columns)?),
            Box::new(substitute(b, columns)?),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(substitute(a, columns)?),
            Box::new(substitute(b, columns)?),
        ),
        Expr::Not(a) => Expr::Not(Box::new(substitute(a, columns)?)),
        Expr::Arith(op, a, b) => Expr::Arith(
            *op,
            Box::new(substitute(a, columns)?),
            Box::new(substitute(b, columns)?),
        ),
        Expr::IsNull(a) => Expr::IsNull(Box::new(substitute(a, columns)?)),
        Expr::Between(e, lo, hi) => Expr::Between(
            Box::new(substitute(e, columns)?),
            Box::new(substitute(lo, columns)?),
            Box::new(substitute(hi, columns)?),
        ),
        Expr::InList(e, list) => Expr::InList(
            Box::new(substitute(e, columns)?),
            list.iter()
                .map(|i| substitute(i, columns))
                .collect::<Option<_>>()?,
        ),
        Expr::Least(a, b) => Expr::Least(
            Box::new(substitute(a, columns)?),
            Box::new(substitute(b, columns)?),
        ),
        Expr::Case {
            branches,
            otherwise,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| Some((substitute(c, columns)?, substitute(v, columns)?)))
                .collect::<Option<_>>()?,
            otherwise: match otherwise {
                Some(e) => Some(Box::new(substitute(e, columns)?)),
                None => None,
            },
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::storage::{Catalog, Table};
    use ua_data::schema::Schema;
    use ua_data::tuple;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.register(
            "r",
            Table::from_rows(
                Schema::qualified("r", ["a", "b"]),
                vec![
                    tuple![1i64, 10i64],
                    tuple![2i64, 20i64],
                    tuple![3i64, 30i64],
                ],
            ),
        );
        c
    }

    #[test]
    fn filter_moves_below_projection() {
        let plan = Plan::Filter {
            input: Box::new(Plan::Map {
                input: Box::new(Plan::Scan("r".into())),
                columns: vec![ProjColumn::named("b")],
            }),
            predicate: Expr::named("b").gt(Expr::lit(15i64)),
        };
        let optimized = push_filters(plan.clone());
        match &optimized {
            Plan::Map { input, .. } => {
                assert!(
                    matches!(**input, Plan::Filter { .. }),
                    "filter pushed below"
                );
            }
            other => panic!("expected Map on top, got {other}"),
        }
        // Semantics preserved.
        let c = catalog();
        assert_eq!(
            execute(&plan, &c).unwrap().sorted_rows(),
            execute(&optimized, &c).unwrap().sorted_rows()
        );
    }

    #[test]
    fn computed_columns_substitute_into_the_predicate() {
        // Filter on a computed column: pushdown substitutes the expression.
        let plan = Plan::Filter {
            input: Box::new(Plan::Map {
                input: Box::new(Plan::Scan("r".into())),
                columns: vec![ProjColumn::expr(
                    Expr::named("a").add(Expr::named("b")),
                    "s",
                )],
            }),
            predicate: Expr::named("s").ge(Expr::lit(22i64)),
        };
        let optimized = push_filters(plan.clone());
        let c = catalog();
        assert_eq!(
            execute(&plan, &c).unwrap().sorted_rows(),
            execute(&optimized, &c).unwrap().sorted_rows()
        );
        assert!(matches!(optimized, Plan::Map { .. }));
    }

    #[test]
    fn unresolvable_references_block_pushdown() {
        // Predicate references a column the Map does not produce — the
        // plan is left alone (it would fail at bind time either way).
        let plan = Plan::Filter {
            input: Box::new(Plan::Map {
                input: Box::new(Plan::Scan("r".into())),
                columns: vec![ProjColumn::named("a")],
            }),
            predicate: Expr::named("zzz").gt(Expr::lit(0i64)),
        };
        assert!(matches!(push_filters(plan), Plan::Filter { .. }));
    }

    #[test]
    fn pushdown_composes_through_stacked_maps() {
        let plan = Plan::Filter {
            input: Box::new(Plan::Map {
                input: Box::new(Plan::Map {
                    input: Box::new(Plan::Scan("r".into())),
                    columns: vec![ProjColumn::named("a"), ProjColumn::named("b")],
                }),
                columns: vec![ProjColumn::named("b")],
            }),
            predicate: Expr::named("b").lt(Expr::lit(25i64)),
        };
        let optimized = push_filters(plan.clone());
        // Filter should sink through both Maps to sit on the scan.
        fn depth_of_filter(p: &Plan) -> usize {
            match p {
                Plan::Filter { .. } => 0,
                Plan::Map { input, .. } => 1 + depth_of_filter(input),
                _ => usize::MAX,
            }
        }
        assert_eq!(depth_of_filter(&optimized), 2);
        let c = catalog();
        assert_eq!(
            execute(&plan, &c).unwrap().sorted_rows(),
            execute(&optimized, &c).unwrap().sorted_rows()
        );
    }
}
