//! The UA-DB query-rewriting frontend (paper Section 9).
//!
//! [`UaSession`] is the middleware the paper describes: input queries are
//! parsed, translated to relational algebra, rewritten with `⟦·⟧_UA`
//! (Figures 8/9) and executed against the bag engine over the encoded
//! representation (extra `ua_c` column; Definition 8).
//!
//! Source relations enter the system either
//!
//! * pre-encoded, via [`UaSession::register_ua_relation`], or
//! * raw + annotated, via the SQL clauses of Section 9.2
//!   (`R IS TI WITH PROBABILITY (p)` etc.), whose labeling schemes and
//!   best-guess-world extraction are implemented by [`ti_source`],
//!   [`x_source`] and [`ctable_source`].

use crate::exec::{execute, EngineError};
use crate::mode::{require_vectorized_hooks, ExecMode, ExecOptions};
use crate::plan::Plan;
use crate::sql::ast::SourceAnnotation;
use crate::sql::parser::parse;
use crate::sql::planner::{plan_query, SourceResolver};
use crate::storage::{Catalog, Table};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use ua_conditions::{cnf_tautology, is_cnf, parse_condition, VarInterner};
use ua_core::{decode_relation, encode_relation, rewrite_ua, UA_LABEL_COLUMN};
use ua_data::relation::Relation;
use ua_data::schema::{Column, Schema};
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_data::FxHashMap;
use ua_semiring::pair::Ua;

/// A UA query result: rows of the encoded representation.
#[derive(Clone, Debug)]
pub struct UaResult {
    /// The result table, with the `ua_c` marker in last position.
    pub table: Table,
}

impl UaResult {
    /// Rows paired with their certainty markers.
    pub fn rows_with_certainty(&self) -> Vec<(Tuple, bool)> {
        let arity = self.table.schema().arity();
        let base: Vec<usize> = (0..arity - 1).collect();
        self.table
            .rows()
            .iter()
            .map(|row| {
                let certain = matches!(row.get(arity - 1), Some(Value::Int(1)));
                (row.project(&base), certain)
            })
            .collect()
    }

    /// Decode into a `K²`-relation (`Enc⁻¹`, Definition 8).
    pub fn decode(&self) -> Relation<Ua<u64>> {
        decode_relation(&self.table.to_relation())
    }

    /// `(certain rows, total rows)` — the headline numbers of the paper's
    /// experiments (Figure 13's certain-answer percentages).
    pub fn certainty_counts(&self) -> (usize, usize) {
        let rows = self.rows_with_certainty();
        let certain = rows.iter().filter(|(_, c)| *c).count();
        (certain, rows.len())
    }
}

/// The UA-DB frontend session.
pub struct UaSession {
    catalog: Catalog,
    /// [`ExecMode`] as a `u8` so the session stays shareable (`&self`
    /// querying) without a lock: 0 = Row, 1 = Vectorized.
    mode: AtomicU8,
    /// Whether the optimizer pipeline (`optimize::optimize`) runs on query
    /// plans. On by default; the differential test harness turns it off to
    /// compare engines on raw plans.
    optimizer: AtomicBool,
    /// Whether the statistics-driven join-reordering pass runs within the
    /// pipeline. On by default; the `multi_join` bench turns it off to
    /// measure the as-written join order with everything else unchanged.
    reorder: AtomicBool,
    /// Worker threads for the vectorized executor's morsel-parallel
    /// pipeline: `0` = auto (`UA_VEC_THREADS` env var, else available
    /// parallelism), `1` = serial. Output is byte-identical either way.
    vec_threads: AtomicUsize,
    /// Whether executions collect per-operator [`ua_obs::QueryStats`]
    /// (off by default; `EXPLAIN ANALYZE` turns it on for one query).
    /// Results are byte-identical on or off — stats travel next to the
    /// result, never through it.
    collect_stats: AtomicBool,
    /// The stats of the most recent instrumented query on this session
    /// ([`UaSession::last_query_stats`]).
    last_stats: Mutex<Option<ua_obs::QueryStats>>,
    /// Whether queries collect a query-lifetime trace (per-thread event
    /// ring, exported as Perfetto JSON). Off by default; results are
    /// byte-identical on or off — the differential trace tests assert it.
    collect_trace: AtomicBool,
    /// The Perfetto JSON of the most recent traced query
    /// ([`UaSession::last_query_trace`]).
    last_trace: Mutex<Option<String>>,
}

impl Default for UaSession {
    fn default() -> UaSession {
        UaSession {
            catalog: Catalog::default(),
            mode: AtomicU8::new(0),
            optimizer: AtomicBool::new(true),
            reorder: AtomicBool::new(true),
            vec_threads: AtomicUsize::new(0),
            collect_stats: AtomicBool::new(false),
            last_stats: Mutex::new(None),
            collect_trace: AtomicBool::new(false),
            last_trace: Mutex::new(None),
        }
    }
}

/// Scope guard arming the thread-local trace ring for one query: armed by
/// [`UaSession::trace_query`] at every query entry point, and on drop —
/// success *or* error — the collected events are exported as Perfetto
/// JSON into the session's `last_trace` slot. Holds `None` when tracing
/// is disabled or a trace is already active (nested query execution, e.g.
/// an AU resolver encoding a source mid-plan): the outer guard owns the
/// ring.
pub(crate) struct TraceGuard<'a> {
    session: Option<&'a UaSession>,
}

impl Drop for TraceGuard<'_> {
    fn drop(&mut self) {
        if let Some(session) = self.session {
            if let Some(events) = ua_obs::trace_finish() {
                *session.last_trace.lock() = Some(ua_obs::to_perfetto_json(&events));
            }
        }
    }
}

/// The error both executors raise for UA queries outside the supported
/// fragment — one string so the row and vectorized paths fail identically
/// (the differential harness compares error messages).
pub const UA_FRAGMENT_ERROR: &str = "UA queries support the relational algebra \
     (selection, projection, join, UNION ALL, EXCEPT, LEFT/RIGHT OUTER JOIN) \
     plus trailing ORDER BY/LIMIT; DISTINCT and aggregation are not closed \
     under UA semantics";

/// A trailing `ORDER BY`/`LIMIT` peeled off a UA plan before dispatch —
/// both commute with the rewriting (they only reorder/truncate encoded
/// rows).
enum Wrapper {
    Sort(Vec<(ua_data::Expr, crate::plan::SortOrder)>),
    Limit(usize),
}

/// Whether the plan contains a node outside RA⁺ that the UA frontend still
/// supports: EXCEPT or an outer join.
fn plan_contains_negation(plan: &Plan) -> bool {
    match plan {
        Plan::Except { .. } | Plan::OuterJoin { .. } => true,
        Plan::Scan(_) => false,
        Plan::Alias { input, .. }
        | Plan::Filter { input, .. }
        | Plan::Map { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::TopK { input, .. }
        | Plan::Aggregate { input, .. } => plan_contains_negation(input),
        Plan::Join { left, right, .. }
        | Plan::HashJoin { left, right, .. }
        | Plan::UnionAll { left, right } => {
            plan_contains_negation(left) || plan_contains_negation(right)
        }
    }
}

/// Temporary encoded tables materialized by the row-mode negation path,
/// dropped from the catalog on scope exit (success or error).
struct TempTables<'a> {
    catalog: &'a Catalog,
    names: Vec<String>,
}

impl TempTables<'_> {
    fn register(&mut self, table: Table) -> String {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let name = format!("__ua_tmp_{}", NEXT.fetch_add(1, Ordering::Relaxed));
        self.catalog.register(&name, table);
        self.names.push(name.clone());
        name
    }
}

impl Drop for TempTables<'_> {
    fn drop(&mut self) {
        for name in &self.names {
            self.catalog.drop_table(name);
        }
    }
}

/// The user-visible part of an encoded table's schema (everything left of
/// the `ua_c` marker).
fn encoded_base_schema(t: &Table) -> Schema {
    Schema::new(t.schema().columns()[..t.schema().arity() - 1].to_vec())
}

/// Encoded-relation EXCEPT, matching the deterministic [`crate::exec::except_table`]
/// contract over the *base* columns (two copies of a tuple are never
/// distinguished by their markers). Every output row is labeled 0: under
/// `K²` the difference's certain multiplicity needs an *upper* bound on
/// the right side's possible multiplicity, which the UA encoding does not
/// carry — label 0 is the only sound under-approximation (the bound-aware
/// version lives in `ua_ranges::ops::except`).
fn ua_except_encoded(l: &Table, r: &Table, all: bool) -> Result<Table, EngineError> {
    encoded_base_schema(l).check_union_compatible(&encoded_base_schema(r))?;
    let base = l.schema().arity() - 1;
    let key_of = |row: &Tuple| -> Tuple {
        row.values()[..base]
            .iter()
            .map(|v| v.clone().join_key())
            .collect()
    };
    let mut budget: FxHashMap<Tuple, u64> = FxHashMap::default();
    for row in r.rows() {
        *budget.entry(key_of(row)).or_insert(0) += 1;
    }
    let mut out = Table::new(encoded_base_schema(l).with_column(UA_LABEL_COLUMN));
    let mut push = |row: &Tuple| {
        let mut vals: Vec<Value> = row.values()[..base].to_vec();
        vals.push(Value::Int(0));
        out.push(Tuple::new(vals));
    };
    if all {
        for row in l.rows() {
            match budget.get_mut(&key_of(row)) {
                Some(n) if *n > 0 => *n -= 1,
                _ => push(row),
            }
        }
    } else {
        let mut seen: ua_data::FxHashSet<Tuple> = ua_data::FxHashSet::default();
        for row in l.rows() {
            let key = key_of(row);
            if budget.contains_key(&key) {
                continue;
            }
            if seen.insert(key) {
                push(row);
            }
        }
    }
    Ok(out)
}

/// Encoded-relation outer join: the deterministic
/// [`crate::exec::outer_join_stream`] contract over the base columns, with
/// markers combined per `⟦·⟧_UA`'s join rule for matches (`min`, i.e.
/// label-AND) and 0 for NULL-padded misses — a pad row is never certain,
/// since some world may supply a match that replaces it.
fn ua_outer_join_encoded(
    l: &Table,
    r: &Table,
    predicate: Option<&ua_data::Expr>,
    kind: crate::plan::OuterKind,
) -> Result<Table, EngineError> {
    if let Some(p) = predicate {
        if ua_core::expr_mentions_marker(p) {
            return Err(EngineError::Schema(
                ua_data::schema::SchemaError::AmbiguousColumn(UA_LABEL_COLUMN.to_string()),
            ));
        }
    }
    let base_table = |t: &Table| -> Table {
        let base = t.schema().arity() - 1;
        Table::from_rows(
            encoded_base_schema(t),
            t.rows()
                .iter()
                .map(|row| Tuple::new(row.values()[..base].to_vec()))
                .collect(),
        )
    };
    let marker_of = |t: &Table, i: usize| -> i64 {
        match t.rows()[i].values().last() {
            Some(Value::Int(n)) if *n != 0 => 1,
            _ => 0,
        }
    };
    let lb = base_table(l);
    let rb = base_table(r);
    let mut out = Table::new(lb.schema().concat(rb.schema()).with_column(UA_LABEL_COLUMN));
    crate::exec::outer_join_pairs(&lb, &rb, predicate, kind, &mut |oi, ii, row| {
        let label = match ii {
            Some(ii) => {
                let (li, ri) = if kind == crate::plan::OuterKind::Left {
                    (oi, ii)
                } else {
                    (ii, oi)
                };
                marker_of(l, li).min(marker_of(r, ri))
            }
            None => 0,
        };
        let mut vals = row.values().to_vec();
        vals.push(Value::Int(label));
        out.push(Tuple::new(vals));
        Ok(())
    })?;
    Ok(out)
}

impl UaSession {
    /// A fresh session with an empty catalog.
    pub fn new() -> UaSession {
        UaSession::default()
    }

    /// A fresh session pre-set to `mode`.
    pub fn with_mode(mode: ExecMode) -> UaSession {
        let session = UaSession::default();
        session.set_exec_mode(mode);
        session
    }

    /// Select the executor for subsequent queries. `ExecMode::Vectorized`
    /// requires `ua_vecexec::install()` to have run; queries report a clear
    /// error otherwise.
    pub fn set_exec_mode(&self, mode: ExecMode) {
        let bits = match mode {
            ExecMode::Row => 0,
            ExecMode::Vectorized => 1,
        };
        self.mode.store(bits, Ordering::Relaxed);
    }

    /// The currently selected executor.
    pub fn exec_mode(&self) -> ExecMode {
        match self.mode.load(Ordering::Relaxed) {
            0 => ExecMode::Row,
            _ => ExecMode::Vectorized,
        }
    }

    /// Enable or disable the optimizer pipeline (filter pushdown + join
    /// planning) for subsequent queries. On by default.
    pub fn set_optimizer_enabled(&self, enabled: bool) {
        self.optimizer.store(enabled, Ordering::Relaxed);
    }

    /// Whether the optimizer pipeline runs on query plans.
    pub fn optimizer_enabled(&self) -> bool {
        self.optimizer.load(Ordering::Relaxed)
    }

    /// Enable or disable the statistics-driven join-reordering pass
    /// (`optimize::reorder_joins`) while keeping the rest of the pipeline
    /// (filter pushdown, hash-join planning) untouched. On by default;
    /// turning it off restores the as-written join order.
    pub fn set_reorder_joins_enabled(&self, enabled: bool) {
        self.reorder.store(enabled, Ordering::Relaxed);
    }

    /// Whether the join-reordering pass runs.
    pub fn reorder_joins_enabled(&self) -> bool {
        self.reorder.load(Ordering::Relaxed)
    }

    /// Set the vectorized executor's worker-thread count for subsequent
    /// queries: `0` = auto (the `UA_VEC_THREADS` environment variable if
    /// set, else the machine's available parallelism), `1` = serial, `n` =
    /// exactly `n` workers. The morsel pipeline merges per-batch results in
    /// deterministic batch-index order, so every setting produces
    /// byte-identical results — this knob only trades latency for cores.
    pub fn set_vec_threads(&self, threads: usize) {
        self.vec_threads.store(threads, Ordering::Relaxed);
    }

    /// The configured vectorized worker-thread count (`0` = auto).
    pub fn vec_threads(&self) -> usize {
        self.vec_threads.load(Ordering::Relaxed)
    }

    /// Enable or disable per-operator stats collection
    /// ([`ua_obs::QueryStats`]) for subsequent queries. Off by default:
    /// collection costs a wall-clock read per operator (row engine) or per
    /// morsel chain (vectorized engine). Results are byte-identical either
    /// way; the differential tests assert it.
    pub fn set_stats_enabled(&self, enabled: bool) {
        self.collect_stats.store(enabled, Ordering::Relaxed);
    }

    /// Whether executions collect per-operator stats.
    pub fn stats_enabled(&self) -> bool {
        self.collect_stats.load(Ordering::Relaxed)
    }

    /// The stats of the most recent instrumented query on this session
    /// (any semantics, either engine), if stats collection was enabled for
    /// it. Programmatic access to what `EXPLAIN ANALYZE` renders.
    pub fn last_query_stats(&self) -> Option<ua_obs::QueryStats> {
        self.last_stats.lock().clone()
    }

    /// Enable or disable query-lifetime tracing for subsequent queries:
    /// parse → plan → optimize → execute phase spans, per-operator spans
    /// (row engine) or bind/execute/merge + per-morsel task spans
    /// (vectorized engine), collected in a per-thread ring and exported as
    /// chrome://tracing / Perfetto JSON. Off by default; results are
    /// byte-identical either way — tracing is a pure observer.
    pub fn set_trace_enabled(&self, enabled: bool) {
        self.collect_trace.store(enabled, Ordering::Relaxed);
    }

    /// Whether queries collect a lifetime trace.
    pub fn trace_enabled(&self) -> bool {
        self.collect_trace.load(Ordering::Relaxed)
    }

    /// The Perfetto JSON trace of the most recent traced query on this
    /// session (any semantics, either engine) — load it at
    /// <https://ui.perfetto.dev> or `chrome://tracing`. `None` until a
    /// query ran with tracing enabled.
    pub fn last_query_trace(&self) -> Option<String> {
        self.last_trace.lock().clone()
    }

    /// Arm the per-thread trace ring for one query (no-op guard when
    /// tracing is off or an outer query already owns the ring).
    pub(crate) fn trace_query(&self) -> TraceGuard<'_> {
        TraceGuard {
            session: (self.trace_enabled() && ua_obs::trace_start()).then_some(self),
        }
    }

    /// Store an instrumented execution's stats, feed the planner's
    /// est-vs-actual join counters ([`crate::optimize::record_join_misestimates`])
    /// and publish the query's memory high-water mark as the
    /// `mem.query.peak_bytes` gauge.
    pub(crate) fn store_stats(&self, stats: ua_obs::QueryStats) {
        crate::optimize::record_join_misestimates(&stats.root);
        ua_obs::global()
            .gauge("mem.query.peak_bytes")
            .set(i64::try_from(stats.peak_mem_bytes).unwrap_or(i64::MAX));
        *self.last_stats.lock() = Some(stats);
    }

    /// Pick up stats a vectorized execution deposited in the thread-local
    /// handoff slot (the hook signature stays stats-agnostic).
    pub(crate) fn adopt_hook_stats(&self) {
        if let Some(stats) = ua_obs::take_last_query_stats() {
            self.store_stats(stats);
        }
    }

    /// The per-query options handed to the vectorized executor.
    pub(crate) fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            threads: self.vec_threads(),
            batch_rows: 0,
            collect_stats: self.stats_enabled(),
            // The session thread's ring is armed by `trace_query` before
            // dispatch; the executor only needs to know it may emit.
            collect_trace: ua_obs::trace_active(),
        }
    }

    /// The shared optimization step: every query plan — deterministic or
    /// UA, row or vectorized — passes through here before executor
    /// dispatch, so both engines always run plans shaped by the same
    /// rewrites and cannot drift.
    fn optimize_plan(&self, plan: Plan) -> Plan {
        self.optimize_plan_with(plan, crate::optimize::OptimizerPasses::default())
    }

    /// [`Self::optimize_plan`] for the vectorized UA path, whose runtime
    /// schemas are the marker-*stripped* encoded schemas: positional
    /// references would be classified against the wrong arities there, so
    /// join planning is restricted to name-based classification (all plans
    /// lowered from SQL are name-based; only programmatic `RaExpr` queries
    /// with `Expr::Col` predicates give up the hash-join rewrite, keeping
    /// their pre-optimizer runtime-binding semantics). Join *reordering*
    /// already happened on the shared user plan ([`Self::reorder_user_ra`])
    /// before dispatch, so the pass is off here.
    fn optimize_plan_stripped(&self, plan: Plan) -> Plan {
        self.optimize_plan_with(
            plan,
            crate::optimize::OptimizerPasses {
                positional_joins: false,
                reorder_joins: false,
                ..Default::default()
            },
        )
    }

    /// Statistics-driven join reordering for UA queries, applied to the
    /// *user* `RA⁺` query before the two execution paths diverge — the row
    /// engine rewrites with `⟦·⟧_UA` (whose marker-combining projections
    /// would otherwise hide the join tree from the optimizer) and the
    /// vectorized engine executes the user plan directly, so reordering
    /// here is the single point that keeps both engines on the same join
    /// order (and therefore the same output row order, which the
    /// differential harness asserts byte-for-byte).
    fn reorder_user_ra(&self, ra: ua_data::RaExpr) -> ua_data::RaExpr {
        if !self.optimizer_enabled() || !self.reorder_joins_enabled() {
            return ra;
        }
        let reordered = crate::optimize::reorder_joins_ua(Plan::from_ra(&ra), &self.catalog);
        // The pass emits only RA⁺ shapes; fall back defensively otherwise.
        reordered.to_ra().unwrap_or(ra)
    }

    pub(crate) fn optimize_plan_with(
        &self,
        plan: Plan,
        passes: crate::optimize::OptimizerPasses,
    ) -> Plan {
        if self.optimizer_enabled() {
            let passes = crate::optimize::OptimizerPasses {
                reorder_joins: passes.reorder_joins && self.reorder_joins_enabled(),
                ..passes
            };
            crate::optimize::optimize_with(plan, &self.catalog, passes)
        } else {
            plan
        }
    }

    /// The underlying catalog (deterministic tables and encoded UA tables
    /// share it).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Register a plain (deterministic or raw uncertain-source) table.
    pub fn register_table(&self, name: impl Into<String>, table: Table) {
        self.catalog.register(name, table);
    }

    /// Register an `ℕ_UA`-relation, encoding it with `Enc`.
    pub fn register_ua_relation(&self, name: impl Into<String>, relation: &Relation<Ua<u64>>) {
        let encoded = encode_relation(relation);
        self.catalog.register(name, Table::from_relation(&encoded));
    }

    /// Run a query under plain deterministic semantics.
    pub fn query_det(&self, sql: &str) -> Result<Table, EngineError> {
        let _trace = self.trace_query();
        let ast = ua_obs::trace_scope("parse", "session", || parse(sql))
            .map_err(|e| EngineError::Sql(e.to_string()))?;
        let plan = ua_obs::trace_scope("plan", "session", || {
            plan_query(&ast, &self.catalog, &UaResolver { session: self })
        })?;
        let plan = ua_obs::trace_scope("optimize", "session", || self.optimize_plan(plan));
        ua_obs::trace_scope("execute", "session", || match self.exec_mode() {
            ExecMode::Row => {
                if self.stats_enabled() {
                    ua_obs::mem_query_start();
                    let (result, root) = crate::stats::try_execute_with_stats(&plan, &self.catalog);
                    let peak = ua_obs::mem_query_finish().unwrap_or(0);
                    // A failed query still deposits its (error-marked)
                    // partial operator tree before the error propagates.
                    if let Some(root) = root {
                        self.store_stats(ua_obs::QueryStats {
                            engine: "row".into(),
                            semantics: "det".into(),
                            root,
                            pool: None,
                            peak_mem_bytes: peak,
                        });
                    }
                    result
                } else {
                    execute(&plan, &self.catalog)
                }
            }
            ExecMode::Vectorized => {
                let table =
                    (require_vectorized_hooks()?.plan)(&plan, &self.catalog, self.exec_options());
                self.adopt_hook_stats();
                table
            }
        })
    }

    /// Run a query under UA semantics: plan, rewrite with `⟦·⟧_UA`, execute
    /// over the encoded tables.
    ///
    /// The `RA⁺` fragment (+ trailing `ORDER BY`/`LIMIT`) is supported;
    /// `DISTINCT` and aggregation over UA-DBs are future work in the paper
    /// and rejected here.
    pub fn query_ua(&self, sql: &str) -> Result<UaResult, EngineError> {
        let _trace = self.trace_query();
        let ast = ua_obs::trace_scope("parse", "session", || parse(sql))
            .map_err(|e| EngineError::Sql(e.to_string()))?;
        let plan = ua_obs::trace_scope("plan", "session", || {
            plan_query(&ast, &self.catalog, &UaResolver { session: self })
        })?;
        self.execute_ua_plan(&plan)
    }

    /// Run an already-planned `RA⁺` query under UA semantics.
    pub fn query_ua_ra(&self, query: &ua_data::RaExpr) -> Result<UaResult, EngineError> {
        let _trace = self.trace_query();
        self.execute_ua_plan(&Plan::from_ra(query))
    }

    /// Explain a UA query: the user plan, the `⟦·⟧_UA`-rewritten plan, and
    /// the optimized physical plan the row engine executes (the
    /// middleware's "show rewritten SQL", plus `EXPLAIN`).
    pub fn explain_ua(&self, sql: &str) -> Result<String, EngineError> {
        let ast = parse(sql).map_err(|e| EngineError::Sql(e.to_string()))?;
        let plan = plan_query(&ast, &self.catalog, &UaResolver { session: self })?;
        let user_ra = plan
            .to_ra()
            .ok_or_else(|| EngineError::Sql("EXPLAIN UA supports the RA⁺ fragment".into()))?;
        let ra = self.reorder_user_ra(user_ra.clone());
        let lookup = |name: &str| self.catalog.schema_of(name);
        let rewritten = rewrite_ua(&ra, &lookup)?;
        let physical = self.optimize_plan(Plan::from_ra(&rewritten));
        Ok(format!(
            "user plan:\n  {user_ra}\nrewritten (⟦·⟧_UA):\n  {rewritten}\nphysical (optimized):\n  {physical}"
        ))
    }

    /// Explain a deterministic query: the planner's plan and the optimized
    /// physical plan that actually executes.
    pub fn explain_det(&self, sql: &str) -> Result<String, EngineError> {
        let ast = parse(sql).map_err(|e| EngineError::Sql(e.to_string()))?;
        let plan = plan_query(&ast, &self.catalog, &UaResolver { session: self })?;
        let physical = self.optimize_plan(plan.clone());
        Ok(format!(
            "plan:\n  {plan}\nphysical (optimized):\n  {physical}"
        ))
    }

    fn execute_ua_plan(&self, plan: &Plan) -> Result<UaResult, EngineError> {
        // Peel trailing Sort/Limit — they commute with the rewriting (they
        // only reorder/truncate encoded rows).
        let mut wrappers = Vec::new();
        let mut inner = plan;
        loop {
            match inner {
                Plan::Sort { input, keys } => {
                    // The marker is engine bookkeeping, not user schema:
                    // ordering by it is rejected uniformly (it binds over
                    // the *encoded* result in the row path but not over the
                    // vectorized path's marker-stripped batches, and both
                    // engines must fail identically — mirroring the
                    // selection/projection/join rejection in `rewrite_ua`).
                    for (key, _) in keys {
                        if ua_core::expr_mentions_marker(key) {
                            return Err(EngineError::Schema(
                                ua_data::schema::SchemaError::AmbiguousColumn(
                                    UA_LABEL_COLUMN.to_string(),
                                ),
                            ));
                        }
                    }
                    wrappers.push(Wrapper::Sort(keys.clone()));
                    inner = input;
                }
                Plan::Limit { input, limit } => {
                    wrappers.push(Wrapper::Limit(*limit));
                    inner = input;
                }
                _ => break,
            }
        }
        let ra = match inner.to_ra() {
            Some(ra) => ra,
            // `to_ra` covers exactly the RA⁺ fragment; EXCEPT and outer
            // joins step outside it but stay UA-sound with the labeling
            // rules of `execute_ua_negation`.
            None if plan_contains_negation(inner) => {
                return self.execute_ua_negation(inner, wrappers)
            }
            None => return Err(EngineError::Sql(UA_FRAGMENT_ERROR.into())),
        };
        let ra = self.reorder_user_ra(ra);
        // Both branches below run the SAME optimizer pipeline
        // (`optimize_plan`) on the plan their executor receives, before
        // dispatch — the uniformity the differential harness asserts.
        if self.exec_mode() == ExecMode::Vectorized {
            // The vectorized engine propagates labels itself (bitmaps, per
            // the ⟦·⟧_UA rules), so it takes the *user* query's (optimized)
            // physical plan, not a rewritten one. Trailing Sort/Limit/TopK
            // ride along and execute natively over the encoded batches
            // (columnar sort with the marker as final tie-break, bounded
            // Top-K heap) — no row-engine fallback.
            let user_plan = ua_obs::trace_scope("optimize", "session", || {
                self.rewrap(self.optimize_plan_stripped(Plan::from_ra(&ra)), wrappers)
            });
            let table = ua_obs::trace_scope("execute", "session", || {
                let table = (require_vectorized_hooks()?.ua)(
                    &user_plan,
                    &self.catalog,
                    self.exec_options(),
                );
                self.adopt_hook_stats();
                table
            })?;
            return Ok(UaResult { table });
        }
        let lookup = |name: &str| self.catalog.schema_of(name);
        let rewritten = ua_obs::trace_scope("rewrite", "session", || rewrite_ua(&ra, &lookup))?;
        let rewritten_plan = ua_obs::trace_scope("optimize", "session", || {
            self.rewrap(self.optimize_plan(Plan::from_ra(&rewritten)), wrappers)
        });
        let table = ua_obs::trace_scope("execute", "session", || {
            if self.stats_enabled() {
                ua_obs::mem_query_start();
                let (result, root) =
                    crate::stats::try_execute_with_stats(&rewritten_plan, &self.catalog);
                let peak = ua_obs::mem_query_finish().unwrap_or(0);
                if let Some(root) = root {
                    self.store_stats(ua_obs::QueryStats {
                        engine: "row".into(),
                        semantics: "ua".into(),
                        root,
                        pool: None,
                        peak_mem_bytes: peak,
                    });
                }
                result
            } else {
                execute(&rewritten_plan, &self.catalog)
            }
        })?;
        Ok(UaResult { table })
    }

    /// Re-apply peeled Sort/Limit wrappers (innermost last) over an
    /// optimized core plan, fusing `Limit(Sort(..))` into `TopK` exactly
    /// like the deterministic pipeline when the optimizer is on.
    fn rewrap(&self, mut plan: Plan, wrappers: Vec<Wrapper>) -> Plan {
        for w in wrappers.into_iter().rev() {
            plan = match w {
                Wrapper::Sort(keys) => Plan::Sort {
                    input: Box::new(plan),
                    keys,
                },
                Wrapper::Limit(limit) => Plan::Limit {
                    input: Box::new(plan),
                    limit,
                },
            };
        }
        if self.optimizer_enabled() {
            plan = crate::optimize::fuse_topk(plan);
        }
        plan
    }

    /// Execute a UA plan whose core contains negation nodes (EXCEPT /
    /// outer join), which `⟦·⟧_UA` proper does not cover.
    ///
    /// The vectorized engine propagates labels natively through every
    /// operator, so it takes the user plan whole — join reordering stays
    /// the single pre-dispatch pass, with the negation nodes acting as
    /// reorder barriers. The row engine has no label-carrying operators;
    /// instead the plan executes bottom-up over *encoded* relations:
    /// maximal RA⁺ regions go through the usual rewriting, and each
    /// negation node combines its children's encoded results directly
    /// (see [`ua_except_encoded`] / [`ua_outer_join_encoded`]),
    /// materialized as temporary catalog tables so enclosing RA⁺ regions
    /// can keep treating them as pre-encoded UA sources.
    fn execute_ua_negation(
        &self,
        inner: &Plan,
        wrappers: Vec<Wrapper>,
    ) -> Result<UaResult, EngineError> {
        let reordered = if self.optimizer_enabled() && self.reorder_joins_enabled() {
            crate::optimize::reorder_joins_ua(inner.clone(), &self.catalog)
        } else {
            inner.clone()
        };
        if self.exec_mode() == ExecMode::Vectorized {
            let user_plan = self.rewrap(self.optimize_plan_stripped(reordered), wrappers);
            let table = ua_obs::trace_scope("execute", "session", || {
                let table = (require_vectorized_hooks()?.ua)(
                    &user_plan,
                    &self.catalog,
                    self.exec_options(),
                );
                self.adopt_hook_stats();
                table
            })?;
            return Ok(UaResult { table });
        }
        let mut temps = TempTables {
            catalog: &self.catalog,
            names: Vec::new(),
        };
        let result = self.execute_ua_encoded(&reordered, &mut temps);
        drop(temps);
        let mut table = result?;
        // The peeled wrappers apply directly to the materialized encoded
        // result: sorting encoded rows tie-breaks on the full row with the
        // marker last — the same order the vectorized columnar sort
        // produces.
        for w in wrappers.into_iter().rev() {
            table = match w {
                Wrapper::Sort(keys) => crate::exec::sort_table(&table, &keys)?,
                Wrapper::Limit(limit) => crate::exec::limit_table(&table, limit),
            };
        }
        Ok(UaResult { table })
    }

    /// Row-engine execution of a UA plan (possibly containing negation
    /// nodes) over encoded relations; returns the encoded result (marker
    /// column last).
    fn execute_ua_encoded(
        &self,
        plan: &Plan,
        temps: &mut TempTables<'_>,
    ) -> Result<Table, EngineError> {
        let stripped = self.strip_negations(plan, temps)?;
        let ra = stripped
            .to_ra()
            .ok_or_else(|| EngineError::Sql(UA_FRAGMENT_ERROR.into()))?;
        let lookup = |name: &str| self.catalog.schema_of(name);
        let rewritten = rewrite_ua(&ra, &lookup)?;
        let physical = self.optimize_plan(Plan::from_ra(&rewritten));
        execute(&physical, &self.catalog)
    }

    /// Replace every maximal negation subtree of `plan` with a scan of its
    /// materialized encoded result, leaving an RA⁺ plan for `rewrite_ua`.
    fn strip_negations(
        &self,
        plan: &Plan,
        temps: &mut TempTables<'_>,
    ) -> Result<Plan, EngineError> {
        if plan.to_ra().is_some() {
            // A pure RA⁺ region: leave it to the rewriting, which keeps
            // per-tuple label propagation exact (and lets the optimizer
            // see the whole region at once).
            return Ok(plan.clone());
        }
        Ok(match plan {
            Plan::Except { left, right, all } => {
                let l = self.execute_ua_encoded(left, temps)?;
                let r = self.execute_ua_encoded(right, temps)?;
                Plan::Scan(temps.register(ua_except_encoded(&l, &r, *all)?))
            }
            Plan::OuterJoin {
                left,
                right,
                predicate,
                kind,
            } => {
                let l = self.execute_ua_encoded(left, temps)?;
                let r = self.execute_ua_encoded(right, temps)?;
                Plan::Scan(temps.register(ua_outer_join_encoded(
                    &l,
                    &r,
                    predicate.as_ref(),
                    *kind,
                )?))
            }
            Plan::Alias { input, name } => Plan::Alias {
                input: Box::new(self.strip_negations(input, temps)?),
                name: name.clone(),
            },
            Plan::Filter { input, predicate } => Plan::Filter {
                input: Box::new(self.strip_negations(input, temps)?),
                predicate: predicate.clone(),
            },
            Plan::Map { input, columns } => Plan::Map {
                input: Box::new(self.strip_negations(input, temps)?),
                columns: columns.clone(),
            },
            Plan::Join {
                left,
                right,
                predicate,
            } => Plan::Join {
                left: Box::new(self.strip_negations(left, temps)?),
                right: Box::new(self.strip_negations(right, temps)?),
                predicate: predicate.clone(),
            },
            Plan::UnionAll { left, right } => Plan::UnionAll {
                left: Box::new(self.strip_negations(left, temps)?),
                right: Box::new(self.strip_negations(right, temps)?),
            },
            _ => return Err(EngineError::Sql(UA_FRAGMENT_ERROR.into())),
        })
    }

    /// `EXPLAIN ANALYZE` for deterministic queries: run `sql` with stats
    /// collection on (whatever the session default is — the previous
    /// setting is restored afterwards) and render [`Self::explain_det`]'s
    /// plans followed by the executed, annotated operator tree with
    /// per-operator row counts, wall times and the planner's est-vs-actual
    /// cardinalities. The query really executes; its result is discarded.
    pub fn explain_analyze_det(&self, sql: &str) -> Result<String, EngineError> {
        let plans = self.explain_det(sql)?;
        let stats = self.run_analyzed(|| self.query_det(sql).map(|_| ()))?;
        Ok(format!("{plans}\n{}", render_analysis(&stats)))
    }

    /// `EXPLAIN ANALYZE` for UA queries: [`Self::explain_ua`]'s plans plus
    /// the executed operator tree. Under `ExecMode::Row` the tree is the
    /// `⟦·⟧_UA`-rewritten physical plan's (what actually ran); under
    /// `ExecMode::Vectorized` it is the pipeline structure over the user
    /// plan, with morsel-pool totals appended.
    pub fn explain_analyze_ua(&self, sql: &str) -> Result<String, EngineError> {
        let plans = self.explain_ua(sql)?;
        let stats = self.run_analyzed(|| self.query_ua(sql).map(|_| ()))?;
        Ok(format!("{plans}\n{}", render_analysis(&stats)))
    }

    /// Run `f` with stats collection forced on, restore the previous
    /// setting, and return the collected stats.
    pub(crate) fn run_analyzed(
        &self,
        f: impl FnOnce() -> Result<(), EngineError>,
    ) -> Result<ua_obs::QueryStats, EngineError> {
        let was = self.stats_enabled();
        self.set_stats_enabled(true);
        let result = f();
        self.set_stats_enabled(was);
        result?;
        self.last_query_stats()
            .ok_or_else(|| EngineError::Sql("EXPLAIN ANALYZE: execution produced no stats".into()))
    }
}

/// The execution section `EXPLAIN ANALYZE` appends below the plan text:
/// a header naming the engine/semantics, then the annotated operator tree
/// (indented to match the plan sections above it).
pub(crate) fn render_analysis(stats: &ua_obs::QueryStats) -> String {
    let mut out = format!(
        "execution (EXPLAIN ANALYZE, engine={} semantics={}):\n",
        stats.engine, stats.semantics
    );
    for line in stats.render(true).lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out.pop();
    out
}

/// Source resolver applying the Section 9.2 labeling schemes: annotated
/// sources are converted once and cached in the catalog under a derived
/// name.
struct UaResolver<'a> {
    session: &'a UaSession,
}

impl SourceResolver for UaResolver<'_> {
    fn resolve(
        &self,
        name: &str,
        annotation: &SourceAnnotation,
        catalog: &Catalog,
    ) -> Result<Plan, EngineError> {
        // The cache key carries the annotation's shape: the same base table
        // may legitimately be annotated differently across (or within)
        // queries, and a bare `__ua__{name}` key would silently serve the
        // first encoding for all of them.
        // Each field is length-prefixed so the encoding is injective even
        // though '_' can appear inside column names (plain joining would
        // make `XID (a) ALTID (b_c)` collide with `XID (a_b) ALTID (c)`),
        // while the derived name stays a lexable identifier that
        // `query_det` can still reference.
        let fp = |parts: &[&str]| {
            parts
                .iter()
                .map(|p| format!("{}_{p}", p.len()))
                .collect::<Vec<_>>()
                .join("_")
        };
        let fingerprint = match annotation {
            SourceAnnotation::Ti { probability } => format!("ti_{}", fp(&[probability])),
            SourceAnnotation::X {
                xid,
                altid,
                probability,
            } => format!("x_{}", fp(&[xid, altid, probability])),
            SourceAnnotation::CTable {
                variables,
                condition,
            } => {
                let mut parts: Vec<&str> = variables.iter().map(String::as_str).collect();
                parts.push(condition);
                format!("ct_{}", fp(&parts))
            }
        };
        let derived = format!("__ua__{name}__{fingerprint}");
        if catalog.get(&derived).is_none() {
            let base = catalog
                .get(name)
                .ok_or_else(|| EngineError::UnknownTable(name.to_string()))?;
            let encoded = match annotation {
                SourceAnnotation::Ti { probability } => ti_source(&base, probability)?,
                SourceAnnotation::X {
                    xid,
                    altid,
                    probability,
                } => x_source(&base, xid, altid, probability)?,
                SourceAnnotation::CTable {
                    variables,
                    condition,
                } => ctable_source(&base, variables, condition)?,
            };
            catalog.register(derived.clone(), encoded);
        }
        let _ = self.session;
        Ok(Plan::Scan(derived))
    }
}

fn float_of(v: &Value) -> Option<f64> {
    v.as_f64()
}

fn keep_columns(schema: &Schema, exclude: &[usize]) -> (Vec<usize>, Vec<Column>) {
    let mut keep = Vec::new();
    let mut cols = Vec::new();
    for (i, col) in schema.columns().iter().enumerate() {
        if !exclude.contains(&i) {
            keep.push(i);
            cols.push(col.clone());
        }
    }
    (keep, cols)
}

/// `label_TIDB` + BGW extraction over a raw table with a probability column
/// (the paper's Section 9.2 TI-DB SQL, implemented natively):
/// keep rows with `p ≥ 0.5`, mark certain iff `p = 1`.
pub fn ti_source(table: &Table, prob_col: &str) -> Result<Table, EngineError> {
    let p_idx = table.schema().resolve(prob_col)?;
    let (keep, mut cols) = keep_columns(table.schema(), &[p_idx]);
    cols.push(Column::unqualified(UA_LABEL_COLUMN));
    let mut out = Table::new(Schema::new(cols));
    for row in table.rows() {
        let p = float_of(row.get(p_idx).expect("resolved index")).ok_or_else(|| {
            EngineError::Sql(format!("probability column `{prob_col}` must be numeric"))
        })?;
        if p >= 0.5 {
            let mut values: Vec<Value> = keep
                .iter()
                .map(|&i| row.get(i).expect("in range").clone())
                .collect();
            values.push(Value::Int(i64::from(p >= 1.0 - 1e-9)));
            out.push(Tuple::new(values));
        }
    }
    Ok(out)
}

/// `label_xDB` + BGW extraction over a raw table with x-tuple id,
/// alternative id and probability columns (Section 9.2): per x-tuple keep
/// the argmax-probability alternative unless absence is likelier; mark
/// certain iff the x-tuple has a single alternative of mass 1.
pub fn x_source(
    table: &Table,
    xid_col: &str,
    altid_col: &str,
    prob_col: &str,
) -> Result<Table, EngineError> {
    let x_idx = table.schema().resolve(xid_col)?;
    let a_idx = table.schema().resolve(altid_col)?;
    let p_idx = table.schema().resolve(prob_col)?;
    let (keep, mut cols) = keep_columns(table.schema(), &[x_idx, a_idx, p_idx]);
    cols.push(Column::unqualified(UA_LABEL_COLUMN));

    // Group rows by x-tuple id, tracking the argmax alternative.
    struct Block {
        total: f64,
        count: usize,
        best_p: f64,
        best_row: Tuple,
    }
    let mut blocks: FxHashMap<Value, Block> = FxHashMap::default();
    let mut order: Vec<Value> = Vec::new();
    for row in table.rows() {
        let xid = row.get(x_idx).expect("in range").clone();
        let p = float_of(row.get(p_idx).expect("in range")).ok_or_else(|| {
            EngineError::Sql(format!("probability column `{prob_col}` must be numeric"))
        })?;
        match blocks.get_mut(&xid) {
            Some(b) => {
                b.total += p;
                b.count += 1;
                if p > b.best_p {
                    b.best_p = p;
                    b.best_row = row.clone();
                }
            }
            None => {
                order.push(xid.clone());
                blocks.insert(
                    xid,
                    Block {
                        total: p,
                        count: 1,
                        best_p: p,
                        best_row: row.clone(),
                    },
                );
            }
        }
    }

    let mut out = Table::new(Schema::new(cols));
    for xid in order {
        let b = blocks.remove(&xid).expect("recorded");
        let p_absent = (1.0 - b.total).max(0.0);
        if b.best_p < p_absent {
            continue; // absence is the best guess
        }
        let mut values: Vec<Value> = keep
            .iter()
            .map(|&i| b.best_row.get(i).expect("in range").clone())
            .collect();
        let certain = b.count == 1 && b.total >= 1.0 - 1e-9;
        values.push(Value::Int(i64::from(certain)));
        out.push(Tuple::new(values));
    }
    Ok(out)
}

/// `label_C-table` + BGW extraction over a raw table storing per-attribute
/// variable names (`NULL` = constant) and a textual local condition
/// (Section 9.2): keep constant-only rows, mark certain iff the parsed
/// condition is in CNF and a CNF-tautology.
///
/// Mirroring the paper's SQL, rows with variable attributes are *not* part
/// of the extracted world — the paper's frontend under-approximates the BGW
/// for C-tables; the native [`ua_models::CDb`] path instantiates variables
/// properly when a full BGW is needed.
pub fn ctable_source(
    table: &Table,
    variable_cols: &[String],
    condition_col: &str,
) -> Result<Table, EngineError> {
    let lc_idx = table.schema().resolve(condition_col)?;
    let var_idxs: Vec<usize> = variable_cols
        .iter()
        .map(|v| table.schema().resolve(v))
        .collect::<Result<_, _>>()?;
    let mut exclude = var_idxs.clone();
    exclude.push(lc_idx);
    let (keep, mut cols) = keep_columns(table.schema(), &exclude);
    cols.push(Column::unqualified(UA_LABEL_COLUMN));

    let mut interner = VarInterner::new();
    let mut out = Table::new(Schema::new(cols));
    for row in table.rows() {
        let all_constant = var_idxs
            .iter()
            .all(|&i| row.get(i).expect("in range").is_unknown());
        if !all_constant {
            continue;
        }
        let lc_text = match row.get(lc_idx).expect("in range") {
            Value::Str(s) => s.to_string(),
            Value::Null => String::new(),
            other => {
                return Err(EngineError::Sql(format!(
                    "local condition column must be text, found {other}"
                )))
            }
        };
        let condition = parse_condition(&lc_text, &mut interner)
            .map_err(|e| EngineError::Sql(e.to_string()))?;
        let certain = is_cnf(&condition) && cnf_tautology(&condition) == Some(true);
        let mut values: Vec<Value> = keep
            .iter()
            .map(|&i| row.get(i).expect("in range").clone())
            .collect();
        values.push(Value::Int(i64::from(certain)));
        out.push(Tuple::new(values));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::tuple;

    fn geocoder_session() -> UaSession {
        // The paper's running example (Figures 2/3) as an x-relation stored
        // row-wise with xid/altid/probability columns.
        let session = UaSession::new();
        session.register_table(
            "addr",
            Table::from_rows(
                Schema::qualified("addr", ["xid", "aid", "p", "id", "locale", "state"]),
                vec![
                    tuple![1i64, 1i64, 1.0, 1i64, "Lasalle", "NY"],
                    tuple![2i64, 1i64, 0.6, 2i64, "Tucson", "AZ"],
                    tuple![2i64, 2i64, 0.4, 2i64, "Grant Ferry", "NY"],
                    tuple![3i64, 1i64, 0.5, 3i64, "Kingsley", "NY"],
                    tuple![3i64, 2i64, 0.5, 3i64, "Kingsley", "NY"],
                    tuple![4i64, 1i64, 1.0, 4i64, "Kensington", "NY"],
                ],
            ),
        );
        session
    }

    #[test]
    fn figure3d_via_sql() {
        let session = geocoder_session();
        let result = session
            .query_ua(
                "SELECT id, locale, state FROM \
                 addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p)",
            )
            .unwrap();
        let rows = result.rows_with_certainty();
        assert_eq!(rows.len(), 4);
        let certainty: FxHashMap<Tuple, bool> = rows.into_iter().collect();
        assert!(certainty[&tuple![1i64, "Lasalle", "NY"]]);
        assert!(!certainty[&tuple![2i64, "Tucson", "AZ"]]);
        // Address 3 is mis-classified as uncertain (2 alternatives, even
        // though they project to the same locale) — the paper's Figure 3d.
        assert!(!certainty[&tuple![3i64, "Kingsley", "NY"]]);
        assert!(certainty[&tuple![4i64, "Kensington", "NY"]]);
    }

    #[test]
    fn selection_preserves_labels() {
        let session = geocoder_session();
        let result = session
            .query_ua(
                "SELECT id, locale FROM \
                 addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) \
                 WHERE state = 'NY' ORDER BY id",
            )
            .unwrap();
        let rows = result.rows_with_certainty();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], (tuple![1i64, "Lasalle"], true));
        assert_eq!(rows[1], (tuple![3i64, "Kingsley"], false));
        assert_eq!(rows[2], (tuple![4i64, "Kensington"], true));
    }

    #[test]
    fn ti_source_semantics() {
        let t = Table::from_rows(
            Schema::qualified("r", ["a", "p"]),
            vec![tuple![1i64, 1.0], tuple![2i64, 0.8], tuple![3i64, 0.2]],
        );
        let enc = ti_source(&t, "p").unwrap();
        assert_eq!(
            enc.sorted_rows(),
            vec![tuple![1i64, 1i64], tuple![2i64, 0i64]]
        );
    }

    #[test]
    fn x_source_absence_beats_alternatives() {
        let t = Table::from_rows(
            Schema::qualified("r", ["xid", "aid", "p", "a"]),
            vec![
                tuple![1i64, 1i64, 0.1, 10i64],
                tuple![1i64, 2i64, 0.2, 20i64],
            ],
        );
        let enc = x_source(&t, "xid", "aid", "p").unwrap();
        assert!(enc.is_empty(), "absence probability 0.7 dominates");
    }

    #[test]
    fn ctable_source_tautology_labeling() {
        let t = Table::from_rows(
            Schema::qualified("r", ["a", "v1", "lc"]),
            vec![
                Tuple::new(vec![
                    Value::Int(1),
                    Value::Null,
                    Value::str("x < 5 OR x >= 5"),
                ]),
                Tuple::new(vec![Value::Int(2), Value::Null, Value::str("x = 3")]),
                Tuple::new(vec![Value::Int(3), Value::str("x"), Value::str("")]),
            ],
        );
        let enc = ctable_source(&t, &["v1".to_string()], "lc").unwrap();
        assert_eq!(
            enc.sorted_rows(),
            vec![tuple![1i64, 1i64], tuple![2i64, 0i64]],
            "row 3 has a variable attribute and is excluded; row 1 is a tautology"
        );
    }

    #[test]
    fn det_and_ua_agree_on_bgqp() {
        // h_det compatibility via SQL: stripping the marker from the UA
        // result yields the deterministic result over the BGW.
        let session = geocoder_session();
        let ua = session
            .query_ua(
                "SELECT locale FROM addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) \
                 WHERE state = 'NY'",
            )
            .unwrap();
        let det = session
            .query_det("SELECT locale FROM __ua__addr__x_3_xid_3_aid_1_p WHERE state = 'NY'")
            .unwrap();
        let ua_rows: Vec<Tuple> = ua
            .rows_with_certainty()
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(ua_rows.len(), det.len());
    }

    #[test]
    fn aggregation_rejected_under_ua() {
        let session = geocoder_session();
        let err = session.query_ua(
            "SELECT state, count(*) FROM \
             addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) GROUP BY state",
        );
        assert!(matches!(err, Err(EngineError::Sql(_))));
    }

    #[test]
    fn explain_shows_both_plans() {
        let session = geocoder_session();
        let text = session
            .explain_ua(
                "SELECT id FROM addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p)                  WHERE state = 'NY'",
            )
            .unwrap();
        assert!(text.contains("user plan:"));
        assert!(text.contains("rewritten"));
        assert!(
            text.contains("ua_c"),
            "rewritten plan must carry the marker"
        );
    }

    #[test]
    fn registered_ua_relation_round_trips() {
        let session = UaSession::new();
        let rel: Relation<Ua<u64>> = Relation::from_annotated(
            Schema::qualified("r", ["a"]),
            vec![
                (tuple![1i64], Ua::new(1u64, 2)),
                (tuple![2i64], Ua::new(0u64, 1)),
            ],
        );
        session.register_ua_relation("r", &rel);
        let result = session.query_ua("SELECT a FROM r").unwrap();
        assert_eq!(result.decode(), rel);
        let (certain, total) = result.certainty_counts();
        assert_eq!((certain, total), (1, 3));
    }
}
