//! Row-oriented bag storage: tables and the catalog.
//!
//! The engine stores relations the way classical RDBMSes do — as row
//! sequences where a tuple with multiplicity `n` appears as `n` row copies
//! (exactly the representation the paper's Section 9 encoding targets).
//! [`Table`] converts losslessly to and from the annotation-map
//! representation (`Relation<u64>`), which is how the engine interoperates
//! with the K-relation layer and with `Enc`/`Enc⁻¹`.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use ua_data::relation::Relation;
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;

/// A materialized bag of rows.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Table {
    /// An empty table.
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// A table from rows.
    ///
    /// # Panics
    /// Panics when a row's arity differs from the schema's.
    pub fn from_rows(schema: Schema, rows: Vec<Tuple>) -> Table {
        // One branchy pass instead of per-row assert_eq! formatting setup;
        // the vector itself is taken by value, so no copy happens here.
        let arity = schema.arity();
        if let Some(bad) = rows.iter().find(|r| r.arity() != arity) {
            panic!(
                "row arity mismatch: row has {} columns, schema has {arity}",
                bad.arity()
            );
        }
        Table { schema, rows }
    }

    /// Convert from the annotation-map representation: a tuple with
    /// multiplicity `n` becomes `n` row copies.
    pub fn from_relation(rel: &Relation<u64>) -> Table {
        // Pre-size with the summed multiplicities: the reallocation churn of
        // a growing Vec dominated this conversion on large bag relations.
        let total: u64 = rel.iter().map(|(_, &n)| n).sum();
        let mut rows = Vec::with_capacity(usize::try_from(total).unwrap_or(0));
        for (t, &n) in rel.iter() {
            // A `Tuple` is an `Arc` handle, so each copy is a refcount bump,
            // not a deep clone of the row's values.
            rows.extend(std::iter::repeat_n(t.clone(), n as usize));
        }
        // Deterministic row order independent of hash-map iteration. The
        // sort key is total and copies are indistinguishable, so the
        // unstable sort is deterministic here and avoids stable sort's
        // allocation.
        rows.sort_unstable();
        Table {
            schema: rel.schema().clone(),
            rows,
        }
    }

    /// Convert to the annotation-map representation (row copies collapse to
    /// multiplicities).
    pub fn to_relation(&self) -> Relation<u64> {
        Relation::from_tuples(self.schema.clone(), self.rows.iter().cloned())
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Replace the schema (e.g. re-qualification).
    ///
    /// # Panics
    /// Panics when the arity changes.
    pub fn with_schema(mut self, schema: Schema) -> Table {
        assert_eq!(self.schema.arity(), schema.arity(), "arity must not change");
        self.schema = schema;
        self
    }

    /// The rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn push(&mut self, row: Tuple) {
        assert_eq!(row.arity(), self.schema.arity(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of rows (bag cardinality).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows in deterministic (structural) order — for stable test output.
    pub fn sorted_rows(&self) -> Vec<Tuple> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

/// A shared, thread-safe catalog of named tables.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or replace) a table.
    pub fn register(&self, name: impl Into<String>, table: Table) {
        self.tables.write().insert(name.into(), Arc::new(table));
    }

    /// Fetch a table by name.
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.read().get(name).cloned()
    }

    /// The schema of a table.
    pub fn schema_of(&self, name: &str) -> Option<Schema> {
        self.tables.read().get(name).map(|t| t.schema().clone())
    }

    /// Drop a table; returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        self.tables.write().remove(name).is_some()
    }

    /// Names of all registered tables.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::tuple;

    #[test]
    fn row_relation_round_trip() {
        let schema = Schema::qualified("r", ["a"]);
        let table = Table::from_rows(schema, vec![tuple![1i64], tuple![1i64], tuple![2i64]]);
        let rel = table.to_relation();
        assert_eq!(rel.annotation(&tuple![1i64]), 2);
        let back = Table::from_relation(&rel);
        assert_eq!(back.sorted_rows(), table.sorted_rows());
    }

    #[test]
    fn catalog_basics() {
        let catalog = Catalog::new();
        let schema = Schema::qualified("r", ["a"]);
        catalog.register("r", Table::from_rows(schema.clone(), vec![tuple![1i64]]));
        assert_eq!(catalog.get("r").unwrap().len(), 1);
        assert_eq!(catalog.schema_of("r"), Some(schema));
        assert_eq!(catalog.table_names(), vec!["r".to_string()]);
        assert!(catalog.drop_table("r"));
        assert!(!catalog.drop_table("r"));
        assert!(catalog.get("r").is_none());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(Schema::qualified("r", ["a", "b"]));
        t.push(tuple![1i64]);
    }
}
