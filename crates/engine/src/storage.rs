//! Row-oriented bag storage: tables and the catalog.
//!
//! The engine stores relations the way classical RDBMSes do — as row
//! sequences where a tuple with multiplicity `n` appears as `n` row copies
//! (exactly the representation the paper's Section 9 encoding targets).
//! [`Table`] converts losslessly to and from the annotation-map
//! representation (`Relation<u64>`), which is how the engine interoperates
//! with the K-relation layer and with `Enc`/`Enc⁻¹`.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use ua_data::relation::Relation;
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_data::FxHashSet;

/// A materialized bag of rows.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Table {
    /// An empty table.
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// A table from rows.
    ///
    /// # Panics
    /// Panics when a row's arity differs from the schema's.
    pub fn from_rows(schema: Schema, rows: Vec<Tuple>) -> Table {
        // One branchy pass instead of per-row assert_eq! formatting setup;
        // the vector itself is taken by value, so no copy happens here.
        let arity = schema.arity();
        if let Some(bad) = rows.iter().find(|r| r.arity() != arity) {
            panic!(
                "row arity mismatch: row has {} columns, schema has {arity}",
                bad.arity()
            );
        }
        Table { schema, rows }
    }

    /// Convert from the annotation-map representation: a tuple with
    /// multiplicity `n` becomes `n` row copies.
    pub fn from_relation(rel: &Relation<u64>) -> Table {
        // Pre-size with the summed multiplicities: the reallocation churn of
        // a growing Vec dominated this conversion on large bag relations.
        let total: u64 = rel.iter().map(|(_, &n)| n).sum();
        let mut rows = Vec::with_capacity(usize::try_from(total).unwrap_or(0));
        for (t, &n) in rel.iter() {
            // A `Tuple` is an `Arc` handle, so each copy is a refcount bump,
            // not a deep clone of the row's values.
            rows.extend(std::iter::repeat_n(t.clone(), n as usize));
        }
        // Deterministic row order independent of hash-map iteration. The
        // sort key is total and copies are indistinguishable, so the
        // unstable sort is deterministic here and avoids stable sort's
        // allocation.
        rows.sort_unstable();
        Table {
            schema: rel.schema().clone(),
            rows,
        }
    }

    /// Convert to the annotation-map representation (row copies collapse to
    /// multiplicities).
    pub fn to_relation(&self) -> Relation<u64> {
        Relation::from_tuples(self.schema.clone(), self.rows.iter().cloned())
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Replace the schema (e.g. re-qualification).
    ///
    /// # Panics
    /// Panics when the arity changes.
    pub fn with_schema(mut self, schema: Schema) -> Table {
        assert_eq!(self.schema.arity(), schema.arity(), "arity must not change");
        self.schema = schema;
        self
    }

    /// The rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn push(&mut self, row: Tuple) {
        assert_eq!(row.arity(), self.schema.arity(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of rows (bag cardinality).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows in deterministic (structural) order — for stable test output.
    pub fn sorted_rows(&self) -> Vec<Tuple> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

/// Number of buckets in an equi-width [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 32;

/// An equi-width histogram over a numeric column's non-null values.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Smallest observed value.
    pub lo: f64,
    /// Largest observed value.
    pub hi: f64,
    /// Per-bucket value counts over `[lo, hi]` split into
    /// [`HISTOGRAM_BUCKETS`] equal-width ranges (the last bucket is
    /// closed on both ends).
    pub buckets: Vec<u64>,
    /// Total number of bucketed (numeric, non-null) values.
    pub total: u64,
}

impl Histogram {
    /// Estimated fraction of values `< v` (`inclusive` makes it `<= v`),
    /// assuming uniform distribution within a bucket.
    pub fn fraction_below(&self, v: f64, inclusive: bool) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if v < self.lo || (v == self.lo && !inclusive) {
            return 0.0;
        }
        if v > self.hi || (v == self.hi && inclusive) {
            return 1.0;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        if width <= 0.0 {
            // Single-point histogram: lo == hi == v here.
            return if inclusive { 1.0 } else { 0.0 };
        }
        let pos = (v - self.lo) / width;
        let idx = (pos as usize).min(self.buckets.len() - 1);
        let below: u64 = self.buckets[..idx].iter().sum();
        let frac_in_bucket = pos - idx as f64;
        (below as f64 + self.buckets[idx] as f64 * frac_in_bucket) / self.total as f64
    }
}

/// Per-column statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct values (join-key-normalized, so `2` and `2.0`
    /// count once — matching SQL's coercing `=`).
    pub distinct: u64,
    /// Number of SQL-null / labeled-null values.
    pub nulls: u64,
    /// Equi-width histogram, present iff every non-null value is numeric.
    pub histogram: Option<Histogram>,
}

/// Per-table statistics: row count plus per-column distinct counts and
/// histograms. Collected on catalog registration (load/insert) and
/// refreshable via [`Catalog::analyze`]; the optimizer's selectivity and
/// join-ordering estimates read them through [`Catalog::stats_of`].
#[derive(Clone, Debug, PartialEq)]
pub struct TableStats {
    /// Bag cardinality (row copies).
    pub rows: u64,
    /// One entry per schema column, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Scan `table` once per column and collect statistics.
    pub fn collect(table: &Table) -> TableStats {
        let rows = table.rows();
        let columns = (0..table.schema().arity())
            .map(|c| {
                let mut seen: FxHashSet<Value> = FxHashSet::default();
                let mut nulls = 0u64;
                let mut numeric = true;
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for row in rows {
                    let v = row.get(c).expect("arity checked");
                    if v.is_unknown() {
                        nulls += 1;
                        continue;
                    }
                    seen.insert(v.clone().join_key());
                    match v.as_f64() {
                        Some(x) => {
                            lo = lo.min(x);
                            hi = hi.max(x);
                        }
                        None => numeric = false,
                    }
                }
                let histogram = if numeric && lo <= hi {
                    let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
                    let width = (hi - lo) / HISTOGRAM_BUCKETS as f64;
                    let mut total = 0u64;
                    for row in rows {
                        let v = row.get(c).expect("arity checked");
                        if let Some(x) = v.as_f64() {
                            let idx = if width > 0.0 {
                                (((x - lo) / width) as usize).min(HISTOGRAM_BUCKETS - 1)
                            } else {
                                0
                            };
                            buckets[idx] += 1;
                            total += 1;
                        }
                    }
                    Some(Histogram {
                        lo,
                        hi,
                        buckets,
                        total,
                    })
                } else {
                    None
                };
                ColumnStats {
                    distinct: seen.len() as u64,
                    nulls,
                    histogram,
                }
            })
            .collect();
        TableStats {
            rows: rows.len() as u64,
            columns,
        }
    }
}

/// A shared, thread-safe catalog of named tables, with per-table statistics.
#[derive(Default)]
pub struct Catalog {
    /// Tables, each tagged with the registration generation that produced
    /// it (a catalog-wide monotonic counter — unforgeable, unlike a raw
    /// `Arc` address, which the allocator could reuse).
    tables: RwLock<BTreeMap<String, (u64, Arc<Table>)>>,
    /// Stats cache, keyed by table name and tagged with the generation of
    /// the table they were collected from — [`Catalog::stats_of`] validates
    /// the tag against the live store, so a replaced table never serves a
    /// stale snapshot, even under racing registrations.
    stats: RwLock<BTreeMap<String, (u64, Arc<TableStats>)>>,
    generation: std::sync::atomic::AtomicU64,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    fn next_generation(&self) -> u64 {
        self.generation
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Register (or replace) a table. For a *new* table, statistics are
    /// collected immediately (the "on load" collection point). Replacing
    /// an existing table leaves the previous snapshot in place instead:
    /// the next [`Catalog::stats_of`] detects the generation mismatch,
    /// recollects on the spot, and counts the event on the
    /// `stats.staleness` counter — the planner-feedback signal that stale
    /// statistics were consumed (an explicit [`Catalog::analyze`] after
    /// bulk replacement keeps the counter quiet).
    pub fn register(&self, name: impl Into<String>, table: Table) {
        let name = name.into();
        let generation = self.next_generation();
        let table = Arc::new(table);
        if !self.tables.read().contains_key(&name) {
            let stats = Arc::new(TableStats::collect(&table));
            self.stats.write().insert(name.clone(), (generation, stats));
        }
        self.tables.write().insert(name, (generation, table));
        self.publish_catalog_gauges();
    }

    /// Publish the catalog's size as the `catalog.tables` / `catalog.rows`
    /// gauges — the planner-feedback signals alongside `stats.staleness`.
    fn publish_catalog_gauges(&self) {
        let tables = self.tables.read();
        let rows: u64 = tables.values().map(|(_, t)| t.len() as u64).sum();
        let registry = ua_obs::global();
        registry
            .gauge("catalog.tables")
            .set(i64::try_from(tables.len()).unwrap_or(i64::MAX));
        registry
            .gauge("catalog.rows")
            .set(i64::try_from(rows).unwrap_or(i64::MAX));
    }

    /// Fetch a table by name.
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.read().get(name).map(|(_, t)| Arc::clone(t))
    }

    /// Statistics for a table, collected from the *live* store: a cached
    /// snapshot is served only while it still describes the currently
    /// registered table; otherwise stats are recollected on the spot.
    pub fn stats_of(&self, name: &str) -> Option<Arc<TableStats>> {
        let (generation, table) = {
            let tables = self.tables.read();
            let (generation, table) = tables.get(name)?;
            (*generation, Arc::clone(table))
        };
        if let Some((cached, stats)) = self.stats.read().get(name) {
            if *cached == generation {
                return Some(Arc::clone(stats));
            }
        }
        // The cached snapshot described a replaced table: count the
        // staleness event (the `stats.staleness` counter the observability
        // docs' planner-feedback section reads) and recollect.
        ua_obs::global().counter("stats.staleness").inc();
        let stats = Arc::new(TableStats::collect(&table));
        self.stats
            .write()
            .insert(name.to_string(), (generation, Arc::clone(&stats)));
        Some(stats)
    }

    /// `ANALYZE`-style refresh: recollect a table's statistics from the live
    /// store unconditionally. Returns the fresh stats, or `None` for an
    /// unknown table.
    pub fn analyze(&self, name: &str) -> Option<Arc<TableStats>> {
        let (generation, table) = {
            let tables = self.tables.read();
            let (generation, table) = tables.get(name)?;
            (*generation, Arc::clone(table))
        };
        let stats = Arc::new(TableStats::collect(&table));
        self.stats
            .write()
            .insert(name.to_string(), (generation, Arc::clone(&stats)));
        Some(stats)
    }

    /// The schema of a table.
    pub fn schema_of(&self, name: &str) -> Option<Schema> {
        self.tables
            .read()
            .get(name)
            .map(|(_, t)| t.schema().clone())
    }

    /// Drop a table; returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        self.stats.write().remove(name);
        let existed = self.tables.write().remove(name).is_some();
        if existed {
            self.publish_catalog_gauges();
        }
        existed
    }

    /// Names of all registered tables.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::tuple;

    #[test]
    fn row_relation_round_trip() {
        let schema = Schema::qualified("r", ["a"]);
        let table = Table::from_rows(schema, vec![tuple![1i64], tuple![1i64], tuple![2i64]]);
        let rel = table.to_relation();
        assert_eq!(rel.annotation(&tuple![1i64]), 2);
        let back = Table::from_relation(&rel);
        assert_eq!(back.sorted_rows(), table.sorted_rows());
    }

    #[test]
    fn catalog_basics() {
        let catalog = Catalog::new();
        let schema = Schema::qualified("r", ["a"]);
        catalog.register("r", Table::from_rows(schema.clone(), vec![tuple![1i64]]));
        assert_eq!(catalog.get("r").unwrap().len(), 1);
        assert_eq!(catalog.schema_of("r"), Some(schema));
        assert_eq!(catalog.table_names(), vec!["r".to_string()]);
        assert!(catalog.drop_table("r"));
        assert!(!catalog.drop_table("r"));
        assert!(catalog.get("r").is_none());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(Schema::qualified("r", ["a", "b"]));
        t.push(tuple![1i64]);
    }

    #[test]
    fn stats_collected_on_register() {
        let catalog = Catalog::new();
        catalog.register(
            "r",
            Table::from_rows(
                Schema::qualified("r", ["a", "s"]),
                vec![
                    tuple![1i64, "x"],
                    tuple![1i64, "y"],
                    tuple![5i64, "x"],
                    tuple![9i64, "z"],
                ],
            ),
        );
        let stats = catalog.stats_of("r").unwrap();
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.columns[0].distinct, 3);
        assert_eq!(stats.columns[1].distinct, 3);
        let h = stats.columns[0].histogram.as_ref().unwrap();
        assert_eq!((h.lo, h.hi, h.total), (1.0, 9.0, 4));
        assert!(
            stats.columns[1].histogram.is_none(),
            "string column has no histogram"
        );
        assert!(catalog.stats_of("nope").is_none());
    }

    #[test]
    fn histogram_fractions_interpolate() {
        let t = Table::from_rows(
            Schema::qualified("r", ["a"]),
            (0..100i64).map(|i| tuple![i]).collect(),
        );
        let stats = TableStats::collect(&t);
        let h = stats.columns[0].histogram.as_ref().unwrap();
        assert_eq!(h.fraction_below(0.0, false), 0.0);
        assert_eq!(h.fraction_below(99.0, true), 1.0);
        let quarter = h.fraction_below(25.0, false);
        assert!(
            (quarter - 0.25).abs() < 0.05,
            "expected ~0.25, got {quarter}"
        );
    }

    #[test]
    fn distinct_counts_coerce_like_join_keys() {
        // 2 and 2.0 join under SQL `=`; the distinct count agrees.
        let t = Table::from_rows(
            Schema::qualified("r", ["a"]),
            vec![tuple![2i64], tuple![2.0], tuple![3i64]],
        );
        assert_eq!(TableStats::collect(&t).columns[0].distinct, 2);
    }

    #[test]
    fn stats_track_the_live_store() {
        // Replacing a table must not serve the old snapshot; `analyze`
        // refreshes explicitly.
        let catalog = Catalog::new();
        let schema = Schema::qualified("r", ["a"]);
        catalog.register("r", Table::from_rows(schema.clone(), vec![tuple![1i64]]));
        assert_eq!(catalog.stats_of("r").unwrap().rows, 1);
        catalog.register(
            "r",
            Table::from_rows(schema, vec![tuple![1i64], tuple![2i64], tuple![3i64]]),
        );
        assert_eq!(catalog.stats_of("r").unwrap().rows, 3);
        assert_eq!(catalog.analyze("r").unwrap().rows, 3);
        catalog.drop_table("r");
        assert!(catalog.stats_of("r").is_none());
    }

    #[test]
    fn nulls_are_counted_not_bucketed() {
        use ua_data::value::Value;
        let t = Table::from_rows(
            Schema::qualified("r", ["a"]),
            vec![
                tuple![1i64],
                Tuple::new(vec![Value::Null]),
                Tuple::new(vec![Value::Null]),
            ],
        );
        let stats = TableStats::collect(&t);
        assert_eq!(stats.columns[0].nulls, 2);
        assert_eq!(stats.columns[0].distinct, 1);
        assert_eq!(stats.columns[0].histogram.as_ref().unwrap().total, 1);
    }
}
