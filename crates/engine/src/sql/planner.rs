//! AST → physical-plan lowering.
//!
//! Name resolution is deferred to execution-time binding (expressions carry
//! names; operators bind them against their input schemas), so the planner's
//! jobs are structural: `FROM` folding, star expansion, aggregate
//! extraction, and source-annotation resolution. Annotated sources
//! (`R IS TI …`) are delegated to a [`SourceResolver`] — the UA frontend
//! supplies one that applies the paper's labeling schemes; the default
//! resolver rejects annotations so that the plain engine stays deterministic.

use crate::exec::EngineError;
use crate::plan::{AggExpr, AggFunc, OuterKind, Plan};
use crate::sql::ast::*;
use crate::storage::Catalog;
use ua_data::algebra::ProjColumn;
use ua_data::expr::{CmpOp, Expr};
use ua_data::schema::{Column, Schema};
use ua_data::value::Value;

/// Resolves source-annotated table references into plans.
pub trait SourceResolver {
    /// Produce a plan for `name` under `annotation`.
    fn resolve(
        &self,
        name: &str,
        annotation: &SourceAnnotation,
        catalog: &Catalog,
    ) -> Result<Plan, EngineError>;
}

/// The default resolver: annotations are an error (plain deterministic SQL).
pub struct RejectAnnotations;

impl SourceResolver for RejectAnnotations {
    fn resolve(
        &self,
        name: &str,
        _annotation: &SourceAnnotation,
        _catalog: &Catalog,
    ) -> Result<Plan, EngineError> {
        Err(EngineError::Sql(format!(
            "table `{name}` uses a source annotation; run it through the UA frontend"
        )))
    }
}

/// Compute the output schema of a plan without executing it.
pub fn plan_schema(plan: &Plan, catalog: &Catalog) -> Result<Schema, EngineError> {
    match plan {
        Plan::Scan(name) => catalog
            .schema_of(name)
            .ok_or_else(|| EngineError::UnknownTable(name.clone())),
        Plan::Alias { input, name } => Ok(plan_schema(input, catalog)?.with_qualifier(name)),
        Plan::Filter { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::TopK { input, .. }
        | Plan::Distinct { input } => plan_schema(input, catalog),
        Plan::Map { columns, .. } => Ok(Schema::new(
            columns.iter().map(|c| c.column.clone()).collect(),
        )),
        Plan::Join { left, right, .. }
        | Plan::HashJoin { left, right, .. }
        | Plan::OuterJoin { left, right, .. } => {
            Ok(plan_schema(left, catalog)?.concat(&plan_schema(right, catalog)?))
        }
        Plan::Except { left, right, .. } => {
            let l = plan_schema(left, catalog)?;
            let r = plan_schema(right, catalog)?;
            l.check_union_compatible(&r)?;
            Ok(l)
        }
        Plan::UnionAll { left, right } => {
            let l = plan_schema(left, catalog)?;
            let r = plan_schema(right, catalog)?;
            l.check_union_compatible(&r)?;
            Ok(l)
        }
        Plan::Aggregate {
            group_by,
            aggregates,
            ..
        } => {
            let mut cols: Vec<Column> = group_by.iter().map(|g| g.column.clone()).collect();
            cols.extend(aggregates.iter().map(|a| Column::unqualified(&a.name)));
            Ok(Schema::new(cols))
        }
    }
}

/// Plan a parsed query.
pub fn plan_query(
    query: &Query,
    catalog: &Catalog,
    resolver: &dyn SourceResolver,
) -> Result<Plan, EngineError> {
    let mut plans = query
        .selects
        .iter()
        .map(|s| plan_select(s, catalog, resolver))
        .collect::<Result<Vec<_>, _>>()?;
    let mut plan = plans.remove(0);
    for (op, next) in query.set_ops.iter().zip(plans) {
        plan = match op {
            SetOp::UnionAll => Plan::UnionAll {
                left: Box::new(plan),
                right: Box::new(next),
            },
            SetOp::Except | SetOp::ExceptAll => Plan::Except {
                left: Box::new(plan),
                right: Box::new(next),
                all: *op == SetOp::ExceptAll,
            },
        };
    }
    if !query.order_by.is_empty() {
        let keys = query
            .order_by
            .iter()
            .map(|(e, o)| Ok((lower_order_key(e, &query.selects[0])?, *o)))
            .collect::<Result<Vec<_>, EngineError>>()?;
        plan = Plan::Sort {
            input: Box::new(plan),
            keys,
        };
    }
    if let Some(limit) = query.limit {
        plan = Plan::Limit {
            input: Box::new(plan),
            limit,
        };
    }
    Ok(plan)
}

/// Lower one `ORDER BY` key. The sort operator runs over the *projected*
/// output, where source columns have been renamed or re-qualified
/// (`SELECT x.a FROM t IS TI ... x ORDER BY x.a` must order by output
/// column `a`, and `ORDER BY count(*)` by the aggregate's output name), so
/// a key that textually matches a select item is rewritten to that item's
/// output column; anything else is lowered as-is and binds against the
/// output schema.
fn lower_order_key(expr: &SqlExpr, select: &SelectStmt) -> Result<Expr, EngineError> {
    // SQL resolves a bare ORDER BY identifier against output aliases
    // *first* — `SELECT a AS b, b AS a ... ORDER BY a` orders by the
    // output column `a` (source `b`), not by the item whose source text
    // happens to be `a`.
    if let SqlExpr::Column(name) = expr {
        if !name.contains('.')
            && select.items.iter().any(|item| {
                item.alias
                    .as_deref()
                    .is_some_and(|a| a.eq_ignore_ascii_case(name))
            })
        {
            return Ok(Expr::named(name.clone()));
        }
    }
    for (i, item) in select.items.iter().enumerate() {
        if item.expr == *expr {
            let name = match &item.alias {
                Some(a) => a.clone(),
                None => derive_name(&item.expr, i),
            };
            return Ok(Expr::named(name));
        }
    }
    lower_scalar(expr)
}

fn plan_select(
    select: &SelectStmt,
    catalog: &Catalog,
    resolver: &dyn SourceResolver,
) -> Result<Plan, EngineError> {
    // FROM: fold comma items and JOIN clauses into a plan tree.
    let mut from_plan: Option<Plan> = None;
    for (base, joins) in &select.from {
        let mut item = plan_table_ref(base, catalog, resolver)?;
        for join in joins {
            let right = plan_table_ref(&join.table, catalog, resolver)?;
            let predicate = join.on.as_ref().map(lower_scalar).transpose()?;
            item = match join.kind {
                JoinKind::Inner => Plan::Join {
                    left: Box::new(item),
                    right: Box::new(right),
                    predicate,
                },
                JoinKind::Left | JoinKind::Right => Plan::OuterJoin {
                    left: Box::new(item),
                    right: Box::new(right),
                    predicate,
                    kind: if join.kind == JoinKind::Left {
                        OuterKind::Left
                    } else {
                        OuterKind::Right
                    },
                },
            };
        }
        from_plan = Some(match from_plan {
            None => item,
            Some(acc) => Plan::Join {
                left: Box::new(acc),
                right: Box::new(item),
                predicate: None,
            },
        });
    }
    let mut plan = from_plan.ok_or_else(|| EngineError::Sql("query needs a FROM clause".into()))?;

    if let Some(w) = &select.where_clause {
        // Split the WHERE conjunction: `NOT EXISTS (q)` / `x NOT IN (q)`
        // conjuncts become anti-join shapes over the FROM plan; everything
        // else folds back into one ordinary filter. Subquery predicates in
        // any other position have no plan-algebra lowering here.
        let mut conjuncts = Vec::new();
        collect_conjuncts(w, &mut conjuncts);
        let mut residual: Option<Expr> = None;
        let mut antis = Vec::new();
        for c in conjuncts {
            match anti_conjunct(c) {
                Some(shape) => antis.push(shape),
                None => {
                    if contains_subquery(c) {
                        return Err(EngineError::Sql(SUBQUERY_PLACEMENT_ERROR.into()));
                    }
                    let lowered = lower_scalar(c)?;
                    residual = Some(match residual {
                        None => lowered,
                        Some(acc) => acc.and(lowered),
                    });
                }
            }
        }
        if let Some(predicate) = residual {
            plan = Plan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }
        for (i, shape) in antis.into_iter().enumerate() {
            plan = lower_anti_join(plan, shape, i, catalog, resolver)?;
        }
    }

    let source_schema = plan_schema(&plan, catalog)?;

    let has_aggregates =
        !select.group_by.is_empty() || select.items.iter().any(|i| i.expr.contains_aggregate());

    plan = if has_aggregates {
        plan_aggregation(select, plan, catalog)?
    } else {
        let mut columns = Vec::new();
        for item in &select.items {
            expand_item(item, &source_schema, &mut columns)?;
        }
        Plan::Map {
            input: Box::new(plan),
            columns,
        }
    };

    if select.distinct {
        plan = Plan::Distinct {
            input: Box::new(plan),
        };
    }
    Ok(plan)
}

fn plan_table_ref(
    table: &TableRef,
    catalog: &Catalog,
    resolver: &dyn SourceResolver,
) -> Result<Plan, EngineError> {
    match table {
        TableRef::Named {
            name,
            alias,
            annotation,
        } => {
            let mut plan = match annotation {
                Some(a) => resolver.resolve(name, a, catalog)?,
                None => Plan::Scan(name.clone()),
            };
            if let Some(alias) = alias {
                plan = Plan::Alias {
                    input: Box::new(plan),
                    name: alias.clone(),
                };
            }
            Ok(plan)
        }
        TableRef::Subquery { query, alias } => Ok(Plan::Alias {
            input: Box::new(plan_query(query, catalog, resolver)?),
            name: alias.clone(),
        }),
    }
}

const SUBQUERY_PLACEMENT_ERROR: &str = "subquery predicates are only supported as top-level \
     NOT EXISTS / NOT IN conjuncts in WHERE";

/// Flatten a WHERE clause's `AND` spine into its conjuncts.
fn collect_conjuncts<'a>(expr: &'a SqlExpr, out: &mut Vec<&'a SqlExpr>) {
    if let SqlExpr::Binary(BinOp::And, a, b) = expr {
        collect_conjuncts(a, out);
        collect_conjuncts(b, out);
    } else {
        out.push(expr);
    }
}

/// A WHERE conjunct with an anti-join lowering.
enum AntiShape<'a> {
    /// `NOT EXISTS (query)`.
    Exists(&'a Query),
    /// `operand NOT IN (query)`.
    In(&'a SqlExpr, &'a Query),
}

/// Classify a conjunct as an anti-join shape, if it is one.
fn anti_conjunct(expr: &SqlExpr) -> Option<AntiShape<'_>> {
    match expr {
        SqlExpr::Not(inner) => match &**inner {
            SqlExpr::Exists(q) => Some(AntiShape::Exists(q)),
            SqlExpr::InSubquery {
                expr,
                query,
                negated: false,
            } => Some(AntiShape::In(expr, query)),
            _ => None,
        },
        SqlExpr::InSubquery {
            expr,
            query,
            negated: true,
        } => Some(AntiShape::In(expr, query)),
        _ => None,
    }
}

/// Whether the expression mentions a subquery predicate anywhere.
fn contains_subquery(expr: &SqlExpr) -> bool {
    match expr {
        SqlExpr::Exists(_) | SqlExpr::InSubquery { .. } => true,
        SqlExpr::Binary(_, a, b) => contains_subquery(a) || contains_subquery(b),
        SqlExpr::Not(a) => contains_subquery(a),
        SqlExpr::IsNull { expr, .. } => contains_subquery(expr),
        SqlExpr::Between {
            expr, low, high, ..
        } => contains_subquery(expr) || contains_subquery(low) || contains_subquery(high),
        SqlExpr::InList { expr, list, .. } => {
            contains_subquery(expr) || list.iter().any(contains_subquery)
        }
        SqlExpr::Case {
            operand,
            branches,
            otherwise,
        } => {
            operand.as_deref().is_some_and(contains_subquery)
                || branches
                    .iter()
                    .any(|(w, t)| contains_subquery(w) || contains_subquery(t))
                || otherwise.as_deref().is_some_and(contains_subquery)
        }
        SqlExpr::Func { args, .. } => args.iter().any(contains_subquery),
        _ => false,
    }
}

/// System-managed columns hidden from star expansion and schema restores.
fn is_system_column(col: &Column) -> bool {
    col.name.eq_ignore_ascii_case(ua_core::UA_LABEL_COLUMN)
        || crate::au::is_au_sidecar_name(&col.name)
}

/// Lower one `NOT EXISTS (q)` / `x NOT IN (q)` conjunct over `input`:
///
/// ```text
/// π_input( σ_{flag IS NULL}( input ⟕_pred Map_{[key,] flag := 1}(q) ) )
/// ```
///
/// The left outer join NULL-pads exactly the input rows with no match, the
/// filter keeps those, and the final projection restores the input's
/// visible schema. For `NOT IN` the ON predicate is the three-valued
/// `x = key OR x IS NULL OR key IS NULL`: a NULL on either side makes the
/// membership test unknown, and SQL's `NOT IN` must then drop the row —
/// which the join records as a match and the filter removes. `NOT EXISTS`
/// over an uncorrelated subquery joins unconditionally: any subquery row
/// matches every input row.
fn lower_anti_join(
    input: Plan,
    shape: AntiShape<'_>,
    index: usize,
    catalog: &Catalog,
    resolver: &dyn SourceResolver,
) -> Result<Plan, EngineError> {
    let input_schema = plan_schema(&input, catalog)?;
    let flag = format!("__anti_{index}");
    let (flagged, predicate) = match shape {
        AntiShape::Exists(q) => {
            let sub = plan_query(q, catalog, resolver)?;
            let flagged = Plan::Map {
                input: Box::new(sub),
                columns: vec![ProjColumn::expr(Expr::lit(1i64), flag.clone())],
            };
            (flagged, None)
        }
        AntiShape::In(operand, q) => {
            if contains_subquery(operand) {
                return Err(EngineError::Sql(SUBQUERY_PLACEMENT_ERROR.into()));
            }
            let sub = plan_query(q, catalog, resolver)?;
            let sub_schema = plan_schema(&sub, catalog)?;
            let visible: Vec<usize> = (0..sub_schema.arity())
                .filter(|&i| !is_system_column(&sub_schema.columns()[i]))
                .collect();
            if visible.len() != 1 {
                return Err(EngineError::Sql(format!(
                    "IN subquery must produce exactly one column, got {}",
                    visible.len()
                )));
            }
            let key_pos = visible[0];
            let key = format!("__in_{index}");
            let flagged = Plan::Map {
                input: Box::new(sub),
                columns: vec![
                    ProjColumn::expr(star_expr(&sub_schema, key_pos)?, key.clone()),
                    ProjColumn::expr(Expr::lit(1i64), flag.clone()),
                ],
            };
            let x = lower_scalar(operand)?;
            let k = Expr::named(key);
            let pred = x
                .clone()
                .eq(k.clone())
                .or(Expr::IsNull(Box::new(x)))
                .or(Expr::IsNull(Box::new(k)));
            (flagged, Some(pred))
        }
    };
    let filtered = Plan::Filter {
        input: Box::new(Plan::OuterJoin {
            left: Box::new(input),
            right: Box::new(flagged),
            predicate,
            kind: OuterKind::Left,
        }),
        predicate: Expr::IsNull(Box::new(Expr::named(flag))),
    };
    // Restore the input's visible schema: the flag/key columns are plan
    // bookkeeping, and the UA/AU encodings re-thread their own markers.
    let mut columns = Vec::new();
    for (i, col) in input_schema.columns().iter().enumerate() {
        if is_system_column(col) {
            continue;
        }
        columns.push(ProjColumn::with_column(
            star_expr(&input_schema, i)?,
            col.clone(),
        ));
    }
    Ok(Plan::Map {
        input: Box::new(filtered),
        columns,
    })
}

fn expand_item(
    item: &SelectItem,
    schema: &Schema,
    out: &mut Vec<ProjColumn>,
) -> Result<(), EngineError> {
    match &item.expr {
        SqlExpr::Star => {
            for (i, col) in schema.columns().iter().enumerate() {
                // The UA certainty marker and the AU bound/multiplicity
                // sidecars are system-managed: `SELECT *` yields the
                // user-visible columns, and the encodings re-append their
                // bookkeeping themselves.
                if col.name.eq_ignore_ascii_case(ua_core::UA_LABEL_COLUMN)
                    || crate::au::is_au_sidecar_name(&col.name)
                {
                    continue;
                }
                out.push(ProjColumn::with_column(star_expr(schema, i)?, col.clone()));
            }
            Ok(())
        }
        SqlExpr::QualifiedStar(q) => {
            let mut any = false;
            for (i, col) in schema.columns().iter().enumerate() {
                if col.name.eq_ignore_ascii_case(ua_core::UA_LABEL_COLUMN)
                    || crate::au::is_au_sidecar_name(&col.name)
                {
                    continue;
                }
                if col
                    .qualifier
                    .as_deref()
                    .is_some_and(|qual| qual.eq_ignore_ascii_case(q))
                {
                    out.push(ProjColumn::with_column(star_expr(schema, i)?, col.clone()));
                    any = true;
                }
            }
            if any {
                Ok(())
            } else {
                Err(EngineError::Sql(format!("no columns match `{q}.*`")))
            }
        }
        expr => {
            let lowered = lower_scalar(expr)?;
            let name = match &item.alias {
                Some(a) => a.clone(),
                None => derive_name(expr, out.len()),
            };
            out.push(ProjColumn::expr(lowered, name));
            Ok(())
        }
    }
}

/// The expression projecting column `i` in a `*` / `t.*` expansion.
///
/// Star expansion used to emit positional `Expr::Col(i)` references, but
/// positions computed here are relative to the *planning-time* schema — for
/// annotated (UA) sources that schema carries the `ua_c` marker column,
/// which the `⟦·⟧_UA` rewriting relocates and the vectorized path strips
/// from its batches, silently misaligning every column to the marker's
/// right. Name-based references survive both (the rewriting and the alias
/// operator preserve names and qualifiers), so prefer them whenever the
/// reference resolves uniquely back to this column; positional references
/// remain only for marker-free schemas, where planning-time and run-time
/// layouts are identical.
fn star_expr(schema: &Schema, i: usize) -> Result<Expr, EngineError> {
    let col = &schema.columns()[i];
    let reference = match &col.qualifier {
        Some(q) => format!("{q}.{}", col.name),
        None => col.name.to_string(),
    };
    if matches!(schema.resolve(&reference), Ok(j) if j == i) {
        return Ok(Expr::named(reference));
    }
    let has_marker = schema.columns().iter().any(|c| {
        c.name.eq_ignore_ascii_case(ua_core::UA_LABEL_COLUMN)
            || crate::au::is_au_sidecar_name(&c.name)
    });
    if has_marker {
        // A positional fallback would be unsound under the UA rewriting;
        // make the ambiguity a planning error instead of wrong answers.
        Err(EngineError::Schema(
            ua_data::schema::SchemaError::AmbiguousColumn(reference),
        ))
    } else {
        Ok(Expr::Col(i))
    }
}

fn derive_name(expr: &SqlExpr, position: usize) -> String {
    match expr {
        SqlExpr::Column(c) => c.rsplit('.').next().unwrap_or(c).to_string(),
        SqlExpr::Func { name, .. } => name.clone(),
        _ => format!("col{position}"),
    }
}

fn plan_aggregation(
    select: &SelectStmt,
    input: Plan,
    _catalog: &Catalog,
) -> Result<Plan, EngineError> {
    // Lower group-by expressions, assigning output names.
    let mut group_cols: Vec<ProjColumn> = Vec::new();
    for (i, g) in select.group_by.iter().enumerate() {
        let lowered = lower_scalar(g)?;
        let name = derive_name(g, i);
        group_cols.push(ProjColumn::expr(lowered, name));
    }

    // Walk the select list: aggregates become AggExprs, everything else must
    // match a GROUP BY expression.
    let mut aggregates: Vec<AggExpr> = Vec::new();
    let mut final_cols: Vec<ProjColumn> = Vec::new();
    for (i, item) in select.items.iter().enumerate() {
        let out_name = match &item.alias {
            Some(a) => a.clone(),
            None => derive_name(&item.expr, i),
        };
        match &item.expr {
            SqlExpr::Func { name, args } if is_aggregate_name(name) => {
                let internal = format!("__agg{}", aggregates.len());
                aggregates.push(lower_aggregate(name, args, &internal)?);
                final_cols.push(ProjColumn::expr(Expr::named(internal), out_name));
            }
            other if other.contains_aggregate() => {
                return Err(EngineError::Sql(format!(
                    "unsupported expression over aggregates: `{other}` \
                     (only bare aggregate calls are allowed in the select list)"
                )));
            }
            other => {
                let lowered = lower_scalar(other)?;
                let position = select
                    .group_by
                    .iter()
                    .position(|g| lower_scalar(g).map(|l| l == lowered).unwrap_or(false))
                    .ok_or_else(|| {
                        EngineError::Sql(format!(
                            "`{other}` appears in the select list but not in GROUP BY"
                        ))
                    })?;
                final_cols.push(ProjColumn::expr(
                    Expr::named(group_cols[position].name().to_string()),
                    out_name,
                ));
            }
        }
    }

    let agg = Plan::Aggregate {
        input: Box::new(input),
        group_by: group_cols,
        aggregates,
    };
    Ok(Plan::Map {
        input: Box::new(agg),
        columns: final_cols,
    })
}

fn lower_aggregate(name: &str, args: &[SqlExpr], out: &str) -> Result<AggExpr, EngineError> {
    let func = match name {
        "count" => {
            if args.len() == 1 && matches!(args[0], SqlExpr::Star) {
                return Ok(AggExpr {
                    func: AggFunc::CountStar,
                    arg: None,
                    name: out.to_string(),
                });
            }
            AggFunc::Count
        }
        "sum" => AggFunc::Sum,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        "avg" => AggFunc::Avg,
        "conf" => {
            return Err(EngineError::Sql(
                "conf() requires a probabilistic runtime; use the MayBMS-style \
                 baseline (ua-baselines) for confidence computation"
                    .into(),
            ))
        }
        other => return Err(EngineError::Sql(format!("unknown aggregate `{other}`"))),
    };
    if args.len() != 1 {
        return Err(EngineError::Sql(format!(
            "{name}() takes exactly one argument"
        )));
    }
    Ok(AggExpr {
        func,
        arg: Some(lower_scalar(&args[0])?),
        name: out.to_string(),
    })
}

/// Lower a scalar (non-aggregate) SQL expression to an engine expression.
pub fn lower_scalar(expr: &SqlExpr) -> Result<Expr, EngineError> {
    Ok(match expr {
        SqlExpr::Column(c) => Expr::named(c.clone()),
        SqlExpr::Star | SqlExpr::QualifiedStar(_) => {
            return Err(EngineError::Sql(
                "`*` is only valid in a select list".into(),
            ))
        }
        SqlExpr::Int(i) => Expr::lit(*i),
        SqlExpr::Float(x) => Expr::lit(*x),
        SqlExpr::Str(s) => Expr::lit(s.as_str()),
        SqlExpr::Bool(b) => Expr::lit(*b),
        SqlExpr::Null => Expr::Lit(Value::Null),
        SqlExpr::Binary(op, a, b) => {
            let left = lower_scalar(a)?;
            let right = lower_scalar(b)?;
            match op {
                BinOp::Eq => left.eq(right),
                BinOp::Ne => left.ne(right),
                BinOp::Lt => left.lt(right),
                BinOp::Le => left.le(right),
                BinOp::Gt => left.gt(right),
                BinOp::Ge => left.ge(right),
                BinOp::And => left.and(right),
                BinOp::Or => left.or(right),
                BinOp::Add => left.add(right),
                BinOp::Sub => left.sub(right),
                BinOp::Mul => left.mul(right),
                BinOp::Div => {
                    Expr::Arith(ua_data::expr::ArithOp::Div, Box::new(left), Box::new(right))
                }
            }
        }
        SqlExpr::Not(a) => lower_scalar(a)?.not(),
        SqlExpr::IsNull { expr, negated } => {
            let inner = Expr::IsNull(Box::new(lower_scalar(expr)?));
            if *negated {
                inner.not()
            } else {
                inner
            }
        }
        SqlExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let inner = lower_scalar(expr)?.between(lower_scalar(low)?, lower_scalar(high)?);
            if *negated {
                inner.not()
            } else {
                inner
            }
        }
        SqlExpr::InList {
            expr,
            list,
            negated,
        } => {
            let inner = Expr::InList(
                Box::new(lower_scalar(expr)?),
                list.iter().map(lower_scalar).collect::<Result<_, _>>()?,
            );
            if *negated {
                inner.not()
            } else {
                inner
            }
        }
        SqlExpr::InSubquery { .. } | SqlExpr::Exists(_) => {
            return Err(EngineError::Sql(SUBQUERY_PLACEMENT_ERROR.into()))
        }
        SqlExpr::Case {
            operand,
            branches,
            otherwise,
        } => {
            // Simple CASE desugars to searched CASE with equality tests.
            let branches = branches
                .iter()
                .map(|(w, t)| {
                    let when = match operand {
                        Some(op) => Expr::Cmp(
                            CmpOp::Eq,
                            Box::new(lower_scalar(op)?),
                            Box::new(lower_scalar(w)?),
                        ),
                        None => lower_scalar(w)?,
                    };
                    Ok((when, lower_scalar(t)?))
                })
                .collect::<Result<Vec<_>, EngineError>>()?;
            Expr::Case {
                branches,
                otherwise: otherwise
                    .as_ref()
                    .map(|e| lower_scalar(e).map(Box::new))
                    .transpose()?,
            }
        }
        SqlExpr::Func { name, args } => match name.as_str() {
            "least" => {
                if args.len() != 2 {
                    return Err(EngineError::Sql("least() takes two arguments".into()));
                }
                lower_scalar(&args[0])?.least(lower_scalar(&args[1])?)
            }
            other if is_aggregate_name(other) => {
                return Err(EngineError::Sql(format!(
                    "aggregate `{other}` used outside an aggregation context"
                )))
            }
            other => return Err(EngineError::Sql(format!("unknown function `{other}`"))),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::sql::parser::parse;
    use crate::storage::Table;
    use ua_data::tuple;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.register(
            "emp",
            Table::from_rows(
                Schema::qualified("emp", ["name", "dept", "salary"]),
                vec![
                    tuple!["ann", "eng", 100i64],
                    tuple!["bob", "eng", 80i64],
                    tuple!["cat", "ops", 60i64],
                ],
            ),
        );
        c.register(
            "dept",
            Table::from_rows(
                Schema::qualified("dept", ["name", "city"]),
                vec![tuple!["eng", "nyc"], tuple!["ops", "chi"]],
            ),
        );
        c
    }

    fn run(sql: &str) -> Table {
        let c = catalog();
        let q = parse(sql).unwrap();
        let plan = plan_query(&q, &c, &RejectAnnotations).unwrap();
        execute(&plan, &c).unwrap()
    }

    #[test]
    fn select_where() {
        let t = run("SELECT name FROM emp WHERE salary >= 80");
        assert_eq!(t.sorted_rows(), vec![tuple!["ann"], tuple!["bob"]]);
    }

    #[test]
    fn star_expansion() {
        let t = run("SELECT * FROM emp WHERE dept = 'ops'");
        assert_eq!(t.rows().len(), 1);
        assert_eq!(t.schema().arity(), 3);
        let t2 = run("SELECT e.* FROM emp e, dept d WHERE e.dept = d.name");
        assert_eq!(t2.schema().arity(), 3);
        assert_eq!(t2.len(), 3);
    }

    #[test]
    fn star_expansion_keeps_prefix_lookalike_user_columns() {
        // Only the *exact* AU sidecar names (`ua_lb_<i>`, `ua_m_lb`, …) are
        // system-managed; a user column that merely shares the prefix must
        // survive `SELECT *` in deterministic queries.
        let c = catalog();
        c.register(
            "notes",
            Table::from_rows(
                Schema::qualified("notes", ["a", "ua_lb_note", "ua_m_total"]),
                vec![tuple![1i64, "keep me", 9i64]],
            ),
        );
        let q = parse("SELECT * FROM notes").unwrap();
        let plan = plan_query(&q, &c, &RejectAnnotations).unwrap();
        let t = execute(&plan, &c).unwrap();
        assert_eq!(t.schema().arity(), 3, "lookalike columns must survive");
        // The generated sidecar names themselves stay reserved.
        assert!(crate::au::is_au_sidecar_name("ua_lb_0"));
        assert!(crate::au::is_au_sidecar_name("ua_m_lb"));
        assert!(!crate::au::is_au_sidecar_name("ua_lb_note"));
        assert!(!crate::au::is_au_sidecar_name("ua_m_total"));
        assert!(!crate::au::is_au_sidecar_name("ua_lb_"));
    }

    #[test]
    fn comma_join_and_explicit_join_agree() {
        let a = run("SELECT e.name, d.city FROM emp e, dept d WHERE e.dept = d.name");
        let b = run("SELECT e.name, d.city FROM emp e JOIN dept d ON e.dept = d.name");
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    #[test]
    fn aggregation() {
        let t = run("SELECT dept, count(*) AS n, sum(salary) AS total \
             FROM emp GROUP BY dept ORDER BY dept");
        assert_eq!(
            t.rows(),
            &[tuple!["eng", 2i64, 180i64], tuple!["ops", 1i64, 60i64]]
        );
    }

    #[test]
    fn aliases_and_case() {
        let t = run(
            "SELECT name, CASE dept WHEN 'eng' THEN 'tech' ELSE 'other' END AS kind \
             FROM emp ORDER BY name LIMIT 2",
        );
        assert_eq!(t.rows(), &[tuple!["ann", "tech"], tuple!["bob", "tech"]]);
    }

    #[test]
    fn union_all_and_distinct() {
        let t = run("SELECT dept FROM emp UNION ALL SELECT dept FROM emp");
        assert_eq!(t.len(), 6);
        let d = run("SELECT DISTINCT dept FROM emp");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn subquery() {
        let t = run(
            "SELECT x.name FROM (SELECT name, salary FROM emp WHERE salary > 70) x \
             WHERE x.salary < 90",
        );
        assert_eq!(t.rows(), &[tuple!["bob"]]);
    }

    #[test]
    fn order_by_source_expression_resolves_to_the_output_column() {
        // `x.salary` is renamed by the projection; ORDER BY may still use
        // the source-qualified form (and the aggregate form below).
        let t = run("SELECT e.name, e.salary AS pay FROM emp e ORDER BY e.salary DESC LIMIT 1");
        assert_eq!(t.rows(), &[tuple!["ann", 100i64]]);
        let t = run("SELECT dept, count(*) FROM emp GROUP BY dept ORDER BY count(*) DESC LIMIT 1");
        assert_eq!(t.rows(), &[tuple!["eng", 2i64]]);
    }

    #[test]
    fn order_by_resolves_output_aliases_before_source_text() {
        // With the alias swap `a AS b, b AS a`, `ORDER BY a` means the
        // *output* column `a` (source b): 50 before 100.
        let c = catalog();
        c.register(
            "t",
            Table::from_rows(
                Schema::qualified("t", ["a", "b"]),
                vec![tuple![1i64, 100i64], tuple![2i64, 50i64]],
            ),
        );
        let q = parse("SELECT a AS b, b AS a FROM t ORDER BY a ASC").unwrap();
        let plan = plan_query(&q, &c, &RejectAnnotations).unwrap();
        let t = execute(&plan, &c).unwrap();
        assert_eq!(t.rows(), &[tuple![2i64, 50i64], tuple![1i64, 100i64]]);
    }

    #[test]
    fn star_expansion_is_name_based_for_qualified_columns() {
        // Positional star expansion silently misaligns once the UA
        // rewriting relocates the marker column; qualified sources must
        // expand to name-based references (see `star_expr`).
        let c = catalog();
        let q = parse("SELECT * FROM emp e, dept d WHERE e.dept = d.name").unwrap();
        let plan = plan_query(&q, &c, &RejectAnnotations).unwrap();
        match &plan {
            Plan::Map { columns, .. } => {
                assert!(
                    columns.iter().all(|col| matches!(col.expr, Expr::Named(_))),
                    "expected name-based star expansion, got {columns:?}"
                );
            }
            other => panic!("expected Map on top, got {other}"),
        }
        assert_eq!(execute(&plan, &c).unwrap().len(), 3);
    }

    #[test]
    fn missing_group_by_reference_errors() {
        let c = catalog();
        let q = parse("SELECT name, count(*) FROM emp GROUP BY dept").unwrap();
        assert!(plan_query(&q, &c, &RejectAnnotations).is_err());
    }

    #[test]
    fn conf_rejected_by_plain_engine() {
        let c = catalog();
        let q = parse("SELECT conf() FROM emp").unwrap();
        assert!(matches!(
            plan_query(&q, &c, &RejectAnnotations),
            Err(EngineError::Sql(_))
        ));
    }

    #[test]
    fn annotations_rejected_without_ua_frontend() {
        let c = catalog();
        let q = parse("SELECT * FROM emp IS TI WITH PROBABILITY (salary)").unwrap();
        assert!(plan_query(&q, &c, &RejectAnnotations).is_err());
    }
}
