//! SQL abstract syntax.
//!
//! The dialect covers what the paper's evaluation needs: select-project-join
//! queries with expressions, `UNION ALL`, `DISTINCT`, grouping/aggregation,
//! ordering and limits — plus the paper's **source-annotation clauses**
//! (Section 9.2) that declare a relation to be a TI-DB, an x-relation or a
//! C-table so the frontend can label it and extract its best-guess world:
//!
//! ```sql
//! SELECT * FROM R IS TI WITH PROBABILITY (p)
//! SELECT * FROM R IS X WITH XID (tid) ALTID (aid) PROBABILITY (p)
//! SELECT * FROM R IS CTABLE WITH VARIABLES (v1, v2) LOCAL CONDITION (lc)
//! ```

use crate::plan::SortOrder;
use std::fmt;

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A SQL scalar expression.
#[derive(Clone, PartialEq, Debug)]
pub enum SqlExpr {
    /// Column reference (`name` or `qualifier.name`).
    Column(String),
    /// `*` (select list / `COUNT(*)` only).
    Star,
    /// `qualifier.*` (select list only).
    QualifiedStar(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `NULL`.
    Null,
    /// Binary operation.
    Binary(BinOp, Box<SqlExpr>, Box<SqlExpr>),
    /// `NOT expr`.
    Not(Box<SqlExpr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<SqlExpr>,
        /// Whether `NOT` was present.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Operand.
        expr: Box<SqlExpr>,
        /// Lower bound.
        low: Box<SqlExpr>,
        /// Upper bound.
        high: Box<SqlExpr>,
        /// Whether `NOT` was present.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, ..., vn)`.
    InList {
        /// Operand.
        expr: Box<SqlExpr>,
        /// List items.
        list: Vec<SqlExpr>,
        /// Whether `NOT` was present.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)` — an uncorrelated subquery membership
    /// test, lowered by the planner to an (anti-)join shape.
    InSubquery {
        /// Operand.
        expr: Box<SqlExpr>,
        /// The subquery (must produce exactly one column).
        query: Box<Query>,
        /// Whether `NOT` was present.
        negated: bool,
    },
    /// `EXISTS (SELECT ...)` — an uncorrelated subquery emptiness test.
    /// `NOT EXISTS` arrives as [`SqlExpr::Not`] around this.
    Exists(Box<Query>),
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        /// The simple-`CASE` operand, when present.
        operand: Option<Box<SqlExpr>>,
        /// `(when, then)` branches.
        branches: Vec<(SqlExpr, SqlExpr)>,
        /// The `ELSE` result.
        otherwise: Option<Box<SqlExpr>>,
    },
    /// Function call (aggregates and scalars, resolved by the planner).
    Func {
        /// Lower-cased function name.
        name: String,
        /// Arguments (`COUNT(*)` encodes as a single [`SqlExpr::Star`] arg).
        args: Vec<SqlExpr>,
    },
}

impl SqlExpr {
    /// Whether this expression contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            SqlExpr::Func { name, args } => {
                is_aggregate_name(name) || args.iter().any(SqlExpr::contains_aggregate)
            }
            SqlExpr::Binary(_, a, b) => a.contains_aggregate() || b.contains_aggregate(),
            SqlExpr::Not(a) => a.contains_aggregate(),
            SqlExpr::IsNull { expr, .. } => expr.contains_aggregate(),
            SqlExpr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            SqlExpr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(SqlExpr::contains_aggregate)
            }
            // A subquery is its own aggregation context; only the outer
            // operand counts here.
            SqlExpr::InSubquery { expr, .. } => expr.contains_aggregate(),
            SqlExpr::Exists(_) => false,
            SqlExpr::Case {
                operand,
                branches,
                otherwise,
            } => {
                operand.as_deref().is_some_and(SqlExpr::contains_aggregate)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || otherwise
                        .as_deref()
                        .is_some_and(SqlExpr::contains_aggregate)
            }
            _ => false,
        }
    }
}

/// Whether a function name denotes an aggregate.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "count" | "sum" | "min" | "max" | "avg" | "conf")
}

/// One select-list item.
#[derive(Clone, PartialEq, Debug)]
pub struct SelectItem {
    /// The expression.
    pub expr: SqlExpr,
    /// `AS alias`, when given.
    pub alias: Option<String>,
}

/// The paper's source-annotation clauses (Section 9.2).
#[derive(Clone, PartialEq, Debug)]
pub enum SourceAnnotation {
    /// `IS TI WITH PROBABILITY (p)`.
    Ti {
        /// Column storing the marginal probability.
        probability: String,
    },
    /// `IS X WITH XID (x) ALTID (a) PROBABILITY (p)`.
    X {
        /// Column storing the x-tuple identifier.
        xid: String,
        /// Column storing the alternative identifier.
        altid: String,
        /// Column storing the alternative probability.
        probability: String,
    },
    /// `IS CTABLE WITH VARIABLES (v1, ...) LOCAL CONDITION (lc)`.
    CTable {
        /// Columns storing variable bindings (NULL = the attribute is the
        /// constant stored in the corresponding data column).
        variables: Vec<String>,
        /// Column storing the textual local condition.
        condition: String,
    },
}

/// A table reference in `FROM`.
#[derive(Clone, PartialEq, Debug)]
pub enum TableRef {
    /// A named table, optionally aliased and/or source-annotated.
    Named {
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
        /// Optional source annotation.
        annotation: Option<SourceAnnotation>,
    },
    /// A parenthesized subquery with mandatory alias.
    Subquery {
        /// The subquery.
        query: Box<Query>,
        /// Its alias.
        alias: String,
    },
}

/// The flavor of an explicit `JOIN` clause.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JoinKind {
    /// `[INNER] JOIN ... ON` and `CROSS JOIN`.
    Inner,
    /// `LEFT [OUTER] JOIN ... ON`.
    Left,
    /// `RIGHT [OUTER] JOIN ... ON`.
    Right,
}

/// One `JOIN ... ON ...` clause attached to the preceding `FROM` item.
#[derive(Clone, PartialEq, Debug)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// The `ON` predicate (`None` for `CROSS JOIN`).
    pub on: Option<SqlExpr>,
    /// Inner, left outer, or right outer.
    pub kind: JoinKind,
}

/// A single `SELECT` block.
#[derive(Clone, PartialEq, Debug)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Select list.
    pub items: Vec<SelectItem>,
    /// Comma-separated `FROM` items.
    pub from: Vec<(TableRef, Vec<JoinClause>)>,
    /// `WHERE` predicate.
    pub where_clause: Option<SqlExpr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<SqlExpr>,
}

/// A set-operation connector between adjacent `SELECT` blocks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SetOp {
    /// `UNION ALL`.
    UnionAll,
    /// `EXCEPT` (set semantics).
    Except,
    /// `EXCEPT ALL` (bag monus).
    ExceptAll,
}

/// A full query: `SELECT` blocks combined with `UNION ALL` / `EXCEPT
/// [ALL]`, plus ordering and limit.
#[derive(Clone, PartialEq, Debug)]
pub struct Query {
    /// The `SELECT` blocks (at least one).
    pub selects: Vec<SelectStmt>,
    /// Connectors between adjacent blocks, left-associative:
    /// `set_ops[i]` combines the result so far with `selects[i + 1]`, so
    /// `set_ops.len() == selects.len() - 1`.
    pub set_ops: Vec<SetOp>,
    /// `ORDER BY` keys.
    pub order_by: Vec<(SqlExpr, SortOrder)>,
    /// `LIMIT`.
    pub limit: Option<usize>,
}

impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlExpr::Column(c) => write!(f, "{c}"),
            SqlExpr::Star => write!(f, "*"),
            SqlExpr::QualifiedStar(q) => write!(f, "{q}.*"),
            SqlExpr::Int(i) => write!(f, "{i}"),
            SqlExpr::Float(x) => write!(f, "{x}"),
            SqlExpr::Str(s) => write!(f, "'{s}'"),
            SqlExpr::Bool(b) => write!(f, "{b}"),
            SqlExpr::Null => write!(f, "NULL"),
            SqlExpr::Binary(op, a, b) => {
                let sym = match op {
                    BinOp::Eq => "=",
                    BinOp::Ne => "<>",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                };
                write!(f, "({a} {sym} {b})")
            }
            SqlExpr::Not(a) => write!(f, "(NOT {a})"),
            SqlExpr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            SqlExpr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            SqlExpr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, item) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "))")
            }
            SqlExpr::InSubquery { expr, negated, .. } => {
                write!(
                    f,
                    "({expr} {}IN (<subquery>))",
                    if *negated { "NOT " } else { "" }
                )
            }
            SqlExpr::Exists(_) => write!(f, "EXISTS (<subquery>)"),
            SqlExpr::Case {
                operand,
                branches,
                otherwise,
            } => {
                write!(f, "CASE")?;
                if let Some(o) = operand {
                    write!(f, " {o}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = otherwise {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            SqlExpr::Func { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}
