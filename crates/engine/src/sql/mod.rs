//! The SQL frontend: lexer, parser, AST and planner.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use ast::{Query, SelectStmt, SourceAnnotation, SqlExpr, TableRef};
pub use parser::{parse, ParseError};
pub use planner::{lower_scalar, plan_query, plan_schema, RejectAnnotations, SourceResolver};
