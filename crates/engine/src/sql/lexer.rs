//! SQL lexer.
//!
//! Tokenizes the engine's SQL dialect: identifiers (optionally
//! double-quoted), integer/float literals, single-quoted strings with `''`
//! escapes, operators and punctuation. Keywords are recognized later, by the
//! parser, so that identifiers like a column named `state` never clash.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    /// Bare or quoted identifier (case preserved; matching is
    /// case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `;`
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Semicolon => write!(f, ";"),
        }
    }
}

/// A lexing failure with byte position.
#[derive(Clone, PartialEq, Debug)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub position: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `input`.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "unexpected `!`".into(),
                        position: i,
                    });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            position: start,
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Keep multi-byte UTF-8 intact.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(&input[i..i + ch_len]);
                        i += ch_len;
                    }
                }
                tokens.push(Token::Str(s));
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                while i < bytes.len() && bytes[i] != b'"' {
                    let ch_len = utf8_len(bytes[i]);
                    s.push_str(&input[i..i + ch_len]);
                    i += ch_len;
                }
                if i >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated quoted identifier".into(),
                        position: start,
                    });
                }
                i += 1;
                tokens.push(Token::Ident(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|_| LexError {
                        message: format!("invalid float literal `{text}`"),
                        position: start,
                    })?));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|_| LexError {
                        message: format!("invalid integer literal `{text}`"),
                        position: start,
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    position: i,
                });
            }
        }
    }
    Ok(tokens)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = lex("SELECT a.b, 'it''s', 3.5 FROM t WHERE x <= 10").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::Str("it's".into())));
        assert!(toks.contains(&Token::Float(3.5)));
        assert!(toks.contains(&Token::Le));
    }

    #[test]
    fn operators() {
        let toks = lex("a <> b != c >= d <= e < f > g = h").unwrap();
        let ops: Vec<&Token> = toks
            .iter()
            .filter(|t| !matches!(t, Token::Ident(_)))
            .collect();
        assert_eq!(
            ops,
            vec![
                &Token::Ne,
                &Token::Ne,
                &Token::Ge,
                &Token::Le,
                &Token::Lt,
                &Token::Gt,
                &Token::Eq
            ]
        );
    }

    #[test]
    fn comments_and_quoted_identifiers() {
        let toks = lex("SELECT \"Weird Col\" -- trailing comment\nFROM t").unwrap();
        assert_eq!(toks[1], Token::Ident("Weird Col".into()));
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn numbers() {
        let toks = lex("1 2.5 1e3 7").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(1000.0),
                Token::Int(7)
            ]
        );
    }

    #[test]
    fn negative_handled_by_parser() {
        // `-` lexes as Minus; unary minus is a parser concern.
        let toks = lex("-5").unwrap();
        assert_eq!(toks, vec![Token::Minus, Token::Int(5)]);
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("€").is_err());
    }
}
