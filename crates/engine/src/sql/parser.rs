//! Recursive-descent SQL parser.

use crate::plan::SortOrder;
use crate::sql::ast::*;
use crate::sql::lexer::{lex, LexError, Token};
use std::fmt;

/// A parse failure.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::new(e.to_string())
    }
}

/// Words that terminate an implicit alias position.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "order", "limit", "on", "join", "inner", "cross", "union",
    "all", "is", "as", "and", "or", "not", "by", "having", "asc", "desc", "when", "then", "else",
    "end", "case", "between", "in", "null", "distinct", "with", "except", "left", "right", "outer",
    "exists",
];

/// Parse one SQL query.
pub fn parse(sql: &str) -> Result<Query, ParseError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.eat_semicolons();
    if !p.at_end() {
        return Err(ParseError::new(format!(
            "trailing input starting at `{}`",
            p.peek_text()
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_text(&self) -> String {
        self.peek()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "<eof>".into())
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Whether the next token is the given keyword (case-insensitive).
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn peek_kw_at(&self, offset: usize, kw: &str) -> bool {
        matches!(self.tokens.get(self.pos + offset), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the keyword if present.
    fn accept_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected `{}`, found `{}`",
                kw.to_uppercase(),
                self.peek_text()
            )))
        }
    }

    fn accept(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<(), ParseError> {
        if self.accept(tok) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected `{tok}`, found `{}`",
                self.peek_text()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError::new(format!(
                "expected identifier, found `{}`",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "<eof>".into())
            ))),
        }
    }

    fn eat_semicolons(&mut self) {
        while self.accept(&Token::Semicolon) {}
    }

    // ---- grammar ---------------------------------------------------------

    fn query(&mut self) -> Result<Query, ParseError> {
        let mut selects = vec![self.select_stmt()?];
        let mut set_ops = Vec::new();
        loop {
            if self.peek_kw("union") {
                self.pos += 1;
                self.expect_kw("all")?;
                set_ops.push(SetOp::UnionAll);
            } else if self.accept_kw("except") {
                set_ops.push(if self.accept_kw("all") {
                    SetOp::ExceptAll
                } else {
                    SetOp::Except
                });
            } else {
                break;
            }
            selects.push(self.select_stmt()?);
        }
        let mut order_by = Vec::new();
        if self.accept_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let dir = if self.accept_kw("desc") {
                    SortOrder::Desc
                } else {
                    self.accept_kw("asc");
                    SortOrder::Asc
                };
                order_by.push((e, dir));
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.accept_kw("limit") {
            match self.advance() {
                Some(Token::Int(n)) if n >= 0 => limit = Some(n as usize),
                other => {
                    return Err(ParseError::new(format!(
                        "LIMIT expects a non-negative integer, found `{}`",
                        other
                            .map(|t| t.to_string())
                            .unwrap_or_else(|| "<eof>".into())
                    )))
                }
            }
        }
        Ok(Query {
            selects,
            set_ops,
            order_by,
            limit,
        })
    }

    fn select_stmt(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_kw("select")?;
        let distinct = self.accept_kw("distinct");
        let mut items = vec![self.select_item()?];
        while self.accept(&Token::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let mut from = vec![self.from_item()?];
        while self.accept(&Token::Comma) {
            from.push(self.from_item()?);
        }
        let where_clause = if self.accept_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.accept_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }
        Ok(SelectStmt {
            distinct,
            items,
            from,
            where_clause,
            group_by,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        // `*` and `t.*`
        if self.accept(&Token::Star) {
            return Ok(SelectItem {
                expr: SqlExpr::Star,
                alias: None,
            });
        }
        if let (Some(Token::Ident(q)), Some(Token::Dot), Some(Token::Star)) = (
            self.tokens.get(self.pos),
            self.tokens.get(self.pos + 1),
            self.tokens.get(self.pos + 2),
        ) {
            let q = q.clone();
            self.pos += 3;
            return Ok(SelectItem {
                expr: SqlExpr::QualifiedStar(q),
                alias: None,
            });
        }
        let expr = self.expr()?;
        let alias = self.optional_alias();
        Ok(SelectItem { expr, alias })
    }

    fn optional_alias(&mut self) -> Option<String> {
        if self.accept_kw("as") {
            return self.ident().ok();
        }
        if let Some(Token::Ident(s)) = self.peek() {
            if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) {
                let s = s.clone();
                self.pos += 1;
                return Some(s);
            }
        }
        None
    }

    #[allow(clippy::wrong_self_convention)] // parses a FROM item; not a conversion
    fn from_item(&mut self) -> Result<(TableRef, Vec<JoinClause>), ParseError> {
        let base = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            if self.peek_kw("join") || (self.peek_kw("inner") && self.peek_kw_at(1, "join")) {
                self.accept_kw("inner");
                self.expect_kw("join")?;
                let table = self.table_ref()?;
                self.expect_kw("on")?;
                let on = self.expr()?;
                joins.push(JoinClause {
                    table,
                    on: Some(on),
                    kind: JoinKind::Inner,
                });
            } else if self.peek_kw("left") || self.peek_kw("right") {
                let kind = if self.accept_kw("left") {
                    JoinKind::Left
                } else {
                    self.pos += 1;
                    JoinKind::Right
                };
                self.accept_kw("outer");
                self.expect_kw("join")?;
                let table = self.table_ref()?;
                self.expect_kw("on")?;
                let on = self.expr()?;
                joins.push(JoinClause {
                    table,
                    on: Some(on),
                    kind,
                });
            } else if self.peek_kw("cross") && self.peek_kw_at(1, "join") {
                self.pos += 2;
                let table = self.table_ref()?;
                joins.push(JoinClause {
                    table,
                    on: None,
                    kind: JoinKind::Inner,
                });
            } else {
                break;
            }
        }
        Ok((base, joins))
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        if self.accept(&Token::LParen) {
            let query = self.query()?;
            self.expect(&Token::RParen)?;
            self.accept_kw("as");
            let alias = self.ident()?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        let annotation = if self.peek_kw("is") && !self.peek_kw_at(1, "null") {
            self.pos += 1;
            Some(self.source_annotation()?)
        } else {
            None
        };
        let alias = self.optional_alias();
        Ok(TableRef::Named {
            name,
            alias,
            annotation,
        })
    }

    fn parenthesized_ident(&mut self) -> Result<String, ParseError> {
        self.expect(&Token::LParen)?;
        let id = self.ident()?;
        self.expect(&Token::RParen)?;
        Ok(id)
    }

    fn source_annotation(&mut self) -> Result<SourceAnnotation, ParseError> {
        if self.accept_kw("ti") {
            self.expect_kw("with")?;
            self.expect_kw("probability")?;
            let probability = self.parenthesized_ident()?;
            Ok(SourceAnnotation::Ti { probability })
        } else if self.accept_kw("x") {
            self.expect_kw("with")?;
            self.expect_kw("xid")?;
            let xid = self.parenthesized_ident()?;
            self.expect_kw("altid")?;
            let altid = self.parenthesized_ident()?;
            self.expect_kw("probability")?;
            let probability = self.parenthesized_ident()?;
            Ok(SourceAnnotation::X {
                xid,
                altid,
                probability,
            })
        } else if self.accept_kw("ctable") {
            self.expect_kw("with")?;
            self.expect_kw("variables")?;
            self.expect(&Token::LParen)?;
            let mut variables = vec![self.ident()?];
            while self.accept(&Token::Comma) {
                variables.push(self.ident()?);
            }
            self.expect(&Token::RParen)?;
            self.expect_kw("local")?;
            self.expect_kw("condition")?;
            let condition = self.parenthesized_ident()?;
            Ok(SourceAnnotation::CTable {
                variables,
                condition,
            })
        } else {
            Err(ParseError::new(format!(
                "expected TI, X or CTABLE after IS, found `{}`",
                self.peek_text()
            )))
        }
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<SqlExpr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.and_expr()?;
        while self.accept_kw("or") {
            let right = self.and_expr()?;
            left = SqlExpr::Binary(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.not_expr()?;
        while self.accept_kw("and") {
            let right = self.not_expr()?;
            left = SqlExpr::Binary(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, ParseError> {
        if self.accept_kw("not") {
            Ok(SqlExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<SqlExpr, ParseError> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.peek_kw("is") {
            self.pos += 1;
            let negated = self.accept_kw("not");
            self.expect_kw("null")?;
            return Ok(SqlExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] BETWEEN / IN
        let negated =
            if self.peek_kw("not") && (self.peek_kw_at(1, "between") || self.peek_kw_at(1, "in")) {
                self.pos += 1;
                true
            } else {
                false
            };
        if self.accept_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(SqlExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.accept_kw("in") {
            self.expect(&Token::LParen)?;
            if self.peek_kw("select") {
                let query = self.query()?;
                self.expect(&Token::RParen)?;
                return Ok(SqlExpr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(query),
                    negated,
                });
            }
            let mut list = vec![self.expr()?];
            while self.accept(&Token::Comma) {
                list.push(self.expr()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(SqlExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(ParseError::new("dangling NOT before predicate"));
        }
        // Comparison operators.
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(SqlExpr::Binary(op, Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = SqlExpr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = SqlExpr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<SqlExpr, ParseError> {
        if self.accept(&Token::Minus) {
            let inner = self.unary()?;
            return Ok(match inner {
                SqlExpr::Int(i) => SqlExpr::Int(-i),
                SqlExpr::Float(x) => SqlExpr::Float(-x),
                other => SqlExpr::Binary(BinOp::Sub, Box::new(SqlExpr::Int(0)), Box::new(other)),
            });
        }
        if self.accept(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SqlExpr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(SqlExpr::Int(i))
            }
            Some(Token::Float(x)) => {
                self.pos += 1;
                Ok(SqlExpr::Float(x))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(SqlExpr::Str(s))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Star) => {
                self.pos += 1;
                Ok(SqlExpr::Star)
            }
            Some(Token::Ident(word)) => {
                let lower = word.to_ascii_lowercase();
                match lower.as_str() {
                    "null" => {
                        self.pos += 1;
                        Ok(SqlExpr::Null)
                    }
                    "true" => {
                        self.pos += 1;
                        Ok(SqlExpr::Bool(true))
                    }
                    "false" => {
                        self.pos += 1;
                        Ok(SqlExpr::Bool(false))
                    }
                    "case" => self.case_expr(),
                    // `EXISTS (SELECT ...)` — before the function-call
                    // check, which the `(` would otherwise trigger.
                    "exists" if self.tokens.get(self.pos + 1) == Some(&Token::LParen) => {
                        self.pos += 2;
                        let query = self.query()?;
                        self.expect(&Token::RParen)?;
                        Ok(SqlExpr::Exists(Box::new(query)))
                    }
                    _ => {
                        // Function call?
                        if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                            self.pos += 2;
                            let mut args = Vec::new();
                            if !self.accept(&Token::RParen) {
                                loop {
                                    if self.accept(&Token::Star) {
                                        args.push(SqlExpr::Star);
                                    } else {
                                        args.push(self.expr()?);
                                    }
                                    if !self.accept(&Token::Comma) {
                                        break;
                                    }
                                }
                                self.expect(&Token::RParen)?;
                            }
                            return Ok(SqlExpr::Func { name: lower, args });
                        }
                        // Column reference, possibly qualified.
                        self.pos += 1;
                        if self.accept(&Token::Dot) {
                            let col = self.ident()?;
                            Ok(SqlExpr::Column(format!("{word}.{col}")))
                        } else {
                            Ok(SqlExpr::Column(word))
                        }
                    }
                }
            }
            other => Err(ParseError::new(format!(
                "expected expression, found `{}`",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "<eof>".into())
            ))),
        }
    }

    fn case_expr(&mut self) -> Result<SqlExpr, ParseError> {
        self.expect_kw("case")?;
        let operand = if self.peek_kw("when") {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut branches = Vec::new();
        while self.accept_kw("when") {
            let w = self.expr()?;
            self.expect_kw("then")?;
            let t = self.expr()?;
            branches.push((w, t));
        }
        if branches.is_empty() {
            return Err(ParseError::new("CASE requires at least one WHEN branch"));
        }
        let otherwise = if self.accept_kw("else") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        Ok(SqlExpr::Case {
            operand,
            branches,
            otherwise,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse("SELECT a, b FROM t WHERE a < 10").unwrap();
        assert_eq!(q.selects.len(), 1);
        let s = &q.selects[0];
        assert_eq!(s.items.len(), 2);
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn paper_query_q1() {
        // Figure: the paper's Q1 with CASE over IUCR codes.
        let q = parse(
            "SELECT id, case_number, \
             CASE iucr WHEN 820 THEN 'Theft' WHEN 486 THEN 'Domestic Battery' \
                       WHEN 1320 THEN 'Criminal Damage' END AS crime_type \
             FROM crime WHERE iucr = 820 OR iucr = 486 OR iucr = 1320",
        )
        .unwrap();
        let s = &q.selects[0];
        assert_eq!(s.items.len(), 3);
        assert_eq!(s.items[2].alias.as_deref(), Some("crime_type"));
        assert!(matches!(s.items[2].expr, SqlExpr::Case { .. }));
    }

    #[test]
    fn paper_query_q2_between() {
        let q = parse(
            "SELECT id FROM crime WHERE longitude BETWEEN -87.674 AND -87.619 \
             AND latitude BETWEEN 41.892 AND 41.903",
        )
        .unwrap();
        assert!(q.selects[0].where_clause.is_some());
    }

    #[test]
    fn subqueries_and_aliases() {
        // The paper's Q5 shape: subqueries with aliases, θ-join in WHERE.
        let q = parse(
            "SELECT c.id, g.status FROM \
             (SELECT * FROM graffiti WHERE police_district = 8) g, \
             (SELECT * FROM crime WHERE district = '008') c \
             WHERE c.x < g.x + 100 AND c.x > g.x - 100",
        )
        .unwrap();
        let s = &q.selects[0];
        assert_eq!(s.from.len(), 2);
        assert!(matches!(s.from[0].0, TableRef::Subquery { .. }));
    }

    #[test]
    fn ti_annotation() {
        let q = parse("SELECT * FROM r IS TI WITH PROBABILITY (p)").unwrap();
        match &q.selects[0].from[0].0 {
            TableRef::Named {
                annotation: Some(SourceAnnotation::Ti { probability }),
                ..
            } => assert_eq!(probability, "p"),
            other => panic!("expected TI annotation, got {other:?}"),
        }
    }

    #[test]
    fn x_annotation() {
        let q =
            parse("SELECT * FROM r IS X WITH XID (tid) ALTID (aid) PROBABILITY (p) r2").unwrap();
        match &q.selects[0].from[0].0 {
            TableRef::Named {
                alias,
                annotation:
                    Some(SourceAnnotation::X {
                        xid,
                        altid,
                        probability,
                    }),
                ..
            } => {
                assert_eq!(
                    (xid.as_str(), altid.as_str(), probability.as_str()),
                    ("tid", "aid", "p")
                );
                assert_eq!(alias.as_deref(), Some("r2"));
            }
            other => panic!("expected X annotation, got {other:?}"),
        }
    }

    #[test]
    fn ctable_annotation() {
        let q = parse("SELECT * FROM r IS CTABLE WITH VARIABLES (v1, v2) LOCAL CONDITION (lc)")
            .unwrap();
        match &q.selects[0].from[0].0 {
            TableRef::Named {
                annotation:
                    Some(SourceAnnotation::CTable {
                        variables,
                        condition,
                    }),
                ..
            } => {
                assert_eq!(variables, &["v1", "v2"]);
                assert_eq!(condition, "lc");
            }
            other => panic!("expected CTABLE annotation, got {other:?}"),
        }
    }

    #[test]
    fn is_null_vs_is_ti() {
        let q = parse("SELECT * FROM r WHERE a IS NOT NULL AND b IS NULL").unwrap();
        assert!(q.selects[0].from.iter().all(|(t, _)| matches!(
            t,
            TableRef::Named {
                annotation: None,
                ..
            }
        )));
    }

    #[test]
    fn joins() {
        let q = parse("SELECT * FROM a JOIN b ON a.x = b.y CROSS JOIN c WHERE a.z > 0").unwrap();
        let (_, joins) = &q.selects[0].from[0];
        assert_eq!(joins.len(), 2);
        assert!(joins[0].on.is_some());
        assert!(joins[1].on.is_none());
    }

    #[test]
    fn union_all_order_limit() {
        let q =
            parse("SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY a DESC, b LIMIT 10").unwrap();
        assert_eq!(q.selects.len(), 2);
        assert_eq!(q.order_by.len(), 2);
        assert_eq!(q.order_by[0].1, SortOrder::Desc);
        assert_eq!(q.order_by[1].1, SortOrder::Asc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn group_by_and_aggregates() {
        let q =
            parse("SELECT dept, count(*), sum(salary) AS total FROM emp GROUP BY dept").unwrap();
        let s = &q.selects[0];
        assert_eq!(s.group_by.len(), 1);
        assert!(s.items[1].expr.contains_aggregate());
        assert_eq!(s.items[2].alias.as_deref(), Some("total"));
    }

    #[test]
    fn distinct_and_stars() {
        let q = parse("SELECT DISTINCT t.*, u.a FROM t, u").unwrap();
        let s = &q.selects[0];
        assert!(s.distinct);
        assert!(matches!(s.items[0].expr, SqlExpr::QualifiedStar(_)));
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse("SELECT a + b * 2 FROM t").unwrap();
        match &q.selects[0].items[0].expr {
            SqlExpr::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(**rhs, SqlExpr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected tree: {other:?}"),
        }
    }

    #[test]
    fn unary_minus() {
        let q = parse("SELECT -5, -a FROM t").unwrap();
        assert_eq!(q.selects[0].items[0].expr, SqlExpr::Int(-5));
        assert!(matches!(
            q.selects[0].items[1].expr,
            SqlExpr::Binary(BinOp::Sub, _, _)
        ));
    }

    #[test]
    fn errors() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t GROUP a").is_err());
        assert!(parse("SELECT a FROM t extra garbage !").is_err());
        assert!(parse("SELECT a FROM r IS Q WITH NONSENSE (p)").is_err());
    }
}
