//! A bag-semantics relational engine with a SQL frontend and the UA-DB
//! query-rewriting middleware (paper Section 9).
//!
//! Layers, bottom-up:
//!
//! * [`storage`] — row-oriented tables + a shared catalog (a tuple with
//!   multiplicity `n` is stored as `n` row copies, the representation the
//!   paper's encoding targets);
//! * [`plan`] / [`exec`] — physical plans and the materializing executor
//!   (hash joins on extractable equi-keys, grouping, sorting, limits);
//! * [`optimize`] — the pass pipeline (filter pushdown, cost-aware join
//!   planning into [`plan::Plan::HashJoin`]) applied uniformly to both
//!   executors' plans before dispatch;
//! * [`sql`] — lexer, parser and planner for a SPJUA SQL dialect including
//!   the paper's source-annotation clauses (Section 9.2);
//! * [`ua`] — the UA frontend: labeling-scheme source conversion,
//!   `⟦·⟧_UA` rewriting and execution over the encoded representation.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod au;
pub mod exec;
pub mod mode;
pub mod optimize;
pub mod plan;
pub mod sql;
pub mod stats;
pub mod storage;
pub mod ua;

pub use au::{
    agg_kind, au_binary, au_table, au_unary, ctable_source_au, execute_au, is_au_sidecar_name,
    reject_marker_in_plan, ti_source_au, x_source_au, AuResult,
};
pub use exec::{execute, limit_table, sort_table, top_k_table, AggState, EngineError};
pub use mode::{
    register_vectorized_hooks, vectorized_hooks, ExecMode, ExecOptions, VectorizedHooks,
};
pub use optimize::{
    estimate_rows, fuse_topk, optimize, optimize_with, plan_joins, predicate_selectivity,
    push_filters, record_join_misestimates, reorder_joins, reorder_joins_ua, OptimizerPasses,
    DEFAULT_FILTER_SELECTIVITY, DP_MAX_RELATIONS, MISESTIMATE_RATIO,
};
pub use plan::{AggExpr, AggFunc, Plan, SortOrder};
pub use sql::{parse, plan_query, plan_schema};
pub use stats::{execute_au_with_stats, execute_with_stats};
pub use storage::{Catalog, ColumnStats, Histogram, Table, TableStats, HISTOGRAM_BUCKETS};
pub use ua::{ctable_source, ti_source, x_source, UaResult, UaSession, UA_FRAGMENT_ERROR};
pub use ua_obs::{OperatorStats, PoolStats, QueryStats};
