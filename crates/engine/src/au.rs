//! The AU-DB frontend: attribute-level uncertainty bounds (`⟦·⟧_AU`).
//!
//! Where [`crate::ua`] implements the paper's `⟦·⟧_UA` rewriting — sound
//! for the positive relational algebra only; `DISTINCT` and aggregation
//! are explicitly future work there — this module serves those queries
//! through the AU-DB model of the authors' follow-up (attribute ranges
//! `[lb, bg, ub]` plus tuple multiplicity-bound triples; see `ua-ranges`).
//!
//! The row engine executes AU plans natively by interpreting each
//! operator over [`AuRelation`]s with the shared `ua_ranges::ops`
//! implementations; the vectorized engine registers an `au` hook (range
//! column triples in its batches for σ/π/aggregation, per-operator
//! fallback to the same shared ops elsewhere), so both engines serve
//! [`UaSession::query_au`] with identical results.
//!
//! Source relations enter AU sessions either pre-annotated
//! ([`UaSession::register_au_relation`]) or through the Section 9.2 SQL
//! annotations (`R IS TI …`), whose labeling schemes are lifted to range
//! annotations by [`ti_source_au`], [`x_source_au`] and
//! [`ctable_source_au`] — unlike the UA labelings, rows *outside* the
//! best-guess world are kept (with a zero selected-guess multiplicity)
//! instead of dropped, which is what makes the upper bounds sound.

use crate::exec::{execute, EngineError};
use crate::mode::{require_vectorized_hooks, ExecMode};
use crate::plan::{AggFunc, Plan, SortOrder};
use crate::sql::ast::SourceAnnotation;
use crate::sql::parser::parse;
use crate::sql::planner::{plan_query, SourceResolver};
use crate::storage::{Catalog, Table};
use crate::ua::UaSession;
use ua_conditions::{cnf_tautology, is_cnf, parse_condition, VarInterner};
use ua_core::{expr_mentions_marker, UA_LABEL_COLUMN};
use ua_data::expr::Expr;
use ua_data::schema::{Column, Schema, SchemaError};
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_data::FxHashMap;
use ua_ranges::{
    decode_rows, encode_rows, flattened_schema, AggKind, AggSpec, AuRelation, AuTuple, MultBound,
    RangeValue,
};

/// An AU query result: the flattened encoded representation (selected
/// guesses, per-attribute bound columns, multiplicity triple columns).
#[derive(Clone, Debug)]
pub struct AuResult {
    /// The encoded result table (see `ua_ranges::flattened_schema`).
    pub table: Table,
}

impl AuResult {
    /// Decode into the range-annotated relation.
    pub fn decode(&self) -> AuRelation {
        decode_rows(self.table.schema(), self.table.rows())
            .expect("AU results are produced in encoded form")
    }

    /// The selected-guess world's rows (bg values expanded by bg
    /// multiplicity) under the user schema — what a deterministic query
    /// over the best-guess world returns.
    pub fn sg_table(&self) -> Table {
        let rel = self.decode();
        let mut out = Table::new(rel.schema().clone());
        for row in rel.rows() {
            let t = row.bg_tuple();
            for _ in 0..row.mult.bg {
                out.push(t.clone());
            }
        }
        out
    }

    /// `(certainly-present rows, total rows)` — the AU analogue of the UA
    /// result's certainty counts.
    pub fn certainty_counts(&self) -> (usize, usize) {
        let rel = self.decode();
        let certain = rel.rows().iter().filter(|r| r.mult.lb >= 1).count();
        (certain, rel.rows().len())
    }
}

/// Whether a column name is one of the AU encoding's sidecars (bound
/// columns or the multiplicity triple). Matches only the *exact* names
/// the encoding generates (`ua_lb_<i>`/`ua_ub_<i>` with a numeric index,
/// `ua_m_lb`/`ua_m_bg`/`ua_m_ub`) — a user column that merely shares the
/// prefix (say `ua_lb_note`) is ordinary data, exactly as only the
/// literal `ua_c` is the UA marker.
pub fn is_au_sidecar_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    let indexed = |prefix: &str| {
        lower
            .strip_prefix(prefix)
            .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
    };
    indexed(ua_ranges::AU_LB_PREFIX)
        || indexed(ua_ranges::AU_UB_PREFIX)
        || lower == ua_ranges::AU_MULT_LB
        || lower == ua_ranges::AU_MULT_BG
        || lower == ua_ranges::AU_MULT_UB
}

fn marker_error() -> EngineError {
    EngineError::Schema(SchemaError::AmbiguousColumn(UA_LABEL_COLUMN.to_string()))
}

fn reject_marker(expr: &Expr) -> Result<(), EngineError> {
    if expr_mentions_marker(expr) {
        Err(marker_error())
    } else {
        Ok(())
    }
}

/// The uniform marker guard for AU plans, run once before engine dispatch
/// so the row and vectorized paths reject exactly the same queries: the
/// `ua_c` marker (and by extension any engine-managed bookkeeping column)
/// may not appear in predicates, projections, join conditions, sort keys —
/// or, the class of hole PR 4 closed for ORDER BY, in **GROUP BY keys and
/// aggregate arguments**.
pub fn reject_marker_in_plan(plan: &Plan) -> Result<(), EngineError> {
    match plan {
        Plan::Scan(_) => Ok(()),
        Plan::Alias { input, .. } => reject_marker_in_plan(input),
        Plan::Filter { input, predicate } => {
            reject_marker(predicate)?;
            reject_marker_in_plan(input)
        }
        Plan::Map { input, columns } => {
            for c in columns {
                if c.name().eq_ignore_ascii_case(UA_LABEL_COLUMN) {
                    return Err(marker_error());
                }
                reject_marker(&c.expr)?;
            }
            reject_marker_in_plan(input)
        }
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            if let Some(p) = predicate {
                reject_marker(p)?;
            }
            reject_marker_in_plan(left)?;
            reject_marker_in_plan(right)
        }
        Plan::HashJoin {
            left,
            right,
            keys,
            residual,
            ..
        } => {
            for (l, r) in keys {
                reject_marker(l)?;
                reject_marker(r)?;
            }
            if let Some(res) = residual {
                reject_marker(res)?;
            }
            reject_marker_in_plan(left)?;
            reject_marker_in_plan(right)
        }
        Plan::UnionAll { left, right } | Plan::Except { left, right, .. } => {
            reject_marker_in_plan(left)?;
            reject_marker_in_plan(right)
        }
        Plan::OuterJoin {
            left,
            right,
            predicate,
            ..
        } => {
            if let Some(p) = predicate {
                reject_marker(p)?;
            }
            reject_marker_in_plan(left)?;
            reject_marker_in_plan(right)
        }
        Plan::Distinct { input } => reject_marker_in_plan(input),
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            for g in group_by {
                if g.name().eq_ignore_ascii_case(UA_LABEL_COLUMN) {
                    return Err(marker_error());
                }
                reject_marker(&g.expr)?;
            }
            for a in aggregates {
                if a.name.eq_ignore_ascii_case(UA_LABEL_COLUMN) {
                    return Err(marker_error());
                }
                if let Some(arg) = &a.arg {
                    reject_marker(arg)?;
                }
            }
            reject_marker_in_plan(input)
        }
        Plan::Sort { input, keys } | Plan::TopK { input, keys, .. } => {
            for (k, _) in keys {
                reject_marker(k)?;
            }
            reject_marker_in_plan(input)
        }
        Plan::Limit { input, .. } => reject_marker_in_plan(input),
    }
}

/// Map the engine's aggregate functions onto the range layer's kinds.
pub fn agg_kind(func: AggFunc) -> AggKind {
    match func {
        AggFunc::Count => AggKind::Count,
        AggFunc::CountStar => AggKind::CountStar,
        AggFunc::Sum => AggKind::Sum,
        AggFunc::Min => AggKind::Min,
        AggFunc::Max => AggKind::Max,
        AggFunc::Avg => AggKind::Avg,
    }
}

/// Execute an AU plan on the row engine: each operator interprets over
/// [`AuRelation`]s via the shared `ua_ranges::ops` — the same code the
/// vectorized engine's fallbacks call (through [`au_unary`]/[`au_binary`]),
/// so the engines cannot diverge.
pub fn execute_au(plan: &Plan, catalog: &Catalog) -> Result<AuRelation, EngineError> {
    execute_au_traced(plan, catalog, &mut crate::stats::Tracer::off())
}

/// [`execute_au`] with a span tracer threaded through the recursion (see
/// [`crate::exec::execute_traced`] — same contract: no-op when off,
/// byte-identical results either way).
pub(crate) fn execute_au_traced(
    plan: &Plan,
    catalog: &Catalog,
    tracer: &mut crate::stats::Tracer<'_>,
) -> Result<AuRelation, EngineError> {
    let trace_name = ua_obs::trace_active().then(|| crate::stats::node_label(plan).0);
    if let Some(name) = &trace_name {
        ua_obs::trace_begin(name, "operator");
    }
    tracer.enter(plan);
    let result = match plan {
        Plan::Scan(name) => catalog
            .get(name)
            .ok_or_else(|| EngineError::UnknownTable(name.clone()))
            .and_then(|table| decode_rows(table.schema(), table.rows()).map_err(EngineError::Sql)),
        Plan::Alias { input, .. }
        | Plan::Filter { input, .. }
        | Plan::Map { input, .. }
        | Plan::Distinct { input }
        | Plan::Aggregate { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::TopK { input, .. } => {
            execute_au_traced(input, catalog, tracer).and_then(|rel| au_unary(plan, &rel))
        }
        Plan::Join { left, right, .. }
        | Plan::HashJoin { left, right, .. }
        | Plan::UnionAll { left, right }
        | Plan::Except { left, right, .. }
        | Plan::OuterJoin { left, right, .. } => execute_au_traced(left, catalog, tracer)
            .and_then(|l| execute_au_traced(right, catalog, tracer).map(|r| (l, r)))
            .and_then(|(l, r)| au_binary(plan, &l, &r)),
    };
    let result = match result {
        Ok(rel) => {
            if tracer.enabled() {
                au_span_extras(&rel, tracer);
            }
            tracer.exit(rel.rows().len());
            Ok(rel)
        }
        Err(e) => {
            tracer.abandon();
            Err(e)
        }
    };
    if let Some(name) = &trace_name {
        ua_obs::trace_end(name, "operator");
    }
    result
}

/// Record the AU telemetry extras for a finished span: the bound-precision
/// profile ([`ua_ranges::WidthSummary`] — which operator widened bounds to
/// ⊤, and by how much) plus the logical bytes of the materialized
/// range-annotated relation. The materialization is also charged against
/// the query-wide memory high-water mark.
fn au_span_extras(rel: &AuRelation, tracer: &mut crate::stats::Tracer<'_>) {
    let ws = ua_ranges::WidthSummary::of(rel);
    tracer.extra("certain_rows", ws.certain_rows);
    tracer.extra("top_attrs_permille", ws.top_attr_permille());
    tracer.extra("rel_width_permille", ws.mean_rel_width_permille());
    tracer.extra("mult_spread", ws.mult_spread);
    let bytes = au_relation_mem_bytes(rel);
    let mut mem = ua_obs::MemTracker::new();
    mem.alloc(bytes);
    tracer.extra("mem_bytes", bytes);
}

/// Estimated logical bytes of a materialized [`AuRelation`] — the
/// range-annotation counterpart of [`crate::stats::tuple_mem_bytes`]:
/// 24 bytes for the multiplicity triple plus, per attribute cell, the
/// best guess and both bounds (a bare ±∞ bound costs one 16-byte slot).
/// Shape-derived, never allocator-derived, so the figure is deterministic.
pub(crate) fn au_relation_mem_bytes(rel: &AuRelation) -> u64 {
    fn bound_bytes(b: &ua_ranges::Bound) -> u64 {
        match b {
            ua_ranges::Bound::Val(v) => crate::stats::value_mem_bytes(v),
            _ => 16,
        }
    }
    rel.rows()
        .iter()
        .map(|row| {
            24 + row
                .values
                .iter()
                .map(|r| {
                    crate::stats::value_mem_bytes(&r.bg) + bound_bytes(r.lb()) + bound_bytes(r.ub())
                })
                .sum::<u64>()
        })
        .sum()
}

/// Apply one unary AU operator (the node at the root of `plan`) to an
/// already-evaluated input. Shared between the row interpreter and the
/// vectorized engine's per-operator fallbacks.
pub fn au_unary(plan: &Plan, rel: &AuRelation) -> Result<AuRelation, EngineError> {
    match plan {
        Plan::Alias { name, .. } => {
            let schema = rel.schema().with_qualifier(name);
            Ok(rel.clone().with_schema(schema))
        }
        Plan::Filter { predicate, .. } => {
            ua_ranges::ops::filter(rel, predicate).map_err(EngineError::Expr)
        }
        Plan::Map { columns, .. } => {
            let cols: Vec<(Expr, Column)> = columns
                .iter()
                .map(|c| (c.expr.clone(), c.column.clone()))
                .collect();
            ua_ranges::ops::map(rel, &cols).map_err(EngineError::Expr)
        }
        Plan::Distinct { .. } => Ok(ua_ranges::ops::distinct(rel)),
        Plan::Aggregate {
            group_by,
            aggregates,
            ..
        } => {
            let keys: Vec<(Expr, Column)> = group_by
                .iter()
                .map(|g| (g.expr.clone(), g.column.clone()))
                .collect();
            let specs: Vec<AggSpec> = aggregates
                .iter()
                .map(|a| AggSpec {
                    kind: agg_kind(a.func),
                    arg: a.arg.clone(),
                    column: Column::unqualified(&a.name),
                })
                .collect();
            ua_ranges::ops::aggregate(rel, &keys, &specs).map_err(EngineError::Expr)
        }
        Plan::Sort { keys, .. } => {
            let keys: Vec<(Expr, bool)> = keys
                .iter()
                .map(|(e, o)| (e.clone(), *o == SortOrder::Desc))
                .collect();
            ua_ranges::ops::sort_by_bg(rel, &keys).map_err(EngineError::Expr)
        }
        Plan::Limit { limit, .. } => Ok(ua_ranges::ops::limit(rel, *limit)),
        Plan::TopK { keys, limit, .. } => {
            let keys: Vec<(Expr, bool)> = keys
                .iter()
                .map(|(e, o)| (e.clone(), *o == SortOrder::Desc))
                .collect();
            let sorted = ua_ranges::ops::sort_by_bg(rel, &keys).map_err(EngineError::Expr)?;
            Ok(ua_ranges::ops::limit(&sorted, *limit))
        }
        other => Err(EngineError::Sql(format!(
            "not a unary AU operator: {other}"
        ))),
    }
}

/// Apply one binary AU operator to already-evaluated inputs (see
/// [`au_unary`]).
pub fn au_binary(plan: &Plan, l: &AuRelation, r: &AuRelation) -> Result<AuRelation, EngineError> {
    match plan {
        Plan::Join { predicate, .. } => {
            ua_ranges::ops::join(l, r, predicate.as_ref()).map_err(EngineError::Expr)
        }
        Plan::HashJoin {
            keys,
            residual,
            build_left,
            ..
        } => ua_ranges::ops::hash_join(l, r, keys, residual.as_ref(), *build_left)
            .map_err(EngineError::Expr),
        Plan::UnionAll { .. } => ua_ranges::ops::union(l, r).map_err(EngineError::Schema),
        Plan::Except { all, .. } => ua_ranges::ops::except(l, r, *all).map_err(EngineError::Schema),
        Plan::OuterJoin {
            predicate, kind, ..
        } => ua_ranges::ops::outer_join(
            l,
            r,
            predicate.as_ref(),
            *kind == crate::plan::OuterKind::Left,
        )
        .map_err(EngineError::Expr),
        other => Err(EngineError::Sql(format!(
            "not a binary AU operator: {other}"
        ))),
    }
}

/// Materialize an [`AuRelation`] as its flattened encoded table.
pub fn au_table(rel: &AuRelation) -> Table {
    Table::from_rows(flattened_schema(rel.schema()), encode_rows(rel))
}

impl UaSession {
    /// Register a range-annotated relation under `name` (stored in the
    /// flattened encoding; [`UaSession::query_au`] decodes it on scan).
    pub fn register_au_relation(&self, name: impl Into<String>, relation: &AuRelation) {
        self.catalog().register(name, au_table(relation));
    }

    /// Run a query under AU semantics: the full plan algebra — including
    /// `DISTINCT` and grouping/aggregation, which `⟦·⟧_UA` is not closed
    /// under — executes over range-annotated sources with sound
    /// attribute-level and multiplicity bounds. `ORDER BY`/`LIMIT` order
    /// and truncate by the selected-guess world (presentation-level).
    pub fn query_au(&self, sql: &str) -> Result<AuResult, EngineError> {
        let _trace = self.trace_query();
        let ast = ua_obs::trace_scope("parse", "session", || parse(sql))
            .map_err(|e| EngineError::Sql(e.to_string()))?;
        let plan = ua_obs::trace_scope("plan", "session", || {
            plan_query(&ast, self.catalog(), &AuResolver)
        })?;
        self.execute_au_plan(&plan)
    }

    /// Run an already-built plan under AU semantics.
    pub fn query_au_plan(&self, plan: &Plan) -> Result<AuResult, EngineError> {
        let _trace = self.trace_query();
        self.execute_au_plan(plan)
    }

    /// The optimizer pipeline on an AU plan (mirroring the UA wiring):
    /// filter pushdown, statistics-driven join reordering,
    /// cost-aware hash-join planning and TopK fusion all run on the shared
    /// user plan before `⟦·⟧_AU` dispatch, so the row and vectorized
    /// engines execute identically shaped plans. Positional join
    /// classification is off — AU scans resolve to flattened encoded
    /// tables (arity `3n + 3`), so only name-based references (the user
    /// columns, which lead the flattened schema) classify reliably.
    pub(crate) fn optimize_au_plan(&self, plan: &Plan) -> Plan {
        self.optimize_plan_with(
            plan.clone(),
            crate::optimize::OptimizerPasses {
                positional_joins: false,
                ..Default::default()
            },
        )
    }

    fn execute_au_plan(&self, plan: &Plan) -> Result<AuResult, EngineError> {
        // One uniform guard before dispatch: both engines reject marker
        // references (selection, projection, joins, sort keys, GROUP BY
        // keys, aggregate arguments) identically.
        reject_marker_in_plan(plan)?;
        let plan = &ua_obs::trace_scope("optimize", "session", || self.optimize_au_plan(plan));
        ua_obs::trace_scope("execute", "session", || match self.exec_mode() {
            ExecMode::Row => {
                let rel = if self.stats_enabled() {
                    ua_obs::mem_query_start();
                    let (result, root) =
                        crate::stats::try_execute_au_with_stats(plan, self.catalog());
                    let peak = ua_obs::mem_query_finish().unwrap_or(0);
                    // Failed queries keep their (error-marked) partial
                    // tree: stats are stored before the `?` propagates.
                    if let Some(root) = root {
                        self.store_stats(ua_obs::QueryStats {
                            engine: "row".into(),
                            semantics: "au".into(),
                            root,
                            pool: None,
                            peak_mem_bytes: peak,
                        });
                    }
                    result?
                } else {
                    execute_au(plan, self.catalog())?
                };
                Ok(AuResult {
                    table: au_table(&rel),
                })
            }
            ExecMode::Vectorized => {
                let opts = self.exec_options();
                let table = (require_vectorized_hooks()?.au)(plan, self.catalog(), opts);
                self.adopt_hook_stats();
                Ok(AuResult { table: table? })
            }
        })
    }

    /// `EXPLAIN ANALYZE` for AU queries: the user plan and optimized
    /// physical plan, then the executed operator tree with per-operator
    /// row counts, wall times and est-vs-actual cardinalities. The query
    /// really executes; its result is discarded.
    pub fn explain_analyze_au(&self, sql: &str) -> Result<String, EngineError> {
        let ast = parse(sql).map_err(|e| EngineError::Sql(e.to_string()))?;
        let plan = plan_query(&ast, self.catalog(), &AuResolver)?;
        let physical = self.optimize_au_plan(&plan);
        let stats = self.run_analyzed(|| self.execute_au_plan(&plan).map(|_| ()))?;
        Ok(format!(
            "plan:\n  {plan}\nphysical (optimized):\n  {physical}\n{}",
            crate::ua::render_analysis(&stats)
        ))
    }
}

fn float_of(v: &Value, col: &str) -> Result<f64, EngineError> {
    v.as_f64()
        .ok_or_else(|| EngineError::Sql(format!("probability column `{col}` must be numeric")))
}

fn keep_columns(schema: &Schema, exclude: &[usize]) -> (Vec<usize>, Vec<Column>) {
    let mut keep = Vec::new();
    let mut cols = Vec::new();
    for (i, col) in schema.columns().iter().enumerate() {
        if !exclude.contains(&i) {
            keep.push(i);
            cols.push(col.clone());
        }
    }
    (keep, cols)
}

/// The TI-DB labeling lifted to range annotations: every tuple keeps point
/// values; the multiplicity triple is `[p ≥ 1, p ≥ 0.5, p > 0]` — the
/// middle component reproduces the UA frontend's best-guess-world rule,
/// while rows below the BGW threshold stay representable with a zero
/// selected-guess multiplicity instead of vanishing.
pub fn ti_source_au(table: &Table, prob_col: &str) -> Result<Table, EngineError> {
    let p_idx = table.schema().resolve(prob_col)?;
    let (keep, cols) = keep_columns(table.schema(), &[p_idx]);
    let mut rel = AuRelation::new(Schema::new(cols));
    for row in table.rows() {
        let p = float_of(row.get(p_idx).expect("resolved index"), prob_col)?;
        if p <= 0.0 {
            continue;
        }
        let values: Vec<RangeValue> = keep
            .iter()
            .map(|&i| RangeValue::point(row.get(i).expect("in range").clone()))
            .collect();
        rel.push(AuTuple {
            values,
            mult: MultBound::new(u64::from(p >= 1.0 - 1e-9), u64::from(p >= 0.5), 1),
        });
    }
    Ok(au_table(&rel))
}

/// The x-DB labeling lifted to range annotations: one AU tuple per
/// x-tuple block — attribute ranges hull the alternatives, the selected
/// guess is the argmax alternative (absent from the SG world when absence
/// is likelier, exactly the UA frontend's rule), `lb = 1` iff the block's
/// mass is 1, `ub = 1` always (one copy per block in any world).
pub fn x_source_au(
    table: &Table,
    xid_col: &str,
    altid_col: &str,
    prob_col: &str,
) -> Result<Table, EngineError> {
    let x_idx = table.schema().resolve(xid_col)?;
    let a_idx = table.schema().resolve(altid_col)?;
    let p_idx = table.schema().resolve(prob_col)?;
    let (keep, cols) = keep_columns(table.schema(), &[x_idx, a_idx, p_idx]);

    let mut blocks: FxHashMap<Value, Vec<(Tuple, f64)>> = FxHashMap::default();
    let mut order: Vec<Value> = Vec::new();
    for row in table.rows() {
        let xid = row.get(x_idx).expect("in range").clone();
        let p = float_of(row.get(p_idx).expect("in range"), prob_col)?;
        let projected: Tuple = keep
            .iter()
            .map(|&i| row.get(i).expect("in range").clone())
            .collect();
        match blocks.get_mut(&xid) {
            Some(b) => b.push((projected, p)),
            None => {
                order.push(xid.clone());
                blocks.insert(xid, vec![(projected, p)]);
            }
        }
    }
    let ordered: Vec<Vec<(Tuple, f64)>> = order
        .into_iter()
        .map(|xid| blocks.remove(&xid).expect("recorded"))
        .collect();
    let rel = AuRelation::from_x_blocks(Schema::new(cols), ordered.iter().map(Vec::as_slice));
    Ok(au_table(&rel))
}

/// The C-table labeling lifted to range annotations: constant rows keep
/// point values (`lb = 1` iff the parsed local condition is a CNF
/// tautology — the UA frontend's certainty rule); rows with variable
/// attributes, which the UA labeling must *drop* from the extracted
/// world, stay representable with unbounded attribute ranges and a zero
/// selected-guess multiplicity.
pub fn ctable_source_au(
    table: &Table,
    variable_cols: &[String],
    condition_col: &str,
) -> Result<Table, EngineError> {
    let lc_idx = table.schema().resolve(condition_col)?;
    let var_idxs: Vec<usize> = variable_cols
        .iter()
        .map(|v| table.schema().resolve(v))
        .collect::<Result<_, _>>()?;
    let mut exclude = var_idxs.clone();
    exclude.push(lc_idx);
    let (keep, cols) = keep_columns(table.schema(), &exclude);

    let mut interner = VarInterner::new();
    let mut rel = AuRelation::new(Schema::new(cols));
    for row in table.rows() {
        let all_constant = var_idxs
            .iter()
            .all(|&i| row.get(i).expect("in range").is_unknown());
        let lc_text = match row.get(lc_idx).expect("in range") {
            Value::Str(s) => s.to_string(),
            Value::Null => String::new(),
            other => {
                return Err(EngineError::Sql(format!(
                    "local condition column must be text, found {other}"
                )))
            }
        };
        let condition = parse_condition(&lc_text, &mut interner)
            .map_err(|e| EngineError::Sql(e.to_string()))?;
        let certain = is_cnf(&condition) && cnf_tautology(&condition) == Some(true);
        let values: Vec<RangeValue> = keep
            .iter()
            .map(|&i| {
                let v = row.get(i).expect("in range").clone();
                if all_constant {
                    RangeValue::point(v)
                } else {
                    RangeValue::top(v)
                }
            })
            .collect();
        rel.push(AuTuple {
            values,
            mult: if all_constant {
                MultBound::new(u64::from(certain), 1, 1)
            } else {
                MultBound::new(0, 0, 1)
            },
        });
    }
    Ok(au_table(&rel))
}

/// Source resolver for AU queries: the Section 9.2 annotation clauses
/// convert through the range labelings, cached per annotation fingerprint
/// (same injective length-prefixed scheme as the UA resolver, under the
/// `__au__` namespace so UA and AU encodings of one table never collide).
struct AuResolver;

impl SourceResolver for AuResolver {
    fn resolve(
        &self,
        name: &str,
        annotation: &SourceAnnotation,
        catalog: &Catalog,
    ) -> Result<Plan, EngineError> {
        let fp = |parts: &[&str]| {
            parts
                .iter()
                .map(|p| format!("{}_{p}", p.len()))
                .collect::<Vec<_>>()
                .join("_")
        };
        let fingerprint = match annotation {
            SourceAnnotation::Ti { probability } => format!("ti_{}", fp(&[probability])),
            SourceAnnotation::X {
                xid,
                altid,
                probability,
            } => format!("x_{}", fp(&[xid, altid, probability])),
            SourceAnnotation::CTable {
                variables,
                condition,
            } => {
                let mut parts: Vec<&str> = variables.iter().map(String::as_str).collect();
                parts.push(condition);
                format!("ct_{}", fp(&parts))
            }
        };
        let derived = format!("__au__{name}__{fingerprint}");
        if catalog.get(&derived).is_none() {
            let base = catalog
                .get(name)
                .ok_or_else(|| EngineError::UnknownTable(name.to_string()))?;
            let encoded = match annotation {
                SourceAnnotation::Ti { probability } => ti_source_au(&base, probability)?,
                SourceAnnotation::X {
                    xid,
                    altid,
                    probability,
                } => x_source_au(&base, xid, altid, probability)?,
                SourceAnnotation::CTable {
                    variables,
                    condition,
                } => ctable_source_au(&base, variables, condition)?,
            };
            catalog.register(derived.clone(), encoded);
        }
        Ok(Plan::Scan(derived))
    }
}

/// Convenience: evaluate a deterministic query over a catalog (used by the
/// AU soundness tests to ground possible worlds). Re-exported so tests
/// don't need a session.
pub fn execute_det(plan: &Plan, catalog: &Catalog) -> Result<Table, EngineError> {
    execute(plan, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::tuple;

    fn geocoder_session() -> UaSession {
        let session = UaSession::new();
        session.register_table(
            "addr",
            Table::from_rows(
                Schema::qualified("addr", ["xid", "aid", "p", "id", "locale", "state"]),
                vec![
                    tuple![1i64, 1i64, 1.0, 1i64, "Lasalle", "NY"],
                    tuple![2i64, 1i64, 0.6, 2i64, "Tucson", "AZ"],
                    tuple![2i64, 2i64, 0.4, 2i64, "Grant Ferry", "NY"],
                    tuple![3i64, 1i64, 0.5, 3i64, "Kingsley", "NY"],
                    tuple![3i64, 2i64, 0.5, 3i64, "Kingsley", "NY"],
                    tuple![4i64, 1i64, 1.0, 4i64, "Kensington", "NY"],
                ],
            ),
        );
        session
    }

    #[test]
    fn group_by_count_executes_under_au() {
        let session = geocoder_session();
        let result = session
            .query_au(
                "SELECT state, count(*) AS n FROM \
                 addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) GROUP BY state",
            )
            .expect("AU aggregation executes");
        let rel = result.decode();
        // SG groups: NY (addresses 1, 3, 4) and AZ (address 2).
        assert_eq!(rel.rows().len(), 2);
        let ny = rel
            .rows()
            .iter()
            .find(|r| r.values[0].bg == Value::str("NY"))
            .expect("NY group");
        assert_eq!(ny.values[1].bg, Value::Int(3));
        // Address 2 may flip into NY (alternative Grant Ferry/NY): count
        // can reach 4 in some world. Addresses 1 and 4 are certain, and so
        // is 3 — both its alternatives are NY, which attribute-level
        // bounds capture (the UA labeling's Figure 3d misclassification):
        // certainly at least 3.
        assert!(ny.values[1].contains(&Value::Int(4)));
        assert!(ny.values[1].contains(&Value::Int(3)));
        assert!(!ny.values[1].contains(&Value::Int(2)));
    }

    #[test]
    fn ua_c_rejected_in_group_by_and_aggregate_args() {
        let session = geocoder_session();
        for sql in [
            "SELECT ua_c, count(*) FROM \
             addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) GROUP BY ua_c",
            "SELECT state, sum(ua_c) FROM \
             addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) GROUP BY state",
            "SELECT state, count(*) FROM \
             addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) \
             GROUP BY state ORDER BY ua_c",
        ] {
            let err = session.query_au(sql);
            assert!(
                matches!(
                    err,
                    Err(EngineError::Schema(SchemaError::AmbiguousColumn(_)))
                ),
                "{sql} must be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn ti_source_au_keeps_sub_threshold_rows() {
        let t = Table::from_rows(
            Schema::qualified("r", ["a", "p"]),
            vec![tuple![1i64, 1.0], tuple![2i64, 0.8], tuple![3i64, 0.2]],
        );
        let enc = ti_source_au(&t, "p").unwrap();
        let rel = decode_rows(enc.schema(), enc.rows()).unwrap();
        assert_eq!(rel.rows().len(), 3, "p = 0.2 kept with bg mult 0");
        assert_eq!(rel.rows()[0].mult, MultBound::certain(1));
        assert_eq!(rel.rows()[1].mult, MultBound::new(0, 1, 1));
        assert_eq!(rel.rows()[2].mult, MultBound::new(0, 0, 1));
    }

    #[test]
    fn selection_refines_bounds() {
        let session = geocoder_session();
        let result = session
            .query_au(
                "SELECT id FROM addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) \
                 WHERE state = 'NY' ORDER BY id",
            )
            .unwrap();
        let rel = result.decode();
        // SG rows: 1, 3, 4 (Tucson/AZ is the SG for address 2) — but
        // address 2 is possibly NY, so it appears with bg mult 0.
        let (certain, total) = result.certainty_counts();
        assert_eq!(total, 4);
        // AU improves on UA's Figure 3d here: address 3's two alternatives
        // both project to (3,) with state NY, so the range labeling keeps
        // it certain where the tuple-level labeling could not.
        assert_eq!(certain, 3, "addresses 1, 3 and 4 are certain");
        let sg: Vec<Tuple> = rel
            .rows()
            .iter()
            .filter(|r| r.mult.bg >= 1)
            .map(|r| r.bg_tuple())
            .collect();
        assert_eq!(sg, vec![tuple![1i64], tuple![3i64], tuple![4i64]]);
    }

    #[test]
    fn distinct_executes_under_au() {
        let session = geocoder_session();
        let result = session
            .query_au(
                "SELECT DISTINCT state FROM \
                 addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p)",
            )
            .expect("AU distinct executes");
        let rel = result.decode();
        assert_eq!(rel.rows().len(), 2);
    }
}
