//! UA label soundness of optimizer rewrites, theorem-shaped, on 5-world
//! `K^W` databases (via `ua-incomplete`).
//!
//! Setup: an explicit 5-world incomplete ℕ-database; its best-guess world
//! plus the per-tuple GLB across worlds yields a c-sound `ℕ_UA`-labeling
//! (paper Section 4), registered into a [`UaSession`]. For every optimizer
//! pass configuration `P` and query `Q`:
//!
//! ```text
//! certain(⟦Q⟧_P-optimized)  ⊆  certain(⟦Q⟧ unoptimized)       (pass soundness)
//! certain(⟦Q⟧ any plan)     ⊆  cert_ℕ(Q(𝒟))                   (c-soundness, Theorem 4)
//! ```
//!
//! and in fact the optimized and unoptimized plans decode to the *same*
//! `K²`-relation — the ⊆ inclusions are asserted separately because they
//! are the property that must survive any future, lossier rewrite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ua_core::{decode_relation, rewrite_ua};
use ua_data::algebra::RaExpr;
use ua_data::expr::Expr;
use ua_data::relation::{Database, Relation};
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_engine::plan::Plan;
use ua_engine::{execute, optimize_with, ExecMode, OptimizerPasses, Table, UaSession};
use ua_incomplete::IncompleteDb;
use ua_semiring::pair::Ua;

const N_WORLDS: usize = 5;

/// Five worlds over `r(a, b)`, `s(b, d)` and a *small* `t(a, e)` (two core
/// tuples — selective enough that the cost-based reorder routes 3-way joins
/// through it first): a shared certain core plus per-world noise tuples,
/// with small value domains so joins hit.
fn five_world_db(seed: u64) -> IncompleteDb<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let core_r: Vec<Tuple> = (0..6)
        .map(|_| {
            Tuple::new(vec![
                Value::Int(rng.gen_range(0..4)),
                Value::Int(rng.gen_range(0..4)),
            ])
        })
        .collect();
    let core_s: Vec<Tuple> = (0..4)
        .map(|_| {
            Tuple::new(vec![
                Value::Int(rng.gen_range(0..4)),
                Value::Int(rng.gen_range(0..8)),
            ])
        })
        .collect();
    let core_t: Vec<Tuple> = (0..2)
        .map(|_| {
            Tuple::new(vec![
                Value::Int(rng.gen_range(0..4)),
                Value::Int(rng.gen_range(0..8)),
            ])
        })
        .collect();
    let mut worlds = Vec::with_capacity(N_WORLDS);
    for _ in 0..N_WORLDS {
        let mut db: Database<u64> = Database::new();
        let mut rows_r = core_r.clone();
        let mut rows_s = core_s.clone();
        let mut rows_t = core_t.clone();
        for _ in 0..rng.gen_range(0..4) {
            rows_r.push(Tuple::new(vec![
                Value::Int(rng.gen_range(0..4)),
                Value::Int(rng.gen_range(0..4)),
            ]));
        }
        for _ in 0..rng.gen_range(0..3) {
            rows_s.push(Tuple::new(vec![
                Value::Int(rng.gen_range(0..4)),
                Value::Int(rng.gen_range(0..8)),
            ]));
        }
        if rng.gen_range(0..2) == 0 {
            rows_t.push(Tuple::new(vec![
                Value::Int(rng.gen_range(0..4)),
                Value::Int(rng.gen_range(0..8)),
            ]));
        }
        db.insert(
            "r",
            Relation::from_tuples(Schema::qualified("r", ["a", "b"]), rows_r),
        );
        db.insert(
            "s",
            Relation::from_tuples(Schema::qualified("s", ["b", "d"]), rows_s),
        );
        db.insert(
            "t",
            Relation::from_tuples(Schema::qualified("t", ["a", "e"]), rows_t),
        );
        worlds.push(db);
    }
    IncompleteDb::new(worlds)
}

/// The c-sound `ℕ_UA`-labeling of `incomplete`: best-guess world 0 for the
/// deterministic part, GLB across all worlds for the certain part.
fn session_from(incomplete: &IncompleteDb<u64>) -> UaSession {
    let session = UaSession::new();
    let w0 = incomplete.world(0);
    for name in ["r", "s", "t"] {
        let rel0 = w0.get(name).expect("relation in world 0");
        let rel: Relation<Ua<u64>> = Relation::from_annotated(
            rel0.schema().clone(),
            rel0.iter().map(|(t, &n)| {
                let cert: u64 = incomplete.certain_annotation(name, t);
                (t.clone(), Ua::new(cert.min(n), n))
            }),
        );
        session.register_ua_relation(name, &rel);
    }
    session
}

/// Tuples with a nonzero certain component of a decoded `K²`-relation.
fn certain_tuples(rel: &Relation<Ua<u64>>) -> Vec<Tuple> {
    let mut out: Vec<Tuple> = rel
        .iter()
        .filter(|(_, ann)| ann.cert > 0)
        .map(|(t, _)| t.clone())
        .collect();
    out.sort();
    out
}

/// Ground-truth certain answers of `query` over the possible worlds.
fn ground_truth_certain(incomplete: &IncompleteDb<u64>, query: &RaExpr) -> Vec<Tuple> {
    let result = incomplete.query(query).expect("world-wise query");
    let certain = result.certain_relation("result").expect("result relation");
    let mut out: Vec<Tuple> = certain.iter().map(|(t, _)| t.clone()).collect();
    out.sort();
    out
}

fn is_subset(small: &[Tuple], big: &[Tuple]) -> bool {
    small.iter().all(|t| big.contains(t))
}

/// The query shapes each pass exists for.
fn queries() -> Vec<(&'static str, RaExpr)> {
    vec![
        (
            "selection below a user projection",
            RaExpr::table("r")
                .project(["a", "b"])
                .select(Expr::named("a").ge(Expr::lit(1i64))),
        ),
        (
            "comma-join: cross product + mixed filter",
            RaExpr::table("r")
                .cross(RaExpr::table("s"))
                .select(
                    Expr::named("r.b")
                        .eq(Expr::named("s.b"))
                        .and(Expr::named("d").ge(Expr::lit(2i64))),
                )
                .project(["a", "d"]),
        ),
        (
            "stacked projections over an equi-join",
            RaExpr::table("r")
                .join(
                    RaExpr::table("s"),
                    Expr::named("r.b").eq(Expr::named("s.b")),
                )
                .project(["a", "r.b", "d"])
                .select(Expr::named("a").le(Expr::lit(2i64)))
                .project(["a", "d"]),
        ),
        (
            "union of projections",
            RaExpr::table("r")
                .project(["b"])
                .union(RaExpr::table("s").project(["b"])),
        ),
        ("3-way comma-join in a bad order", three_way_star_query()),
    ]
}

/// A 3-way comma-join written in a deliberately bad order: `r × s` first
/// (the two large relations — no direct edge between them), the selective
/// `t` last. The session-level reorder routes the join through `t`.
fn three_way_star_query() -> RaExpr {
    RaExpr::table("r")
        .cross(RaExpr::table("s"))
        .cross(RaExpr::table("t"))
        .select(
            Expr::named("r.a")
                .eq(Expr::named("t.a"))
                .and(Expr::named("s.d").eq(Expr::named("t.e"))),
        )
        .project(["r.a", "r.b", "d"])
}

#[test]
fn each_pass_preserves_certain_label_soundness() {
    let pass_configs = [
        (
            "push_filters only",
            OptimizerPasses {
                push_filters: true,
                plan_joins: false,
                ..Default::default()
            },
        ),
        (
            "plan_joins only",
            OptimizerPasses {
                push_filters: false,
                plan_joins: true,
                ..Default::default()
            },
        ),
        (
            "full pipeline",
            OptimizerPasses {
                push_filters: true,
                plan_joins: true,
                ..Default::default()
            },
        ),
    ];
    for seed in 0..8u64 {
        let incomplete = five_world_db(seed);
        let session = session_from(&incomplete);
        let catalog = session.catalog();
        let lookup = |name: &str| catalog.schema_of(name);
        for (qname, ra) in queries() {
            let rewritten = rewrite_ua(&ra, &lookup).expect("rewriting");
            let unopt_plan = Plan::from_ra(&rewritten);
            let unopt = decode_relation(
                &execute(&unopt_plan, catalog)
                    .expect("unoptimized exec")
                    .to_relation(),
            );
            let truth = ground_truth_certain(&incomplete, &ra);
            assert!(
                is_subset(&certain_tuples(&unopt), &truth),
                "seed {seed}, {qname}: unoptimized labels are not c-sound"
            );
            for (pname, passes) in pass_configs {
                let opt_plan = optimize_with(unopt_plan.clone(), catalog, passes);
                let opt = decode_relation(
                    &execute(&opt_plan, catalog)
                        .expect("optimized exec")
                        .to_relation(),
                );
                // Theorem shape: certain answers of the optimized plan are
                // contained in the unoptimized plan's certain answers …
                assert!(
                    is_subset(&certain_tuples(&opt), &certain_tuples(&unopt)),
                    "seed {seed}, {qname}, {pname}: optimization invented certain tuples"
                );
                // … and in the true certain answers over the worlds.
                assert!(
                    is_subset(&certain_tuples(&opt), &truth),
                    "seed {seed}, {qname}, {pname}: optimized labels are not c-sound"
                );
                // In fact the passes are exact: same K²-relation.
                assert_eq!(
                    opt, unopt,
                    "seed {seed}, {qname}, {pname}: optimization changed the decoded result"
                );
            }
        }
    }
}

/// The tentpole's soundness case: a reordered 3-way join on a 5-world
/// `K^W` database. The session-level reorder must actually fire (asserted
/// structurally), and for both engines, with the optimizer on and off:
/// `certain(optimized) ⊆ certain(unoptimized) ⊆ cert_ℕ(Q(𝒟))`.
#[test]
fn reordered_three_way_join_stays_c_sound_on_both_engines() {
    ua_vecexec::install();
    let query = three_way_star_query();
    for seed in 0..6u64 {
        let incomplete = five_world_db(seed);
        let truth = ground_truth_certain(&incomplete, &query);
        // The reorder fires on this shape: the emitted user plan permutes
        // the leaf sequence (a column-restoring projection appears) or at
        // least re-associates away from the as-written left-deep tree.
        {
            let session = session_from(&incomplete);
            let reordered = ua_engine::reorder_joins_ua(Plan::from_ra(&query), session.catalog());
            assert_ne!(
                format!("{reordered}"),
                format!("{}", Plan::from_ra(&query)),
                "seed {seed}: the bad-order 3-way join must be reordered"
            );
        }
        for mode in [ExecMode::Row, ExecMode::Vectorized] {
            let run = |optimizer: bool| {
                let session = session_from(&incomplete);
                session.set_exec_mode(mode);
                session.set_optimizer_enabled(optimizer);
                session.query_ua_ra(&query).expect("session query")
            };
            let opt = certain_tuples(&run(true).decode());
            let unopt = certain_tuples(&run(false).decode());
            assert!(
                is_subset(&opt, &unopt),
                "seed {seed}, {mode:?}: reordering invented certain tuples"
            );
            assert!(
                is_subset(&unopt, &truth),
                "seed {seed}, {mode:?}: unoptimized labels are not c-sound"
            );
            assert!(
                is_subset(&opt, &truth),
                "seed {seed}, {mode:?}: reordered labels are not c-sound"
            );
            // The reorder is exact: same certain answers both ways.
            assert_eq!(
                opt, unopt,
                "seed {seed}, {mode:?}: reordering changed the certain set"
            );
        }
    }
}

/// Top-K soundness, theorem-shaped, on the 5-world `K^W` databases: with
/// `Q_k` = `Q` + ORDER BY + LIMIT k and `Q` the RA⁺ core,
///
/// ```text
/// certain(⟦Q_k⟧ TopK-rewritten)  ⊆  certain(⟦Q_k⟧ unrewritten Sort+Limit)
///                                 ⊆  certain(⟦Q⟧)  ⊆  cert_ℕ(Q(𝒟))
/// ```
///
/// on both engines (the vectorized one executes the sort/Top-K natively
/// over label bitmaps). The fusion is in fact exact — rewritten and
/// unrewritten runs produce the same certain set — but the inclusions are
/// what must survive any future, lossier Top-K (e.g. an approximate heap).
#[test]
fn topk_rewrite_stays_c_sound_on_both_engines() {
    ua_vecexec::install();
    // SQL form of the comma-join query (the session registers the encoded
    // relations under their plain names) plus its RA⁺ core for the
    // ground-truth possible-worlds evaluation.
    let sql_full = "SELECT r.a, s.d FROM r, s WHERE r.b = s.b";
    let sql_topk = "SELECT r.a, s.d FROM r, s WHERE r.b = s.b ORDER BY r.a DESC, s.d LIMIT 4";
    let core = RaExpr::table("r")
        .join(
            RaExpr::table("s"),
            Expr::named("r.b").eq(Expr::named("s.b")),
        )
        .project(["a", "d"]);
    // The rewrite must actually fire on this shape.
    {
        let fused = ua_engine::fuse_topk(ua_engine::Plan::Limit {
            input: Box::new(ua_engine::Plan::Sort {
                input: Box::new(Plan::from_ra(&core)),
                keys: vec![],
            }),
            limit: 4,
        });
        assert!(
            format!("{fused}").starts_with("TopK["),
            "Limit(Sort(..)) must fuse: {fused}"
        );
    }
    for seed in 0..6u64 {
        let incomplete = five_world_db(seed);
        let truth = ground_truth_certain(&incomplete, &core);
        for mode in [ExecMode::Row, ExecMode::Vectorized] {
            let run = |sql: &str, optimizer: bool| -> Vec<Tuple> {
                let session = session_from(&incomplete);
                session.set_exec_mode(mode);
                session.set_optimizer_enabled(optimizer);
                let result = session.query_ua(sql).expect("session query");
                let mut certain: Vec<Tuple> = result
                    .rows_with_certainty()
                    .into_iter()
                    .filter(|(_, c)| *c)
                    .map(|(t, _)| t)
                    .collect();
                certain.sort();
                certain.dedup();
                certain
            };
            // Optimizer on ⇒ Limit(Sort) fuses into TopK; off ⇒ the
            // unrewritten Sort+Limit executes as written.
            let fused = run(sql_topk, true);
            let unfused = run(sql_topk, false);
            let full = run(sql_full, false);
            assert!(
                is_subset(&fused, &unfused),
                "seed {seed}, {mode:?}: TopK rewrite invented certain tuples"
            );
            assert!(
                is_subset(&unfused, &full),
                "seed {seed}, {mode:?}: Sort+Limit invented certain tuples"
            );
            assert!(
                is_subset(&full, &truth),
                "seed {seed}, {mode:?}: full-query labels are not c-sound"
            );
            assert!(
                is_subset(&fused, &truth),
                "seed {seed}, {mode:?}: TopK labels are not c-sound"
            );
            // The fusion is exact: same certain answers with and without.
            assert_eq!(
                fused, unfused,
                "seed {seed}, {mode:?}: TopK rewrite changed the certain set"
            );
        }
    }
}

/// The negation operators that close the RA⁺ hole — `EXCEPT [ALL]`,
/// `LEFT`/`RIGHT OUTER JOIN`, `NOT IN` / `NOT EXISTS` — keep label
/// c-soundness: every certain-labeled output tuple is an answer in EVERY
/// world. `IncompleteDb::query` is RA⁺-only and cannot express negation,
/// so the ground truth here is computed by executing each query
/// deterministically over every enumerated world and intersecting the
/// answer sets. Swept over {Row, Vec} × {optimizer on, off}; within a
/// grid point the engines must be byte-identical, and the optimizer must
/// preserve the result multiset.
#[test]
fn negation_queries_stay_c_sound_on_both_engines() {
    ua_vecexec::install();
    let queries = [
        "SELECT r.a FROM r EXCEPT SELECT s.d FROM s",
        "SELECT r.a FROM r EXCEPT ALL SELECT s.b FROM s",
        "SELECT r.a, r.b, s.d FROM r LEFT JOIN s ON r.b = s.b",
        "SELECT r.a, r.b, s.d FROM r RIGHT JOIN s ON r.b = s.b",
        "SELECT r.a, r.b FROM r WHERE r.b NOT IN (SELECT s.b FROM s)",
        "SELECT r.a FROM r WHERE NOT EXISTS (SELECT s.b FROM s WHERE s.d >= 6)",
    ];
    for seed in 0..6u64 {
        let incomplete = five_world_db(seed);
        for sql in queries {
            // Ground truth: tuples answering `sql` in every world.
            let mut truth: Option<Vec<Tuple>> = None;
            for w in 0..N_WORLDS {
                let world = incomplete.world(w);
                let det = UaSession::new();
                for name in ["r", "s", "t"] {
                    let rel = world.get(name).expect("relation");
                    let rows: Vec<Tuple> = rel
                        .iter()
                        .flat_map(|(t, &n)| std::iter::repeat_n(t.clone(), n as usize))
                        .collect();
                    det.register_table(name, Table::from_rows(rel.schema().clone(), rows));
                }
                let mut result = det
                    .query_det(sql)
                    .unwrap_or_else(|e| panic!("seed {seed}, world {w}, `{sql}`: {e}"))
                    .rows()
                    .to_vec();
                result.sort();
                result.dedup();
                truth = Some(match truth {
                    None => result,
                    Some(prev) => prev.into_iter().filter(|t| result.contains(t)).collect(),
                });
            }
            let truth = truth.expect("at least one world");
            for optimizer in [true, false] {
                let mut per_mode = Vec::new();
                for mode in [ExecMode::Row, ExecMode::Vectorized] {
                    let session = session_from(&incomplete);
                    session.set_exec_mode(mode);
                    session.set_optimizer_enabled(optimizer);
                    let result = session
                        .query_ua(sql)
                        .unwrap_or_else(|e| panic!("seed {seed}, {mode:?}, `{sql}`: {e}"));
                    let mut certain: Vec<Tuple> = result
                        .rows_with_certainty()
                        .into_iter()
                        .filter(|(_, c)| *c)
                        .map(|(t, _)| t)
                        .collect();
                    certain.sort();
                    certain.dedup();
                    assert!(
                        is_subset(&certain, &truth),
                        "seed {seed}, {mode:?}, optimizer={optimizer}: \
                         labels are not c-sound on `{sql}`\n \
                         certain: {certain:?}\n truth: {truth:?}"
                    );
                    per_mode.push(result.table);
                }
                assert_eq!(
                    per_mode[0].rows(),
                    per_mode[1].rows(),
                    "seed {seed}, optimizer={optimizer}: engines diverge on `{sql}`"
                );
            }
            // The optimizer must not change the result multiset.
            let run = |optimizer: bool| {
                let session = session_from(&incomplete);
                session.set_optimizer_enabled(optimizer);
                session
                    .query_ua(sql)
                    .expect("row query")
                    .table
                    .sorted_rows()
            };
            assert_eq!(
                run(true),
                run(false),
                "seed {seed}: optimizer changed the result of `{sql}`"
            );
        }
    }
}

#[test]
fn full_sessions_stay_c_sound_on_both_engines() {
    ua_vecexec::install();
    for seed in 0..4u64 {
        let incomplete = five_world_db(seed);
        for mode in [ExecMode::Row, ExecMode::Vectorized] {
            let session = session_from(&incomplete);
            session.set_exec_mode(mode);
            for (qname, ra) in queries() {
                let result = session.query_ua_ra(&ra).expect("session query");
                let truth = ground_truth_certain(&incomplete, &ra);
                assert!(
                    is_subset(&certain_tuples(&result.decode()), &truth),
                    "seed {seed}, {qname}, {mode:?}: session result is not c-sound"
                );
            }
        }
    }
}
