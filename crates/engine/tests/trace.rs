//! Query-lifetime tracing contract tests.
//!
//! The trace layer must export schema-valid Perfetto JSON (balanced
//! `B`/`E` pairs per thread, monotonic per-thread timestamps, per-morsel
//! `X` spans with durations), stay a pure observer (byte-identical
//! results with tracing on or off, across engines × optimizer settings ×
//! thread counts × semantics), and keep reporting when a query errors
//! mid-execution (partial stats tree with an `error` marker plus a
//! balanced trace). The memory/uncertainty telemetry riding on the same
//! stats tree is pinned by golden `render(false)` snapshots and the
//! EXPLAIN ANALYZE acceptance shape.

use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_engine::{ExecMode, Table, UaSession};

/// The same star-schema fixture as the observability tests: `orders(ok,
/// ck, total)` ⋈ `cust(ck, dk)` ⋈ `dept(dk, region)` plus a TI-annotated
/// `t(g, v, p)`, sized so 8-thread morsel runs split into several tasks.
fn seeded_session() -> UaSession {
    let s = UaSession::new();
    s.register_table(
        "orders",
        Table::from_rows(
            Schema::qualified("orders", ["ok", "ck", "total"]),
            (0..600i64)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int(i),
                        Value::Int((i * 7) % 120),
                        Value::Int((i * 13) % 500),
                    ])
                })
                .collect(),
        ),
    );
    s.register_table(
        "cust",
        Table::from_rows(
            Schema::qualified("cust", ["ck", "dk"]),
            (0..120i64)
                .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 8)]))
                .collect(),
        ),
    );
    s.register_table(
        "dept",
        Table::from_rows(
            Schema::qualified("dept", ["dk", "region"]),
            (0..8i64)
                .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 3)]))
                .collect(),
        ),
    );
    s.register_table(
        "t",
        Table::from_rows(
            Schema::qualified("t", ["g", "v", "p"]),
            (0..200i64)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int(i % 5),
                        Value::Int(i),
                        Value::float(if i % 4 == 0 { 0.5 } else { 1.0 }),
                    ])
                })
                .collect(),
        ),
    );
    // Annotated (all-certain) dimensions for the 3-way AU join shape.
    s.register_table(
        "cu",
        Table::from_rows(
            Schema::qualified("cu", ["ck", "dk", "p"]),
            (0..120i64)
                .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 8), Value::float(1.0)]))
                .collect(),
        ),
    );
    s.register_table(
        "du",
        Table::from_rows(
            Schema::qualified("du", ["dk", "region", "p"]),
            (0..8i64)
                .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 3), Value::float(1.0)]))
                .collect(),
        ),
    );
    s
}

const DET_SQL: &str = "SELECT d.region, count(*) AS n, sum(o.total) AS s \
                       FROM orders o, cust c, dept d \
                       WHERE o.ck = c.ck AND c.dk = d.dk AND o.total >= 100 \
                       GROUP BY d.region";

const UA_SQL: &str = "SELECT x.g, x.v FROM t IS TI WITH PROBABILITY (p) x \
                      WHERE x.v >= 50";

const AU_SQL: &str = "SELECT x.g, count(*) AS n, sum(x.v) AS s \
                      FROM t IS TI WITH PROBABILITY (p) x GROUP BY x.g";

/// One parsed trace event from the exported Perfetto JSON.
#[derive(Debug)]
struct Ev {
    name: String,
    cat: String,
    ph: char,
    ts: f64,
    tid: u64,
    dur: Option<f64>,
}

fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let start = line
        .find(&format!("\"{key}\": "))
        .unwrap_or_else(|| panic!("missing `{key}` in: {line}"))
        + key.len()
        + 4;
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated `{key}` in: {line}"));
    &rest[..end]
}

fn str_field(line: &str, key: &str) -> String {
    let v = field(line, key);
    v.trim_matches('"').to_string()
}

/// Parse the exported trace. Event names never contain `,` or `}` (phase
/// labels, operator labels, `morsel N`), so line-wise splitting is safe;
/// the envelope shape itself is asserted here too.
fn parse_trace(json: &str) -> Vec<Ev> {
    assert!(
        json.starts_with("{\"traceEvents\": ["),
        "bad envelope start: {}",
        &json[..json.len().min(40)]
    );
    assert!(
        json.ends_with("], \"displayTimeUnit\": \"ns\"}"),
        "bad envelope end"
    );
    json.lines()
        .filter(|l| l.trim_start().starts_with("{\"name\""))
        .map(|line| Ev {
            name: str_field(line, "name"),
            cat: str_field(line, "cat"),
            ph: str_field(line, "ph").chars().next().expect("ph char"),
            ts: field(line, "ts").parse().expect("ts number"),
            tid: field(line, "tid").parse().expect("tid number"),
            dur: line
                .contains("\"dur\": ")
                .then(|| field(line, "dur").parse().expect("dur number")),
        })
        .collect()
}

/// Structural validity: balanced, properly nested `B`/`E` pairs per
/// thread and non-decreasing timestamps per thread.
fn assert_well_formed(events: &[Ev], ctx: &str) {
    let mut stacks: std::collections::HashMap<u64, Vec<&str>> = Default::default();
    let mut last_ts: std::collections::HashMap<u64, f64> = Default::default();
    for ev in events {
        let prev = last_ts.entry(ev.tid).or_insert(0.0);
        assert!(
            ev.ts >= *prev,
            "{ctx}: tid {} timestamp went backwards at `{}` ({} < {prev})",
            ev.tid,
            ev.name,
            ev.ts
        );
        *prev = ev.ts;
        match ev.ph {
            'B' => stacks.entry(ev.tid).or_default().push(&ev.name),
            'E' => {
                let open = stacks
                    .get_mut(&ev.tid)
                    .and_then(Vec::pop)
                    .unwrap_or_else(|| panic!("{ctx}: E `{}` without open span", ev.name));
                assert_eq!(open, ev.name, "{ctx}: mismatched span nesting");
            }
            'X' => assert!(
                ev.dur.is_some(),
                "{ctx}: X span `{}` must carry a duration",
                ev.name
            ),
            'i' => {}
            other => panic!("{ctx}: unknown phase char {other:?}"),
        }
    }
    for (tid, stack) in stacks {
        assert!(
            stack.is_empty(),
            "{ctx}: tid {tid} left unbalanced spans: {stack:?}"
        );
    }
}

/// The exported trace is schema-valid Perfetto JSON on both engines and
/// all three semantics; the vectorized 8-thread run additionally carries
/// the full phase ladder on the session thread and per-morsel `X` spans
/// on the synthetic pool-worker threads.
#[test]
fn trace_export_is_valid_perfetto() {
    ua_vecexec::install();
    let s = seeded_session();
    s.set_trace_enabled(true);
    s.set_vec_threads(8);

    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        s.set_exec_mode(mode);
        for (sem, run) in [
            (
                "det",
                Box::new(|| s.query_det(DET_SQL).map(drop)) as Box<dyn Fn() -> _>,
            ),
            ("ua", Box::new(|| s.query_ua(UA_SQL).map(drop))),
            ("au", Box::new(|| s.query_au(AU_SQL).map(drop))),
        ] {
            run().unwrap_or_else(|e| panic!("{mode:?}/{sem}: {e}"));
            let json = s
                .last_query_trace()
                .unwrap_or_else(|| panic!("{mode:?}/{sem}: no trace exported"));
            let events = parse_trace(&json);
            let ctx = format!("{mode:?}/{sem}");
            assert!(!events.is_empty(), "{ctx}: empty trace");
            assert_well_formed(&events, &ctx);
            for phase in ["parse", "plan", "optimize", "execute"] {
                assert!(
                    events
                        .iter()
                        .any(|e| e.ph == 'B' && e.name == phase && e.tid == 0),
                    "{ctx}: missing `{phase}` phase span:\n{json}"
                );
            }
        }
    }

    // The vectorized det run (last loop leaves Vectorized mode) gets the
    // executor-side phases and the injected per-morsel pool spans.
    s.set_exec_mode(ExecMode::Vectorized);
    s.query_det(DET_SQL).expect("vec det");
    let events = parse_trace(&s.last_query_trace().expect("vec trace"));
    for phase in ["bind", "merge"] {
        assert!(
            events.iter().any(|e| e.ph == 'B' && e.name == phase),
            "vectorized trace missing `{phase}` phase"
        );
    }
    let morsels: Vec<&Ev> = events
        .iter()
        .filter(|e| e.ph == 'X' && e.name.starts_with("morsel"))
        .collect();
    assert!(
        !morsels.is_empty(),
        "8-thread vectorized run must inject per-morsel pool spans"
    );
    for m in &morsels {
        assert!(m.tid >= 1, "pool spans live on worker tids: {m:?}");
        assert_eq!(m.cat, "pool");
    }
}

/// Tracing is a pure observer: results are byte-identical with tracing
/// on vs off across {Row, Vectorized} × {optimizer on, off} × {1, 2, 8
/// threads} × {det, ua, au} — the same grid the stats-collection
/// contract runs.
#[test]
fn tracing_never_changes_results() {
    ua_vecexec::install();
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        for optimizer in [true, false] {
            for threads in [1usize, 2, 8] {
                let s = seeded_session();
                s.set_exec_mode(mode);
                s.set_optimizer_enabled(optimizer);
                s.set_vec_threads(threads);
                let ctx = format!("mode={mode:?} optimizer={optimizer} threads={threads}");

                s.set_trace_enabled(false);
                let det_off = s.query_det(DET_SQL).expect("det off");
                let ua_off = s.query_ua(UA_SQL).expect("ua off");
                let au_off = s.query_au(AU_SQL).expect("au off");

                s.set_trace_enabled(true);
                let det_on = s.query_det(DET_SQL).expect("det on");
                let ua_on = s.query_ua(UA_SQL).expect("ua on");
                let au_on = s.query_au(AU_SQL).expect("au on");

                assert_eq!(det_off.rows(), det_on.rows(), "det rows differ: {ctx}");
                assert_eq!(
                    ua_off.table.rows(),
                    ua_on.table.rows(),
                    "UA rows differ: {ctx}"
                );
                assert_eq!(
                    au_off.table.rows(),
                    au_on.table.rows(),
                    "AU rows differ: {ctx}"
                );

                // The traced runs actually exported something balanced.
                let json = s.last_query_trace().expect("trace exported");
                assert_well_formed(&parse_trace(&json), &ctx);
            }
        }
    }
}

/// A query that fails mid-execution (runtime type error) still deposits
/// a partial operator tree carrying the `error` marker — on both engines
/// — and the trace stays balanced (error paths close their spans).
#[test]
fn failed_query_still_reports_partial_stats() {
    ua_vecexec::install();
    let s = seeded_session();
    s.set_stats_enabled(true);
    s.set_trace_enabled(true);
    // Int + Str only fails when a row actually evaluates it.
    let bad = "SELECT o.ok + 'x' AS z FROM orders o";
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        s.set_exec_mode(mode);
        let err = s.query_det(bad).expect_err("type error must propagate");
        let msg = err.to_string();
        let stats = s
            .last_query_stats()
            .unwrap_or_else(|| panic!("{mode:?}: failed query left no stats ({msg})"));
        let rendered = stats.render(false);
        assert!(
            rendered.contains("error=1"),
            "{mode:?}: partial tree must carry the error marker:\n{rendered}"
        );
        let engine = if mode == ExecMode::Row {
            "row"
        } else {
            "vectorized"
        };
        assert_eq!(stats.engine, engine, "{mode:?}: wrong engine tag");
        let json = s.last_query_trace().expect("failed query still traces");
        assert_well_formed(&parse_trace(&json), &format!("{mode:?} error path"));
    }
}

/// The acceptance shape: EXPLAIN ANALYZE on a 3-way join + GROUP BY AU
/// query reports per-operator peak memory and the bound-width summary
/// (attribute-certainty, relative range width, multiplicity spread) on
/// BOTH engines, plus the query-level memory high-water mark.
#[test]
fn explain_analyze_reports_memory_and_bound_width() {
    ua_vecexec::install();
    let s = seeded_session();
    let au3 = "SELECT d.region, count(*) AS n, sum(x.v) AS s \
               FROM t IS TI WITH PROBABILITY (p) x \
               JOIN cu IS TI WITH PROBABILITY (p) c ON x.g = c.ck \
               JOIN du IS TI WITH PROBABILITY (p) d ON c.dk = d.dk \
               GROUP BY d.region";
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        s.set_exec_mode(mode);
        let report = s.explain_analyze_au(au3).expect("au explain analyze");
        for token in [
            "mem_bytes=",
            "certain_rows=",
            "top_attrs_permille=",
            "rel_width_permille=",
            "mult_spread=",
            "memory: query peak=",
        ] {
            assert!(
                report.contains(token),
                "{mode:?}: AU EXPLAIN ANALYZE missing `{token}`:\n{report}"
            );
        }
        assert!(
            report.matches("HashJoin").count() >= 2,
            "{mode:?}: expected the 3-way join shape:\n{report}"
        );
    }

    // The deterministic path tracks memory too.
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        s.set_exec_mode(mode);
        s.set_stats_enabled(true);
        s.query_det(DET_SQL).expect("det");
        s.set_stats_enabled(false);
        let stats = s.last_query_stats().expect("stats");
        assert!(
            stats.peak_mem_bytes > 0,
            "{mode:?}: join+agg must report a nonzero memory high-water mark"
        );
    }
}

/// Golden `render(false)` snapshots with the new memory / certainty /
/// bound-width columns, pinned on the vectorized engine (deterministic
/// logical byte figures, single-threaded).
#[test]
fn golden_render_includes_mem_and_uncertainty_columns() {
    ua_vecexec::install();
    let s = seeded_session();
    s.set_exec_mode(ExecMode::Vectorized);
    s.set_vec_threads(1);
    s.set_stats_enabled(true);

    s.query_ua(UA_SQL).expect("ua");
    let ua = s.last_query_stats().expect("ua stats");
    assert_eq!(
        ua.root.render(false),
        "Map[x.g\u{2192}g, x.v\u{2192}v] rows=150 est=150 batches=1 (certain_rows=113)\n\
         \x20 Alias[x] rows=150 est=150 batches=1 (certain_rows=113)\n\
         \x20   Filter[(v >= 50)] rows=150 est=150 batches=1 (certain_rows=113)\n\
         \x20     Scan[__ua__t__ti_1_p] rows=200 est=200 batches=1 (certain_rows=150)\n",
        "UA golden drifted:\n{}",
        ua.root.render(false)
    );

    s.query_au(AU_SQL).expect("au");
    let au = s.last_query_stats().expect("au stats");
    assert_eq!(
        au.root.render(false),
        "Map[g\u{2192}g, __agg0\u{2192}n, __agg1\u{2192}s] rows=5 est=5 batches=1 \
         (certain_rows=5, top_attrs_permille=0, rel_width_permille=163, \
         mult_spread=195, mem_bytes=840)\n\
         \x20 Aggregate[g; count(*)\u{2192}__agg0, sum\u{2192}__agg1] rows=5 est=5 \
         batches=1 (certain_rows=5, top_attrs_permille=0, rel_width_permille=163, \
         mult_spread=195, mem_bytes=840)\n\
         \x20   Alias[x] rows=200 est=200 batches=1 (certain_rows=150, \
         top_attrs_permille=0, rel_width_permille=0, mult_spread=50, \
         mem_bytes=24000)\n\
         \x20     Scan[__au__t__ti_1_p] rows=200 est=200 batches=1 \
         (certain_rows=150, top_attrs_permille=0, rel_width_permille=0, \
         mult_spread=50, mem_bytes=24000)\n",
        "AU golden drifted:\n{}",
        au.root.render(false)
    );
}

/// Planner-feedback telemetry: registering tables publishes the
/// `catalog.tables` / `catalog.rows` gauges, and consuming a stale
/// statistics snapshot (table replaced since collection) recollects and
/// counts on `stats.staleness`; an explicit ANALYZE keeps it quiet.
#[test]
fn staleness_counter_and_catalog_gauges() {
    let s = seeded_session();
    let reg = ua_obs::global();

    // Fixture totals: 6 tables, 600 + 120 + 8 + 200 + 120 + 8 rows. Other
    // tests in this binary publish the *same* totals, so poll briefly to
    // step over a concurrently mid-registration session.
    let expect_gauges = |tables: i64, rows: i64| {
        for _ in 0..200 {
            if reg.gauge("catalog.tables").get() == tables
                && reg.gauge("catalog.rows").get() == rows
            {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!(
            "catalog gauges never settled at tables={tables} rows={rows} \
             (got tables={} rows={})",
            reg.gauge("catalog.tables").get(),
            reg.gauge("catalog.rows").get()
        );
    };
    expect_gauges(6, 1056);

    // Fresh registration collected stats eagerly: serving them is not a
    // staleness event.
    let before = reg.counter("stats.staleness").get();
    s.catalog().stats_of("t").expect("stats");
    assert_eq!(
        reg.counter("stats.staleness").get(),
        before,
        "fresh stats must serve from cache"
    );

    // Replace the table: the cached snapshot goes stale, the next read
    // recollects and counts exactly one staleness event, and the
    // refreshed snapshot serves quietly afterwards.
    s.register_table(
        "t",
        Table::from_rows(
            Schema::qualified("t", ["g", "v", "p"]),
            (0..200i64)
                .map(|i| Tuple::new(vec![Value::Int(i % 5), Value::Int(i), Value::float(1.0)]))
                .collect(),
        ),
    );
    expect_gauges(6, 1056);
    s.catalog().stats_of("t").expect("stats");
    assert_eq!(
        reg.counter("stats.staleness").get(),
        before + 1,
        "consuming a stale snapshot must count on stats.staleness"
    );
    s.catalog().stats_of("t").expect("stats");
    assert_eq!(
        reg.counter("stats.staleness").get(),
        before + 1,
        "the recollected snapshot serves from cache"
    );

    // ANALYZE after a replacement refreshes proactively: no staleness.
    s.register_table(
        "t2",
        Table::from_rows(
            Schema::qualified("t2", ["a"]),
            (0..10i64)
                .map(|i| Tuple::new(vec![Value::Int(i)]))
                .collect(),
        ),
    );
    s.register_table(
        "t2",
        Table::from_rows(
            Schema::qualified("t2", ["a"]),
            (0..20i64)
                .map(|i| Tuple::new(vec![Value::Int(i)]))
                .collect(),
        ),
    );
    s.catalog().analyze("t2").expect("analyze");
    let after_analyze = reg.counter("stats.staleness").get();
    s.catalog().stats_of("t2").expect("stats");
    assert_eq!(
        reg.counter("stats.staleness").get(),
        after_analyze,
        "ANALYZE must pre-empt the staleness event"
    );
}
