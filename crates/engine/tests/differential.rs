//! Differential property harness: random SQL over seeded TI-DB / BI-DB /
//! C-table sources must execute identically on the row and vectorized
//! engines — label for label and in the same row order — with the optimizer
//! pipeline on *and* off, and the optimizer itself must never change the
//! result multiset.
//!
//! Each property runs 256 generated cases (via the offline proptest shim's
//! deterministic runner), and each case is executed four ways:
//! `{Row, Vectorized} × {optimizer on, optimizer off}`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_engine::{EngineError, ExecMode, Table, UaResult, UaSession};

/// A fresh session over the three seeded uncertain sources.
///
/// All data-bearing columns are small ints so any pair of columns can act
/// as a join key; probabilities and conditions exercise all three labeling
/// schemes (certain, uncertain, and dropped rows each appear).
fn seeded_session(mode: ExecMode, optimizer: bool) -> UaSession {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let session = UaSession::with_mode(mode);
    session.set_optimizer_enabled(optimizer);
    // TI-DB: `ti(a, b, p)` — a handful of NULL `a`s so ORDER BY keys (and
    // join keys, which NULL never matches) exercise three-valued handling.
    // (`b` stays numeric: one regression test re-annotates it as a
    // probability column.)
    session.register_table(
        "ti",
        Table::from_rows(
            Schema::qualified("ti", ["a", "b", "p"]),
            (0..40)
                .map(|i| {
                    let a = if i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::Int(rng.gen_range(0..6))
                    };
                    Tuple::new(vec![
                        a,
                        Value::Int(rng.gen_range(0..6)),
                        Value::float([1.0, 0.9, 0.6, 0.3][rng.gen_range(0..4usize)]),
                    ])
                })
                .collect(),
        ),
    );
    // BI-DB / x-DB: `xr(xid, aid, p, k, v)` — two alternatives per block.
    let mut xr_rows = Vec::new();
    for xid in 0..15i64 {
        let alts = rng.gen_range(1..3i64);
        for aid in 0..alts {
            let p = if alts == 1 {
                1.0
            } else {
                0.5 + 0.1 * (aid as f64)
            };
            xr_rows.push(Tuple::new(vec![
                Value::Int(xid),
                Value::Int(aid),
                Value::float(p),
                Value::Int(rng.gen_range(0..6)),
                Value::Int(rng.gen_range(0..6)),
            ]));
        }
    }
    session.register_table(
        "xr",
        Table::from_rows(
            Schema::qualified("xr", ["xid", "aid", "p", "k", "v"]),
            xr_rows,
        ),
    );
    // C-table: `ct(a, g, v1, lc)` — some rows conditioned, one tautology.
    session.register_table(
        "ct",
        Table::from_rows(
            Schema::qualified("ct", ["a", "g", "v1", "lc"]),
            (0..25)
                .map(|i| {
                    let lc = match i % 3 {
                        0 => Value::str("x < 5 OR x >= 5"), // tautology → certain
                        1 => Value::str("x = 3"),           // contingent → uncertain
                        _ => Value::Null,                   // no condition → certain
                    };
                    let v1 = if i % 7 == 0 {
                        Value::str("x") // variable attribute → dropped
                    } else {
                        Value::Null
                    };
                    Tuple::new(vec![
                        Value::Int(rng.gen_range(0..6)),
                        Value::Int(rng.gen_range(0..6)),
                        v1,
                        lc,
                    ])
                })
                .collect(),
        ),
    );
    session
}

/// The three annotated FROM items and their two int columns, alias-qualified.
struct Source {
    from: &'static str,
    cols: [&'static str; 2],
}

const SOURCES: [Source; 3] = [
    Source {
        from: "ti IS TI WITH PROBABILITY (p) x",
        cols: ["x.a", "x.b"],
    },
    Source {
        from: "xr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) y",
        cols: ["y.k", "y.v"],
    },
    Source {
        from: "ct IS CTABLE WITH VARIABLES (v1) LOCAL CONDITION (lc) z",
        cols: ["z.a", "z.g"],
    },
];

/// A fourth annotated source (a re-annotation of `ti` under a fresh alias)
/// so 4-way joins have four distinct relations.
const SOURCE_W: Source = Source {
    from: "ti IS TI WITH PROBABILITY (p) w",
    cols: ["w.a", "w.b"],
};

const OPS: [&str; 4] = ["=", "<", ">=", "<>"];

fn atom(col: &str, op: usize, lit: i64) -> String {
    format!("{col} {} {lit}", OPS[op % OPS.len()])
}

/// Random single-source query with optional WHERE / ORDER BY / LIMIT.
fn arb_single() -> impl Strategy<Value = String> {
    (
        0usize..3,
        0usize..2,
        0usize..4,
        0i64..6,
        proptest::bool::ANY,
        0usize..3,
    )
        .prop_map(|(src, col, op, lit, with_pred, shape)| {
            let s = &SOURCES[src];
            let projection = match shape {
                0 => "*".to_string(),
                1 => format!("{}, {}", s.cols[0], s.cols[1]),
                _ => format!("{} AS c0", s.cols[col]),
            };
            let mut sql = format!("SELECT {projection} FROM {}", s.from);
            if with_pred {
                sql.push_str(&format!(" WHERE {}", atom(s.cols[col], op, lit)));
            }
            if shape == 2 {
                sql.push_str(" ORDER BY c0 LIMIT 10");
            }
            sql
        })
}

/// Random two-source equi-join, in comma form or `JOIN ... ON` form, with
/// an optional extra single-side conjunct (exercising selection pushdown
/// below the planned hash join).
fn arb_join() -> impl Strategy<Value = String> {
    (
        0usize..3,
        0usize..3,
        (0usize..2, 0usize..2),
        (0usize..4, 0i64..6, 0usize..3),
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(s1, s2, (k1, k2), (op, lit, extra_side), comma, star)| {
            let s2 = if s1 == s2 { (s2 + 1) % 3 } else { s2 };
            let a = &SOURCES[s1];
            let b = &SOURCES[s2];
            let on = format!("{} = {}", a.cols[k1], b.cols[k2]);
            let extra = match extra_side {
                0 => Some(atom(a.cols[1 - k1], op, lit)),
                1 => Some(atom(b.cols[1 - k2], op, lit)),
                _ => None,
            };
            let projection = if star {
                "*".to_string()
            } else {
                format!("{}, {}", a.cols[0], b.cols[1])
            };
            if comma {
                let mut pred = on;
                if let Some(e) = extra {
                    pred = format!("{pred} AND {e}");
                }
                format!(
                    "SELECT {projection} FROM {}, {} WHERE {pred}",
                    a.from, b.from
                )
            } else {
                let mut sql = format!(
                    "SELECT {projection} FROM {} JOIN {} ON {on}",
                    a.from, b.from
                );
                if let Some(e) = extra {
                    sql.push_str(&format!(" WHERE {e}"));
                }
                sql
            }
        })
}

/// UNION ALL of one-column projections, and subqueries with inner+outer
/// filters (pushdown through stacked projections at the SQL level).
fn arb_compound() -> impl Strategy<Value = String> {
    (0usize..3, 0usize..3, 0usize..4, 0i64..6, proptest::bool::ANY).prop_map(
        |(s1, s2, op, lit, union)| {
            let a = &SOURCES[s1];
            let b = &SOURCES[s2];
            if union {
                format!(
                    "SELECT {} AS u FROM {} UNION ALL SELECT {} AS u FROM {}",
                    a.cols[0], a.from, b.cols[1], b.from
                )
            } else {
                let inner_col = a.cols[0].split('.').nth(1).expect("qualified");
                format!(
                    "SELECT q.{inner_col} FROM (SELECT {}, {} FROM {} WHERE {}) q WHERE q.{inner_col} >= {}",
                    a.cols[0],
                    a.cols[1],
                    a.from,
                    atom(a.cols[1], op, lit),
                    lit.min(3)
                )
            }
        },
    )
}

/// 3- and 4-way comma-joins over mixed TI/BI/C-table sources, in a
/// randomized FROM order with a chain of equi-conjuncts plus an optional
/// single-side atom — exactly the shapes the join-reordering pass rewrites
/// (and re-routes through the uniform pre-dispatch pipeline on both
/// engines).
fn arb_multi_join() -> impl Strategy<Value = String> {
    (
        0usize..6,
        proptest::bool::ANY,
        (0usize..2, 0usize..2, 0usize..2),
        // `src == 3` means "no extra atom".
        (0usize..4, 0usize..4, 0i64..6),
        proptest::bool::ANY,
    )
        .prop_map(
            |(perm, four_way, (k1, k2, k3), (atom_src, atom_op, atom_lit), star)| {
                const PERMS: [[usize; 3]; 6] = [
                    [0, 1, 2],
                    [0, 2, 1],
                    [1, 0, 2],
                    [1, 2, 0],
                    [2, 0, 1],
                    [2, 1, 0],
                ];
                let mut sources: Vec<&Source> = PERMS[perm].iter().map(|&i| &SOURCES[i]).collect();
                if four_way {
                    sources.push(&SOURCE_W);
                }
                let from = sources
                    .iter()
                    .map(|s| s.from)
                    .collect::<Vec<_>>()
                    .join(", ");
                // Chain: s0.c = s1.c' AND s1.c'' = s2.c''' (AND s2.c = s3.c).
                let mut conjuncts = vec![
                    format!("{} = {}", sources[0].cols[k1], sources[1].cols[k2]),
                    format!("{} = {}", sources[1].cols[k2], sources[2].cols[k3]),
                ];
                if four_way {
                    conjuncts.push(format!("{} = {}", sources[2].cols[k3], sources[3].cols[0]));
                }
                if atom_src < 3 {
                    conjuncts.push(atom(
                        sources[atom_src % sources.len()].cols[0],
                        atom_op,
                        atom_lit,
                    ));
                }
                let projection = if star {
                    "*".to_string()
                } else {
                    format!("{}, {}", sources[0].cols[1], sources[2].cols[0])
                };
                format!(
                    "SELECT {projection} FROM {from} WHERE {}",
                    conjuncts.join(" AND ")
                )
            },
        )
}

/// ORDER BY queries over single sources and equi-joins: multi-key (1–2
/// keys, mixed ASC/DESC, duplicate-heavy domains, NULL `b`s in `ti`), with
/// and without LIMIT — the shapes the columnar Sort and the fused Top-K
/// rewrite execute.
fn arb_order_by() -> impl Strategy<Value = String> {
    (
        0usize..3,
        0usize..3,
        (0usize..2, 0usize..2),
        proptest::bool::ANY,
        0usize..4,
    )
        .prop_map(|(s1, s2, (k1, k2), join, limit_shape)| {
            let a = &SOURCES[s1];
            let dir = |desc: bool| if desc { "DESC" } else { "ASC" };
            let (from, cols): (String, [&str; 2]) = if join {
                let s2 = if s1 == s2 { (s2 + 1) % 3 } else { s2 };
                let b = &SOURCES[s2];
                (
                    format!("{}, {} WHERE {} = {}", a.from, b.from, a.cols[0], b.cols[0]),
                    [a.cols[1], b.cols[1]],
                )
            } else {
                (a.from.to_string(), [a.cols[0], a.cols[1]])
            };
            let (d1, d2) = (k1 == 1, k2 == 1);
            let mut sql = format!(
                "SELECT {} AS u, {} AS v FROM {from} ORDER BY u {}, v {}",
                cols[0],
                cols[1],
                dir(d1),
                dir(d2)
            );
            match limit_shape {
                0 => {}
                1 => sql.push_str(" LIMIT 0"),
                2 => sql.push_str(" LIMIT 5"),
                _ => sql.push_str(" LIMIT 1000"),
            }
            sql
        })
}

/// GROUP BY / aggregation queries over single sources and equi-joins:
/// 0–2 group keys, 1–3 aggregates (count(*)/count/sum/min/max/avg,
/// including arithmetic arguments that exercise the typed kernels), an
/// optional WHERE below the aggregation, and an optional ORDER BY over the
/// aggregate output. Under UA semantics these must be *rejected
/// identically* by both engines (aggregation is not closed under
/// `⟦·⟧_UA`); under deterministic semantics they execute and must agree.
fn arb_group_by() -> impl Strategy<Value = String> {
    (
        0usize..3,
        0usize..3,
        (0usize..3, 0usize..5, proptest::bool::ANY),
        (0usize..4, 0i64..6),
        proptest::bool::ANY,
        0usize..3,
    )
        .prop_map(
            |(s1, s2, (n_keys, agg_pick, arith_arg), (op, lit), join, order_shape)| {
                let a = &SOURCES[s1];
                let (from, cols): (String, [&str; 2]) = if join {
                    let s2 = if s1 == s2 { (s2 + 1) % 3 } else { s2 };
                    let b = &SOURCES[s2];
                    (
                        format!("{}, {} WHERE {} = {}", a.from, b.from, a.cols[0], b.cols[0]),
                        [a.cols[1], b.cols[1]],
                    )
                } else {
                    (a.from.to_string(), [a.cols[0], a.cols[1]])
                };
                let arg = if arith_arg {
                    format!("{} + 1", cols[1])
                } else {
                    cols[1].to_string()
                };
                let aggs: Vec<String> = match agg_pick {
                    0 => vec!["count(*) AS n".into()],
                    1 => vec![format!("sum({arg}) AS s"), "count(*) AS n".into()],
                    2 => vec![format!("min({arg}) AS lo"), format!("max({arg}) AS hi")],
                    3 => vec![format!("avg({arg}) AS m")],
                    _ => vec![
                        format!("count({}) AS c", cols[0]),
                        format!("sum({arg}) AS s"),
                    ],
                };
                let keys: Vec<&str> = match n_keys {
                    0 => vec![],
                    1 => vec![cols[0]],
                    _ => vec![cols[0], cols[1]],
                };
                let mut select: Vec<String> = keys
                    .iter()
                    .enumerate()
                    .map(|(i, k)| format!("{k} AS k{i}"))
                    .collect();
                select.extend(aggs.iter().cloned());
                let mut sql = format!("SELECT {} FROM {from}", select.join(", "));
                // WHERE must precede GROUP BY; the join form already
                // carries one, so extend it with AND there.
                let atom = atom(cols[0], op, lit);
                if join {
                    sql = format!("{sql} AND {atom}");
                } else if order_shape == 1 {
                    sql.push_str(&format!(" WHERE {atom}"));
                }
                if !keys.is_empty() {
                    sql.push_str(&format!(" GROUP BY {}", keys.join(", ")));
                }
                if order_shape == 2 {
                    let first_agg = ["n", "s", "lo", "m", "c"][agg_pick.min(4)];
                    if keys.is_empty() {
                        sql.push_str(&format!(" ORDER BY {first_agg} LIMIT 5"));
                    } else {
                        sql.push_str(&format!(" ORDER BY k0, {first_agg} LIMIT 5"));
                    }
                }
                sql
            },
        )
}

/// `EXCEPT [ALL]` between union-compatible one-column projections over the
/// annotated sources, with an optional single-side WHERE and an optional
/// trailing ORDER BY/LIMIT — the wrapper shapes the UA negation path peels
/// off and re-applies over the encoded result.
fn arb_except() -> impl Strategy<Value = String> {
    (
        0usize..3,
        0usize..3,
        (0usize..2, 0usize..2),
        (0usize..4, 0i64..6, 0usize..3),
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(s1, s2, (c1, c2), (op, lit, where_side), all, order)| {
            let a = &SOURCES[s1];
            let b = &SOURCES[s2];
            let connective = if all { "EXCEPT ALL" } else { "EXCEPT" };
            let lw = if where_side == 0 {
                format!(" WHERE {}", atom(a.cols[c1], op, lit))
            } else {
                String::new()
            };
            let rw = if where_side == 1 {
                format!(" WHERE {}", atom(b.cols[c2], op, lit))
            } else {
                String::new()
            };
            let mut sql = format!(
                "SELECT {} AS u FROM {}{lw} {connective} SELECT {} AS u FROM {}{rw}",
                a.cols[c1], a.from, b.cols[c2], b.from
            );
            if order {
                sql.push_str(" ORDER BY u LIMIT 12");
            }
            sql
        })
}

/// `LEFT`/`RIGHT [OUTER] JOIN ... ON` equi-joins over the annotated
/// sources, with an optional WHERE above the join — on either side,
/// including the null-padded one (the conjunct the pushdown pass must
/// refuse to sink; a NULL-fed atom evaluates to unknown and drops pads,
/// which pushing below the join would resurrect).
fn arb_outer_join() -> impl Strategy<Value = String> {
    (
        0usize..3,
        0usize..3,
        (0usize..2, 0usize..2),
        (0usize..4, 0i64..6, 0usize..3),
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(s1, s2, (k1, k2), (op, lit, extra_side), left, star)| {
            let s2 = if s1 == s2 { (s2 + 1) % 3 } else { s2 };
            let a = &SOURCES[s1];
            let b = &SOURCES[s2];
            let kind = if left { "LEFT JOIN" } else { "RIGHT JOIN" };
            let projection = if star {
                "*".to_string()
            } else {
                format!("{}, {}", a.cols[0], b.cols[1])
            };
            let mut sql = format!(
                "SELECT {projection} FROM {} {kind} {} ON {} = {}",
                a.from, b.from, a.cols[k1], b.cols[k2]
            );
            match extra_side {
                0 => sql.push_str(&format!(" WHERE {}", atom(a.cols[1 - k1], op, lit))),
                1 => sql.push_str(&format!(" WHERE {}", atom(b.cols[1 - k2], op, lit))),
                _ => {}
            }
            sql
        })
}

/// Uncorrelated `NOT IN` / `NOT EXISTS` subquery conjuncts (the anti-join
/// lowering). `ti.a` carries NULLs, so NOT IN hits all three three-valued
/// cases: NULL operand, NULL in the subquery result, and plain mismatch;
/// one subquery shape is deliberately empty (everything survives).
fn arb_anti_join() -> impl Strategy<Value = String> {
    (
        0usize..3,
        0usize..3,
        (0usize..2, 0usize..2),
        (0usize..4, 0i64..6),
        proptest::bool::ANY,
        0usize..3,
    )
        .prop_map(|(s1, s2, (c1, c2), (op, lit), exists, sub_where)| {
            let a = &SOURCES[s1];
            let b = &SOURCES[s2];
            let sub_pred = match sub_where {
                0 => format!(" WHERE {}", atom(b.cols[c2], op, lit)),
                1 => format!(" WHERE {} > 100", b.cols[c2]), // empty subquery
                _ => String::new(),
            };
            if exists {
                format!(
                    "SELECT {}, {} FROM {} WHERE NOT EXISTS (SELECT {} FROM {}{sub_pred})",
                    a.cols[0], a.cols[1], a.from, b.cols[c2], b.from
                )
            } else {
                format!(
                    "SELECT {} FROM {} WHERE {} NOT IN (SELECT {} FROM {}{sub_pred})",
                    a.cols[0], a.from, a.cols[c1], b.cols[c2], b.from
                )
            }
        })
}

fn arb_negation() -> impl Strategy<Value = String> {
    prop_oneof![arb_except(), arb_outer_join(), arb_anti_join()]
}

fn arb_query() -> impl Strategy<Value = String> {
    prop_oneof![
        arb_single(),
        arb_join(),
        arb_compound(),
        arb_multi_join(),
        arb_order_by(),
        arb_group_by(),
        arb_negation()
    ]
}

fn run_ua(sql: &str, mode: ExecMode, optimizer: bool) -> Result<UaResult, EngineError> {
    seeded_session(mode, optimizer).query_ua(sql)
}

fn run_ua_threads(sql: &str, optimizer: bool, threads: usize) -> Result<UaResult, EngineError> {
    let session = seeded_session(ExecMode::Vectorized, optimizer);
    session.set_vec_threads(threads);
    session.query_ua(sql)
}

fn run_det(sql: &str, mode: ExecMode, optimizer: bool) -> Result<Table, EngineError> {
    seeded_session(mode, optimizer).query_det(sql)
}

fn run_det_threads(sql: &str, optimizer: bool, threads: usize) -> Result<Table, EngineError> {
    let session = seeded_session(ExecMode::Vectorized, optimizer);
    session.set_vec_threads(threads);
    session.query_det(sql)
}

/// The two engines either both fail, or produce byte-identical encoded
/// tables (same rows, same trailing `ua_c` labels, same order).
fn assert_engines_agree_ua(sql: &str, optimizer: bool) {
    ua_vecexec::install();
    let row = run_ua(sql, ExecMode::Row, optimizer);
    let vec = run_ua(sql, ExecMode::Vectorized, optimizer);
    match (row, vec) {
        (Ok(r), Ok(v)) => {
            assert_eq!(
                r.table.schema().arity(),
                v.table.schema().arity(),
                "arity mismatch (optimizer={optimizer}): {sql}"
            );
            assert_eq!(
                r.table.rows(),
                v.table.rows(),
                "row/label/order mismatch (optimizer={optimizer}): {sql}"
            );
        }
        (Err(_), Err(_)) => {}
        (r, v) => panic!(
            "engines disagree on success (optimizer={optimizer}): {sql}\n row: {:?}\n vec: {:?}",
            r.map(|t| t.table.len()),
            v.map(|t| t.table.len())
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// UA semantics: Row vs Vectorized, optimizer on and off.
    #[test]
    fn ua_engines_agree_on_random_sql(sql in arb_query()) {
        assert_engines_agree_ua(&sql, true);
        assert_engines_agree_ua(&sql, false);
    }

    /// The optimizer never changes the UA result multiset (labels included).
    #[test]
    fn optimizer_preserves_ua_results(sql in arb_query()) {
        let opt = run_ua(&sql, ExecMode::Row, true);
        let raw = run_ua(&sql, ExecMode::Row, false);
        match (opt, raw) {
            (Ok(o), Ok(r)) => {
                prop_assert_eq!(
                    o.table.sorted_rows(),
                    r.table.sorted_rows(),
                    "optimizer changed the result: {}",
                    sql
                );
                prop_assert_eq!(o.certainty_counts(), r.certainty_counts());
            }
            (Err(_), Err(_)) => {}
            (o, r) => panic!(
                "optimizer changed success: {}\n opt: {:?}\n raw: {:?}",
                sql,
                o.map(|t| t.table.len()),
                r.map(|t| t.table.len())
            ),
        }
    }

    /// ORDER BY (+ LIMIT) queries: label-for-label, order-identical results
    /// across {Row, Vec} × {optimizer on, off} × {threads 1, 2, 8}. The row
    /// engine's encoded sort is the reference; the vectorized engine's
    /// columnar sort / fused Top-K must match it byte for byte at every
    /// thread count (morsel merge order is the determinism contract).
    #[test]
    fn ua_order_by_agrees_across_engines_and_threads(sql in arb_order_by()) {
        ua_vecexec::install();
        for optimizer in [true, false] {
            let row = run_ua(&sql, ExecMode::Row, optimizer);
            for threads in [1usize, 2, 8] {
                let vec = run_ua_threads(&sql, optimizer, threads);
                match (&row, &vec) {
                    (Ok(r), Ok(v)) => prop_assert_eq!(
                        r.table.rows(),
                        v.table.rows(),
                        "row/label/order mismatch (optimizer={}, threads={}): {}",
                        optimizer,
                        threads,
                        &sql
                    ),
                    (Err(_), Err(_)) => {}
                    (r, v) => panic!(
                        "engines disagree on success (optimizer={optimizer}, \
                         threads={threads}): {sql}\n row: {:?}\n vec: {:?}",
                        r.as_ref().map(|t| t.table.len()),
                        v.as_ref().map(|t| t.table.len())
                    ),
                }
            }
        }
    }

    /// GROUP BY / aggregation SQL under deterministic semantics, swept over
    /// {Row, Vec} × {optimizer on, off} × {threads 1, 2, 8}: identical rows
    /// in identical (first-seen-group) order everywhere — the vectorized
    /// aggregation (typed arithmetic kernels included) against the row
    /// engine's, at every thread count.
    #[test]
    fn det_group_by_agrees_across_engines_and_threads(sql in arb_group_by()) {
        ua_vecexec::install();
        for optimizer in [true, false] {
            let row = run_det(&sql, ExecMode::Row, optimizer);
            for threads in [1usize, 2, 8] {
                let vec = run_det_threads(&sql, optimizer, threads);
                match (&row, &vec) {
                    (Ok(r), Ok(v)) => prop_assert_eq!(
                        r.rows(),
                        v.rows(),
                        "group-by mismatch (optimizer={}, threads={}): {}",
                        optimizer,
                        threads,
                        &sql
                    ),
                    (Err(_), Err(_)) => {}
                    (r, v) => panic!(
                        "engines disagree on success (optimizer={optimizer}, \
                         threads={threads}): {sql}\n row: {:?}\n vec: {:?}",
                        r.as_ref().map(|t| t.len()),
                        v.as_ref().map(|t| t.len())
                    ),
                }
            }
        }
    }

    /// Aggregation is not closed under `⟦·⟧_UA`: UA sessions must reject
    /// every generated GROUP BY query, with the *same* failure on both
    /// engines and at every thread count (no partial execution, no
    /// engine-specific acceptance).
    #[test]
    fn ua_rejects_group_by_uniformly(sql in arb_group_by()) {
        ua_vecexec::install();
        for optimizer in [true, false] {
            let row = run_ua(&sql, ExecMode::Row, optimizer);
            prop_assert!(row.is_err(), "UA must reject aggregation: {}", &sql);
            for threads in [1usize, 2, 8] {
                let vec = run_ua_threads(&sql, optimizer, threads);
                prop_assert!(
                    vec.is_err(),
                    "vectorized UA must reject aggregation (threads={}): {}",
                    threads,
                    &sql
                );
            }
        }
    }

    /// AU semantics over generated GROUP BY/aggregate SQL (the queries UA
    /// rejects): the row interpreter and the vectorized range-triple
    /// executor produce byte-identical flattened encoded tables.
    #[test]
    fn au_engines_agree_on_group_by(sql in arb_group_by()) {
        ua_vecexec::install();
        let row = seeded_session(ExecMode::Row, true).query_au(&sql);
        let vec = seeded_session(ExecMode::Vectorized, true).query_au(&sql);
        match (row, vec) {
            (Ok(r), Ok(v)) => {
                prop_assert_eq!(
                    r.table.schema(),
                    v.table.schema(),
                    "AU schema mismatch: {}",
                    &sql
                );
                prop_assert_eq!(
                    r.table.rows(),
                    v.table.rows(),
                    "AU row mismatch: {}",
                    &sql
                );
            }
            (Err(_), Err(_)) => {}
            (r, v) => panic!(
                "AU engines disagree on success: {sql}\n row: {:?}\n vec: {:?}",
                r.map(|t| t.table.len()),
                v.map(|t| t.table.len())
            ),
        }
    }

    /// Negation SQL (EXCEPT [ALL], LEFT/RIGHT JOIN, NOT IN / NOT EXISTS)
    /// under UA semantics: label-for-label, order-identical encoded tables
    /// across {Row, Vec} × {optimizer on, off} × {threads 1, 2, 8}, and
    /// the optimizer preserves the result multiset (labels included).
    #[test]
    fn ua_negation_agrees_across_engines_and_threads(sql in arb_negation()) {
        ua_vecexec::install();
        let mut per_opt: Vec<Option<Vec<Tuple>>> = Vec::new();
        for optimizer in [true, false] {
            let row = run_ua(&sql, ExecMode::Row, optimizer);
            per_opt.push(row.as_ref().ok().map(|r| r.table.sorted_rows()));
            for threads in [1usize, 2, 8] {
                let vec = run_ua_threads(&sql, optimizer, threads);
                match (&row, &vec) {
                    (Ok(r), Ok(v)) => prop_assert_eq!(
                        r.table.rows(),
                        v.table.rows(),
                        "row/label/order mismatch (optimizer={}, threads={}): {}",
                        optimizer,
                        threads,
                        &sql
                    ),
                    (Err(_), Err(_)) => {}
                    (r, v) => panic!(
                        "engines disagree on success (optimizer={optimizer}, \
                         threads={threads}): {sql}\n row: {:?}\n vec: {:?}",
                        r.as_ref().map(|t| t.table.len()),
                        v.as_ref().map(|t| t.table.len())
                    ),
                }
            }
        }
        prop_assert_eq!(
            &per_opt[0],
            &per_opt[1],
            "optimizer changed the negation result: {}",
            &sql
        );
    }

    /// The same negation SQL under deterministic semantics, over the same
    /// grid.
    #[test]
    fn det_negation_agrees_across_engines_and_threads(sql in arb_negation()) {
        ua_vecexec::install();
        for optimizer in [true, false] {
            let row = run_det(&sql, ExecMode::Row, optimizer);
            for threads in [1usize, 2, 8] {
                let vec = run_det_threads(&sql, optimizer, threads);
                match (&row, &vec) {
                    (Ok(r), Ok(v)) => prop_assert_eq!(
                        r.rows(),
                        v.rows(),
                        "det negation mismatch (optimizer={}, threads={}): {}",
                        optimizer,
                        threads,
                        &sql
                    ),
                    (Err(_), Err(_)) => {}
                    (r, v) => panic!(
                        "engines disagree on success (optimizer={optimizer}, \
                         threads={threads}): {sql}\n row: {:?}\n vec: {:?}",
                        r.as_ref().map(|t| t.len()),
                        v.as_ref().map(|t| t.len())
                    ),
                }
            }
        }
    }

    /// AU semantics over the negation generators: the row interpreter and
    /// the vectorized executor (which routes Except/OuterJoin through the
    /// shared `ua_ranges::ops` bound combination) produce byte-identical
    /// flattened encoded tables.
    #[test]
    fn au_engines_agree_on_negation(sql in arb_negation()) {
        ua_vecexec::install();
        let row = seeded_session(ExecMode::Row, true).query_au(&sql);
        let vec = seeded_session(ExecMode::Vectorized, true).query_au(&sql);
        match (row, vec) {
            (Ok(r), Ok(v)) => {
                prop_assert_eq!(
                    r.table.schema(),
                    v.table.schema(),
                    "AU schema mismatch: {}",
                    &sql
                );
                prop_assert_eq!(
                    r.table.rows(),
                    v.table.rows(),
                    "AU row mismatch: {}",
                    &sql
                );
            }
            (Err(_), Err(_)) => {}
            (r, v) => panic!(
                "AU engines disagree on success: {sql}\n row: {:?}\n vec: {:?}",
                r.map(|t| t.table.len()),
                v.map(|t| t.table.len())
            ),
        }
    }

    /// Deterministic semantics over the same SQL (annotated sources resolve
    /// to their best-guess worlds; no labels): engines and optimizer agree.
    #[test]
    fn det_engines_agree_on_random_sql(sql in arb_query()) {
        ua_vecexec::install();
        for optimizer in [true, false] {
            let row = run_det(&sql, ExecMode::Row, optimizer);
            let vec = run_det(&sql, ExecMode::Vectorized, optimizer);
            match (row, vec) {
                (Ok(r), Ok(v)) => {
                    prop_assert_eq!(
                        r.rows(),
                        v.rows(),
                        "det row/order mismatch (optimizer={}): {}",
                        optimizer,
                        sql
                    );
                }
                (Err(_), Err(_)) => {}
                (r, v) => panic!(
                    "det engines disagree on success (optimizer={optimizer}): {sql}\n row: {:?}\n vec: {:?}",
                    r.map(|t| t.len()),
                    v.map(|t| t.len())
                ),
            }
        }
    }
}

/// Regression: `t IS TI ... x` must resolve columns under the alias `x` in
/// every position — including `SELECT *` over an annotated comma-join,
/// where positional star expansion used to misalign against the relocated
/// `ua_c` marker (the row engine silently returned the marker as a user
/// column; the vectorized engine errored).
#[test]
fn annotated_source_alias_resolves_columns_in_both_engines() {
    ua_vecexec::install();
    let queries = [
        "SELECT x.a FROM ti IS TI WITH PROBABILITY (p) x WHERE x.a >= 0",
        "SELECT x.a AS c0 FROM ti IS TI WITH PROBABILITY (p) x ORDER BY x.a LIMIT 5",
        "SELECT x.* FROM ti IS TI WITH PROBABILITY (p) x",
        "SELECT * FROM ti IS TI WITH PROBABILITY (p) x, \
         xr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) y WHERE x.a = y.k",
    ];
    for sql in queries {
        let row = run_ua(sql, ExecMode::Row, true).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let vec = run_ua(sql, ExecMode::Vectorized, true).unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert_eq!(row.table.rows(), vec.table.rows(), "{sql}");
    }
    // The expanded star carries the user columns (a, b of x; k, v of y),
    // not the marker: arity = 4 user columns + the trailing marker.
    let star = run_ua(
        "SELECT * FROM ti IS TI WITH PROBABILITY (p) x, \
         xr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) y WHERE x.a = y.k",
        ExecMode::Row,
        true,
    )
    .unwrap();
    assert_eq!(star.table.schema().arity(), 5);
}

/// Regression: two different annotations of the same base table in one
/// session must not share a cached encoding.
#[test]
fn distinct_annotations_of_one_table_do_not_collide() {
    let session = seeded_session(ExecMode::Row, true);
    let by_p = session
        .query_ua("SELECT x.a FROM ti IS TI WITH PROBABILITY (p) x")
        .unwrap();
    // Re-annotate `ti` using column `b` as the probability: different rows
    // survive (b is an int column, so most rows exceed 0.5) — a shared
    // `__ua__ti` cache would return the `p`-encoded table again.
    let by_b = session
        .query_ua("SELECT x.a FROM ti IS TI WITH PROBABILITY (b) x")
        .unwrap();
    assert_ne!(
        by_p.table.rows(),
        by_b.table.rows(),
        "annotation change must change the encoding"
    );
}

/// Regression: programmatic `RaExpr` queries with *positional* (`Expr::Col`)
/// join predicates under the vectorized UA path. The optimizer classifies
/// positions against `plan_schema` — the encoded, marker-bearing schemas —
/// but that path executes marker-stripped batches, so positional
/// classification must be disabled there: the optimizer leaves such
/// predicates for runtime binding instead of silently joining on the wrong
/// columns.
#[test]
fn positional_predicates_keep_runtime_binding_semantics_in_vectorized_ua() {
    use ua_data::relation::Relation;
    use ua_data::RaExpr;
    use ua_semiring::pair::Ua;

    ua_vecexec::install();
    let mk = |name: &str, cols: [&str; 2], rows: &[(i64, i64)]| -> Relation<Ua<u64>> {
        Relation::from_annotated(
            Schema::qualified(name, cols),
            rows.iter().map(|&(a, b)| {
                (
                    Tuple::new(vec![Value::Int(a), Value::Int(b)]),
                    Ua::new(1, 1),
                )
            }),
        )
    };
    // r(a, b) and s(c, d) chosen so `Col(1) = Col(3)` (user semantics
    // r.b = s.d) is empty while r.b = s.c — the misclassified key — is not.
    let r = mk("r", ["a", "b"], &[(1, 10), (2, 20)]);
    let s = mk("s", ["c", "d"], &[(10, 77), (20, 88)]);
    let q = RaExpr::Join {
        left: Box::new(RaExpr::table("r")),
        right: Box::new(RaExpr::table("s")),
        predicate: Some(ua_data::Expr::Col(1).eq(ua_data::Expr::Col(3))),
    };
    for optimizer in [true, false] {
        let session = UaSession::with_mode(ExecMode::Vectorized);
        session.set_optimizer_enabled(optimizer);
        session.register_ua_relation("r", &r);
        session.register_ua_relation("s", &s);
        let result = session.query_ua_ra(&q).expect("vectorized UA query");
        assert!(
            result.table.is_empty(),
            "optimizer={optimizer}: Col(1)=Col(3) means r.b = s.d in the \
             vectorized path and must match nothing, got {:?}",
            result.table.rows()
        );
    }
}

/// Regression: 3- and 4-way comma-joins in deliberately bad orders execute
/// identically — label for label, in the same row order — on both engines
/// with the optimizer on and off, under UA and deterministic semantics.
/// (The UA reordering happens once, on the shared user plan, so the row
/// path's rewritten plan and the vectorized path's bitmap propagation keep
/// the same join order; this is what makes byte-equality possible.)
#[test]
fn multi_way_comma_joins_agree_across_engines_and_optimizer() {
    ua_vecexec::install();
    let queries = [
        // Chain through the middle relation.
        "SELECT * FROM ti IS TI WITH PROBABILITY (p) x, \
         xr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) y, \
         ct IS CTABLE WITH VARIABLES (v1) LOCAL CONDITION (lc) z \
         WHERE x.a = y.k AND y.k = z.a",
        // Star centered on the first relation, plus a single-side atom.
        "SELECT x.b, z.g FROM ti IS TI WITH PROBABILITY (p) x, \
         xr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) y, \
         ct IS CTABLE WITH VARIABLES (v1) LOCAL CONDITION (lc) z \
         WHERE x.a = y.k AND x.a = z.a AND y.v >= 1",
        // 4-way chain with a re-annotated ti under a fresh alias.
        "SELECT x.a, w.b FROM ti IS TI WITH PROBABILITY (p) x, \
         xr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) y, \
         ct IS CTABLE WITH VARIABLES (v1) LOCAL CONDITION (lc) z, \
         ti IS TI WITH PROBABILITY (p) w \
         WHERE x.a = y.k AND y.k = z.a AND z.a = w.a",
    ];
    for sql in queries {
        assert_engines_agree_ua(sql, true);
        assert_engines_agree_ua(sql, false);
        let opt = run_ua(sql, ExecMode::Row, true).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let raw = run_ua(sql, ExecMode::Row, false).unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert!(!opt.table.is_empty(), "degenerate (empty) join: {sql}");
        assert_eq!(
            opt.table.sorted_rows(),
            raw.table.sorted_rows(),
            "optimizer changed the multi-join result: {sql}"
        );
        assert_eq!(opt.certainty_counts(), raw.certainty_counts(), "{sql}");
        for optimizer in [true, false] {
            let row = run_det(sql, ExecMode::Row, optimizer).expect("det row");
            let vec = run_det(sql, ExecMode::Vectorized, optimizer).expect("det vec");
            assert_eq!(row.rows(), vec.rows(), "det optimizer={optimizer}: {sql}");
        }
    }
}

#[test]
fn vectorized_mode_is_installed_for_this_harness() {
    // `ua_vecexec::install()` is idempotent; make the dependency explicit so
    // a future refactor that drops the hook registration fails loudly here
    // rather than via per-case query errors.
    ua_vecexec::install();
    assert!(ua_engine::vectorized_hooks().is_some());
}
