//! AU-bound soundness, theorem-shaped, on enumerated `K^W` databases —
//! the aggregation-closing counterpart of `label_soundness.rs`.
//!
//! Setup: a seeded x-DB (blocks of weighted alternatives over `xr(g, v)`)
//! whose possible worlds are *enumerated exhaustively* (every choice of
//! alternative per block, presence/absence for sub-probability blocks).
//! The same blocks enter a [`UaSession`] through the SQL annotation path
//! (`xr IS X WITH XID … PROBABILITY …`), so the theorem exercises the
//! whole stack: labeling → flattened encoding → `⟦·⟧_AU` execution.
//!
//! For every query `Q` — **including GROUP BY aggregation and DISTINCT**,
//! which `⟦·⟧_UA` is not closed under — and both engines:
//!
//! ```text
//! ∀ world w:  Q(w)  is enclosed by  Q_AU(D)        (flow-checked upper
//!                                                    bounds + per-tuple
//!                                                    certainty claims)
//! sg(Q_AU(D)) = Q(w₀)                               (the selected guess
//!                                                    IS deterministic
//!                                                    evaluation over the
//!                                                    best-guess world)
//! row engine ≡ vectorized engine                    (byte-identical
//!                                                    encoded tables)
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_engine::{EngineError, ExecMode, Table, UaSession};
use ua_ranges::{check_encloses_world, sg_rows};

/// One x-tuple block: weighted alternatives over `(g, v)`.
type Block = Vec<(Tuple, f64)>;

/// Seeded blocks: certain singletons, two-alternative blocks (mass 1) and
/// sub-probability singletons (maybe absent). Small value domains so
/// groups collide and filters cut through ranges.
fn gen_blocks(seed: u64) -> Vec<Block> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_blocks = rng.gen_range(3..6usize);
    (0..n_blocks)
        .map(|_| {
            let g = rng.gen_range(0..3i64);
            let v = rng.gen_range(0..6i64);
            match rng.gen_range(0..4u8) {
                // Certain tuple.
                0 => vec![(Tuple::new(vec![Value::Int(g), Value::Int(v)]), 1.0)],
                // Two alternatives, possibly moving the group.
                1 => {
                    let g2 = rng.gen_range(0..3i64);
                    let v2 = rng.gen_range(0..6i64);
                    vec![
                        (Tuple::new(vec![Value::Int(g), Value::Int(v)]), 0.6),
                        (Tuple::new(vec![Value::Int(g2), Value::Int(v2)]), 0.4),
                    ]
                }
                // Two equal-mass alternatives sharing the group key.
                2 => {
                    let v2 = rng.gen_range(0..6i64);
                    vec![
                        (Tuple::new(vec![Value::Int(g), Value::Int(v)]), 0.5),
                        (Tuple::new(vec![Value::Int(g), Value::Int(v2)]), 0.5),
                    ]
                }
                // Maybe-absent tuple (sub-probability block).
                _ => vec![(
                    Tuple::new(vec![Value::Int(g), Value::Int(v)]),
                    [0.3, 0.5, 0.8][rng.gen_range(0..3usize)],
                )],
            }
        })
        .collect()
}

/// Every possible world: one choice per block (each alternative; `absent`
/// too when the block's mass stays below 1).
fn enumerate_worlds(blocks: &[Block]) -> Vec<Table> {
    let schema = Schema::qualified("xr", ["g", "v"]);
    let mut worlds: Vec<Vec<Tuple>> = vec![Vec::new()];
    for block in blocks {
        let total: f64 = block.iter().map(|(_, p)| p).sum();
        let mut choices: Vec<Option<&Tuple>> = block.iter().map(|(t, _)| Some(t)).collect();
        if total < 1.0 - 1e-9 {
            choices.push(None);
        }
        let mut next = Vec::with_capacity(worlds.len() * choices.len());
        for w in &worlds {
            for c in &choices {
                let mut rows = w.clone();
                if let Some(t) = c {
                    rows.push((*t).clone());
                }
                next.push(rows);
            }
        }
        worlds = next;
    }
    worlds
        .into_iter()
        .map(|rows| Table::from_rows(schema.clone(), rows))
        .collect()
}

/// The selected-guess world under the labeling's rule: the (first) argmax
/// alternative per block, skipped when absence is likelier.
fn sg_world(blocks: &[Block]) -> Table {
    let schema = Schema::qualified("xr", ["g", "v"]);
    let mut rows = Vec::new();
    for block in blocks {
        let total: f64 = block.iter().map(|(_, p)| p).sum();
        let mut best = 0usize;
        for (i, (_, p)) in block.iter().enumerate() {
            if *p > block[best].1 {
                best = i;
            }
        }
        let p_absent = (1.0 - total).max(0.0);
        if block[best].1 >= p_absent {
            rows.push(block[best].0.clone());
        }
    }
    Table::from_rows(schema, rows)
}

/// The raw x-table (`xid, aid, p, g, v`) the SQL annotation path labels.
fn raw_x_table(blocks: &[Block]) -> Table {
    let mut rows = Vec::new();
    for (xid, block) in blocks.iter().enumerate() {
        for (aid, (t, p)) in block.iter().enumerate() {
            rows.push(Tuple::new(vec![
                Value::Int(xid as i64),
                Value::Int(aid as i64),
                Value::float(*p),
                t.get(0).expect("g").clone(),
                t.get(1).expect("v").clone(),
            ]));
        }
    }
    Table::from_rows(Schema::qualified("xr", ["xid", "aid", "p", "g", "v"]), rows)
}

const X_SOURCE: &str = "xr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) x";

/// `(AU query, deterministic per-world counterpart)` pairs — the headline
/// GROUP BY + SUM/COUNT shapes plus DISTINCT, global aggregation,
/// uncertain filters below aggregation, and an RA⁺ projection for
/// contrast.
fn query_pairs() -> Vec<(String, String)> {
    [
        "SELECT g, count(*) AS n FROM {src} GROUP BY g",
        "SELECT g, count(*) AS n, sum(v) AS s FROM {src} GROUP BY g",
        "SELECT g, min(v) AS lo, max(v) AS hi FROM {src} GROUP BY g",
        "SELECT count(*) AS n, sum(v) AS s, avg(v) AS m FROM {src}",
        "SELECT g, sum(v) AS s FROM {src} WHERE v >= 3 GROUP BY g",
        "SELECT DISTINCT g FROM {src}",
        "SELECT v + 1 AS w FROM {src} WHERE g >= 1",
    ]
    .iter()
    .map(|q| (q.replace("{src}", X_SOURCE), q.replace("{src}", "xr x")))
    .collect()
}

fn au_session(blocks: &[Block], mode: ExecMode) -> UaSession {
    let session = UaSession::with_mode(mode);
    session.register_table("xr", raw_x_table(blocks));
    session
}

fn det_over(world: &Table, sql: &str) -> Table {
    let session = UaSession::new();
    session.register_table("xr", world.clone());
    session
        .query_det(sql)
        .unwrap_or_else(|e| panic!("world query `{sql}`: {e}"))
}

#[test]
fn au_bounds_enclose_every_world_including_group_by() {
    ua_vecexec::install();
    for seed in 0..32u64 {
        let blocks = gen_blocks(seed);
        let worlds = enumerate_worlds(&blocks);
        let sg = sg_world(&blocks);
        assert!(
            worlds.iter().any(|w| w.sorted_rows() == sg.sorted_rows()),
            "seed {seed}: the SG world must be one of the enumerated worlds"
        );
        for (au_sql, det_sql) in query_pairs() {
            let row = au_session(&blocks, ExecMode::Row)
                .query_au(&au_sql)
                .unwrap_or_else(|e| panic!("seed {seed}, row `{au_sql}`: {e}"));
            let vec = au_session(&blocks, ExecMode::Vectorized)
                .query_au(&au_sql)
                .unwrap_or_else(|e| panic!("seed {seed}, vec `{au_sql}`: {e}"));
            // Both engines produce byte-identical encoded AU tables.
            assert_eq!(
                row.table.schema(),
                vec.table.schema(),
                "seed {seed}: {au_sql}"
            );
            assert_eq!(
                row.table.rows(),
                vec.table.rows(),
                "seed {seed}: engines diverge on {au_sql}"
            );
            let au_rel = row.decode();
            // The selected guess IS deterministic evaluation over the SG
            // world.
            let sg_expected = {
                let mut rows = det_over(&sg, &det_sql).rows().to_vec();
                rows.sort();
                rows
            };
            assert_eq!(
                sg_rows(&au_rel),
                sg_expected,
                "seed {seed}: SG component diverges from the BGW on {au_sql}"
            );
            // Enclosure of every possible world (attribute bounds AND
            // multiplicity bounds — no silent bound violations).
            for (wi, world) in worlds.iter().enumerate() {
                let truth = det_over(world, &det_sql);
                if let Err(violation) = check_encloses_world(&au_rel, truth.rows()) {
                    panic!(
                        "seed {seed}, world {wi}, query `{au_sql}`: {violation}\n\
                         world input: {:?}\nworld result: {:?}",
                        world.rows(),
                        truth.rows()
                    );
                }
            }
        }
    }
}

/// The acceptance shape spelled out: GROUP BY + SUM/COUNT over a TI
/// source, end-to-end in AU mode on both engines, bounds enclosing every
/// world of the tuple-independent ground truth.
#[test]
fn ti_group_by_sum_count_end_to_end() {
    ua_vecexec::install();
    let base = Table::from_rows(
        Schema::qualified("t", ["g", "v", "p"]),
        vec![
            Tuple::new(vec![Value::Int(1), Value::Int(10), Value::float(1.0)]),
            Tuple::new(vec![Value::Int(1), Value::Int(20), Value::float(0.7)]),
            Tuple::new(vec![Value::Int(2), Value::Int(30), Value::float(0.4)]),
            Tuple::new(vec![Value::Int(2), Value::Int(40), Value::float(1.0)]),
        ],
    );
    let sql = "SELECT g, count(*) AS n, sum(v) AS s FROM \
               t IS TI WITH PROBABILITY (p) x GROUP BY g";
    let mut results = Vec::new();
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        let session = UaSession::with_mode(mode);
        session.register_table("t", base.clone());
        results.push(
            session
                .query_au(sql)
                .unwrap_or_else(|e| panic!("{mode:?}: {e}")),
        );
    }
    assert_eq!(results[0].table.rows(), results[1].table.rows());
    let au_rel = results[0].decode();

    // Enumerate the 4 uncertain-tuple subsets (rows 2 and 3 optional).
    let world_schema = Schema::qualified("t", ["g", "v"]);
    let all: Vec<Tuple> = vec![
        Tuple::new(vec![Value::Int(1), Value::Int(10)]),
        Tuple::new(vec![Value::Int(1), Value::Int(20)]),
        Tuple::new(vec![Value::Int(2), Value::Int(30)]),
        Tuple::new(vec![Value::Int(2), Value::Int(40)]),
    ];
    for mask in 0..4u8 {
        let rows: Vec<Tuple> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| match i {
                1 => mask & 1 != 0,
                2 => mask & 2 != 0,
                _ => true,
            })
            .map(|(_, t)| t.clone())
            .collect();
        let world = Table::from_rows(world_schema.clone(), rows);
        let session = UaSession::new();
        session.register_table("t", world);
        let truth = session
            .query_det("SELECT g, count(*) AS n, sum(v) AS s FROM t x GROUP BY g")
            .expect("world query");
        check_encloses_world(&au_rel, truth.rows()).unwrap_or_else(|e| panic!("mask {mask}: {e}"));
    }
    // Spot-check the headline numbers: group 1 certainly has its p = 1.0
    // row, possibly the 0.7 one → count [1,2], SG 2; sum [10, 30], SG 30.
    let g1 = au_rel
        .rows()
        .iter()
        .find(|r| r.values[0].bg == Value::Int(1))
        .expect("group 1");
    assert_eq!(g1.values[1].bg, Value::Int(2));
    assert!(g1.values[1].contains(&Value::Int(1)));
    assert!(!g1.values[1].contains(&Value::Int(0)));
    assert_eq!(g1.values[2].bg, Value::Int(30));
    assert!(g1.values[2].contains(&Value::Int(10)));
    assert!(g1.mult.lb >= 1, "group 1 certainly materializes");
}

/// A session dialed to one point of the sweep grid.
fn au_session_at(blocks: &[Block], mode: ExecMode, optimize: bool, threads: usize) -> UaSession {
    let session = au_session(blocks, mode);
    session.set_optimizer_enabled(optimize);
    session.set_vec_threads(threads);
    session.register_table(
        "dim",
        Table::from_rows(
            Schema::qualified("dim", ["k", "name", "q"]),
            vec![
                Tuple::new(vec![Value::Int(0), Value::str("zero"), Value::float(1.0)]),
                Tuple::new(vec![Value::Int(1), Value::str("one"), Value::float(0.8)]),
                Tuple::new(vec![Value::Int(2), Value::str("two"), Value::float(1.0)]),
            ],
        ),
    );
    session
}

/// The sweep's identity query set: the enclosure shapes plus the plan
/// shapes the optimizer rewrites on AU plans — a join (hash join with the
/// optimizer on, pruned nested loop off) and ORDER BY / LIMIT (Top-K
/// fused on, Sort + Limit off).
fn sweep_queries() -> Vec<String> {
    let mut queries: Vec<String> = query_pairs().into_iter().map(|(au, _)| au).collect();
    queries.push(format!(
        "SELECT x.g, x.v, d.name FROM {X_SOURCE}, \
         dim IS TI WITH PROBABILITY (q) d WHERE x.g = d.k"
    ));
    queries.push(format!(
        "SELECT x.g, x.v FROM {X_SOURCE} ORDER BY x.v DESC, x.g LIMIT 4"
    ));
    queries
}

/// The tentpole's stability theorem, swept across the execution grid:
/// within one optimizer setting, AU results are **byte-identical** across
/// `{Row} ∪ {Vec × threads 1, 2, 8}`; across optimizer settings they are
/// multiset-equal (the optimizer may legally reorder rows); and the
/// bounds that come out of *every* grid point enclose every possible
/// world.
#[test]
fn au_results_stable_across_threads_and_optimizer() {
    ua_vecexec::install();
    for seed in 0..6u64 {
        let blocks = gen_blocks(seed);
        let worlds = enumerate_worlds(&blocks);
        for sql in sweep_queries() {
            let mut per_opt: Vec<Vec<Tuple>> = Vec::new();
            for optimize in [true, false] {
                let row = au_session_at(&blocks, ExecMode::Row, optimize, 0)
                    .query_au(&sql)
                    .unwrap_or_else(|e| panic!("seed {seed}, row opt={optimize} `{sql}`: {e}"));
                for threads in [1usize, 2, 8] {
                    let vec = au_session_at(&blocks, ExecMode::Vectorized, optimize, threads)
                        .query_au(&sql)
                        .unwrap_or_else(|e| {
                            panic!("seed {seed}, vec opt={optimize} t={threads} `{sql}`: {e}")
                        });
                    assert_eq!(
                        row.table.schema(),
                        vec.table.schema(),
                        "seed {seed}, opt={optimize}, t={threads}: {sql}"
                    );
                    assert_eq!(
                        row.table.rows(),
                        vec.table.rows(),
                        "seed {seed}, opt={optimize}, t={threads}: engines diverge on {sql}"
                    );
                }
                per_opt.push(row.table.sorted_rows());
            }
            assert_eq!(
                per_opt[0], per_opt[1],
                "seed {seed}: optimizer changes the AU result multiset on {sql}"
            );
        }
        // Enclosure at every grid point: results within one optimizer
        // setting are byte-identical (just asserted), so checking one
        // representative per setting covers the whole grid.
        for (au_sql, det_sql) in query_pairs() {
            for optimize in [true, false] {
                let au_rel = au_session_at(&blocks, ExecMode::Vectorized, optimize, 2)
                    .query_au(&au_sql)
                    .unwrap_or_else(|e| panic!("seed {seed}, opt={optimize} `{au_sql}`: {e}"))
                    .decode();
                for (wi, world) in worlds.iter().enumerate() {
                    let truth = det_over(world, &det_sql);
                    if let Err(violation) = check_encloses_world(&au_rel, truth.rows()) {
                        panic!("seed {seed}, opt={optimize}, world {wi}, `{au_sql}`: {violation}");
                    }
                }
            }
        }
    }
}

/// The batch-native operators must stay batch-native: running the sweep's
/// covered plan shapes (aggregation, joins — nested-loop and hash —,
/// sort, limit, top-k, union) through the vectorized AU path must not
/// bump their `au.vec.fallback.*` counters. Only `distinct` may fall
/// back.
#[test]
fn au_vec_covered_plans_do_not_fall_back() {
    ua_vecexec::install();
    let blocks = gen_blocks(3);
    const COUNTERS: [&str; 7] = [
        "au.vec.fallback.join",
        "au.vec.fallback.hash_join",
        "au.vec.fallback.aggregate",
        "au.vec.fallback.sort",
        "au.vec.fallback.limit",
        "au.vec.fallback.top_k",
        "au.vec.fallback.union_all",
    ];
    let read = || -> Vec<u64> {
        COUNTERS
            .iter()
            .map(|c| ua_obs::global().counter(c).get())
            .collect()
    };
    let before = read();
    let union_sql = format!(
        "SELECT g, v FROM {X_SOURCE} WHERE v < 3 \
         UNION ALL SELECT g, v FROM {X_SOURCE} WHERE v >= 3"
    );
    for optimize in [true, false] {
        for threads in [1usize, 2, 8] {
            let session = au_session_at(&blocks, ExecMode::Vectorized, optimize, threads);
            for sql in sweep_queries().iter().chain(std::iter::once(&union_sql)) {
                session
                    .query_au(sql)
                    .unwrap_or_else(|e| panic!("opt={optimize} t={threads} `{sql}`: {e}"));
            }
        }
    }
    assert_eq!(
        before,
        read(),
        "covered AU plan shapes fell back to the row-at-a-time path"
    );
}

/// Negation shapes under AU: both sides of every query read the *same*
/// uncertain x-DB (worlds are correlated — a strictly harder enclosure
/// case than independent sides, since the bound combination treats the
/// sides independently and must therefore enclose every world *pair*).
fn negation_query_pairs() -> Vec<(String, String)> {
    const XA: &str = "xr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) a";
    const XB: &str = "xr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) b";
    [
        "SELECT a.g FROM {A} EXCEPT SELECT b.v FROM {B}",
        "SELECT a.g FROM {A} EXCEPT ALL SELECT b.v FROM {B} WHERE b.v < 3",
        "SELECT a.g, a.v, b.g FROM {A} LEFT JOIN {B} ON a.g = b.v",
        "SELECT a.g, a.v, b.g FROM {A} RIGHT JOIN {B} ON a.g = b.v",
        "SELECT a.g, a.v FROM {A} WHERE a.g NOT IN (SELECT b.v FROM {B})",
        "SELECT a.g, a.v FROM {A} WHERE NOT EXISTS (SELECT b.g FROM {B} WHERE b.g >= 2)",
    ]
    .iter()
    .map(|q| {
        (
            q.replace("{A}", XA).replace("{B}", XB),
            q.replace("{A}", "xr a").replace("{B}", "xr b"),
        )
    })
    .collect()
}

/// `K^W` under-approximation theorem for the negation operators: the AU
/// bounds produced for EXCEPT [ALL], LEFT/RIGHT OUTER JOIN and the
/// NOT IN / NOT EXISTS anti-join lowerings enclose the query's answer in
/// every enumerated possible world, the selected guess equals
/// deterministic evaluation over the SG world, the engines agree byte for
/// byte, and none of the batch-native `au.vec.fallback.*` counters move.
#[test]
fn au_negation_bounds_enclose_every_world() {
    ua_vecexec::install();
    const COUNTERS: [&str; 8] = [
        "au.vec.fallback.join",
        "au.vec.fallback.hash_join",
        "au.vec.fallback.aggregate",
        "au.vec.fallback.sort",
        "au.vec.fallback.limit",
        "au.vec.fallback.top_k",
        "au.vec.fallback.union_all",
        "au.vec.fallback.distinct",
    ];
    let read = || -> Vec<u64> {
        COUNTERS
            .iter()
            .map(|c| ua_obs::global().counter(c).get())
            .collect()
    };
    let before = read();
    for seed in 0..16u64 {
        let blocks = gen_blocks(seed);
        let worlds = enumerate_worlds(&blocks);
        let sg = sg_world(&blocks);
        for (au_sql, det_sql) in negation_query_pairs() {
            let row = au_session(&blocks, ExecMode::Row)
                .query_au(&au_sql)
                .unwrap_or_else(|e| panic!("seed {seed}, row `{au_sql}`: {e}"));
            let vec = au_session(&blocks, ExecMode::Vectorized)
                .query_au(&au_sql)
                .unwrap_or_else(|e| panic!("seed {seed}, vec `{au_sql}`: {e}"));
            assert_eq!(
                row.table.schema(),
                vec.table.schema(),
                "seed {seed}: {au_sql}"
            );
            assert_eq!(
                row.table.rows(),
                vec.table.rows(),
                "seed {seed}: engines diverge on {au_sql}"
            );
            let au_rel = row.decode();
            // Selected guess = deterministic evaluation over the SG world.
            let sg_expected = {
                let mut rows = det_over(&sg, &det_sql).rows().to_vec();
                rows.sort();
                rows
            };
            assert_eq!(
                sg_rows(&au_rel),
                sg_expected,
                "seed {seed}: SG component diverges from the BGW on {au_sql}"
            );
            // Enclosure of every possible world.
            for (wi, world) in worlds.iter().enumerate() {
                let truth = det_over(world, &det_sql);
                if let Err(violation) = check_encloses_world(&au_rel, truth.rows()) {
                    panic!(
                        "seed {seed}, world {wi}, query `{au_sql}`: {violation}\n\
                         world input: {:?}\nworld result: {:?}",
                        world.rows(),
                        truth.rows()
                    );
                }
            }
        }
    }
    assert_eq!(
        before,
        read(),
        "negation AU plans bumped a row-at-a-time fallback counter"
    );
}

/// `ua_c` is rejected uniformly in GROUP BY keys and aggregate arguments
/// on BOTH engines — the same class of hole PR 4 closed for ORDER BY.
#[test]
fn marker_in_group_by_rejected_on_both_engines() {
    ua_vecexec::install();
    let blocks = gen_blocks(1);
    for sql in [
        "SELECT ua_c, count(*) AS n FROM {src} GROUP BY ua_c".replace("{src}", X_SOURCE),
        "SELECT g, sum(ua_c) AS s FROM {src} GROUP BY g".replace("{src}", X_SOURCE),
        "SELECT g, count(ua_c) AS s FROM {src} GROUP BY g".replace("{src}", X_SOURCE),
    ] {
        for mode in [ExecMode::Row, ExecMode::Vectorized] {
            let session = au_session(&blocks, mode);
            let err = session.query_au(&sql);
            assert!(
                matches!(
                    err,
                    Err(EngineError::Schema(
                        ua_data::schema::SchemaError::AmbiguousColumn(_)
                    ))
                ),
                "{mode:?}: `{sql}` must be rejected, got {err:?}"
            );
        }
    }
}
