//! Scratch review test — DO NOT COMMIT.
use ua_data::schema::Schema;
use ua_data::tuple;
use ua_engine::storage::Table;
use ua_engine::UaSession;

fn session() -> UaSession {
    let s = UaSession::new();
    s.catalog().register(
        "t",
        Table::from_rows(
            Schema::qualified("t", ["a", "b"]),
            vec![tuple![1i64, 100i64], tuple![2i64, 50i64]],
        ),
    );
    s
}

// SQL: ORDER BY a should resolve the OUTPUT column `a` (alias of source b).
// With alias swap `SELECT a AS b, b AS a`, textual-match-first rewrites
// ORDER BY a to the output column `b` (source a) instead.
#[test]
fn order_by_alias_shadowing() {
    let s = session();
    let t = s
        .query_det("SELECT a AS b, b AS a FROM t ORDER BY a ASC")
        .unwrap();
    // Ordering by output column `a` (= source b): rows should be (2,50),(1,100).
    assert_eq!(
        t.rows(),
        &[tuple![2i64, 50i64], tuple![1i64, 100i64]],
        "ORDER BY should resolve the output alias first"
    );
}

// Stacked filters merged into one conjunction: inner guard `a <> 0` used to
// protect the outer `100 / a > 10` from evaluating on a = 0 rows.
#[test]
fn stacked_filter_guard_preserved() {
    let s = session();
    s.catalog().register(
        "g",
        Table::from_rows(
            Schema::qualified("g", ["a"]),
            vec![tuple![0i64], tuple![4i64]],
        ),
    );
    let r = s.query_det("SELECT * FROM (SELECT a FROM g WHERE a <> 0) x WHERE 100 / a > 10");
    match r {
        Ok(t) => assert_eq!(t.rows(), &[tuple![4i64]]),
        Err(e) => panic!("guarded query errored: {e}"),
    }
}
