//! Fixed-SQL regression suite for the negation surface: EXCEPT [ALL],
//! LEFT/RIGHT JOIN, NOT EXISTS and NOT IN (including the three-valued
//! NULL-in-subquery case) under det, UA and AU semantics on both engines.
//! The randomized coverage lives in the differential harness; these pin
//! exact row sets and labels on a small hand-checked instance.

use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_engine::{ExecMode, Table, UaSession};

fn session(mode: ExecMode) -> UaSession {
    let s = UaSession::with_mode(mode);
    s.register_table(
        "r",
        Table::from_rows(
            Schema::qualified("r", ["a", "p"]),
            vec![
                Tuple::new(vec![Value::Int(1), Value::float(1.0)]),
                Tuple::new(vec![Value::Int(1), Value::float(1.0)]),
                Tuple::new(vec![Value::Int(2), Value::float(0.6)]),
                Tuple::new(vec![Value::Int(3), Value::float(1.0)]),
                Tuple::new(vec![Value::Null, Value::float(1.0)]),
            ],
        ),
    );
    s.register_table(
        "s",
        Table::from_rows(
            Schema::qualified("s", ["b", "p"]),
            vec![
                Tuple::new(vec![Value::Int(1), Value::float(1.0)]),
                Tuple::new(vec![Value::Int(4), Value::float(0.5)]),
            ],
        ),
    );
    s
}

#[test]
fn det_except_all() {
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        ua_vecexec::install();
        let t = session(mode)
            .query_det("SELECT r.a FROM r EXCEPT ALL SELECT s.b FROM s")
            .unwrap();
        // r.a = {1,1,2,3,NULL} minus s.b = {1,4} -> {1,2,3,NULL}
        assert_eq!(t.len(), 4, "mode={mode:?}");
    }
}

#[test]
fn det_except_distinct() {
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        ua_vecexec::install();
        let t = session(mode)
            .query_det("SELECT r.a FROM r EXCEPT SELECT s.b FROM s")
            .unwrap();
        // distinct unmatched: {2,3,NULL}
        assert_eq!(t.len(), 3, "mode={mode:?}");
    }
}

#[test]
fn det_left_join() {
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        ua_vecexec::install();
        let t = session(mode)
            .query_det("SELECT r.a, s.b FROM r LEFT JOIN s ON r.a = s.b")
            .unwrap();
        // matches: a=1 (x2) with b=1; pads: 2,3,NULL -> 5 rows
        assert_eq!(t.len(), 5, "mode={mode:?}");
        let pads = t
            .rows()
            .iter()
            .filter(|r| r.values()[1] == Value::Null)
            .count();
        assert_eq!(pads, 3, "mode={mode:?}");
    }
}

#[test]
fn det_right_join() {
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        ua_vecexec::install();
        let t = session(mode)
            .query_det("SELECT r.a, s.b FROM r RIGHT JOIN s ON r.a = s.b")
            .unwrap();
        // matches: b=1 with a=1 (x2); pad: b=4 -> 3 rows
        assert_eq!(t.len(), 3, "mode={mode:?}");
    }
}

#[test]
fn det_not_exists() {
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        ua_vecexec::install();
        let t = session(mode)
            .query_det("SELECT r.a FROM r WHERE NOT EXISTS (SELECT s.b FROM s WHERE s.b > 10)")
            .unwrap();
        // subquery empty -> all 5 rows survive
        assert_eq!(t.len(), 5, "mode={mode:?}");
        let t2 = session(mode)
            .query_det("SELECT r.a FROM r WHERE NOT EXISTS (SELECT s.b FROM s)")
            .unwrap();
        assert_eq!(t2.len(), 0, "mode={mode:?}");
    }
}

#[test]
fn det_not_in() {
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        ua_vecexec::install();
        let t = session(mode)
            .query_det("SELECT r.a FROM r WHERE r.a NOT IN (SELECT s.b FROM s)")
            .unwrap();
        // {1,1,2,3,NULL} NOT IN {1,4}: 1s excluded, NULL operand -> unknown
        // (excluded), 2 and 3 survive.
        assert_eq!(t.len(), 2, "mode={mode:?}");
    }
}

#[test]
fn det_not_in_with_null_in_subquery() {
    let s = session(ExecMode::Row);
    s.register_table(
        "sn",
        Table::from_rows(
            Schema::qualified("sn", ["b"]),
            vec![
                Tuple::new(vec![Value::Int(1)]),
                Tuple::new(vec![Value::Null]),
            ],
        ),
    );
    let t = s
        .query_det("SELECT r.a FROM r WHERE r.a NOT IN (SELECT sn.b FROM sn)")
        .unwrap();
    // NULL in the subquery -> NOT IN is never true.
    assert_eq!(t.len(), 0);
}

#[test]
fn ua_except_and_outer_join() {
    ua_vecexec::install();
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        let s = session(mode);
        let r = s
            .query_ua(
                "SELECT x.a FROM r IS TI WITH PROBABILITY (p) x \
                 EXCEPT ALL SELECT y.b FROM s IS TI WITH PROBABILITY (p) y",
            )
            .unwrap();
        // Every output label must be 0 (no upper bounds in UA encodings).
        for row in r.table.rows() {
            assert_eq!(
                *row.values().last().unwrap(),
                Value::Int(0),
                "mode={mode:?}"
            );
        }
        let j = s
            .query_ua(
                "SELECT x.a, y.b FROM r IS TI WITH PROBABILITY (p) x \
                 LEFT JOIN s IS TI WITH PROBABILITY (p) y ON x.a = y.b",
            )
            .unwrap();
        assert!(!j.table.is_empty(), "mode={mode:?}");
    }
}

#[test]
fn ua_engines_agree_on_negation_smoke() {
    ua_vecexec::install();
    let queries = [
        "SELECT x.a FROM r IS TI WITH PROBABILITY (p) x \
         EXCEPT ALL SELECT y.b FROM s IS TI WITH PROBABILITY (p) y",
        "SELECT x.a FROM r IS TI WITH PROBABILITY (p) x \
         EXCEPT SELECT y.b FROM s IS TI WITH PROBABILITY (p) y",
        "SELECT x.a, y.b FROM r IS TI WITH PROBABILITY (p) x \
         LEFT JOIN s IS TI WITH PROBABILITY (p) y ON x.a = y.b",
        "SELECT x.a, y.b FROM r IS TI WITH PROBABILITY (p) x \
         RIGHT JOIN s IS TI WITH PROBABILITY (p) y ON x.a = y.b",
        "SELECT x.a FROM r IS TI WITH PROBABILITY (p) x \
         WHERE x.a NOT IN (SELECT y.b FROM s IS TI WITH PROBABILITY (p) y)",
        "SELECT x.a FROM r IS TI WITH PROBABILITY (p) x \
         WHERE NOT EXISTS (SELECT y.b FROM s IS TI WITH PROBABILITY (p) y WHERE y.b > 10)",
    ];
    for sql in queries {
        for optimizer in [true, false] {
            let row_s = session(ExecMode::Row);
            row_s.set_optimizer_enabled(optimizer);
            let vec_s = session(ExecMode::Vectorized);
            vec_s.set_optimizer_enabled(optimizer);
            let row = row_s
                .query_ua(sql)
                .unwrap_or_else(|e| panic!("row {sql}: {e}"));
            let vec = vec_s
                .query_ua(sql)
                .unwrap_or_else(|e| panic!("vec {sql}: {e}"));
            assert_eq!(
                row.table.rows(),
                vec.table.rows(),
                "optimizer={optimizer}: {sql}"
            );
        }
    }
}

#[test]
fn au_negation_smoke() {
    ua_vecexec::install();
    let queries = [
        "SELECT x.a FROM r IS TI WITH PROBABILITY (p) x \
         EXCEPT ALL SELECT y.b FROM s IS TI WITH PROBABILITY (p) y",
        "SELECT x.a, y.b FROM r IS TI WITH PROBABILITY (p) x \
         LEFT JOIN s IS TI WITH PROBABILITY (p) y ON x.a = y.b",
    ];
    for sql in queries {
        let row = session(ExecMode::Row)
            .query_au(sql)
            .unwrap_or_else(|e| panic!("row {sql}: {e}"));
        let vec = session(ExecMode::Vectorized)
            .query_au(sql)
            .unwrap_or_else(|e| panic!("vec {sql}: {e}"));
        assert_eq!(row.table.schema(), vec.table.schema(), "{sql}");
        assert_eq!(row.table.rows(), vec.table.rows(), "{sql}");
    }
}
