//! Golden `EXPLAIN`-style plan snapshots for the optimizer pipeline.
//!
//! These assert the exact physical plans (via `Plan`'s `Display`) that the
//! optimizer produces for the shapes the join-planning pass exists for:
//! comma-joins become `HashJoin`s, single-side selections sink below the
//! join, pushdown composes through stacked projections, and the build side
//! follows catalog cardinalities.

use ua_data::algebra::ProjColumn;
use ua_data::expr::Expr;
use ua_data::schema::Schema;
use ua_data::tuple;
use ua_engine::plan::Plan;
use ua_engine::sql::planner::RejectAnnotations;
use ua_engine::{optimize, parse, plan_query, push_filters, Catalog, Table, UaSession};

/// `emp` (4 rows) and `dept` (2 rows): the hash build side must be `dept`.
fn catalog() -> Catalog {
    let c = Catalog::new();
    c.register(
        "emp",
        Table::from_rows(
            Schema::qualified("emp", ["name", "dept", "salary"]),
            vec![
                tuple!["ann", "eng", 100i64],
                tuple!["bob", "eng", 80i64],
                tuple!["cat", "ops", 60i64],
                tuple!["dan", "ops", 60i64],
            ],
        ),
    );
    c.register(
        "dept",
        Table::from_rows(
            Schema::qualified("dept", ["name", "city"]),
            vec![tuple!["eng", "nyc"], tuple!["ops", "chi"]],
        ),
    );
    c
}

fn optimized_plan(sql: &str) -> String {
    let c = catalog();
    let q = parse(sql).unwrap();
    let plan = plan_query(&q, &c, &RejectAnnotations).unwrap();
    format!("{}", optimize(plan, &c))
}

#[test]
fn comma_join_plans_to_hash_join() {
    assert_eq!(
        optimized_plan("SELECT e.name, d.city FROM emp e, dept d WHERE e.dept = d.name"),
        "Map[e.name→name, d.city→city](HashJoin[e.dept=d.name; build=right](\
         Alias[e](Scan(emp)), Alias[d](Scan(dept))))"
    );
}

#[test]
fn single_side_conjuncts_sink_below_the_hash_join() {
    // The alias-qualified conjuncts are requalified through the Alias
    // operators (`e.salary` → `salary`), landing directly on the scans.
    assert_eq!(
        optimized_plan(
            "SELECT e.name, d.city FROM emp e, dept d \
             WHERE e.dept = d.name AND e.salary >= 80 AND d.city = 'nyc'"
        ),
        "Map[e.name→name, d.city→city](HashJoin[e.dept=d.name; build=right](\
         Alias[e](Filter[(salary >= 80)](Scan(emp))), \
         Alias[d](Filter[(city = 'nyc')](Scan(dept)))))"
    );
}

#[test]
fn join_on_also_plans_to_hash_join_with_residual() {
    assert_eq!(
        optimized_plan(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name AND e.salary < d.city"
        ),
        "Map[e.name→name](HashJoin[e.dept=d.name; σ[(e.salary < d.city)]; build=right](\
         Alias[e](Scan(emp)), Alias[d](Scan(dept))))"
    );
}

#[test]
fn build_side_follows_catalog_cardinalities() {
    // Flipping the FROM order flips the probe side; the build side stays on
    // the smaller table (`dept`).
    assert_eq!(
        optimized_plan("SELECT d.city FROM dept d, emp e WHERE e.dept = d.name"),
        "Map[d.city→city](HashJoin[d.name=e.dept; build=left](\
         Alias[d](Scan(dept)), Alias[e](Scan(emp))))"
    );
}

#[test]
fn order_by_limit_fuses_to_topk() {
    // `Limit(Sort(..))` fuses into the bounded-heap TopK operator; a bare
    // ORDER BY (no LIMIT) stays a full Sort, and a bare LIMIT stays Limit.
    assert_eq!(
        optimized_plan("SELECT name FROM emp ORDER BY salary DESC LIMIT 2"),
        "TopK[1 keys; 2](Map[name→name](Scan(emp)))"
    );
    assert_eq!(
        optimized_plan("SELECT name FROM emp ORDER BY salary"),
        "Sort[1](Map[name→name](Scan(emp)))"
    );
    assert_eq!(
        optimized_plan("SELECT name FROM emp LIMIT 2"),
        "Limit[2](Map[name→name](Scan(emp)))"
    );
}

#[test]
fn stacked_limits_fold_into_one_topk() {
    use ua_engine::plan::SortOrder;
    let sorted = Plan::Sort {
        input: Box::new(Plan::Scan("emp".into())),
        keys: vec![(Expr::named("salary"), SortOrder::Asc)],
    };
    let stacked = Plan::Limit {
        input: Box::new(Plan::Limit {
            input: Box::new(sorted),
            limit: 7,
        }),
        limit: 3,
    };
    assert_eq!(
        format!("{}", ua_engine::fuse_topk(stacked)),
        "TopK[1 keys; 3](Scan(emp))"
    );
}

#[test]
fn theta_only_comma_join_keeps_a_theta_join() {
    assert_eq!(
        optimized_plan("SELECT e.name FROM emp e, dept d WHERE e.dept < d.name"),
        "Map[e.name→name](Join[(e.dept < d.name)](Alias[e](Scan(emp)), Alias[d](Scan(dept))))"
    );
}

#[test]
fn pushdown_composes_through_stacked_projections() {
    // Filter over two stacked Maps: the predicate substitutes through both
    // and lands on the scan.
    let plan = Plan::Filter {
        input: Box::new(Plan::Map {
            input: Box::new(Plan::Map {
                input: Box::new(Plan::Scan("emp".into())),
                columns: vec![ProjColumn::named("name"), ProjColumn::named("salary")],
            }),
            columns: vec![ProjColumn::named("salary")],
        }),
        predicate: Expr::named("salary").lt(Expr::lit(90i64)),
    };
    assert_eq!(
        format!("{}", push_filters(plan, &catalog())),
        "Map[salary→salary](Map[name→name, salary→salary](\
         Filter[(salary < 90)](Scan(emp))))"
    );
}

#[test]
fn alias_qualified_predicates_requalify_through_the_alias() {
    // A name-based predicate qualified by the subquery alias is requalified
    // against the inner schema (`q.salary` → `salary`), sinks through the
    // Alias, and then through the subquery's projection onto the scan.
    assert_eq!(
        optimized_plan("SELECT q.name FROM (SELECT name, salary FROM emp) q WHERE q.salary >= 80"),
        "Map[q.name→name](Alias[q](Map[name→name, salary→salary](\
         Filter[(salary >= 80)](Scan(emp)))))"
    );
}

#[test]
fn unrequalifiable_predicates_stay_above_the_alias() {
    // Below the alias the bare reference `b` is ambiguous (both inputs of
    // the joined subquery carry one) and neither qualified form resolves
    // it back uniquely through the alias's schema, so requalification must
    // refuse and leave the filter above the Alias operator.
    let c = catalog();
    c.register(
        "r2",
        Table::from_rows(Schema::qualified("r2", ["b"]), vec![tuple![1i64]]),
    );
    let plan = Plan::Filter {
        input: Box::new(Plan::Alias {
            input: Box::new(Plan::Join {
                left: Box::new(Plan::Scan("r2".into())),
                right: Box::new(Plan::Scan("r2".into())),
                predicate: None,
            }),
            name: "q".into(),
        }),
        predicate: Expr::named("q.b").gt(Expr::lit(0i64)),
    };
    // `q.b` is ambiguous above the alias too (two columns named b under q),
    // so the plan must be left untouched — both engines report the same
    // AmbiguousColumn error the unoptimized plan would.
    assert_eq!(
        format!("{}", push_filters(plan.clone(), &c)),
        format!("{plan}"),
    );
}

#[test]
fn explain_ua_snapshots_the_hash_join() {
    // End-to-end: the UA middleware's EXPLAIN shows the rewritten plan's
    // comma-join planned as a HashJoin with the selection pushed below.
    let session = UaSession::new();
    session.register_table(
        "r",
        Table::from_rows(
            Schema::qualified("r", ["a", "p"]),
            vec![tuple![1i64, 1.0], tuple![2i64, 0.5]],
        ),
    );
    session.register_table(
        "s",
        Table::from_rows(
            Schema::qualified("s", ["k", "d", "q"]),
            vec![tuple![1i64, 7i64, 1.0]],
        ),
    );
    let text = session
        .explain_ua(
            "SELECT x.a, y.d FROM r IS TI WITH PROBABILITY (p) x, \
             s IS TI WITH PROBABILITY (q) y WHERE x.a = y.k AND y.d > 5",
        )
        .unwrap();
    let physical = text.lines().last().expect("physical plan line").trim();
    // The filter pushed below the join (and through the alias, since it is
    // positional after substitution through the relabeling projection); the
    // build side is `s` — one row after filtering vs two in `r`.
    assert_eq!(
        physical,
        "Map[x.a→a, y.d→d, ua_c→ua_c](Map[#0→x.a, #2→y.k, #3→y.d, LEAST(#1, #4)→ua_c](\
         HashJoin[#0=#0; build=right](Alias[x](Scan(__ua__r__ti_1_p)), \
         Alias[y](Filter[(#1 > 5)](Scan(__ua__s__ti_1_q))))))"
    );
}

/// Regression: extracting an equality into a hash key must not change its
/// semantics — `Int(2) = Float(2.0)` is true under SQL's coercing
/// comparison, so the hash key canonicalizes integral floats
/// (`Value::join_key`) instead of comparing tuples structurally.
#[test]
fn hash_keys_keep_coercing_equality_semantics() {
    ua_vecexec::install();
    for mode in [ua_engine::ExecMode::Row, ua_engine::ExecMode::Vectorized] {
        for optimizer in [true, false] {
            let session = UaSession::with_mode(mode);
            session.set_optimizer_enabled(optimizer);
            session.register_table(
                "r",
                Table::from_rows(Schema::qualified("r", ["k"]), vec![tuple![2i64]]),
            );
            session.register_table(
                "s",
                Table::from_rows(Schema::qualified("s", ["k"]), vec![tuple![2.0]]),
            );
            let t = session
                .query_det("SELECT r.k FROM r, s WHERE r.k = s.k")
                .unwrap();
            assert_eq!(
                t.len(),
                1,
                "{mode:?}, optimizer={optimizer}: Int(2) must join Float(2.0)"
            );
        }
    }
}

/// Regression: a conjunct pushed below a join runs on rows the join would
/// have excluded; arithmetic errors on bad types there, so error-capable
/// predicates must stay in the residual (evaluated on joined rows only).
#[test]
fn error_capable_predicates_are_not_pushed_below_joins() {
    use ua_data::tuple::Tuple;
    use ua_data::value::Value;
    for optimizer in [true, false] {
        let session = UaSession::new();
        session.set_optimizer_enabled(optimizer);
        session.register_table(
            "r",
            Table::from_rows(
                Schema::qualified("r", ["k", "v"]),
                vec![
                    tuple![1i64, 10i64],
                    // Never joins; `v + 1` on it would be a type error.
                    Tuple::new(vec![Value::Int(99), Value::str("oops")]),
                ],
            ),
        );
        session.register_table(
            "s",
            Table::from_rows(Schema::qualified("s", ["k"]), vec![tuple![1i64]]),
        );
        // `JOIN ... ON` so the unoptimized plan already hash-joins before
        // the filter runs (a comma-form cross join would evaluate the whole
        // WHERE on every pair and error either way).
        let t = session
            .query_det("SELECT r.v FROM r JOIN s ON r.k = s.k WHERE r.v + 1 > 0")
            .unwrap_or_else(|e| panic!("optimizer={optimizer}: {e}"));
        assert_eq!(t.rows(), &[tuple![10i64]]);
    }
}

/// Regression: a column name that is ambiguous in the concatenated join
/// schema must stay an error — even when it happens to be ambiguous on one
/// input and resolvable on the other, the optimizer may not silently pick
/// the resolvable side.
#[test]
fn ambiguous_names_stay_errors_under_join_planning() {
    let mk = |name: &str| {
        Table::from_rows(
            Schema::qualified(name, ["a", "b"]),
            vec![tuple![1i64, 1i64]],
        )
    };
    for optimizer in [true, false] {
        let session = UaSession::new();
        session.set_optimizer_enabled(optimizer);
        session.register_table("r", mk("r"));
        session.register_table("s", mk("s"));
        session.register_table("t", mk("t"));
        let result = session.query_det("SELECT t.b FROM r, s, t WHERE r.b = s.b AND b = 1");
        assert!(
            result.is_err(),
            "optimizer={optimizer}: unqualified `b` is ambiguous and must error"
        );
    }
}

/// Catalog for the 3-way reordering snapshots: two large relations and one
/// tiny selective one.
fn star_catalog() -> Catalog {
    let c = Catalog::new();
    let big = |name: &str, val_col: &str| {
        Table::from_rows(
            Schema::qualified(name, ["k", val_col]),
            (0..40i64).map(|i| tuple![i % 20, i]).collect(),
        )
    };
    c.register("big1", big("big1", "v"));
    c.register("big2", big("big2", "w"));
    c.register(
        "small",
        Table::from_rows(
            Schema::qualified("small", ["k", "t"]),
            vec![tuple![0i64, 100i64], tuple![1i64, 101i64]],
        ),
    );
    c
}

/// The acceptance shape: a 3-way comma-join written in a deliberately bad
/// order (`FROM big1, big2, small`) is replanned to join through the small
/// relation first, with a projection restoring the as-written column order.
/// The equivalence class `{big1.k, big2.k, small.k}` is closed before
/// enumeration, so the derived `big1.k = big2.k` edge surfaces as a second
/// hash key at its covering node.
#[test]
fn bad_order_comma_join_replans_through_the_small_relation() {
    let c = star_catalog();
    let sql = "SELECT big1.v, big2.w, small.t FROM big1, big2, small \
               WHERE big1.k = small.k AND big2.k = small.k";
    let q = parse(sql).unwrap();
    let plan = plan_query(&q, &c, &RejectAnnotations).unwrap();
    let optimized = optimize(plan.clone(), &c);
    assert_eq!(
        format!("{optimized}"),
        "Map[big1.v→v, big2.w→w, small.t→t](\
         Map[#0→big1.k, #1→big1.v, #4→big2.k, #5→big2.w, #2→small.k, #3→small.t](\
         HashJoin[small.k=big2.k, big1.k=big2.k; build=left](\
         HashJoin[big1.k=small.k; build=right](Scan(big1), Scan(small)), \
         Scan(big2))))"
    );
    // The reorder preserves the result exactly (rows and multiplicities).
    let raw = ua_engine::execute(&plan, &c).unwrap();
    let opt = ua_engine::execute(&optimized, &c).unwrap();
    assert_eq!(raw.sorted_rows(), opt.sorted_rows());
    assert_eq!(raw.schema().names(), opt.schema().names());
}

/// A chain join (`big1.k = big2.k AND big2.k = small.k`) re-associates so
/// a selective join runs first. Closing the equivalence class derives
/// `big1.k = small.k`, which makes `big1 ⋈ small` directly joinable — an
/// order as cheap as routing through `big2 ⋈ small`, reached first by the
/// enumeration, with a permutation restoring the as-written column order.
#[test]
fn chain_join_reassociates_through_the_selective_join() {
    let c = star_catalog();
    let sql = "SELECT big1.v, big2.w FROM big1, big2, small \
               WHERE big1.k = big2.k AND big2.k = small.k";
    let q = parse(sql).unwrap();
    let plan = plan_query(&q, &c, &RejectAnnotations).unwrap();
    let optimized = optimize(plan.clone(), &c);
    assert_eq!(
        format!("{optimized}"),
        "Map[big1.v→v, big2.w→w](\
         Map[#0→big1.k, #1→big1.v, #4→big2.k, #5→big2.w, #2→small.k, #3→small.t](\
         HashJoin[big1.k=big2.k, small.k=big2.k; build=left](\
         HashJoin[big1.k=small.k; build=right](Scan(big1), Scan(small)), \
         Scan(big2))))"
    );
    let raw = ua_engine::execute(&plan, &c).unwrap();
    let opt = ua_engine::execute(&optimized, &c).unwrap();
    assert_eq!(raw.sorted_rows(), opt.sorted_rows());
}

/// Reordering off (`OptimizerPasses::reorder_joins = false`) restores the
/// as-written left-deep plan — the baseline the `multi_join` bench measures
/// against.
#[test]
fn reorder_toggle_keeps_the_as_written_order() {
    use ua_engine::{optimize_with, OptimizerPasses};
    let c = star_catalog();
    let sql = "SELECT big1.v, big2.w FROM big1, big2, small \
               WHERE big1.k = big2.k AND big2.k = small.k";
    let q = parse(sql).unwrap();
    let plan = plan_query(&q, &c, &RejectAnnotations).unwrap();
    let as_written = optimize_with(
        plan,
        &c,
        OptimizerPasses {
            reorder_joins: false,
            ..Default::default()
        },
    );
    assert_eq!(
        format!("{as_written}"),
        "Map[big1.v→v, big2.w→w](\
         HashJoin[big2.k=small.k; build=right](\
         HashJoin[big1.k=big2.k; build=right](Scan(big1), Scan(big2)), \
         Scan(small)))"
    );
}

/// Regression (review): stacked error-capable filters over a reorderable
/// 3-way join keep their guard order. The inner CASE guard excludes the
/// poison (string) row without erroring; the outer arithmetic filter would
/// error on it. Merging the stack into one eager conjunction — in the
/// reorder's emission or in plan_joins' peel — would evaluate the
/// arithmetic on the poison row and turn a succeeding query into an error.
#[test]
fn stacked_error_capable_filters_keep_their_guard_order_when_reordered() {
    use ua_data::tuple::Tuple;
    use ua_data::value::Value;
    let c = star_catalog();
    // Give big1 an `a` column with one poison row whose key joins through.
    let mut rows: Vec<Tuple> = (0..40i64).map(|i| tuple![i % 20, i]).collect();
    rows.push(Tuple::new(vec![Value::Int(0), Value::str("poison")]));
    c.register(
        "big1",
        Table::from_rows(Schema::qualified("big1", ["k", "a"]), rows),
    );
    let guard = Expr::Cmp(
        ua_data::expr::CmpOp::Eq,
        Box::new(Expr::Case {
            branches: vec![(
                Expr::named("big1.a").eq(Expr::lit("poison")),
                Expr::lit(0i64),
            )],
            otherwise: Some(Box::new(Expr::lit(1i64))),
        }),
        Box::new(Expr::lit(1i64)),
    );
    let outer = Expr::named("big1.a")
        .add(Expr::lit(0i64))
        .ge(Expr::lit(0i64));
    let plan = Plan::Filter {
        input: Box::new(Plan::Filter {
            input: Box::new(Plan::Filter {
                input: Box::new(Plan::Join {
                    left: Box::new(Plan::Join {
                        left: Box::new(Plan::Scan("big1".into())),
                        right: Box::new(Plan::Scan("big2".into())),
                        predicate: None,
                    }),
                    right: Box::new(Plan::Scan("small".into())),
                    predicate: None,
                }),
                predicate: Expr::named("big1.k")
                    .eq(Expr::named("big2.k"))
                    .and(Expr::named("big2.k").eq(Expr::named("small.k"))),
            }),
            predicate: guard,
        }),
        predicate: outer,
    };
    let raw = ua_engine::execute(&plan, &c).expect("unoptimized must succeed");
    let optimized = optimize(plan, &c);
    let opt = ua_engine::execute(&optimized, &c)
        .unwrap_or_else(|e| panic!("optimized plan errored where raw succeeded: {e}\n{optimized}"));
    assert_eq!(raw.sorted_rows(), opt.sorted_rows());
    ua_vecexec::install();
    let vec = ua_vecexec::execute_vectorized(&optimized, &c).expect("vectorized");
    assert_eq!(opt.rows(), vec.rows());
}

/// Regression (review): the "already best" bail-out compares against the
/// *actual* as-written shape, not a left-deep assumption — a right-deep
/// input that already matches the optimum is left untouched.
#[test]
fn optimal_right_deep_input_is_left_alone() {
    let c = star_catalog();
    // The optimum for the chain (per `chain_join_reassociates_...`) is
    // (big1 ⋈ small) ⋈ big2; write it that way from the start.
    let plan = Plan::Filter {
        input: Box::new(Plan::Join {
            left: Box::new(Plan::Join {
                left: Box::new(Plan::Scan("big1".into())),
                right: Box::new(Plan::Scan("small".into())),
                predicate: None,
            }),
            right: Box::new(Plan::Scan("big2".into())),
            predicate: None,
        }),
        predicate: Expr::named("big1.k")
            .eq(Expr::named("big2.k"))
            .and(Expr::named("big2.k").eq(Expr::named("small.k"))),
    };
    let reordered = ua_engine::reorder_joins(plan.clone(), &c);
    assert_eq!(
        format!("{reordered}"),
        format!("{plan}"),
        "an input already in the optimal shape must not be rewritten"
    );
}

/// Non-monotone operators are pushdown barriers: a filter sitting on an
/// `Except` must not sink into either side (pre-filtering the left changes
/// which copies the right's budget removes; filtering the right changes
/// the removal set outright), and a filter on an `OuterJoin` must not sink
/// into either side (the preserved side's rows would vanish instead of
/// NULL-padding; the padded side's rows would pad instead of matching).
#[test]
fn filters_are_not_pushed_into_except_or_outer_join() {
    use ua_engine::plan::OuterKind;
    let c = star_catalog();
    let pred = Expr::named("big1.k").ge(Expr::lit(1i64));
    let except = Plan::Filter {
        input: Box::new(Plan::Except {
            left: Box::new(Plan::Scan("big1".into())),
            right: Box::new(Plan::Scan("big2".into())),
            all: true,
        }),
        predicate: pred.clone(),
    };
    let pushed = push_filters(except.clone(), &c);
    assert_eq!(
        format!("{pushed}"),
        format!("{except}"),
        "a filter must stay above Except"
    );
    for kind in [OuterKind::Left, OuterKind::Right] {
        let outer = Plan::Filter {
            input: Box::new(Plan::OuterJoin {
                left: Box::new(Plan::Scan("big1".into())),
                right: Box::new(Plan::Scan("small".into())),
                predicate: Some(Expr::named("big1.k").eq(Expr::named("small.k"))),
                kind,
            }),
            predicate: pred.clone(),
        };
        let pushed = push_filters(outer.clone(), &c);
        assert_eq!(
            format!("{pushed}"),
            format!("{outer}"),
            "a filter must stay above OuterJoin[{kind}]"
        );
    }
}

/// The semantic counterpart: a WHERE over the NULL-padded side of a LEFT
/// JOIN drops pad rows (NULL comparisons are unknown). Pushing it below
/// the join would filter `small` *before* padding and resurrect all 36
/// unmatched `big1` rows. The optimized plan must agree with the raw one.
#[test]
fn padded_side_filter_survives_the_full_pipeline() {
    let c = star_catalog();
    let sql = "SELECT big1.k, small.t FROM big1 LEFT JOIN small ON big1.k = small.k \
               WHERE small.t >= 0";
    let q = parse(sql).unwrap();
    let plan = plan_query(&q, &c, &RejectAnnotations).unwrap();
    let raw = ua_engine::execute(&plan, &c).unwrap();
    let optimized = optimize(plan, &c);
    let opt = ua_engine::execute(&optimized, &c).unwrap();
    // big1.k ∈ {0..19} twice; small.k ∈ {0, 1}: 4 matched rows survive the
    // filter, the 36 pads do not.
    assert_eq!(raw.len(), 4, "raw plan must keep only matched rows");
    assert_eq!(raw.sorted_rows(), opt.sorted_rows());
}

/// Regression: stacked filters must not merge into one conjunction — the
/// inner guard `a <> 0` protects the outer `100 / a > 10` from evaluating
/// (and erroring) on `a = 0` rows, so relocating the error-capable outer
/// conjunct below the guard would change which queries fail.
#[test]
fn stacked_filter_guard_preserved() {
    for optimizer in [true, false] {
        let s = UaSession::new();
        s.set_optimizer_enabled(optimizer);
        s.catalog().register(
            "g",
            Table::from_rows(
                Schema::qualified("g", ["a"]),
                vec![tuple![0i64], tuple![4i64]],
            ),
        );
        let r = s.query_det("SELECT * FROM (SELECT a FROM g WHERE a <> 0) x WHERE 100 / a > 10");
        match r {
            Ok(t) => assert_eq!(t.rows(), &[tuple![4i64]]),
            Err(e) => panic!("optimizer={optimizer}: guarded query errored: {e}"),
        }
    }
}

#[test]
fn optimizer_toggle_restores_raw_plans() {
    let session = UaSession::new();
    session.register_table(
        "r",
        Table::from_rows(Schema::qualified("r", ["a"]), vec![tuple![1i64]]),
    );
    session.set_optimizer_enabled(false);
    assert!(!session.optimizer_enabled());
    let text = session
        .explain_det("SELECT r.a FROM r, r s WHERE r.a = s.a")
        .unwrap();
    assert!(
        !text.contains("HashJoin"),
        "optimizer off must leave the cross join: {text}"
    );
    session.set_optimizer_enabled(true);
    let text = session
        .explain_det("SELECT r.a FROM r, r s WHERE r.a = s.a")
        .unwrap();
    assert!(
        text.contains("HashJoin"),
        "optimizer on plans a hash join: {text}"
    );
}

/// Golden EXPLAIN ANALYZE snapshot: the deterministic render
/// (`OperatorStats::render(false)` — no wall times, no `*_ns` extras) of
/// the instrumented plan tree on both engines, for the join + GROUP BY
/// shape. Everything asserted — operator labels, per-operator actual row
/// counts, `estimate_rows` cardinalities, batch counts — is exact.
#[test]
fn explain_analyze_golden_snapshot() {
    ua_vecexec::install();
    let s = UaSession::new();
    s.register_table(
        "emp",
        Table::from_rows(
            Schema::qualified("emp", ["name", "dept", "salary"]),
            vec![
                tuple!["ann", "eng", 100i64],
                tuple!["bob", "eng", 80i64],
                tuple!["cat", "ops", 60i64],
                tuple!["dan", "ops", 60i64],
            ],
        ),
    );
    s.register_table(
        "dept",
        Table::from_rows(
            Schema::qualified("dept", ["name", "city"]),
            vec![tuple!["eng", "nyc"], tuple!["ops", "chi"]],
        ),
    );
    s.set_stats_enabled(true);
    s.set_vec_threads(1);
    let sql = "SELECT d.city, count(*) AS n FROM emp e, dept d \
               WHERE e.dept = d.name AND e.salary >= 80 GROUP BY d.city";

    s.set_exec_mode(ua_engine::ExecMode::Row);
    s.query_det(sql).unwrap();
    let row = s.last_query_stats().unwrap();
    assert_eq!(
        row.root.render(false),
        "Map[city→city, __agg0→n] rows=1 est=2\n\
         \x20 Aggregate[city; count(*)→__agg0] rows=1 est=2 (mem_bytes=86)\n\
         \x20   HashJoin[e.dept=d.name; build=right] rows=2 est=2 (build_rows=2, probe_rows=2, mem_bytes=70)\n\
         \x20     Alias[e] rows=2 est=2\n\
         \x20       Filter[(salary >= 80)] rows=2 est=2\n\
         \x20         Scan[emp] rows=4 est=4\n\
         \x20     Alias[d] rows=2 est=2\n\
         \x20       Scan[dept] rows=2 est=2\n"
    );

    // The vectorized tree carries batch counts and lists the hash join's
    // build-side subtree (dept) before the streamed probe chain.
    s.set_exec_mode(ua_engine::ExecMode::Vectorized);
    s.query_det(sql).unwrap();
    let vec = s.last_query_stats().unwrap();
    assert_eq!(
        vec.root.render(false),
        "Map[city→city, __agg0→n] rows=1 est=2 batches=1\n\
         \x20 Aggregate[city; count(*)→__agg0] rows=1 est=2 batches=1 (mem_bytes=43)\n\
         \x20   HashJoin[e.dept=d.name; build=right] rows=2 est=2 batches=1 (build_rows=2, mem_bytes=92, probe_rows=2)\n\
         \x20     Alias[d] rows=2 est=2 batches=1\n\
         \x20       Scan[dept] rows=2 est=2 batches=1\n\
         \x20     Alias[e] rows=2 est=2 batches=1\n\
         \x20       Filter[(salary >= 80)] rows=2 est=2 batches=1\n\
         \x20         Scan[emp] rows=4 est=4 batches=1\n"
    );
}
