//! Golden `EXPLAIN`-style plan snapshots for the optimizer pipeline.
//!
//! These assert the exact physical plans (via `Plan`'s `Display`) that the
//! optimizer produces for the shapes the join-planning pass exists for:
//! comma-joins become `HashJoin`s, single-side selections sink below the
//! join, pushdown composes through stacked projections, and the build side
//! follows catalog cardinalities.

use ua_data::algebra::ProjColumn;
use ua_data::expr::Expr;
use ua_data::schema::Schema;
use ua_data::tuple;
use ua_engine::plan::Plan;
use ua_engine::sql::planner::RejectAnnotations;
use ua_engine::{optimize, parse, plan_query, push_filters, Catalog, Table, UaSession};

/// `emp` (4 rows) and `dept` (2 rows): the hash build side must be `dept`.
fn catalog() -> Catalog {
    let c = Catalog::new();
    c.register(
        "emp",
        Table::from_rows(
            Schema::qualified("emp", ["name", "dept", "salary"]),
            vec![
                tuple!["ann", "eng", 100i64],
                tuple!["bob", "eng", 80i64],
                tuple!["cat", "ops", 60i64],
                tuple!["dan", "ops", 60i64],
            ],
        ),
    );
    c.register(
        "dept",
        Table::from_rows(
            Schema::qualified("dept", ["name", "city"]),
            vec![tuple!["eng", "nyc"], tuple!["ops", "chi"]],
        ),
    );
    c
}

fn optimized_plan(sql: &str) -> String {
    let c = catalog();
    let q = parse(sql).unwrap();
    let plan = plan_query(&q, &c, &RejectAnnotations).unwrap();
    format!("{}", optimize(plan, &c))
}

#[test]
fn comma_join_plans_to_hash_join() {
    assert_eq!(
        optimized_plan("SELECT e.name, d.city FROM emp e, dept d WHERE e.dept = d.name"),
        "Map[e.name→name, d.city→city](HashJoin[e.dept=d.name; build=right](\
         Alias[e](Scan(emp)), Alias[d](Scan(dept))))"
    );
}

#[test]
fn single_side_conjuncts_sink_below_the_hash_join() {
    assert_eq!(
        optimized_plan(
            "SELECT e.name, d.city FROM emp e, dept d \
             WHERE e.dept = d.name AND e.salary >= 80 AND d.city = 'nyc'"
        ),
        "Map[e.name→name, d.city→city](HashJoin[e.dept=d.name; build=right](\
         Filter[(e.salary >= 80)](Alias[e](Scan(emp))), \
         Filter[(d.city = 'nyc')](Alias[d](Scan(dept)))))"
    );
}

#[test]
fn join_on_also_plans_to_hash_join_with_residual() {
    assert_eq!(
        optimized_plan(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name AND e.salary < d.city"
        ),
        "Map[e.name→name](HashJoin[e.dept=d.name; σ[(e.salary < d.city)]; build=right](\
         Alias[e](Scan(emp)), Alias[d](Scan(dept))))"
    );
}

#[test]
fn build_side_follows_catalog_cardinalities() {
    // Flipping the FROM order flips the probe side; the build side stays on
    // the smaller table (`dept`).
    assert_eq!(
        optimized_plan("SELECT d.city FROM dept d, emp e WHERE e.dept = d.name"),
        "Map[d.city→city](HashJoin[d.name=e.dept; build=left](\
         Alias[d](Scan(dept)), Alias[e](Scan(emp))))"
    );
}

#[test]
fn theta_only_comma_join_keeps_a_theta_join() {
    assert_eq!(
        optimized_plan("SELECT e.name FROM emp e, dept d WHERE e.dept < d.name"),
        "Map[e.name→name](Join[(e.dept < d.name)](Alias[e](Scan(emp)), Alias[d](Scan(dept))))"
    );
}

#[test]
fn pushdown_composes_through_stacked_projections() {
    // Filter over two stacked Maps: the predicate substitutes through both
    // and lands on the scan.
    let plan = Plan::Filter {
        input: Box::new(Plan::Map {
            input: Box::new(Plan::Map {
                input: Box::new(Plan::Scan("emp".into())),
                columns: vec![ProjColumn::named("name"), ProjColumn::named("salary")],
            }),
            columns: vec![ProjColumn::named("salary")],
        }),
        predicate: Expr::named("salary").lt(Expr::lit(90i64)),
    };
    assert_eq!(
        format!("{}", push_filters(plan)),
        "Map[salary→salary](Map[name→name, salary→salary](\
         Filter[(salary < 90)](Scan(emp))))"
    );
}

#[test]
fn alias_qualified_predicates_stop_at_the_alias_boundary() {
    // A name-based predicate is qualified by the subquery alias, so it can
    // bind only above the Alias operator — the optimizer must leave it
    // there rather than requalify unsoundly.
    assert_eq!(
        optimized_plan("SELECT q.name FROM (SELECT name, salary FROM emp) q WHERE q.salary >= 80"),
        "Map[q.name→name](Filter[(q.salary >= 80)](Alias[q](\
         Map[name→name, salary→salary](Scan(emp)))))"
    );
}

#[test]
fn explain_ua_snapshots_the_hash_join() {
    // End-to-end: the UA middleware's EXPLAIN shows the rewritten plan's
    // comma-join planned as a HashJoin with the selection pushed below.
    let session = UaSession::new();
    session.register_table(
        "r",
        Table::from_rows(
            Schema::qualified("r", ["a", "p"]),
            vec![tuple![1i64, 1.0], tuple![2i64, 0.5]],
        ),
    );
    session.register_table(
        "s",
        Table::from_rows(
            Schema::qualified("s", ["k", "d", "q"]),
            vec![tuple![1i64, 7i64, 1.0]],
        ),
    );
    let text = session
        .explain_ua(
            "SELECT x.a, y.d FROM r IS TI WITH PROBABILITY (p) x, \
             s IS TI WITH PROBABILITY (q) y WHERE x.a = y.k AND y.d > 5",
        )
        .unwrap();
    let physical = text.lines().last().expect("physical plan line").trim();
    // The filter pushed below the join (and through the alias, since it is
    // positional after substitution through the relabeling projection); the
    // build side is `s` — one row after filtering vs two in `r`.
    assert_eq!(
        physical,
        "Map[x.a→a, y.d→d, ua_c→ua_c](Map[#0→x.a, #2→y.k, #3→y.d, LEAST(#1, #4)→ua_c](\
         HashJoin[#0=#0; build=right](Alias[x](Scan(__ua__r__ti_1_p)), \
         Alias[y](Filter[(#1 > 5)](Scan(__ua__s__ti_1_q))))))"
    );
}

/// Regression: extracting an equality into a hash key must not change its
/// semantics — `Int(2) = Float(2.0)` is true under SQL's coercing
/// comparison, so the hash key canonicalizes integral floats
/// (`Value::join_key`) instead of comparing tuples structurally.
#[test]
fn hash_keys_keep_coercing_equality_semantics() {
    ua_vecexec::install();
    for mode in [ua_engine::ExecMode::Row, ua_engine::ExecMode::Vectorized] {
        for optimizer in [true, false] {
            let session = UaSession::with_mode(mode);
            session.set_optimizer_enabled(optimizer);
            session.register_table(
                "r",
                Table::from_rows(Schema::qualified("r", ["k"]), vec![tuple![2i64]]),
            );
            session.register_table(
                "s",
                Table::from_rows(Schema::qualified("s", ["k"]), vec![tuple![2.0]]),
            );
            let t = session
                .query_det("SELECT r.k FROM r, s WHERE r.k = s.k")
                .unwrap();
            assert_eq!(
                t.len(),
                1,
                "{mode:?}, optimizer={optimizer}: Int(2) must join Float(2.0)"
            );
        }
    }
}

/// Regression: a conjunct pushed below a join runs on rows the join would
/// have excluded; arithmetic errors on bad types there, so error-capable
/// predicates must stay in the residual (evaluated on joined rows only).
#[test]
fn error_capable_predicates_are_not_pushed_below_joins() {
    use ua_data::tuple::Tuple;
    use ua_data::value::Value;
    for optimizer in [true, false] {
        let session = UaSession::new();
        session.set_optimizer_enabled(optimizer);
        session.register_table(
            "r",
            Table::from_rows(
                Schema::qualified("r", ["k", "v"]),
                vec![
                    tuple![1i64, 10i64],
                    // Never joins; `v + 1` on it would be a type error.
                    Tuple::new(vec![Value::Int(99), Value::str("oops")]),
                ],
            ),
        );
        session.register_table(
            "s",
            Table::from_rows(Schema::qualified("s", ["k"]), vec![tuple![1i64]]),
        );
        // `JOIN ... ON` so the unoptimized plan already hash-joins before
        // the filter runs (a comma-form cross join would evaluate the whole
        // WHERE on every pair and error either way).
        let t = session
            .query_det("SELECT r.v FROM r JOIN s ON r.k = s.k WHERE r.v + 1 > 0")
            .unwrap_or_else(|e| panic!("optimizer={optimizer}: {e}"));
        assert_eq!(t.rows(), &[tuple![10i64]]);
    }
}

/// Regression: a column name that is ambiguous in the concatenated join
/// schema must stay an error — even when it happens to be ambiguous on one
/// input and resolvable on the other, the optimizer may not silently pick
/// the resolvable side.
#[test]
fn ambiguous_names_stay_errors_under_join_planning() {
    let mk = |name: &str| {
        Table::from_rows(
            Schema::qualified(name, ["a", "b"]),
            vec![tuple![1i64, 1i64]],
        )
    };
    for optimizer in [true, false] {
        let session = UaSession::new();
        session.set_optimizer_enabled(optimizer);
        session.register_table("r", mk("r"));
        session.register_table("s", mk("s"));
        session.register_table("t", mk("t"));
        let result = session.query_det("SELECT t.b FROM r, s, t WHERE r.b = s.b AND b = 1");
        assert!(
            result.is_err(),
            "optimizer={optimizer}: unqualified `b` is ambiguous and must error"
        );
    }
}

#[test]
fn optimizer_toggle_restores_raw_plans() {
    let session = UaSession::new();
    session.register_table(
        "r",
        Table::from_rows(Schema::qualified("r", ["a"]), vec![tuple![1i64]]),
    );
    session.set_optimizer_enabled(false);
    assert!(!session.optimizer_enabled());
    let text = session
        .explain_det("SELECT r.a FROM r, r s WHERE r.a = s.a")
        .unwrap();
    assert!(
        !text.contains("HashJoin"),
        "optimizer off must leave the cross join: {text}"
    );
    session.set_optimizer_enabled(true);
    let text = session
        .explain_det("SELECT r.a FROM r, r s WHERE r.a = s.a")
        .unwrap();
    assert!(
        text.contains("HashJoin"),
        "optimizer on plans a hash join: {text}"
    );
}
