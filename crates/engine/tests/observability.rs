//! Observability contract tests.
//!
//! The instrumentation layer must be a pure observer: turning stats
//! collection on must not change a single byte of any result, on either
//! engine, with the optimizer on or off, at any thread count. On top of
//! that, `EXPLAIN ANALYZE` must report per-operator rows/time and
//! est-vs-actual cardinalities on BOTH engines (the acceptance shape:
//! a 3-way join + GROUP BY), and the AU vectorized driver — batch-native
//! for every operator — must leave all `au.vec.fallback.*` audit
//! counters pinned at zero.

use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_engine::{ExecMode, Table, UaSession};

/// Deterministic star schema: `orders(ok, ck, total)` ⋈ `cust(ck, dk)` ⋈
/// `dept(dk, region)`, plus a TI-annotated `t(g, v, p)` for the UA/AU
/// paths. Sized so morsel runs at 8 threads split into several tasks.
fn seeded_session() -> UaSession {
    let s = UaSession::new();
    s.register_table(
        "orders",
        Table::from_rows(
            Schema::qualified("orders", ["ok", "ck", "total"]),
            (0..600i64)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int(i),
                        Value::Int((i * 7) % 120),
                        Value::Int((i * 13) % 500),
                    ])
                })
                .collect(),
        ),
    );
    s.register_table(
        "cust",
        Table::from_rows(
            Schema::qualified("cust", ["ck", "dk"]),
            (0..120i64)
                .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 8)]))
                .collect(),
        ),
    );
    s.register_table(
        "dept",
        Table::from_rows(
            Schema::qualified("dept", ["dk", "region"]),
            (0..8i64)
                .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 3)]))
                .collect(),
        ),
    );
    s.register_table(
        "t",
        Table::from_rows(
            Schema::qualified("t", ["g", "v", "p"]),
            (0..200i64)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int(i % 5),
                        Value::Int(i),
                        Value::float(if i % 4 == 0 { 0.5 } else { 1.0 }),
                    ])
                })
                .collect(),
        ),
    );
    s
}

const DET_SQL: &str = "SELECT d.region, count(*) AS n, sum(o.total) AS s \
                       FROM orders o, cust c, dept d \
                       WHERE o.ck = c.ck AND c.dk = d.dk AND o.total >= 100 \
                       GROUP BY d.region";

const UA_SQL: &str = "SELECT x.g, x.v FROM t IS TI WITH PROBABILITY (p) x \
                      WHERE x.v >= 50";

const AU_SQL: &str = "SELECT x.g, count(*) AS n, sum(x.v) AS s \
                      FROM t IS TI WITH PROBABILITY (p) x GROUP BY x.g";

/// Results must be byte-identical with instrumentation on vs off, across
/// {Row, Vectorized} × {optimizer on, off} × {1, 2, 8 threads}, for the
/// deterministic, UA, and AU query paths.
#[test]
fn instrumentation_never_changes_results() {
    ua_vecexec::install();
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        for optimizer in [true, false] {
            for threads in [1usize, 2, 8] {
                let s = seeded_session();
                s.set_exec_mode(mode);
                s.set_optimizer_enabled(optimizer);
                s.set_vec_threads(threads);
                let ctx = format!("mode={mode:?} optimizer={optimizer} threads={threads}");

                s.set_stats_enabled(false);
                let det_off = s.query_det(DET_SQL).expect("det off");
                let ua_off = s.query_ua(UA_SQL).expect("ua off");
                let au_off = s.query_au(AU_SQL).expect("au off");

                s.set_stats_enabled(true);
                let det_on = s.query_det(DET_SQL).expect("det on");
                let ua_on = s.query_ua(UA_SQL).expect("ua on");
                let au_on = s.query_au(AU_SQL).expect("au on");

                assert_eq!(det_off.rows(), det_on.rows(), "det rows differ: {ctx}");
                assert_eq!(
                    det_off.schema(),
                    det_on.schema(),
                    "det schema differs: {ctx}"
                );
                assert_eq!(
                    ua_off.table.rows(),
                    ua_on.table.rows(),
                    "UA rows differ: {ctx}"
                );
                assert_eq!(
                    au_off.table.rows(),
                    au_on.table.rows(),
                    "AU rows differ: {ctx}"
                );

                // And the instrumented run actually produced a stats tree.
                let stats = s.last_query_stats().expect("stats collected");
                assert!(stats.root.rows_out > 0 || stats.root.children.is_empty());
            }
        }
    }
}

/// The acceptance shape: EXPLAIN ANALYZE on a 3-way join + GROUP BY
/// reports per-operator rows, wall time, and est-vs-actual on both
/// engines; the vectorized report includes the morsel-pool line.
#[test]
fn explain_analyze_reports_operators_on_both_engines() {
    ua_vecexec::install();
    let s = seeded_session();

    s.set_exec_mode(ExecMode::Row);
    let row = s.explain_analyze_det(DET_SQL).expect("row explain analyze");
    s.set_exec_mode(ExecMode::Vectorized);
    let vec = s.explain_analyze_det(DET_SQL).expect("vec explain analyze");

    for (engine, text) in [("row", &row), ("vectorized", &vec)] {
        assert!(
            text.contains(&format!(
                "execution (EXPLAIN ANALYZE, engine={engine} semantics=det)"
            )),
            "{engine}: missing execution header:\n{text}"
        );
        for token in ["Aggregate", "HashJoin", "Scan", " rows=", " est=", " time="] {
            assert!(text.contains(token), "{engine}: missing `{token}`:\n{text}");
        }
        // Two joins in the 3-way shape.
        assert!(
            text.matches("HashJoin").count() >= 2,
            "{engine}: expected both joins in the tree:\n{text}"
        );
    }
    assert!(
        vec.contains("morsel pool: workers="),
        "vectorized report must include the pool line:\n{vec}"
    );
    assert!(
        vec.contains(" batches="),
        "vectorized reports batches:\n{vec}"
    );

    // EXPLAIN ANALYZE must not leave stats collection enabled behind.
    assert!(!s.stats_enabled(), "stats flag leaked");
}

/// UA and AU EXPLAIN ANALYZE work end to end as well.
#[test]
fn explain_analyze_covers_ua_and_au_semantics() {
    ua_vecexec::install();
    let s = seeded_session();
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        s.set_exec_mode(mode);
        let ua = s.explain_analyze_ua(UA_SQL).expect("ua explain analyze");
        assert!(
            ua.contains("semantics=ua") && ua.contains(" rows="),
            "{mode:?}: UA report malformed:\n{ua}"
        );
        let au = s.explain_analyze_au(AU_SQL).expect("au explain analyze");
        assert!(
            au.contains("semantics=au") && au.contains(" rows="),
            "{mode:?}: AU report malformed:\n{au}"
        );
    }
}

/// Every AU operator is batch-native now — the vectorized driver no
/// longer routes anything through the row interpreter's
/// materialize-and-dispatch path, so ALL `au.vec.fallback.*` counters
/// (including `distinct`, the last holdout) stay pinned at zero across a
/// sweep of DISTINCT, aggregation, joins and set operations.
#[test]
fn au_vectorized_fallback_counters_stay_zero() {
    ua_vecexec::install();
    let s = seeded_session();
    s.set_exec_mode(ExecMode::Vectorized);
    let reg = ua_obs::global();
    const COUNTERS: [&str; 8] = [
        "au.vec.fallback.join",
        "au.vec.fallback.hash_join",
        "au.vec.fallback.union_all",
        "au.vec.fallback.distinct",
        "au.vec.fallback.aggregate",
        "au.vec.fallback.sort",
        "au.vec.fallback.limit",
        "au.vec.fallback.top_k",
    ];
    let before: Vec<u64> = COUNTERS.iter().map(|c| reg.counter(c).get()).collect();
    let sweep = [
        "SELECT DISTINCT x.g FROM t IS TI WITH PROBABILITY (p) x",
        AU_SQL,
        "SELECT x.v AS a, y.v AS b FROM t IS TI WITH PROBABILITY (p) x, \
         t IS TI WITH PROBABILITY (p) y WHERE x.g = y.g ORDER BY x.v, y.v LIMIT 10",
        "SELECT x.v AS a, y.v AS b FROM t IS TI WITH PROBABILITY (p) x, \
         t IS TI WITH PROBABILITY (p) y WHERE x.v < y.g",
        "SELECT x.g FROM t IS TI WITH PROBABILITY (p) x \
         UNION ALL SELECT x.g FROM t IS TI WITH PROBABILITY (p) x",
    ];
    for sql in sweep {
        s.query_au(sql)
            .unwrap_or_else(|e| panic!("au vec `{sql}`: {e}"));
    }
    for (name, b) in COUNTERS.iter().zip(&before) {
        assert_eq!(
            reg.counter(name).get(),
            *b,
            "`{name}` must stay pinned at zero: every AU operator is \
             batch-native"
        );
    }
}

/// The `planner.join.misestimated` regression: a join above an aggregate
/// subquery must compare its estimate against the aggregate's
/// *post-grouping* cardinality (group-key ndvs), not the pre-grouping
/// input rows — on AU trees the inherited pass-through estimate used to
/// trip the misestimate counter on correctly planned queries.
#[test]
fn aggregate_estimates_are_post_grouping() {
    ua_vecexec::install();
    let s = seeded_session();
    let sub_join = "SELECT a.g, x.v FROM \
                    (SELECT y.g AS g, count(*) AS n FROM t IS TI WITH PROBABILITY (p) y \
                     GROUP BY y.g) a, \
                    t IS TI WITH PROBABILITY (p) x WHERE a.g = x.g";
    let reg = ua_obs::global();
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        s.set_exec_mode(mode);
        let mis_before = reg.counter("planner.join.misestimated").get();
        let report = s.explain_analyze_au(sub_join).expect("au explain analyze");
        assert_eq!(
            reg.counter("planner.join.misestimated").get(),
            mis_before,
            "{mode:?}: a correctly planned AU join over an aggregate \
             subquery must not count as misestimated:\n{report}"
        );
        // The aggregate node's estimate is the group count (5 groups),
        // not the 200-row pre-grouping input.
        assert!(
            report.contains("Aggregate") && report.contains("est=5"),
            "{mode:?}: aggregate node must carry the post-grouping \
             estimate:\n{report}"
        );
    }
}

/// The `planner.join.misestimated` regression, DISTINCT edition: a join
/// above a DISTINCT subquery must compare its estimate against the
/// *post-dedup* cardinality (the product of the subquery's column ndvs),
/// not the pre-dedup input rows. `cust` has 120 rows but only 8 distinct
/// `dk` values — the pass-through estimate used to overshoot the join by
/// 15× and trip the misestimate counter on a correctly planned query.
#[test]
fn distinct_estimates_are_post_dedup() {
    ua_vecexec::install();
    let s = seeded_session();
    let sub_join = "SELECT a.g, d.region FROM \
                    (SELECT DISTINCT c.dk AS g FROM cust c) a, \
                    dept d WHERE a.g = d.dk";
    let reg = ua_obs::global();
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        s.set_exec_mode(mode);
        let mis_before = reg.counter("planner.join.misestimated").get();
        let report = s
            .explain_analyze_det(sub_join)
            .expect("det explain analyze");
        assert_eq!(
            reg.counter("planner.join.misestimated").get(),
            mis_before,
            "{mode:?}: a correctly planned join over a DISTINCT subquery \
             must not count as misestimated:\n{report}"
        );
        assert!(
            report.contains("Distinct") && report.contains("est=8"),
            "{mode:?}: the Distinct node must carry the post-dedup \
             estimate:\n{report}"
        );
    }
}

/// Join misestimation feedback: executing with stats on records observed
/// joins in the planner feedback counters.
#[test]
fn planner_feedback_counters_observe_joins() {
    ua_vecexec::install();
    let s = seeded_session();
    s.set_stats_enabled(true);
    let reg = ua_obs::global();
    let before = reg.counter("planner.join.observed").get();
    s.query_det(DET_SQL).expect("det");
    let after = reg.counter("planner.join.observed").get();
    assert!(
        after >= before + 2,
        "a 3-way join must record >= 2 observed joins (before={before}, after={after})"
    );
}
