//! Observability contract tests.
//!
//! The instrumentation layer must be a pure observer: turning stats
//! collection on must not change a single byte of any result, on either
//! engine, with the optimizer on or off, at any thread count. On top of
//! that, `EXPLAIN ANALYZE` must report per-operator rows/time and
//! est-vs-actual cardinalities on BOTH engines (the acceptance shape:
//! a 3-way join + GROUP BY), and the AU vectorized driver's fallback
//! audit counters must tick for operators that route through the row
//! interpreter.

use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_engine::{ExecMode, Table, UaSession};

/// Deterministic star schema: `orders(ok, ck, total)` ⋈ `cust(ck, dk)` ⋈
/// `dept(dk, region)`, plus a TI-annotated `t(g, v, p)` for the UA/AU
/// paths. Sized so morsel runs at 8 threads split into several tasks.
fn seeded_session() -> UaSession {
    let s = UaSession::new();
    s.register_table(
        "orders",
        Table::from_rows(
            Schema::qualified("orders", ["ok", "ck", "total"]),
            (0..600i64)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int(i),
                        Value::Int((i * 7) % 120),
                        Value::Int((i * 13) % 500),
                    ])
                })
                .collect(),
        ),
    );
    s.register_table(
        "cust",
        Table::from_rows(
            Schema::qualified("cust", ["ck", "dk"]),
            (0..120i64)
                .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 8)]))
                .collect(),
        ),
    );
    s.register_table(
        "dept",
        Table::from_rows(
            Schema::qualified("dept", ["dk", "region"]),
            (0..8i64)
                .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 3)]))
                .collect(),
        ),
    );
    s.register_table(
        "t",
        Table::from_rows(
            Schema::qualified("t", ["g", "v", "p"]),
            (0..200i64)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int(i % 5),
                        Value::Int(i),
                        Value::float(if i % 4 == 0 { 0.5 } else { 1.0 }),
                    ])
                })
                .collect(),
        ),
    );
    s
}

const DET_SQL: &str = "SELECT d.region, count(*) AS n, sum(o.total) AS s \
                       FROM orders o, cust c, dept d \
                       WHERE o.ck = c.ck AND c.dk = d.dk AND o.total >= 100 \
                       GROUP BY d.region";

const UA_SQL: &str = "SELECT x.g, x.v FROM t IS TI WITH PROBABILITY (p) x \
                      WHERE x.v >= 50";

const AU_SQL: &str = "SELECT x.g, count(*) AS n, sum(x.v) AS s \
                      FROM t IS TI WITH PROBABILITY (p) x GROUP BY x.g";

/// Results must be byte-identical with instrumentation on vs off, across
/// {Row, Vectorized} × {optimizer on, off} × {1, 2, 8 threads}, for the
/// deterministic, UA, and AU query paths.
#[test]
fn instrumentation_never_changes_results() {
    ua_vecexec::install();
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        for optimizer in [true, false] {
            for threads in [1usize, 2, 8] {
                let s = seeded_session();
                s.set_exec_mode(mode);
                s.set_optimizer_enabled(optimizer);
                s.set_vec_threads(threads);
                let ctx = format!("mode={mode:?} optimizer={optimizer} threads={threads}");

                s.set_stats_enabled(false);
                let det_off = s.query_det(DET_SQL).expect("det off");
                let ua_off = s.query_ua(UA_SQL).expect("ua off");
                let au_off = s.query_au(AU_SQL).expect("au off");

                s.set_stats_enabled(true);
                let det_on = s.query_det(DET_SQL).expect("det on");
                let ua_on = s.query_ua(UA_SQL).expect("ua on");
                let au_on = s.query_au(AU_SQL).expect("au on");

                assert_eq!(det_off.rows(), det_on.rows(), "det rows differ: {ctx}");
                assert_eq!(
                    det_off.schema(),
                    det_on.schema(),
                    "det schema differs: {ctx}"
                );
                assert_eq!(
                    ua_off.table.rows(),
                    ua_on.table.rows(),
                    "UA rows differ: {ctx}"
                );
                assert_eq!(
                    au_off.table.rows(),
                    au_on.table.rows(),
                    "AU rows differ: {ctx}"
                );

                // And the instrumented run actually produced a stats tree.
                let stats = s.last_query_stats().expect("stats collected");
                assert!(stats.root.rows_out > 0 || stats.root.children.is_empty());
            }
        }
    }
}

/// The acceptance shape: EXPLAIN ANALYZE on a 3-way join + GROUP BY
/// reports per-operator rows, wall time, and est-vs-actual on both
/// engines; the vectorized report includes the morsel-pool line.
#[test]
fn explain_analyze_reports_operators_on_both_engines() {
    ua_vecexec::install();
    let s = seeded_session();

    s.set_exec_mode(ExecMode::Row);
    let row = s.explain_analyze_det(DET_SQL).expect("row explain analyze");
    s.set_exec_mode(ExecMode::Vectorized);
    let vec = s.explain_analyze_det(DET_SQL).expect("vec explain analyze");

    for (engine, text) in [("row", &row), ("vectorized", &vec)] {
        assert!(
            text.contains(&format!(
                "execution (EXPLAIN ANALYZE, engine={engine} semantics=det)"
            )),
            "{engine}: missing execution header:\n{text}"
        );
        for token in ["Aggregate", "HashJoin", "Scan", " rows=", " est=", " time="] {
            assert!(text.contains(token), "{engine}: missing `{token}`:\n{text}");
        }
        // Two joins in the 3-way shape.
        assert!(
            text.matches("HashJoin").count() >= 2,
            "{engine}: expected both joins in the tree:\n{text}"
        );
    }
    assert!(
        vec.contains("morsel pool: workers="),
        "vectorized report must include the pool line:\n{vec}"
    );
    assert!(
        vec.contains(" batches="),
        "vectorized reports batches:\n{vec}"
    );

    // EXPLAIN ANALYZE must not leave stats collection enabled behind.
    assert!(!s.stats_enabled(), "stats flag leaked");
}

/// UA and AU EXPLAIN ANALYZE work end to end as well.
#[test]
fn explain_analyze_covers_ua_and_au_semantics() {
    ua_vecexec::install();
    let s = seeded_session();
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        s.set_exec_mode(mode);
        let ua = s.explain_analyze_ua(UA_SQL).expect("ua explain analyze");
        assert!(
            ua.contains("semantics=ua") && ua.contains(" rows="),
            "{mode:?}: UA report malformed:\n{ua}"
        );
        let au = s.explain_analyze_au(AU_SQL).expect("au explain analyze");
        assert!(
            au.contains("semantics=au") && au.contains(" rows="),
            "{mode:?}: AU report malformed:\n{au}"
        );
    }
}

/// The AU vectorized driver audits every operator it routes through the
/// row interpreter. `DISTINCT` is the one remaining fallback and must
/// tick `au.vec.fallback.distinct`; the grouped aggregate is batch-native
/// now and must leave `au.vec.fallback.aggregate` untouched (stats
/// collection does not need to be enabled for the audit counters).
#[test]
fn au_vectorized_fallbacks_are_audited() {
    ua_vecexec::install();
    let s = seeded_session();
    s.set_exec_mode(ExecMode::Vectorized);
    let reg = ua_obs::global();
    let distinct_sql = "SELECT DISTINCT x.g FROM t IS TI WITH PROBABILITY (p) x";
    let distinct_before = reg.counter("au.vec.fallback.distinct").get();
    let agg_before = reg.counter("au.vec.fallback.aggregate").get();
    s.query_au(distinct_sql).expect("au vec distinct");
    s.query_au(AU_SQL).expect("au vec");
    assert!(
        reg.counter("au.vec.fallback.distinct").get() > distinct_before,
        "AU DISTINCT must audit its row-interpreter fallback"
    );
    assert_eq!(
        reg.counter("au.vec.fallback.aggregate").get(),
        agg_before,
        "grouped AU aggregation is batch-native and must not tick its \
         fallback counter"
    );

    // The row engine must not touch the vectorized fallback counters.
    s.set_exec_mode(ExecMode::Row);
    let before_row = reg.counter("au.vec.fallback.distinct").get();
    s.query_au(distinct_sql).expect("au row distinct");
    s.query_au(AU_SQL).expect("au row");
    assert_eq!(
        reg.counter("au.vec.fallback.distinct").get(),
        before_row,
        "row-engine AU execution must not tick vectorized fallback counters"
    );
}

/// Join misestimation feedback: executing with stats on records observed
/// joins in the planner feedback counters.
#[test]
fn planner_feedback_counters_observe_joins() {
    ua_vecexec::install();
    let s = seeded_session();
    s.set_stats_enabled(true);
    let reg = ua_obs::global();
    let before = reg.counter("planner.join.observed").get();
    s.query_det(DET_SQL).expect("det");
    let after = reg.counter("planner.join.observed").get();
    assert!(
        after >= before + 2,
        "a 3-way join must record >= 2 observed joins (before={before}, after={after})"
    );
}
