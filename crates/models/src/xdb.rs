//! x-DBs / block-independent databases (BI-DBs).
//!
//! An x-relation is a set of *x-tuples*: independent blocks of mutually
//! exclusive alternatives, optionally absent altogether (paper Section 4.1,
//! after Agrawal et al.'s Trio). The probabilistic version (BI-DB) attaches
//! a probability to each alternative with `P(τ) = Σ_t P(t) ≤ 1`; the x-tuple
//! is optional iff `P(τ) < 1`.
//!
//! The paper's results implemented here:
//!
//! * `label_xDB` — certain iff single, non-optional alternative — is
//!   **c-correct** at the instance level (Theorem 3);
//! * best-guess world: per x-tuple argmax-probability alternative, or no
//!   alternative when absence is likelier (Section 4.2);
//! * **x-keys** (Definition 7): attribute sets on which some pair of
//!   alternatives differs, the sufficient condition for queries to preserve
//!   c-completeness (Theorem 6).
//!
//! Worlds are *bags* (`ℕ`): alternatives of distinct x-tuples may coincide,
//! in which case multiplicities add — this is what makes the model usable
//! for the paper's bag-semantics experiments.

use rand::Rng;
use ua_data::relation::{Database, Relation};
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_incomplete::IncompleteDb;

/// One alternative of an x-tuple.
#[derive(Clone, Debug, PartialEq)]
pub struct Alternative {
    /// The tuple this alternative contributes.
    pub tuple: Tuple,
    /// Its probability (for BI-DBs; uniform placeholders otherwise).
    pub probability: f64,
}

/// An x-tuple: disjoint alternatives, possibly optional.
#[derive(Clone, Debug, PartialEq)]
pub struct XTuple {
    /// The alternatives (non-empty).
    pub alternatives: Vec<Alternative>,
    /// Whether the x-tuple may be absent entirely.
    pub optional: bool,
}

impl XTuple {
    /// A non-optional x-tuple with uniform alternative probabilities.
    /// Duplicate alternatives are merged (alternatives are *disjoint events*,
    /// so a repeated tuple is one alternative, not two).
    ///
    /// # Panics
    /// Panics when `alternatives` is empty.
    pub fn total(alternatives: Vec<Tuple>) -> XTuple {
        assert!(!alternatives.is_empty(), "x-tuple needs ≥ 1 alternative");
        let mut distinct = alternatives;
        distinct.sort();
        distinct.dedup();
        let p = 1.0 / distinct.len() as f64;
        XTuple {
            alternatives: distinct
                .into_iter()
                .map(|t| Alternative {
                    tuple: t,
                    probability: p,
                })
                .collect(),
            optional: false,
        }
    }

    /// An optional x-tuple with uniform probabilities scaled to `mass`.
    pub fn optional(alternatives: Vec<Tuple>, mass: f64) -> XTuple {
        assert!(!alternatives.is_empty(), "x-tuple needs ≥ 1 alternative");
        assert!((0.0..1.0).contains(&mass), "optional mass must be in [0,1)");
        let mut distinct = alternatives;
        distinct.sort();
        distinct.dedup();
        let p = mass / distinct.len() as f64;
        XTuple {
            alternatives: distinct
                .into_iter()
                .map(|t| Alternative {
                    tuple: t,
                    probability: p,
                })
                .collect(),
            optional: true,
        }
    }

    /// A BI-DB x-tuple with explicit probabilities; optional iff the mass is
    /// below 1. Duplicate alternatives are merged with their probabilities
    /// added.
    ///
    /// # Panics
    /// Panics when probabilities are invalid or sum to more than 1.
    pub fn probabilistic(alternatives: Vec<(Tuple, f64)>) -> XTuple {
        assert!(!alternatives.is_empty(), "x-tuple needs ≥ 1 alternative");
        let total: f64 = alternatives.iter().map(|(_, p)| p).sum();
        assert!(
            alternatives.iter().all(|(_, p)| (0.0..=1.0).contains(p)) && total <= 1.0 + 1e-9,
            "alternative probabilities must be in [0,1] and sum to ≤ 1 (got {total})"
        );
        let mut merged: Vec<(Tuple, f64)> = Vec::with_capacity(alternatives.len());
        for (tuple, p) in alternatives {
            match merged.iter_mut().find(|(t, _)| *t == tuple) {
                Some((_, q)) => *q += p,
                None => merged.push((tuple, p)),
            }
        }
        XTuple {
            alternatives: merged
                .into_iter()
                .map(|(tuple, probability)| Alternative { tuple, probability })
                .collect(),
            optional: total < 1.0 - 1e-9,
        }
    }

    /// `P(τ)`: total probability mass of the alternatives.
    pub fn total_probability(&self) -> f64 {
        self.alternatives.iter().map(|a| a.probability).sum()
    }

    /// Number of alternatives `|τ|`.
    pub fn arity(&self) -> usize {
        self.alternatives.len()
    }

    /// The certain tuple contributed by this x-tuple, if any: the single,
    /// non-optional alternative (paper `label_xDB`).
    pub fn certain_alternative(&self) -> Option<&Tuple> {
        if !self.optional && self.alternatives.len() == 1 {
            Some(&self.alternatives[0].tuple)
        } else {
            None
        }
    }

    /// The best-guess choice: the argmax-probability alternative, or `None`
    /// when omitting the x-tuple is likelier than any alternative
    /// (paper Section 4.2).
    pub fn best_guess(&self) -> Option<&Tuple> {
        // First maximum wins: the paper takes the highest-ranked option.
        let mut best = self.alternatives.first()?;
        for alt in &self.alternatives[1..] {
            if alt.probability > best.probability {
                best = alt;
            }
        }
        let p_absent = 1.0 - self.total_probability();
        if self.optional && p_absent > best.probability {
            None
        } else {
            Some(&best.tuple)
        }
    }

    /// The choices a possible world can make for this x-tuple: one
    /// alternative index, or `None` for absence when optional.
    fn choices(&self) -> Vec<Option<usize>> {
        let mut out: Vec<Option<usize>> = (0..self.alternatives.len()).map(Some).collect();
        if self.optional {
            out.push(None);
        }
        out
    }

    /// Probability of a choice.
    fn choice_probability(&self, choice: Option<usize>) -> f64 {
        match choice {
            Some(i) => self.alternatives[i].probability,
            None => 1.0 - self.total_probability(),
        }
    }

    /// Sample a choice.
    fn sample_choice(&self, rng: &mut impl Rng) -> Option<usize> {
        let mut roll: f64 = rng.gen();
        for (i, alt) in self.alternatives.iter().enumerate() {
            if roll < alt.probability {
                return Some(i);
            }
            roll -= alt.probability;
        }
        if self.optional {
            None
        } else {
            // Guard against float drift on total x-tuples.
            Some(self.alternatives.len() - 1)
        }
    }
}

/// An x-relation.
#[derive(Clone, Debug, PartialEq)]
pub struct XRelation {
    schema: Schema,
    xtuples: Vec<XTuple>,
}

impl XRelation {
    /// Empty x-relation.
    pub fn new(schema: Schema) -> XRelation {
        XRelation {
            schema,
            xtuples: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Add an x-tuple.
    ///
    /// # Panics
    /// Panics when an alternative's arity does not match the schema.
    pub fn push(&mut self, xt: XTuple) {
        for alt in &xt.alternatives {
            assert_eq!(
                alt.tuple.arity(),
                self.schema.arity(),
                "alternative arity must match the schema"
            );
        }
        self.xtuples.push(xt);
    }

    /// The x-tuples.
    pub fn xtuples(&self) -> &[XTuple] {
        &self.xtuples
    }

    /// Number of x-tuples.
    pub fn len(&self) -> usize {
        self.xtuples.len()
    }

    /// Whether the relation has no x-tuples.
    pub fn is_empty(&self) -> bool {
        self.xtuples.is_empty()
    }

    /// The *exact* certain answers of the projection of this x-relation
    /// onto `positions`, under set semantics.
    ///
    /// Exploiting x-tuple independence, a projected tuple `t` is certain
    /// iff some non-optional x-tuple has **all** alternatives projecting to
    /// `t` (otherwise a world avoiding `t` can be assembled by picking, per
    /// x-tuple, an alternative that misses `t`). This PTIME oracle grounds
    /// the false-negative-rate measurements of the paper's Figures 15/20.
    pub fn projection_certain_set(&self, positions: &[usize]) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self
            .xtuples
            .iter()
            .filter(|xt| !xt.optional)
            .filter_map(|xt| {
                let first = xt.alternatives[0].tuple.project(positions);
                xt.alternatives[1..]
                    .iter()
                    .all(|a| a.tuple.project(positions) == first)
                    .then_some(first)
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The exact certain *multiplicities* of the projection onto
    /// `positions` (bag semantics): each non-optional x-tuple whose
    /// alternatives all project to `t` contributes one guaranteed copy.
    pub fn projection_certain_bag(&self, positions: &[usize]) -> Relation<u64> {
        let schema = Schema::unqualified(
            positions
                .iter()
                .map(|&i| self.schema.columns()[i].name.to_string()),
        );
        let mut out: Relation<u64> = Relation::new(schema);
        for xt in &self.xtuples {
            if xt.optional {
                continue;
            }
            let first = xt.alternatives[0].tuple.project(positions);
            if xt.alternatives[1..]
                .iter()
                .all(|a| a.tuple.project(positions) == first)
            {
                out.insert(first, 1);
            }
        }
        out
    }

    /// The labeled-certain projection under `label_xDB`: only single-
    /// alternative non-optional x-tuples count (what a UA-DB reports).
    pub fn projection_labeled_bag(&self, positions: &[usize]) -> Relation<u64> {
        let schema = Schema::unqualified(
            positions
                .iter()
                .map(|&i| self.schema.columns()[i].name.to_string()),
        );
        let mut out: Relation<u64> = Relation::new(schema);
        for xt in &self.xtuples {
            if let Some(t) = xt.certain_alternative() {
                out.insert(t.project(positions), 1);
            }
        }
        out
    }

    /// Whether `positions` forms an **x-key** (paper Definition 7): every
    /// non-optional multi-alternative x-tuple has two alternatives that
    /// differ on `positions`.
    pub fn is_x_key(&self, positions: &[usize]) -> bool {
        self.xtuples.iter().all(|xt| {
            xt.optional
                || xt.arity() == 1
                || xt.alternatives.iter().enumerate().any(|(i, a)| {
                    xt.alternatives[i + 1..]
                        .iter()
                        .any(|b| a.tuple.project(positions) != b.tuple.project(positions))
                })
        })
    }
}

/// An x-database / BI-DB.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct XDb {
    relations: std::collections::BTreeMap<String, XRelation>,
}

impl XDb {
    /// Empty x-DB.
    pub fn new() -> XDb {
        XDb::default()
    }

    /// Register a relation.
    pub fn insert(&mut self, name: impl Into<String>, relation: XRelation) {
        self.relations.insert(name.into(), relation);
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> Option<&XRelation> {
        self.relations.get(name)
    }

    /// Iterate over relations.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &XRelation)> {
        self.relations.iter()
    }

    /// The best-guess world as a bag database.
    pub fn best_guess_world(&self) -> Database<u64> {
        let mut db = Database::new();
        for (name, rel) in &self.relations {
            db.insert(
                name.clone(),
                Relation::from_tuples(
                    rel.schema.clone(),
                    rel.xtuples.iter().filter_map(|xt| xt.best_guess().cloned()),
                ),
            );
        }
        db
    }

    /// `label_xDB` as a bag labeling: each tuple labeled with the number of
    /// x-tuples contributing it certainly (i.e. as a single, non-optional
    /// alternative). Independence of x-tuples makes this a lower bound on
    /// the tuple's multiplicity in every world, hence c-sound; it is exactly
    /// the certain multiplicity (c-correct; paper Theorem 3).
    pub fn labeling(&self) -> Database<u64> {
        let mut db = Database::new();
        for (name, rel) in &self.relations {
            db.insert(
                name.clone(),
                Relation::from_tuples(
                    rel.schema.clone(),
                    rel.xtuples
                        .iter()
                        .filter_map(|xt| xt.certain_alternative().cloned()),
                ),
            );
        }
        db
    }

    /// Number of possible worlds, saturating.
    pub fn world_count(&self) -> u128 {
        let mut count: u128 = 1;
        for rel in self.relations.values() {
            for xt in &rel.xtuples {
                let c = (xt.arity() + usize::from(xt.optional)) as u128;
                count = count.saturating_mul(c);
            }
        }
        count
    }

    /// Enumerate all possible worlds with probabilities.
    ///
    /// # Panics
    /// Panics when the world count exceeds `max_worlds`.
    pub fn enumerate_worlds(&self, max_worlds: u128) -> IncompleteDb<u64> {
        let count = self.world_count();
        assert!(
            count <= max_worlds,
            "refusing to enumerate {count} worlds (limit {max_worlds})"
        );
        // Collect (relation name, x-tuple) in a flat list.
        let blocks: Vec<(&String, &XTuple)> = self
            .relations
            .iter()
            .flat_map(|(name, rel)| rel.xtuples.iter().map(move |xt| (name, xt)))
            .collect();
        let mut worlds = Vec::new();
        let mut probs = Vec::new();
        let mut choice_indices = vec![0usize; blocks.len()];
        let all_choices: Vec<Vec<Option<usize>>> =
            blocks.iter().map(|(_, xt)| xt.choices()).collect();
        loop {
            let mut db = Database::new();
            for (name, rel) in &self.relations {
                db.insert(name.clone(), Relation::<u64>::new(rel.schema.clone()));
            }
            let mut prob = 1.0f64;
            for (b, (name, xt)) in blocks.iter().enumerate() {
                let choice = all_choices[b][choice_indices[b]];
                prob *= xt.choice_probability(choice);
                if let Some(i) = choice {
                    let mut rel = db.get(name.as_str()).cloned().expect("inserted above");
                    rel.insert(xt.alternatives[i].tuple.clone(), 1);
                    db.insert(name.to_string(), rel);
                }
            }
            worlds.push(db);
            probs.push(prob);
            // Advance the mixed-radix odometer.
            let mut done = true;
            for (b, idx) in choice_indices.iter_mut().enumerate() {
                *idx += 1;
                if *idx < all_choices[b].len() {
                    done = false;
                    break;
                }
                *idx = 0;
            }
            if done {
                break;
            }
        }
        let total: f64 = probs.iter().sum();
        if total > 0.0 {
            for p in &mut probs {
                *p /= total;
            }
        }
        IncompleteDb::new(worlds).with_probabilities(probs)
    }

    /// Sample one possible world.
    pub fn sample_world(&self, rng: &mut impl Rng) -> Database<u64> {
        let mut db = Database::new();
        for (name, rel) in &self.relations {
            let mut r: Relation<u64> = Relation::new(rel.schema.clone());
            for xt in &rel.xtuples {
                if let Some(i) = xt.sample_choice(rng) {
                    r.insert(xt.alternatives[i].tuple.clone(), 1);
                }
            }
            db.insert(name.clone(), r);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ua_data::tuple;
    use ua_data::value::Value;
    use ua_incomplete::{is_c_correct, is_c_sound};

    /// The paper's running example: ADDR with ambiguous geocodings
    /// (Figure 2), simplified to the id + geocoded columns.
    fn addr_xdb() -> XDb {
        let mut rel = XRelation::new(Schema::qualified("addr", ["id", "lat", "lon"]));
        rel.push(XTuple::total(vec![tuple![1i64, 42.93, -78.81]]));
        rel.push(XTuple::probabilistic(vec![
            (tuple![2i64, 42.91, -78.89], 0.6),
            (tuple![2i64, 32.25, -110.87], 0.4),
        ]));
        rel.push(XTuple::probabilistic(vec![
            (tuple![3i64, 42.91, -78.84], 0.5),
            (tuple![3i64, 42.90, -78.85], 0.5),
        ]));
        rel.push(XTuple::total(vec![tuple![4i64, 42.93, -78.80]]));
        let mut db = XDb::new();
        db.insert("addr", rel);
        db
    }

    #[test]
    fn world_count_matches_example1() {
        // "ADDR encodes 4 possible worlds".
        assert_eq!(addr_xdb().world_count(), 4);
    }

    #[test]
    fn theorem3_labeling_is_c_correct() {
        let db = addr_xdb();
        let inc = db.enumerate_worlds(100);
        assert!(is_c_correct(&db.labeling(), &inc), "Theorem 3 violated");
    }

    #[test]
    fn labeling_counts_certain_contributions() {
        // Two x-tuples certainly contributing the same tuple ⇒ multiplicity 2.
        let mut rel = XRelation::new(Schema::qualified("r", ["a"]));
        rel.push(XTuple::total(vec![tuple![7i64]]));
        rel.push(XTuple::total(vec![tuple![7i64]]));
        rel.push(XTuple::total(vec![tuple![7i64], tuple![8i64]]));
        let mut db = XDb::new();
        db.insert("r", rel);
        assert_eq!(db.labeling().get("r").unwrap().annotation(&tuple![7i64]), 2);
        let inc = db.enumerate_worlds(100);
        assert!(is_c_sound(&db.labeling(), &inc));
        assert!(is_c_correct(&db.labeling(), &inc));
    }

    #[test]
    fn best_guess_world_picks_argmax() {
        let bgw = addr_xdb().best_guess_world();
        let r = bgw.get("addr").unwrap();
        assert_eq!(r.annotation(&tuple![2i64, 42.91, -78.89]), 1);
        assert_eq!(r.annotation(&tuple![2i64, 32.25, -110.87]), 0);
        assert_eq!(r.support_size(), 4);
    }

    #[test]
    fn optional_block_can_vanish_from_bgw() {
        let mut rel = XRelation::new(Schema::qualified("r", ["a"]));
        // P(absent) = 0.8 beats the best alternative at 0.15.
        rel.push(XTuple::probabilistic(vec![
            (tuple![1i64], 0.15),
            (tuple![2i64], 0.05),
        ]));
        let mut db = XDb::new();
        db.insert("r", rel);
        assert!(db.best_guess_world().get("r").unwrap().is_empty());
    }

    #[test]
    fn bgw_is_most_probable_world() {
        let db = addr_xdb();
        let inc = db.enumerate_worlds(100);
        let bgw = db.best_guess_world();
        let bgw_idx = (0..inc.n_worlds())
            .find(|&i| inc.world(i).get("addr").unwrap() == bgw.get("addr").unwrap())
            .expect("BGW must be a possible world");
        for i in 0..inc.n_worlds() {
            assert!(inc.probability(bgw_idx) >= inc.probability(i) - 1e-12);
        }
    }

    #[test]
    fn x_keys_definition7() {
        let mut rel = XRelation::new(Schema::qualified("r", ["id", "loc"]));
        rel.push(XTuple::total(vec![tuple![1i64, "a"], tuple![1i64, "b"]]));
        let mut db = XDb::new();
        db.insert("r", rel.clone());
        // {loc} distinguishes the alternatives; {id} does not.
        assert!(rel.is_x_key(&[1]));
        assert!(!rel.is_x_key(&[0]));
        // Supersets of x-keys are x-keys (paper Lemma 7).
        assert!(rel.is_x_key(&[0, 1]));
        // Optional or singleton x-tuples never violate the key.
        let mut rel2 = XRelation::new(Schema::qualified("r", ["id", "loc"]));
        rel2.push(XTuple::optional(
            vec![tuple![1i64, "a"], tuple![1i64, "b"]],
            0.5,
        ));
        rel2.push(XTuple::total(vec![tuple![2i64, "c"]]));
        assert!(rel2.is_x_key(&[0]));
    }

    #[test]
    fn enumerated_probabilities_sum_to_one() {
        let inc = addr_xdb().enumerate_worlds(100);
        let total: f64 = (0..inc.n_worlds()).map(|i| inc.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_distribution_roughly_matches() {
        let db = addr_xdb();
        let mut rng = StdRng::seed_from_u64(11);
        let mut first = 0;
        for _ in 0..300 {
            let w = db.sample_world(&mut rng);
            if w.get("addr")
                .unwrap()
                .annotation(&tuple![2i64, 42.91, -78.89])
                > 0
            {
                first += 1;
            }
        }
        // P = 0.6 ± noise.
        assert!((120..=240).contains(&first), "saw {first}/300");
    }

    #[test]
    fn alternatives_share_values_across_xtuples() {
        // Bag semantics: coinciding alternatives add multiplicities.
        let mut rel = XRelation::new(Schema::qualified("r", ["a"]));
        rel.push(XTuple::total(vec![tuple![1i64]]));
        rel.push(XTuple::total(vec![tuple![1i64], tuple![2i64]]));
        let mut db = XDb::new();
        db.insert("r", rel);
        let inc = db.enumerate_worlds(10);
        let w_both: Vec<u64> = (0..inc.n_worlds())
            .map(|i| inc.world(i).get("r").unwrap().annotation(&tuple![1i64]))
            .collect();
        assert!(w_both.contains(&2), "some world must hold two copies");
        assert_eq!(inc.certain_annotation("r", &tuple![1i64]), 1);
    }

    #[test]
    fn schema_mismatch_panics() {
        let mut rel = XRelation::new(Schema::qualified("r", ["a", "b"]));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rel.push(XTuple::total(vec![tuple![1i64]]));
        }));
        assert!(result.is_err());
    }

    #[allow(unused)]
    fn value_type_check(v: Value) {}
}
