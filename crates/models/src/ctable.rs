//! C-tables and PC-tables (Imielinski & Lipski; Green & Tannen).
//!
//! A C-table annotates tuples — whose attributes may be *variables* — with
//! boolean **local conditions** over those variables; each valuation of the
//! variables (satisfying the optional global condition) induces one possible
//! world containing the instantiations of the rows whose local conditions
//! hold (paper Section 4.1). PC-tables additionally attach an independent
//! distribution to every variable.
//!
//! Implemented here:
//!
//! * the paper's **c-sound PTIME labeling** (Theorem 2): a tuple is labeled
//!   certain iff it is constant-only and its local condition is in CNF and a
//!   CNF-tautology — deliberately incomplete (paper Example 9);
//! * **symbolic `RA⁺` evaluation** producing result C-tables: selections and
//!   joins extend local conditions with the symbolic residue of their
//!   predicates, projections/unions keep per-row conditions (the exact
//!   certain-answer baseline of the paper's Figure 10);
//! * **exact certain answers** via the order-region solver: a constant tuple
//!   `t` is certain iff the disjunction of `φ_r ∧ (unification of r with t)`
//!   over all rows `r` is a tautology;
//! * world instantiation / enumeration and best-guess-world extraction
//!   (PC-tables: per-variable argmax valuation, the paper's tractable
//!   approximation of the most likely world).

use ua_conditions::{
    cnf_tautology, is_cnf, predicate_to_condition, Condition, Solver, VarDistributions,
};
use ua_data::algebra::{RaError, RaExpr};
use ua_data::expr::Expr;
use ua_data::relation::{Database, Relation};
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::{Value, VarId};
use ua_data::{FxHashMap, FxHashSet};
use ua_incomplete::IncompleteDb;

/// One row of a C-table: values (possibly variables) plus a local condition.
#[derive(Clone, Debug)]
pub struct CTuple {
    /// The row values; attributes may be [`Value::Var`].
    pub values: Tuple,
    /// The local condition `φ_D(t)`.
    pub condition: Condition,
}

impl CTuple {
    /// A row with condition `⊤`.
    pub fn unconditional(values: Tuple) -> CTuple {
        CTuple {
            values,
            condition: Condition::True,
        }
    }

    /// A conditioned row.
    pub fn new(values: Tuple, condition: Condition) -> CTuple {
        CTuple { values, condition }
    }

    /// Whether all attributes are constants.
    pub fn is_constant(&self) -> bool {
        !self.values.iter().any(Value::is_var)
    }

    /// Variables appearing in values or the condition.
    pub fn collect_vars(&self, out: &mut FxHashSet<VarId>) {
        for v in self.values.iter() {
            if let Value::Var(x) = v {
                out.insert(*x);
            }
        }
        self.condition.collect_vars(out);
    }
}

/// A C-table.
#[derive(Clone, Debug)]
pub struct CTable {
    schema: Schema,
    tuples: Vec<CTuple>,
}

impl CTable {
    /// Empty C-table.
    pub fn new(schema: Schema) -> CTable {
        CTable {
            schema,
            tuples: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Add a row.
    ///
    /// # Panics
    /// Panics on arity mismatch or a syntactically-`⊥` condition (callers
    /// should drop such rows).
    pub fn push(&mut self, t: CTuple) {
        assert_eq!(
            t.values.arity(),
            self.schema.arity(),
            "row arity must match the schema"
        );
        self.tuples.push(t);
    }

    /// The rows.
    pub fn tuples(&self) -> &[CTuple] {
        &self.tuples
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All variables of the table.
    pub fn vars(&self) -> FxHashSet<VarId> {
        let mut out = FxHashSet::default();
        for t in &self.tuples {
            t.collect_vars(&mut out);
        }
        out
    }

    /// `label_C-table` (paper Section 4.1): the set of tuples labeled
    /// certain — constant-only rows whose local condition is in CNF and a
    /// CNF-tautology. C-sound (Theorem 2) but not c-complete (Example 9).
    pub fn labeling(&self) -> Relation<bool> {
        let mut out = Relation::new(self.schema.clone());
        for t in &self.tuples {
            if t.is_constant() && is_cnf(&t.condition) && cnf_tautology(&t.condition) == Some(true)
            {
                out.set(t.values.clone(), true);
            }
        }
        out
    }

    /// Instantiate the possible world induced by `valuation` (set
    /// semantics: C-tables are a set model).
    pub fn instantiate(&self, valuation: &FxHashMap<VarId, Value>) -> Relation<bool> {
        let lookup = |v: VarId| -> Value {
            valuation
                .get(&v)
                .cloned()
                .unwrap_or_else(|| panic!("valuation misses {v}"))
        };
        let mut out = Relation::new(self.schema.clone());
        for t in &self.tuples {
            if t.condition.eval(&lookup) {
                let grounded = t.values.substitute(|v| match v {
                    Value::Var(x) => lookup(*x),
                    other => other.clone(),
                });
                out.set(grounded, true);
            }
        }
        out
    }

    /// The condition under which the constant tuple `t` appears in this
    /// C-table: `∨_r (φ_r ∧ unify(r, t))`.
    ///
    /// Rows that cannot unify with `t` contribute `⊥`; a variable attribute
    /// unifies by emitting an equality atom, so repeated variables stay
    /// consistent.
    pub fn membership_condition(&self, t: &Tuple) -> Condition {
        assert_eq!(t.arity(), self.schema.arity(), "tuple arity mismatch");
        let mut cases = Vec::new();
        'rows: for row in &self.tuples {
            let mut atoms = vec![row.condition.clone()];
            for (rv, tv) in row.values.iter().zip(t.iter()) {
                match rv {
                    Value::Var(x) => {
                        atoms.push(Condition::var_eq(*x, tv.clone()));
                    }
                    constant => {
                        if !constant.sql_eq(tv) {
                            continue 'rows;
                        }
                    }
                }
            }
            cases.push(Condition::and_all(atoms));
        }
        Condition::or_all(cases)
    }

    /// Exact certainty of a constant tuple: its membership condition is a
    /// tautology (the paper's Z3-based baseline; here the region solver).
    pub fn is_certain(&self, t: &Tuple, solver: &Solver) -> bool {
        solver.is_valid(&self.membership_condition(t))
    }
}

/// A C-database: C-tables plus an optional global condition and optional
/// per-variable distributions (PC-table).
#[derive(Clone, Debug, Default)]
pub struct CDb {
    relations: std::collections::BTreeMap<String, CTable>,
    global: Option<Condition>,
    distributions: Option<VarDistributions>,
}

impl CDb {
    /// Empty C-database.
    pub fn new() -> CDb {
        CDb::default()
    }

    /// Register a C-table.
    pub fn insert(&mut self, name: impl Into<String>, table: CTable) {
        self.relations.insert(name.into(), table);
    }

    /// Look up a C-table.
    pub fn get(&self, name: &str) -> Option<&CTable> {
        self.relations.get(name)
    }

    /// Iterate over C-tables.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &CTable)> {
        self.relations.iter()
    }

    /// Constrain the variable space with a global condition.
    pub fn with_global_condition(mut self, global: Condition) -> CDb {
        self.global = Some(global);
        self
    }

    /// The global condition (defaults to `⊤`).
    pub fn global_condition(&self) -> Condition {
        self.global.clone().unwrap_or(Condition::True)
    }

    /// Turn into a PC-table by attaching variable distributions.
    pub fn with_distributions(mut self, dists: VarDistributions) -> CDb {
        self.distributions = Some(dists);
        self
    }

    /// The variable distributions, when this is a PC-table.
    pub fn distributions(&self) -> Option<&VarDistributions> {
        self.distributions.as_ref()
    }

    /// All variables of the database.
    pub fn vars(&self) -> FxHashSet<VarId> {
        let mut out = FxHashSet::default();
        for t in self.relations.values() {
            out.extend(t.vars());
        }
        if let Some(g) = &self.global {
            g.collect_vars(&mut out);
        }
        out
    }

    /// The labeling database (`label_C-table` applied per table).
    pub fn labeling(&self) -> Database<bool> {
        let mut db = Database::new();
        for (name, table) in &self.relations {
            db.insert(name.clone(), table.labeling());
        }
        db
    }

    /// The best-guess valuation: per-variable argmax for PC-tables (the
    /// paper's tractable approximation of the most likely world — exact
    /// most-likely-world extraction is #P, Section 4.2); an arbitrary
    /// all-zeros valuation for plain C-tables (any world serves as BGW).
    pub fn best_guess_valuation(&self) -> FxHashMap<VarId, Value> {
        match &self.distributions {
            Some(d) => {
                let mut v = d.argmax_valuation();
                // Variables without distributions default to 0.
                for var in self.vars() {
                    v.entry(var).or_insert(Value::Int(0));
                }
                v
            }
            None => self
                .vars()
                .into_iter()
                .map(|v| (v, Value::Int(0)))
                .collect(),
        }
    }

    /// The best-guess world.
    pub fn best_guess_world(&self) -> Database<bool> {
        self.instantiate(&self.best_guess_valuation())
    }

    /// Instantiate the world induced by `valuation` (ignores worlds whose
    /// valuation violates the global condition by returning empty relations;
    /// callers enumerate only satisfying valuations).
    pub fn instantiate(&self, valuation: &FxHashMap<VarId, Value>) -> Database<bool> {
        let mut db = Database::new();
        for (name, table) in &self.relations {
            db.insert(name.clone(), table.instantiate(valuation));
        }
        db
    }

    /// Enumerate possible worlds with variables ranging over `domain`
    /// (closed-world finite-domain semantics). PC-table distributions, when
    /// present, weight the worlds (variables range over their supports
    /// instead of `domain`).
    ///
    /// # Panics
    /// Panics when the number of valuations exceeds `max_worlds`.
    pub fn enumerate_worlds(&self, domain: &[Value], max_worlds: u128) -> IncompleteDb<bool> {
        let mut vars: Vec<VarId> = self.vars().into_iter().collect();
        vars.sort_unstable();
        let supports: Vec<Vec<(Value, f64)>> = vars
            .iter()
            .map(|v| match &self.distributions {
                Some(d) => match d.get(*v) {
                    Some(s) => s.to_vec(),
                    None => uniform_support(domain),
                },
                None => uniform_support(domain),
            })
            .collect();
        let count: u128 = supports.iter().map(|s| s.len() as u128).product();
        assert!(
            count <= max_worlds,
            "refusing to enumerate {count} valuations (limit {max_worlds})"
        );
        let global = self.global_condition();
        let mut worlds = Vec::new();
        let mut probs = Vec::new();
        let mut idx = vec![0usize; vars.len()];
        loop {
            let valuation: FxHashMap<VarId, Value> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, supports[i][idx[i]].0.clone()))
                .collect();
            let satisfies_global =
                global.eval(&|v| valuation.get(&v).cloned().unwrap_or(Value::Null));
            if satisfies_global {
                let p: f64 = vars
                    .iter()
                    .enumerate()
                    .map(|(i, _)| supports[i][idx[i]].1)
                    .product();
                worlds.push(self.instantiate(&valuation));
                probs.push(p);
            }
            let mut done = true;
            for (i, x) in idx.iter_mut().enumerate() {
                *x += 1;
                if *x < supports[i].len() {
                    done = false;
                    break;
                }
                *x = 0;
            }
            if done {
                break;
            }
        }
        assert!(
            !worlds.is_empty(),
            "global condition unsatisfiable over the given domain"
        );
        let total: f64 = probs.iter().sum();
        if total > 0.0 {
            for p in &mut probs {
                *p /= total;
            }
        }
        IncompleteDb::new(worlds).with_probabilities(probs)
    }
}

/// Encode an x-DB as a (P)C-database: x-tuple `τ_j` becomes variable `x_j`
/// with one value per alternative; alternative `k` becomes a row guarded by
/// `x_j = k`. Optional x-tuples get an extra "absent" value carrying the
/// leftover probability mass. This gives the exact-certain-answer machinery
/// (symbolic evaluation + solver) access to x-DB workloads.
pub fn cdb_from_xdb(xdb: &crate::xdb::XDb) -> CDb {
    let mut db = CDb::new();
    let mut dists = VarDistributions::new();
    let mut next_var = 0u32;
    for (name, rel) in xdb.iter() {
        let mut table = CTable::new(rel.schema().clone());
        for xt in rel.xtuples() {
            let var = VarId(next_var);
            next_var += 1;
            let mut support: Vec<(Value, f64)> = xt
                .alternatives
                .iter()
                .enumerate()
                .map(|(k, a)| (Value::Int(k as i64), a.probability))
                .collect();
            let absent = 1.0 - xt.total_probability();
            if absent > 1e-12 {
                support.push((Value::Int(xt.alternatives.len() as i64), absent));
            }
            dists.set(var, support);
            for (k, alt) in xt.alternatives.iter().enumerate() {
                table.push(CTuple::new(
                    alt.tuple.clone(),
                    Condition::var_eq(var, k as i64),
                ));
            }
        }
        db.insert(name.clone(), table);
    }
    db.with_distributions(dists)
}

fn uniform_support(domain: &[Value]) -> Vec<(Value, f64)> {
    assert!(!domain.is_empty(), "variable domain must be non-empty");
    let p = 1.0 / domain.len() as f64;
    domain.iter().map(|v| (v.clone(), p)).collect()
}

/// Errors from symbolic C-table query evaluation.
#[derive(Clone, Debug)]
pub enum CtError {
    /// Plan-level failure (unknown table, schema resolution, …).
    Ra(RaError),
    /// A predicate or projection has no symbolic translation over variables.
    Symbolic(String),
}

impl std::fmt::Display for CtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtError::Ra(e) => write!(f, "{e}"),
            CtError::Symbolic(msg) => write!(f, "symbolic evaluation failed: {msg}"),
        }
    }
}

impl std::error::Error for CtError {}

impl From<RaError> for CtError {
    fn from(e: RaError) -> Self {
        CtError::Ra(e)
    }
}

/// Evaluate an `RA⁺` query *symbolically* over a C-database, producing a
/// result C-table (C-tables are closed under full relational algebra; we
/// implement the positive fragment the paper's experiments use).
pub fn eval_symbolic(query: &RaExpr, db: &CDb) -> Result<CTable, CtError> {
    match query {
        RaExpr::Table(name) => db
            .get(name)
            .cloned()
            .ok_or_else(|| CtError::Ra(RaError::UnknownTable(name.clone()))),
        RaExpr::Alias { input, name } => {
            let t = eval_symbolic(input, db)?;
            Ok(CTable {
                schema: t.schema.with_qualifier(name),
                tuples: t.tuples,
            })
        }
        RaExpr::Select { input, predicate } => {
            let t = eval_symbolic(input, db)?;
            let bound = predicate.bind(&t.schema).map_err(RaError::from)?;
            let mut out = CTable::new(t.schema.clone());
            for row in &t.tuples {
                let residue = predicate_to_condition(&bound, &row.values)
                    .map_err(|e| CtError::Symbolic(e.to_string()))?;
                let cond = row.condition.clone().and(residue);
                if !matches!(cond, Condition::False) {
                    out.push(CTuple::new(row.values.clone(), cond));
                }
            }
            Ok(out)
        }
        RaExpr::Project { input, columns } => {
            let t = eval_symbolic(input, db)?;
            let bound: Vec<Expr> = columns
                .iter()
                .map(|c| c.expr.bind(&t.schema))
                .collect::<Result<_, _>>()
                .map_err(RaError::from)?;
            let schema = Schema::new(columns.iter().map(|c| c.column.clone()).collect());
            let mut out = CTable::new(schema);
            for row in &t.tuples {
                let values: Tuple = bound
                    .iter()
                    .map(|e| symbolic_project_value(e, &row.values))
                    .collect::<Result<_, _>>()?;
                out.push(CTuple::new(values, row.condition.clone()));
            }
            Ok(out)
        }
        RaExpr::Join {
            left,
            right,
            predicate,
        } => {
            let l = eval_symbolic(left, db)?;
            let r = eval_symbolic(right, db)?;
            let schema = l.schema.concat(&r.schema);
            let bound = match predicate {
                Some(p) => Some(p.bind(&schema).map_err(RaError::from)?),
                None => None,
            };
            let mut out = CTable::new(schema);
            for lrow in &l.tuples {
                for rrow in &r.tuples {
                    let values = lrow.values.concat(&rrow.values);
                    let mut cond = lrow.condition.clone().and(rrow.condition.clone());
                    if let Some(pred) = &bound {
                        let residue = predicate_to_condition(pred, &values)
                            .map_err(|e| CtError::Symbolic(e.to_string()))?;
                        cond = cond.and(residue);
                    }
                    if !matches!(cond, Condition::False) {
                        out.push(CTuple::new(values, cond));
                    }
                }
            }
            Ok(out)
        }
        RaExpr::Union { left, right } => {
            let l = eval_symbolic(left, db)?;
            let r = eval_symbolic(right, db)?;
            l.schema
                .check_union_compatible(&r.schema)
                .map_err(RaError::from)?;
            let mut out = l.clone();
            for row in r.tuples {
                out.push(row);
            }
            Ok(out)
        }
    }
}

fn symbolic_project_value(expr: &Expr, row: &Tuple) -> Result<Value, CtError> {
    if let Expr::Col(i) = expr {
        return row
            .get(*i)
            .cloned()
            .ok_or_else(|| CtError::Symbolic(format!("column {i} out of range")));
    }
    let mut cols = Vec::new();
    expr.referenced_columns(&mut cols);
    if cols
        .iter()
        .any(|&c| matches!(row.get(c), Some(Value::Var(_))))
    {
        return Err(CtError::Symbolic(format!(
            "projection expression `{expr}` over a variable attribute"
        )));
    }
    expr.eval(row).map_err(|e| CtError::Symbolic(e.to_string()))
}

/// Convenience: the exact certain answers of `query` over `db` among the
/// constant tuples of the symbolic result, together with the result table.
///
/// This mirrors the paper's Figure 10 baseline: instrument the query to
/// carry local conditions, then decide tautology per result tuple.
pub fn certain_answers(
    query: &RaExpr,
    db: &CDb,
    solver: &Solver,
) -> Result<(CTable, Vec<Tuple>), CtError> {
    let result = eval_symbolic(query, db)?;
    let mut candidates: Vec<Tuple> = result
        .tuples()
        .iter()
        .filter(|r| r.is_constant())
        .map(|r| r.values.clone())
        .collect();
    candidates.sort();
    candidates.dedup();
    let certain = candidates
        .into_iter()
        .filter(|t| result.is_certain(t, solver))
        .collect();
    Ok((result, certain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_conditions::Atom;
    use ua_data::expr::CmpOp;
    use ua_data::tuple;
    use ua_incomplete::{is_c_complete, is_c_sound};

    fn x() -> VarId {
        VarId(0)
    }

    /// Paper Example 9: t1 = (1, X) with φ = (X = 1); t2 = (1, 1) with
    /// φ = (X ≠ 1).
    fn example9() -> CDb {
        let mut t = CTable::new(Schema::qualified("r", ["a", "b"]));
        t.push(CTuple::new(
            Tuple::new(vec![Value::Int(1), Value::Var(x())]),
            Condition::var_eq(x(), 1i64),
        ));
        t.push(CTuple::new(
            tuple![1i64, 1i64],
            Condition::Atom(Atom::var_const(x(), CmpOp::Ne, 1i64)),
        ));
        let mut db = CDb::new();
        db.insert("r", t);
        db
    }

    #[test]
    fn example9_labeling_misses_certain_tuple() {
        let db = example9();
        let labeling = db.labeling();
        // The PTIME labeling marks nothing certain…
        assert!(labeling.get("r").unwrap().is_empty());
        // …but (1,1) *is* certain: the exact solver sees it.
        let table = db.get("r").unwrap();
        assert!(table.is_certain(&tuple![1i64, 1i64], &Solver::new()));
    }

    #[test]
    fn theorem2_labeling_is_c_sound() {
        let db = example9();
        let domain = vec![Value::Int(0), Value::Int(1), Value::Int(2)];
        let inc = db.enumerate_worlds(&domain, 100);
        assert!(is_c_sound(&db.labeling(), &inc), "Theorem 2 violated");
        // And (1,1) is present in all three worlds.
        assert!(inc.certain_annotation("r", &tuple![1i64, 1i64]));
    }

    #[test]
    fn tautology_condition_is_labeled_certain() {
        let mut t = CTable::new(Schema::qualified("r", ["a"]));
        t.push(CTuple::new(
            tuple![5i64],
            Condition::Atom(Atom::var_const(x(), CmpOp::Lt, 3i64))
                .or(Condition::Atom(Atom::var_const(x(), CmpOp::Ge, 3i64))),
        ));
        let labeling = t.labeling();
        assert!(labeling.annotation(&tuple![5i64]));
    }

    #[test]
    fn non_cnf_tautology_stays_unlabeled() {
        // (x<3 ∧ x<5) ∨ (x ≥ 3): a tautology, but not in CNF ⇒ unlabeled.
        let phi = Condition::and_all([
            Condition::Atom(Atom::var_const(x(), CmpOp::Lt, 3i64)),
            Condition::Atom(Atom::var_const(x(), CmpOp::Lt, 5i64)),
        ])
        .or(Condition::Atom(Atom::var_const(x(), CmpOp::Ge, 3i64)));
        let mut t = CTable::new(Schema::qualified("r", ["a"]));
        t.push(CTuple::new(tuple![5i64], phi.clone()));
        assert!(t.labeling().is_empty());
        // The exact check recognizes it.
        assert!(t.is_certain(&tuple![5i64], &Solver::new()));
    }

    #[test]
    fn symbolic_selection_extends_conditions() {
        let mut t = CTable::new(Schema::qualified("r", ["a", "b"]));
        t.push(CTuple::unconditional(Tuple::new(vec![
            Value::Int(1),
            Value::Var(x()),
        ])));
        let mut db = CDb::new();
        db.insert("r", t);
        let q = RaExpr::table("r").select(Expr::named("b").lt(Expr::lit(5i64)));
        let result = eval_symbolic(&q, &db).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuples()[0].condition.atom_count(), 1);
    }

    #[test]
    fn symbolic_join_conjoins() {
        let mut r = CTable::new(Schema::qualified("r", ["a"]));
        r.push(CTuple::new(
            Tuple::new(vec![Value::Var(x())]),
            Condition::True,
        ));
        let mut s = CTable::new(Schema::qualified("s", ["b"]));
        s.push(CTuple::unconditional(tuple![3i64]));
        let mut db = CDb::new();
        db.insert("r", r);
        db.insert("s", s);
        let q = RaExpr::table("r").join(
            RaExpr::table("s"),
            Expr::named("r.a").eq(Expr::named("s.b")),
        );
        let result = eval_symbolic(&q, &db).unwrap();
        assert_eq!(result.len(), 1);
        // Condition is ?x0 = 3.
        let cond = &result.tuples()[0].condition;
        assert_eq!(cond.atom_count(), 1);
        assert!(!Solver::new().is_valid(cond));
    }

    #[test]
    fn constant_rows_fold_conditions() {
        let mut t = CTable::new(Schema::qualified("r", ["a"]));
        t.push(CTuple::unconditional(tuple![1i64]));
        t.push(CTuple::unconditional(tuple![7i64]));
        let mut db = CDb::new();
        db.insert("r", t);
        let q = RaExpr::table("r").select(Expr::named("a").lt(Expr::lit(5i64)));
        let result = eval_symbolic(&q, &db).unwrap();
        // Row 7 is dropped outright (condition folded to ⊥).
        assert_eq!(result.len(), 1);
        assert!(result.tuples()[0]
            .condition
            .structurally_eq(&Condition::True));
    }

    #[test]
    fn certain_answers_pipeline() {
        let db = example9();
        let q = RaExpr::table("r").project(["a", "b"]);
        let (result, certain) = certain_answers(&q, &db, &Solver::new()).unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(certain, vec![tuple![1i64, 1i64]]);
    }

    #[test]
    fn instantiation_and_bgw() {
        let db = example9();
        let mut valuation = FxHashMap::default();
        valuation.insert(x(), Value::Int(1));
        let w = db.instantiate(&valuation);
        // X = 1: row 1 gives (1,1); row 2's condition fails.
        assert!(w.get("r").unwrap().annotation(&tuple![1i64, 1i64]));
        assert_eq!(w.get("r").unwrap().support_size(), 1);

        let bgw = db.best_guess_world();
        // All-zero valuation: row 1 fails (X=1 false), row 2 holds as (1,1).
        assert!(bgw.get("r").unwrap().annotation(&tuple![1i64, 1i64]));
    }

    #[test]
    fn pc_table_distributions_weight_worlds() {
        let mut dists = VarDistributions::new();
        dists.set(x(), vec![(Value::Int(1), 0.8), (Value::Int(2), 0.2)]);
        let db = example9().with_distributions(dists);
        let inc = db.enumerate_worlds(&[], 10);
        assert_eq!(inc.n_worlds(), 2);
        assert!((inc.probability(0) - 0.8).abs() < 1e-9);
        let bgw = db.best_guess_world();
        assert!(bgw.get("r").unwrap().annotation(&tuple![1i64, 1i64]));
    }

    #[test]
    fn global_condition_restricts_worlds() {
        let db = example9().with_global_condition(Condition::var_eq(x(), 1i64));
        let domain = vec![Value::Int(0), Value::Int(1), Value::Int(2)];
        let inc = db.enumerate_worlds(&domain, 100);
        assert_eq!(inc.n_worlds(), 1);
    }

    #[test]
    fn labeling_completeness_fails_by_design() {
        let db = example9();
        let domain = vec![Value::Int(0), Value::Int(1), Value::Int(2)];
        let inc = db.enumerate_worlds(&domain, 100);
        assert!(!is_c_complete(&db.labeling(), &inc));
    }
}
