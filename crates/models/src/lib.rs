//! Compact incomplete data models and their labeling schemes.
//!
//! The UA-DB paper (Section 4) defines PTIME *labeling schemes* — functions
//! extracting an under-approximation of the certain annotations — together
//! with best-guess-world extraction for three widely used incomplete data
//! models, all implemented here from scratch:
//!
//! * [`tidb`] — tuple-independent databases (`label_TIDB` is c-correct,
//!   Theorem 1; BGW keeps tuples with `P ≥ 0.5`);
//! * [`xdb`] — x-DBs / block-independent databases (`label_xDB` is
//!   c-correct, Theorem 3; BGW takes per-block argmax alternatives; x-keys
//!   of Definition 7 for the c-completeness preservation of Theorem 6);
//! * [`ctable`] — C-tables and PC-tables (`label_C-table` is c-sound but
//!   deliberately incomplete, Theorem 2 / Example 9), including symbolic
//!   `RA⁺` evaluation and the exact certain-answer baseline used by the
//!   paper's Figure 10.
//!
//! Every model converts to [`ua_incomplete::IncompleteDb`] (by world
//! enumeration, for test oracles) and supports world sampling (for the
//! MCDB-style baseline).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ctable;
pub mod tidb;
pub mod xdb;

pub use ctable::{cdb_from_xdb, certain_answers, eval_symbolic, CDb, CTable, CTuple, CtError};
pub use tidb::{TiDb, TiRelation, TiTuple};
pub use xdb::{Alternative, XDb, XRelation, XTuple};
